"""Cost-based planner ablation — join order chosen by statistics vs syntax.

The workload is a skewed fan-in: 50k :Common nodes each pointing at one
of 50 :Rare hubs.  The query enters the pattern on the :Common side
syntactically, so the rule-based planner scans all 50k sources and
expands forward; the cost-based planner reads the label counts, anchors
on the 50-node :Rare side and walks the cached transpose, touching three
orders of magnitude fewer frontier rows for the same answer.

The acceptance bar (asserted even under ``--benchmark-disable``): the
cost-chosen join order is >= 10x faster than the forced-syntactic one;
``REPRO_BENCH_PLANNER_SPEEDUP_MIN`` overrides the floor, and the measured
ratio lands in the benchmark JSON artifact via ``extra_info``.
"""

import os
import time

import numpy as np
import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

COMMON = int(os.environ.get("REPRO_BENCH_PLANNER_COMMON", "50000"))
RARE = 50
QUERY = "MATCH (a:Common)-[:R]->(b:Rare {i: 0}) RETURN count(a)"


@pytest.fixture(scope="module")
def db():
    d = GraphDB("bench-planner", GraphConfig(node_capacity=1024))
    d.graph.bulk_load_nodes(COMMON, label="Common")
    d.query(f"UNWIND range(0, {RARE - 1}) AS i CREATE (:Rare {{i: i}})")
    src = np.arange(COMMON, dtype=np.int64)
    d.graph.bulk_load_edges(src, COMMON + src % RARE, "R")
    return d


def set_mode(db: GraphDB, cost_based: bool) -> None:
    db.graph.config.cost_based_planner = int(cost_based)
    db.graph.bump_schema_version()  # what GRAPH.CONFIG SET does
    db.query(QUERY)  # prime: recompile once, outside the timed region


def run_queries(db: GraphDB, n: int) -> int:
    total = 0
    for _ in range(n):
        total += db.query(QUERY).scalar()
    return total


@pytest.mark.parametrize("mode", ["cost", "syntactic"])
def test_join_order(benchmark, db, mode):
    set_mode(db, cost_based=(mode == "cost"))
    benchmark.extra_info["query"] = "skewed_fan_in"
    benchmark.extra_info["mode"] = mode
    result = benchmark(run_queries, db, 3)
    assert result == 3 * COMMON // RARE


def test_join_order_speedup_headline(benchmark, db):
    """The acceptance check itself: statistics-chosen join order >= 10x
    faster than the syntactic one on the skewed fan-in.

    Best-of-3 with min-time per side (noise-robust, cf. the plan-cache
    headline); the recorded benchmark arm is the cost-chosen plan, and
    the ratio rides the JSON artifact in ``extra_info``."""

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    n = 3
    set_mode(db, cost_based=False)
    syntactic = best_of(3, lambda: run_queries(db, n))
    set_mode(db, cost_based=True)
    cost = best_of(3, lambda: run_queries(db, n))
    speedup = syntactic / cost
    benchmark.extra_info["syntactic_s"] = round(syntactic, 6)
    benchmark.extra_info["cost_s"] = round(cost, 6)
    benchmark.extra_info["join_order_speedup"] = round(speedup, 2)
    benchmark(run_queries, db, n)
    floor = float(os.environ.get("REPRO_BENCH_PLANNER_SPEEDUP_MIN", "10"))
    print(
        f"\njoin-order speedup (fan-in {COMMON}->{RARE}, n={n}): "
        f"syntactic={syntactic:.4f}s cost={cost:.4f}s -> {speedup:.1f}x"
    )
    assert speedup >= floor, f"cost-chosen order only {speedup:.1f}x faster (need >= {floor}x)"
