"""Persistence ablation — columnar v2 snapshots vs the legacy v1 format,
plus cold-start recovery (snapshot + write-log tail).

The durability story only matters if recovery is fast: Redis restarts are
dominated by RDB load time, and RedisGraph inherits that.  The legacy v1
format serialized node/edge records through per-entity Python loops into
JSON embedded in an npz and *replayed* edges into the matrices on load;
v2 dumps typed numpy columns and re-installs the CSR arrays directly, so
load cost is dominated by record reconstruction, not matrix rebuilds.

Arms (graph shape: ``REPRO_BENCH_PERSIST_EDGES`` recorded edges with a
property, default 100k, between 2x as many nodes with properties):

* ``save`` / ``load`` x ``v2`` / ``v1`` — snapshot throughput both ways,
* ``recovery`` — a cold start from data dir: v2 snapshot plus a
  ``REPRO_BENCH_PERSIST_TAIL`` (default 500) record write-log tail.

Headline (runs even with ``--benchmark-disable``): v2 load must be >=
3x faster than v1 load (``REPRO_BENCH_PERSIST_SPEEDUP_MIN`` overrides).
"""

import io
import os
import time

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig
from repro.graph.persist import load_graph, save_graph, save_graph_v1

N_EDGES = int(os.environ.get("REPRO_BENCH_PERSIST_EDGES", "100000"))
TAIL_RECORDS = int(os.environ.get("REPRO_BENCH_PERSIST_TAIL", "500"))


@pytest.fixture(scope="module")
def db():
    """~N_EDGES recorded edges (with a property) between 2N propertied
    nodes, plus an index — the surfaces both formats must carry."""
    d = GraphDB("persist-bench", GraphConfig(node_capacity=max(16, 2 * N_EDGES)))
    ids = list(range(N_EDGES))
    d.bulk_insert(
        nodes=[
            {"labels": ["V"], "count": N_EDGES, "properties": {"i": ids}},
            {"labels": ["V"], "count": N_EDGES, "properties": {"name": [f"n{i}" for i in ids]}},
        ],
        edges=[
            {"type": "E", "src": ids, "dst": [N_EDGES + i for i in ids], "properties": {"w": ids}},
        ],
    )
    d.query("CREATE INDEX ON :V(i)")
    return d


def buffer_of(saver, graph) -> io.BytesIO:
    buf = io.BytesIO()
    saver(graph, buf)
    buf.seek(0)
    return buf


@pytest.fixture(scope="module")
def v2_file(db):
    return buffer_of(save_graph, db.graph)


@pytest.fixture(scope="module")
def v1_file(db):
    return buffer_of(save_graph_v1, db.graph)


def test_save_v2(benchmark, db):
    benchmark.extra_info.update(mode="save-v2", edges=N_EDGES)
    benchmark(lambda: buffer_of(save_graph, db.graph))


def test_save_v1(benchmark, db):
    benchmark.extra_info.update(mode="save-v1", edges=N_EDGES)
    benchmark(lambda: buffer_of(save_graph_v1, db.graph))


def load_from(buf: io.BytesIO):
    buf.seek(0)
    return load_graph(buf)


def test_load_v2(benchmark, db, v2_file):
    benchmark.extra_info.update(mode="load-v2", edges=N_EDGES)
    graph = benchmark(load_from, v2_file)
    assert graph.edge_count == db.graph.edge_count


def test_load_v1(benchmark, db, v1_file):
    benchmark.extra_info.update(mode="load-v1", edges=N_EDGES)
    graph = benchmark(load_from, v1_file)
    assert graph.edge_count == db.graph.edge_count


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory, db):
    """A durable data dir: v2 snapshot of the big graph + a log tail."""
    from repro.rediskv.durability import DurabilityManager
    from repro.rediskv.graph_module import GraphModule
    from repro.rediskv.keyspace import Keyspace

    path = tmp_path_factory.mktemp("persist-bench")
    config = GraphConfig(node_capacity=max(16, 2 * N_EDGES), wal_fsync="no")
    keyspace = Keyspace()
    keyspace.set_graph("g", db)
    manager = DurabilityManager(path, config, keyspace)
    module = GraphModule(keyspace, config, durability=manager)
    assert manager.save_graph("g", db)
    for i in range(TAIL_RECORDS):
        module.query("g", f"CYPHER i={i} CREATE (:T {{i: $i}})")
    manager.close()
    # undo the tail writes so the shared fixture graph stays pristine
    db.query("MATCH (n:T) DETACH DELETE n")
    return path


def cold_start(path):
    from repro.rediskv.durability import DurabilityManager
    from repro.rediskv.graph_module import GraphModule
    from repro.rediskv.keyspace import Keyspace

    config = GraphConfig(node_capacity=16, wal_fsync="no")
    keyspace = Keyspace()
    manager = DurabilityManager(path, config, keyspace)
    module = GraphModule(keyspace, config)
    stats = manager.recover(module)
    manager.close()
    return keyspace, stats


def test_cold_start_recovery(benchmark, data_dir):
    benchmark.extra_info.update(mode="recovery", edges=N_EDGES, tail=TAIL_RECORDS)
    keyspace, stats = benchmark(cold_start, data_dir)
    assert stats["snapshots"] == 1
    assert stats["replayed"] == TAIL_RECORDS
    restored = keyspace.get_graph("g")
    assert restored.query("MATCH (:V)-[:E]->(b) RETURN count(b)").scalar() == N_EDGES
    assert restored.query("MATCH (n:T) RETURN count(n)").scalar() == TAIL_RECORDS


def test_load_speedup_headline(db, v1_file, v2_file):
    """The acceptance check itself (runs even with --benchmark-disable):
    v2 cold load >= 3x faster than v1 on the ~100k-edge graph.  Best-of-2
    per side smooths allocator warmup."""
    floor = float(os.environ.get("REPRO_BENCH_PERSIST_SPEEDUP_MIN", "3"))

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    v1_time = best_of(2, lambda: load_from(v1_file))
    v2_time = best_of(2, lambda: load_from(v2_file))
    graph = load_from(v2_file)
    assert graph.node_count == db.graph.node_count

    speedup = v1_time / v2_time
    print(
        f"\nsnapshot load @ {N_EDGES} edges: v2={v2_time:.3f}s v1={v1_time:.3f}s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= floor, f"v2 load only {speedup:.1f}x faster than v1 (need >= {floor}x)"
