"""Plan-cache ablation — repeated parameterized queries, cold vs warm.

Each "cold" round clears the engine's plan cache before every request, so
every query pays the full lex → parse → validate → plan → optimize
pipeline; "warm" rounds reuse the cached :class:`CompiledQuery` and go
straight to bind + execute.  The acceptance bar for the cache is warm >=
5x cold on the parameterized 1-hop shape — per-request overhead, not the
algebra, dominates small OLTP reads (cf. RedisGraph's query cache).

Shapes:

* ``one_hop`` — id-seeded 1-hop count, the paper's Fig. 1 workload
  expressed through Cypher with a ``$src`` parameter,
* ``aggregation`` — grouped count over a label, a projection/aggregate
  plan with more clauses to plan.
"""

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

NODES = 300
ONE_HOP = "MATCH (a:Person)-[:KNOWS]->(b) WHERE id(a) = $src RETURN count(b)"
AGGREGATION = (
    "MATCH (p:Person) WITH p.grp AS grp, count(p) AS n "
    "RETURN grp, n ORDER BY n DESC LIMIT 3"
)


@pytest.fixture(scope="module")
def db():
    d = GraphDB("bench-plan-cache", GraphConfig(node_capacity=512))
    d.query(f"UNWIND range(0, {NODES - 1}) AS i CREATE (:Person {{id: i, grp: i % 7}})")
    d.query(
        "MATCH (a:Person), (b:Person) WHERE b.id = (a.id * 7 + 3) % "
        f"{NODES} CREATE (a)-[:KNOWS]->(b)"
    )
    return d


def run_queries(db, query, n, *, cold):
    total = 0
    for i in range(n):
        if cold:
            db.engine.plan_cache.clear()
        total += len(db.query(query, {"src": i % NODES}))
    return total


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_one_hop_parameterized(benchmark, db, mode):
    db.query(ONE_HOP, {"src": 0})  # prime
    benchmark.extra_info["query"] = "one_hop"
    benchmark.extra_info["mode"] = mode
    result = benchmark(run_queries, db, ONE_HOP, 20, cold=(mode == "cold"))
    assert result == 20


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_aggregation(benchmark, db, mode):
    db.query(AGGREGATION)  # prime
    benchmark.extra_info["query"] = "aggregation"
    benchmark.extra_info["mode"] = mode
    result = benchmark(run_queries, db, AGGREGATION, 20, cold=(mode == "cold"))
    assert result == 20 * 3


def test_warm_speedup_headline(db):
    """The acceptance check itself (runs even with --benchmark-disable):
    warm-cache repeated parameterized 1-hop >= 5x faster than cold.

    Best-of-3 trials with min-time per side, so a GC pause or scheduler
    preemption on a noisy CI box cannot sink one loop and fake a
    regression; REPRO_BENCH_CACHE_SPEEDUP_MIN overrides the bar."""
    import os
    import time

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    db.query(ONE_HOP, {"src": 0})
    n = 80
    cold = best_of(3, lambda: run_queries(db, ONE_HOP, n, cold=True))
    warm = best_of(3, lambda: run_queries(db, ONE_HOP, n, cold=False))
    speedup = cold / warm
    floor = float(os.environ.get("REPRO_BENCH_CACHE_SPEEDUP_MIN", "5"))
    print(f"\nplan-cache speedup (1-hop, n={n}): cold={cold:.4f}s warm={warm:.4f}s -> {speedup:.1f}x")
    assert speedup >= floor, f"warm cache only {speedup:.1f}x faster (need >= {floor}x)"
