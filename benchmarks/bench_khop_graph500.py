"""E2 (Graph500 side) — k-hop response time, k = 1, 2, 3, 6 (paper §III).

All engines must agree on the counts (asserted), reproducing the paper's
"no timeouts, no OOM" claim at our scale.
"""

import pytest

from benchmarks.conftest import run_seeds

ENGINES = ["matrix", "redisgraph", "csr-baseline", "pointer-chasing"]
HOPS = [1, 2, 3, 6]


@pytest.mark.parametrize("k", HOPS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_khop_graph500(benchmark, engines_graph500, seeds_graph500, engine_name, k):
    engine = engines_graph500[engine_name]
    # 3/6-hop use fewer seeds, as in the paper (300 vs 10)
    seeds = seeds_graph500 if k <= 2 else seeds_graph500[:3]
    benchmark.extra_info["dataset"] = "graph500"
    benchmark.extra_info["k"] = k
    total = benchmark(run_seeds, engine, seeds, k)
    # counts agree with the reference engine
    reference = engines_graph500["matrix"]
    assert total == run_seeds(reference, seeds, k)
