"""E1 / Fig. 1 — average 1-hop response time per engine on both datasets.

The paper's figure compares RedisGraph against five engines on 1-hop
neighborhood counts over Graph500 and Twitter.  One benchmark round =
the sequential seed sweep; per-seed time = round / #seeds.
"""

import pytest

from benchmarks.conftest import run_seeds

ENGINES = ["matrix", "redisgraph", "csr-baseline", "pointer-chasing"]


@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig1_graph500_one_hop(benchmark, engines_graph500, seeds_graph500, engine_name):
    engine = engines_graph500[engine_name]
    benchmark.extra_info["dataset"] = "graph500"
    benchmark.extra_info["seeds"] = len(seeds_graph500)
    result = benchmark(run_seeds, engine, seeds_graph500, 1)
    assert result >= 0


@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig1_twitter_one_hop(benchmark, engines_twitter, seeds_twitter, engine_name):
    engine = engines_twitter[engine_name]
    benchmark.extra_info["dataset"] = "twitter"
    benchmark.extra_info["seeds"] = len(seeds_twitter)
    result = benchmark(run_seeds, engine, seeds_twitter, 1)
    assert result >= 0
