"""Shared fixtures for the pytest-benchmark experiment suite.

Scales are deliberately modest so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_BENCH_SCALE`` (Graph500 scale, default 12)
and ``REPRO_BENCH_TWITTER_N`` (default 8192) to grow them.  EXPERIMENTS.md
records headline numbers from larger CLI runs (`python -m repro.bench`).
"""

import os

import pytest

from repro.bench.engines import (
    CSRBaselineEngine,
    MatrixEngine,
    PointerChasingEngine,
    RedisGraphEngine,
)
from repro.bench.khop import pick_seeds
from repro.datasets import graph500_edges, twitter_edges

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "12"))
TWITTER_N = int(os.environ.get("REPRO_BENCH_TWITTER_N", "8192"))


@pytest.fixture(scope="session")
def graph500():
    src, dst, n = graph500_edges(SCALE, 16, seed=1)
    return src, dst, n


@pytest.fixture(scope="session")
def twitter():
    src, dst, n = twitter_edges(TWITTER_N, 20, seed=7)
    return src, dst, n


def _loaded(engine_cls, edges):
    engine = engine_cls()
    engine.load(*edges)
    return engine


@pytest.fixture(scope="session")
def engines_graph500(graph500):
    return {
        cls.name: _loaded(cls, graph500)
        for cls in (MatrixEngine, RedisGraphEngine, CSRBaselineEngine, PointerChasingEngine)
    }


@pytest.fixture(scope="session")
def engines_twitter(twitter):
    return {
        cls.name: _loaded(cls, twitter)
        for cls in (MatrixEngine, RedisGraphEngine, CSRBaselineEngine, PointerChasingEngine)
    }


@pytest.fixture(scope="session")
def seeds_graph500(graph500):
    src, _, n = graph500
    return pick_seeds(src, n, 10, seed=42)


@pytest.fixture(scope="session")
def seeds_twitter(twitter):
    src, _, n = twitter
    return pick_seeds(src, n, 10, seed=42)


def run_seeds(engine, seeds, k):
    """One benchmark iteration = the paper's sequential seed sweep."""
    total = 0
    for s in seeds:
        total += engine.khop(int(s), k)
    return total
