"""A3 — GraphChallenge/LDBC-class kernels (paper §IV future work):
triangle counting, k-truss, BFS, PageRank, connected components on RMAT.

The second half (ISSUE 8) runs PageRank and WCC through the procedure
framework — ``CALL algo.* YIELD ...`` parsed, planned, and served over a
live RESP socket — and asserts the columnar YIELD path (ProcedureCall
emitting full ``RecordBatch`` chunks) is >= 2x a naive row-at-a-time
proc bridge (``exec_batch_size=1``: the same algorithm output dribbled
through the pipeline one single-row batch at a time)."""

import os
import time

import numpy as np
import pytest

from repro.algorithms import (
    bfs_levels,
    clustering_coefficient,
    connected_components,
    core_numbers,
    kcore,
    ktruss,
    pagerank,
    triangle_count,
)
from repro.datasets.loader import edges_to_matrix
from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer


@pytest.fixture(scope="module")
def rmat_matrix(graph500):
    src, dst, n = graph500
    return edges_to_matrix(src, dst, n)


def test_triangle_count(benchmark, rmat_matrix):
    triangles = benchmark(triangle_count, rmat_matrix)
    assert triangles > 0


def test_ktruss_k3(benchmark, rmat_matrix):
    truss = benchmark(ktruss, rmat_matrix, 3)
    assert truss.nvals >= 0


def test_bfs_levels(benchmark, rmat_matrix, seeds_graph500):
    seed = int(seeds_graph500[0])
    levels = benchmark(bfs_levels, rmat_matrix, seed)
    assert levels.nvals > 0


def test_bfs_direction_optimized(benchmark, rmat_matrix, seeds_graph500):
    seed = int(seeds_graph500[0])
    levels = benchmark(lambda: bfs_levels(rmat_matrix, seed, direction_optimized=True))
    assert levels.nvals > 0


def test_pagerank(benchmark, rmat_matrix):
    ranks = benchmark(pagerank, rmat_matrix, tol=1e-6)
    assert abs(float(ranks.values.sum()) - 1.0) < 1e-6


def test_connected_components(benchmark, rmat_matrix):
    labels = benchmark(connected_components, rmat_matrix)
    assert labels.nvals == rmat_matrix.nrows


def test_kcore_k4(benchmark, rmat_matrix):
    core = benchmark(kcore, rmat_matrix, 4)
    assert core.nvals >= 0


def test_core_numbers(benchmark, rmat_matrix):
    cores = benchmark(core_numbers, rmat_matrix)
    assert cores.nvals == rmat_matrix.nrows


def test_clustering_coefficient(benchmark, rmat_matrix):
    coeff = benchmark(clustering_coefficient, rmat_matrix)
    assert float(coeff.values.max()) <= 1.0


# ----------------------------------------------------------------------
# ISSUE 8 — the same algorithms as first-class Cypher: CALL ... YIELD
# through the full parse/plan/execute pipeline over a live RESP server.
# ----------------------------------------------------------------------

N_NODES = 20_000
DEFAULT_BATCH = 1_024

PAGERANK_Q = "CALL algo.pagerank() YIELD node, score RETURN count(node), sum(score)"
WCC_Q = "CALL algo.wcc() YIELD node, componentId RETURN count(node), max(componentId)"


@pytest.fixture(scope="module")
def call_server():
    from repro import GraphDB

    db = GraphDB("bench-call", GraphConfig(node_capacity=N_NODES + 16))
    g = db.graph
    rng = np.random.default_rng(8)
    with g.lock.write():
        ids = g.bulk_load_nodes(N_NODES, label="V")
        # hub-shaped: every spoke points at one of 64 hubs (hubs point
        # nowhere), so components have diameter 2 and WCC converges in a
        # handful of label-propagation rounds — the speedup ratio below
        # then isolates pipeline cost, not the (identical-in-both-arms)
        # algorithm cost
        spokes = ids[64:]
        g.bulk_load_edges(spokes, rng.choice(ids[:64], size=len(spokes)), "E")
    g.flush_all()
    server = RedisLikeServer(port=0, config=GraphConfig(thread_count=2)).start()
    server.keyspace.set_graph("bench", db)
    try:
        yield server, db
    finally:
        server.stop()


@pytest.mark.parametrize("name, query", [("pagerank", PAGERANK_Q), ("wcc", WCC_Q)])
def test_call_algorithms_over_resp(benchmark, call_server, name, query):
    server, _ = call_server
    client = RedisClient(port=server.port)

    def run():
        return client.graph_ro_query("bench", query).rows

    try:
        rows = benchmark(run)
        benchmark.extra_info["proc"] = f"algo.{name}"
        benchmark.extra_info["nodes"] = N_NODES
        count, agg = rows[0]
        assert count == N_NODES
        if name == "pagerank":
            assert abs(float(agg) - 1.0) < 1e-3  # ranks normalize
    finally:
        client.close()


def _run_call(db, query, batch_size):
    db.graph.config.exec_batch_size = batch_size
    try:
        return db.query(query).rows
    finally:
        db.graph.config.exec_batch_size = DEFAULT_BATCH


def test_columnar_yield_speedup(call_server):
    """The acceptance check itself (runs even with --benchmark-disable):
    the columnar YIELD path >= 2x the row-at-a-time proc bridge on WCC
    over 20k nodes.  Both arms pay the identical GraphBLAS algorithm
    cost, so the ratio isolates what ProcedureCall adds: one RecordBatch
    per 1 024 yielded rows versus 20 000 single-row batches.

    Best-of-3 per side so a GC pause on a noisy CI box cannot fake a
    regression; REPRO_BENCH_CALL_SPEEDUP_MIN overrides the floor."""
    _, db = call_server

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    reference = _run_call(db, WCC_Q, DEFAULT_BATCH)  # prime the plan cache
    assert _run_call(db, WCC_Q, 1) == reference  # same answer first
    row = best_of(3, lambda: _run_call(db, WCC_Q, 1))
    batched = best_of(3, lambda: _run_call(db, WCC_Q, DEFAULT_BATCH))
    speedup = row / batched
    floor = float(os.environ.get("REPRO_BENCH_CALL_SPEEDUP_MIN", "2"))
    print(
        f"\ncolumnar YIELD speedup (algo.wcc, {N_NODES} nodes): row={row:.4f}s "
        f"batched={batched:.4f}s -> {speedup:.1f}x"
    )
    assert speedup >= floor, f"columnar YIELD only {speedup:.1f}x faster (need >= {floor}x)"
