"""A3 — GraphChallenge/LDBC-class kernels (paper §IV future work):
triangle counting, k-truss, BFS, PageRank, connected components on RMAT."""

import pytest

from repro.algorithms import (
    bfs_levels,
    clustering_coefficient,
    connected_components,
    core_numbers,
    kcore,
    ktruss,
    pagerank,
    triangle_count,
)
from repro.datasets.loader import edges_to_matrix


@pytest.fixture(scope="module")
def rmat_matrix(graph500):
    src, dst, n = graph500
    return edges_to_matrix(src, dst, n)


def test_triangle_count(benchmark, rmat_matrix):
    triangles = benchmark(triangle_count, rmat_matrix)
    assert triangles > 0


def test_ktruss_k3(benchmark, rmat_matrix):
    truss = benchmark(ktruss, rmat_matrix, 3)
    assert truss.nvals >= 0


def test_bfs_levels(benchmark, rmat_matrix, seeds_graph500):
    seed = int(seeds_graph500[0])
    levels = benchmark(bfs_levels, rmat_matrix, seed)
    assert levels.nvals > 0


def test_bfs_direction_optimized(benchmark, rmat_matrix, seeds_graph500):
    seed = int(seeds_graph500[0])
    levels = benchmark(lambda: bfs_levels(rmat_matrix, seed, direction_optimized=True))
    assert levels.nvals > 0


def test_pagerank(benchmark, rmat_matrix):
    ranks = benchmark(pagerank, rmat_matrix, tol=1e-6)
    assert abs(float(ranks.values.sum()) - 1.0) < 1e-6


def test_connected_components(benchmark, rmat_matrix):
    labels = benchmark(connected_components, rmat_matrix)
    assert labels.nvals == rmat_matrix.nrows


def test_kcore_k4(benchmark, rmat_matrix):
    core = benchmark(kcore, rmat_matrix, 4)
    assert core.nvals >= 0


def test_core_numbers(benchmark, rmat_matrix):
    cores = benchmark(core_numbers, rmat_matrix)
    assert cores.nvals == rmat_matrix.nrows


def test_clustering_coefficient(benchmark, rmat_matrix):
    coeff = benchmark(clustering_coefficient, rmat_matrix)
    assert float(coeff.values.max()) <= 1.0
