"""Bulk-ingest ablation — columnar GRAPH.BULK path vs per-row CREATE.

The paper's Sec. IV numbers depend on loading million-edge graphs fast;
production RedisGraph ships a dedicated bulk loader for the same reason.
This benchmark measures the gap our :class:`BulkWriter` closes, against
two per-row baselines:

* **literal per-row** — what a naive loader actually sends: one CREATE
  per row with the values inlined.  Every row is a distinct query text,
  so each pays the full compile pipeline (this is the comparison the
  RedisGraph bulk-loader docs make, and the headline >=20x bar).
* **parameterized per-row** — the best per-row client possible after
  PR 2: one cached plan, values via ``$params``.  Even this pays plan
  binding, lock round-trips, and a pending matrix delta per edge; the
  columnar path must still beat it several-fold.

Both sides build the same shape: for each edge, a propertied source node
(``{i}``), a bare destination node, and an ``:E {w}`` edge with a record
(bulk edges here are first-class, not the recordless dataset shim).

Per-edge wall time is compared: the bulk side ingests
``REPRO_BENCH_BULK_EDGES`` (default 100k) edges outright; per-row sides
are sampled (``REPRO_BENCH_PER_ROW_EDGES``, default 1500 parameterized /
300 literal) — per-row cost is essentially linear in rows, so sampling
keeps CI wall time sane while the ratio reflects the 100k-edge contrast.
Bars: >= 20x vs literal (``REPRO_BENCH_BULK_SPEEDUP_MIN``), >= 3x vs
parameterized (``REPRO_BENCH_BULK_PARAM_SPEEDUP_MIN``).
"""

import os
import time

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

BULK_EDGES = int(os.environ.get("REPRO_BENCH_BULK_EDGES", "100000"))
PER_ROW_EDGES = int(os.environ.get("REPRO_BENCH_PER_ROW_EDGES", "1500"))
LITERAL_EDGES = max(100, PER_ROW_EDGES // 5)

PER_ROW_QUERY = "CREATE (:V {i: $i})-[:E {w: $i}]->(:V)"


def bulk_ingest(n_edges: int) -> GraphDB:
    """Fresh graph + one columnar commit of the workload shape."""
    db = GraphDB("bulk-bench", GraphConfig(node_capacity=max(16, 2 * n_edges)))
    ids = list(range(n_edges))
    report = db.bulk_insert(
        nodes=[
            {"labels": ["V"], "count": n_edges, "properties": {"i": ids}},
            {"labels": ["V"], "count": n_edges},
        ],
        edges=[
            {"type": "E", "src": ids, "dst": [n_edges + i for i in ids],
             "properties": {"w": ids}},
        ],
    )
    assert report.nodes_created == 2 * n_edges
    assert report.relationships_created == n_edges
    return db


def per_row_ingest(n_edges: int) -> GraphDB:
    """The same shape through one CREATE query per edge (warm plan cache)."""
    db = GraphDB("perrow-bench", GraphConfig(node_capacity=max(16, 2 * n_edges)))
    for i in range(n_edges):
        db.query(PER_ROW_QUERY, {"i": i})
    assert db.graph.edge_count == n_edges
    return db


def literal_row_ingest(n_edges: int) -> GraphDB:
    """The naive loader: values inlined, every row a distinct query text."""
    db = GraphDB("literal-bench", GraphConfig(node_capacity=max(16, 2 * n_edges)))
    for i in range(n_edges):
        db.query(f"CREATE (:V {{i: {i}}})-[:E {{w: {i}}}]->(:V)")
    assert db.graph.edge_count == n_edges
    return db


@pytest.mark.parametrize("n_edges", [10_000, BULK_EDGES])
def test_bulk_ingest(benchmark, n_edges):
    benchmark.extra_info["mode"] = "bulk"
    benchmark.extra_info["edges"] = n_edges
    db = benchmark(bulk_ingest, n_edges)
    assert db.query("MATCH (:V)-[:E]->(b) RETURN count(b)").scalar() == n_edges


def test_per_row_create_parameterized(benchmark):
    n = min(500, PER_ROW_EDGES)
    benchmark.extra_info["mode"] = "per-row-parameterized"
    benchmark.extra_info["edges"] = n
    db = benchmark(per_row_ingest, n)
    assert db.query("MATCH (:V)-[:E]->(b) RETURN count(b)").scalar() == n

def test_per_row_create_literal(benchmark):
    n = min(200, LITERAL_EDGES)
    benchmark.extra_info["mode"] = "per-row-literal"
    benchmark.extra_info["edges"] = n
    db = benchmark(literal_row_ingest, n)
    assert db.query("MATCH (:V)-[:E]->(b) RETURN count(b)").scalar() == n


def test_bulk_speedup_headline():
    """The acceptance check itself (runs even with --benchmark-disable):
    bulk ingest at 100k edges >= 20x faster per edge than naive per-row
    CREATE, and >= 3x faster than the best-case parameterized per-row
    loop.  Best-of-2 on the bulk side smooths allocator warmup; the
    per-row loops are long enough to be stable single-trial."""
    floor = float(os.environ.get("REPRO_BENCH_BULK_SPEEDUP_MIN", "20"))
    param_floor = float(os.environ.get("REPRO_BENCH_BULK_PARAM_SPEEDUP_MIN", "3"))

    t0 = time.perf_counter()
    literal_row_ingest(LITERAL_EDGES)
    literal_per_edge = (time.perf_counter() - t0) / LITERAL_EDGES

    t0 = time.perf_counter()
    per_row_ingest(PER_ROW_EDGES)
    param_per_edge = (time.perf_counter() - t0) / PER_ROW_EDGES

    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        db = bulk_ingest(BULK_EDGES)
        best = min(best, time.perf_counter() - t0)
    bulk_per_edge = best / BULK_EDGES

    # the bulk graph answers like any other
    assert db.query("MATCH (a:V {i: 0})-[:E]->(b) RETURN count(b)").scalar() == 1

    speedup = literal_per_edge / bulk_per_edge
    param_speedup = param_per_edge / bulk_per_edge
    print(
        f"\nbulk-ingest @ {BULK_EDGES} edges: bulk={bulk_per_edge * 1e6:.2f}us/edge | "
        f"per-row literal={literal_per_edge * 1e6:.1f}us/edge -> {speedup:.1f}x | "
        f"per-row parameterized={param_per_edge * 1e6:.1f}us/edge -> {param_speedup:.1f}x"
    )
    assert speedup >= floor, f"bulk only {speedup:.1f}x faster than naive per-row (need >= {floor}x)"
    assert param_speedup >= param_floor, (
        f"bulk only {param_speedup:.1f}x faster than parameterized per-row (need >= {param_floor}x)"
    )
