"""E2 (Twitter side) — k-hop response time on the power-law follower graph."""

import pytest

from benchmarks.conftest import run_seeds

ENGINES = ["matrix", "redisgraph", "csr-baseline", "pointer-chasing"]
HOPS = [1, 2, 3, 6]


@pytest.mark.parametrize("k", HOPS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_khop_twitter(benchmark, engines_twitter, seeds_twitter, engine_name, k):
    engine = engines_twitter[engine_name]
    seeds = seeds_twitter if k <= 2 else seeds_twitter[:3]
    benchmark.extra_info["dataset"] = "twitter"
    benchmark.extra_info["k"] = k
    total = benchmark(run_seeds, engine, seeds, k)
    reference = engines_twitter["matrix"]
    assert total == run_seeds(reference, seeds, k)
