"""Secondary-index ablation — sorted-array range seeks vs label scans,
plus vector top-k against the brute-force numpy oracle.

The workload is ~200k :Item nodes with a uniform integer ``v`` column; a
selective range predicate (``v >= hi``, ~0.5% of rows) runs once with the
range index in place (IndexRangeScan, a binary-search slice) and once with
the index dropped (NodeByLabelScan + Filter over every row).

The acceptance bar (asserted even under ``--benchmark-disable``): the
seek is >= 10x faster than the scan; ``REPRO_BENCH_INDEX_SPEEDUP_MIN``
overrides the floor and the measured ratio lands in the benchmark JSON
artifact via ``extra_info``.  The vector arm asserts exact agreement
(ids and scores) with an independent numpy brute-force oracle before
timing the index's matmul top-k.
"""

import os
import time

import numpy as np
import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

N = int(os.environ.get("REPRO_BENCH_INDEX_N", "200000"))
LO, HI = 0, 1000
QUERY = f"MATCH (n:Item) WHERE n.v >= {HI - 5} RETURN count(n)"

VEC_N = int(os.environ.get("REPRO_BENCH_INDEX_VEC_N", "20000"))
VEC_DIM = 32
VEC_K = 10


@pytest.fixture(scope="module")
def db():
    d = GraphDB("bench-index", GraphConfig(node_capacity=1024))
    rng = np.random.default_rng(3)
    values = rng.integers(LO, HI, size=N)
    d.bulk_insert(
        nodes=[{"labels": ("Item",), "count": N, "properties": {"v": values.tolist()}}],
        edges=[],
    )
    d.query("CREATE INDEX ON :Item(v)")
    return d


def set_index(db: GraphDB, present: bool) -> None:
    has = db.graph.get_index("Item", "v") is not None
    if present and not has:
        db.query("CREATE INDEX ON :Item(v)")
    elif not present and has:
        db.query("DROP INDEX ON :Item(v)")
    db.query(QUERY)  # prime: recompile once, outside the timed region


def run_queries(db: GraphDB, n: int) -> int:
    total = 0
    for _ in range(n):
        total += db.query(QUERY).scalar()
    return total


@pytest.mark.parametrize("mode", ["seek", "scan"])
def test_range_predicate(benchmark, db, mode):
    set_index(db, present=(mode == "seek"))
    plan = db.explain(QUERY)
    assert ("IndexRangeScan" in plan) == (mode == "seek")
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["nodes"] = N
    result = benchmark(run_queries, db, 3)
    assert result == 3 * db.query(QUERY).scalar()


def test_range_seek_speedup_headline(benchmark, db):
    """The acceptance check itself: the index seek >= 10x faster than the
    full label scan on ~200k rows.  Best-of-3 min-time per side; the
    recorded arm is the seek, the ratio rides the JSON artifact."""

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    n = 3
    set_index(db, present=False)
    scan = best_of(3, lambda: run_queries(db, n))
    set_index(db, present=True)
    seek = best_of(3, lambda: run_queries(db, n))
    speedup = scan / seek
    benchmark.extra_info["scan_s"] = round(scan, 6)
    benchmark.extra_info["seek_s"] = round(seek, 6)
    benchmark.extra_info["range_seek_speedup"] = round(speedup, 2)
    benchmark(run_queries, db, n)
    floor = float(os.environ.get("REPRO_BENCH_INDEX_SPEEDUP_MIN", "10"))
    print(
        f"\nrange-seek speedup ({N} nodes, sel ~{5 / HI:.3%}, n={n}): "
        f"scan={scan:.4f}s seek={seek:.4f}s -> {speedup:.1f}x"
    )
    assert speedup >= floor, f"index seek only {speedup:.1f}x faster (need >= {floor}x)"


@pytest.fixture(scope="module")
def vec_db():
    d = GraphDB("bench-vector", GraphConfig(node_capacity=1024))
    rng = np.random.default_rng(9)
    vecs = rng.normal(size=(VEC_N, VEC_DIM))
    d.bulk_insert(
        nodes=[{
            "labels": ("Doc",),
            "count": VEC_N,
            "properties": {"emb": [row.tolist() for row in vecs]},
        }],
        edges=[],
    )
    # exact: true pins the brute-force path — this arm measures the flat
    # matmul top-k; bench_vector.py measures the IVF path against it
    d.query(f"CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {{dimension: {VEC_DIM}, exact: true}}")
    return d, vecs, rng.normal(size=VEC_DIM).tolist()


def brute_force_topk(vecs: np.ndarray, q, k: int):
    """The oracle: normalize rows + query, full matmul, lexsort top-k with
    id tie-break — written independently of the index implementation."""
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    unit = np.divide(vecs, norms, out=np.zeros_like(vecs), where=norms > 0)
    qv = np.asarray(q, dtype=np.float64)
    qn = float(np.linalg.norm(qv))
    if qn > 0:
        qv = qv / qn
    scores = unit @ qv
    order = np.lexsort((np.arange(len(vecs)), -scores))[:k]
    return order.tolist(), scores[order]


def test_vector_topk(benchmark, vec_db):
    d, vecs, q = vec_db
    index = d.graph.get_vector_index("Doc", "emb")
    ids, scores = index.query(q, VEC_K)
    oracle_ids, oracle_scores = brute_force_topk(vecs, q, VEC_K)
    assert [int(i) for i in ids] == oracle_ids
    assert np.allclose(scores, oracle_scores)
    benchmark.extra_info["vectors"] = VEC_N
    benchmark.extra_info["dim"] = VEC_DIM
    benchmark.extra_info["k"] = VEC_K
    benchmark(index.query, q, VEC_K)


def test_vector_topk_via_procedure(benchmark, vec_db):
    d, vecs, q = vec_db
    oracle_ids, _ = brute_force_topk(vecs, q, VEC_K)
    call = (
        "CALL db.idx.vector.query('Doc', 'emb', $q, $k) "
        "YIELD node, score RETURN id(node)"
    )
    rows = d.query(call, {"q": q, "k": VEC_K}).rows
    assert [r[0] for r in rows] == oracle_ids
    benchmark(lambda: d.query(call, {"q": q, "k": VEC_K}).rows)
