"""A4 — aggregations and large result sets (paper §IV: profiling "found
additional opportunities for enhancement: aggregations and large result
sets").  Counting should beat materializing full rows by a wide margin."""

import pytest

from repro.bench.khop import pick_seeds
from repro.datasets.loader import build_graphdb


@pytest.fixture(scope="module")
def db(graph500):
    src, dst, n = graph500
    database = build_graphdb(src, dst, n)
    database.graph.flush_all()
    return database


def test_count_aggregate(benchmark, db):
    """count(b): the aggregate consumes rows without materializing them."""
    result = benchmark(lambda: db.query("MATCH (a:V)-[:E]->(b) RETURN count(b)").scalar())
    assert result > 0


def test_full_result_materialization(benchmark, db):
    """RETURN id(a), id(b): every edge becomes a result row."""
    result = benchmark(lambda: len(db.query("MATCH (a:V)-[:E]->(b) RETURN id(a), id(b)").rows))
    assert result > 0


def test_distinct_large_result(benchmark, db):
    result = benchmark(
        lambda: len(db.query("MATCH (a:V)-[:E]->(b) RETURN DISTINCT id(b)").rows)
    )
    assert result > 0


def test_grouped_aggregation(benchmark, db):
    result = benchmark(
        lambda: len(db.query("MATCH (a:V)-[:E]->(b) RETURN id(a), count(b)").rows)
    )
    assert result > 0


def test_order_by_limit_topk(benchmark, db):
    """Top-k via ORDER BY + LIMIT (the optimizer's bounded-heap path)."""
    result = benchmark(
        lambda: db.query(
            "MATCH (a:V)-[:E]->(b) RETURN id(a) AS s, count(b) AS d ORDER BY d DESC LIMIT 10"
        ).rows
    )
    assert len(result) == 10
