"""A2 — ablation of delta-matrix write buffering and flush-free reads.

RedisGraph buffers matrix updates and evaluates reads against the hybrid
``(base ⊕ Δ+) ⊖ Δ−`` overlay.  Two ablation axes:

* **write buffering** — ``max_pending=1`` forces a CSR rebuild per edge
  (the naive arm); the default buffers the whole burst.
* **read path** — ``flush-on-read`` reproduces the seed's behaviour (every
  read calls ``synced()``, paying a full sort-merge rebuild whenever the
  matrix is dirty); ``flush-free`` reads the overlay view, whose cost
  scales with the pending deltas and the rows touched, not with nnz.

The interleaved workload plus the read-heavy/write-heavy sweep demonstrate
that flush-free reads win everywhere the seed's flush-on-read path paid a
rebuild, and win hardest when reads are frequent.
"""

import numpy as np
import pytest

from repro.graph.delta_matrix import DeltaMatrix

N = 2048
EDGES = 4000


@pytest.fixture(scope="module")
def edge_storm():
    rng = np.random.default_rng(3)
    return rng.integers(0, N, size=(EDGES, 2))


def _read_flush_free(m: DeltaMatrix, row: int) -> int:
    # overlay read: O(1) counter + a per-row delta merge, never flushes
    view = m.overlay()
    cols, _ = view.row(row)
    return view.nvals + len(cols)


def _read_flush_on_read(m: DeltaMatrix, row: int) -> int:
    # the seed's read path: sort-merge rebuild, then the row scan
    mat = m.synced()
    cols, _ = mat.row(row)
    return mat.nvals + len(cols)


_READ_PATHS = {"flush-free": _read_flush_free, "flush-on-read": _read_flush_on_read}


@pytest.mark.parametrize("max_pending", [1, 100, 100_000], ids=["flush-every", "flush-100", "buffer-all"])
def test_edge_insert_storm(benchmark, edge_storm, max_pending):
    def storm():
        m = DeltaMatrix(N, max_pending=max_pending)
        for i, j in edge_storm:
            m.add(int(i), int(j))
        return m.synced().nvals  # bulk-load epilogue: one explicit compaction
    benchmark.extra_info["max_pending"] = max_pending
    nnz = benchmark(storm)
    assert nnz > 0

@pytest.mark.parametrize("read_path", list(_READ_PATHS), ids=list(_READ_PATHS))
def test_interleaved_read_write(benchmark, edge_storm, read_path):
    """Mixed workload, a read every 50 writes.  The flush-free arm reads the
    overlay; the flush-on-read arm reproduces the seed's repeated O(nnz)
    CSR reconstructions."""
    read = _READ_PATHS[read_path]

    def mixed():
        m = DeltaMatrix(N, max_pending=100_000)
        total = 0
        for idx, (i, j) in enumerate(edge_storm):
            m.add(int(i), int(j))
            if idx % 50 == 49:
                total += read(m, int(i))
        return total

    benchmark.extra_info["read_path"] = read_path
    benchmark(mixed)


@pytest.mark.parametrize("reads_per_write", [0.2, 0.02], ids=["read-heavy", "write-heavy"])
@pytest.mark.parametrize("read_path", list(_READ_PATHS), ids=list(_READ_PATHS))
def test_mixed_ratio_sweep(benchmark, edge_storm, read_path, reads_per_write):
    """Read-heavy vs write-heavy sweep over both read paths.  Flush-free
    wins across the sweep; the gap widens as the read share grows because
    every flush-on-read rebuild costs O(nnz)."""
    read = _READ_PATHS[read_path]
    stride = max(1, int(round(1 / reads_per_write)))

    def mixed():
        m = DeltaMatrix(N, max_pending=100_000)
        total = 0
        for idx, (i, j) in enumerate(edge_storm):
            m.add(int(i), int(j))
            if idx % stride == stride - 1:
                total += read(m, int(i))
        return total

    benchmark.extra_info["read_path"] = read_path
    benchmark.extra_info["reads_per_write"] = reads_per_write
    benchmark(mixed)


@pytest.fixture(scope="module")
def preloaded_base():
    """A large flushed base — the paper's serving scenario: a bulk-loaded
    graph taking mixed single-edge traffic."""
    from repro.grblas import Matrix

    rng = np.random.default_rng(9)
    big_n = 4096
    src = rng.integers(0, big_n, 200_000)
    dst = rng.integers(0, big_n, 200_000)
    return big_n, Matrix.from_edges(src, dst, nrows=big_n), rng.integers(0, big_n, size=(2000, 2))


@pytest.mark.parametrize("read_path", list(_READ_PATHS), ids=list(_READ_PATHS))
def test_preloaded_mixed_traffic(benchmark, preloaded_base, read_path):
    """Mixed traffic against a 200k-entry base, a read every 10 writes.
    Here the seed's flush-on-read path pays an O(nnz) rebuild per dirty
    read while the overlay's cost tracks only the pending deltas — this is
    where the hybrid-matrix design earns its keep (≈60x on this shape)."""
    big_n, base, traffic = preloaded_base
    read = _READ_PATHS[read_path]

    def mixed():
        m = DeltaMatrix(big_n, max_pending=100_000)
        m.replace_base(base.dup())
        total = 0
        for idx, (i, j) in enumerate(traffic):
            m.add(int(i), int(j))
            if idx % 10 == 9:
                total += read(m, int(i))
        return total

    benchmark.extra_info["read_path"] = read_path
    benchmark(mixed)


def test_flush_free_beats_flush_on_read(edge_storm):
    """Hard check (no --benchmark needed): on a pre-loaded base — where the
    seed's flush-on-read path pays an O(nnz) rebuild per dirty read — the
    overlay read path must win outright (the gap is ~60x on this shape, so
    scheduler noise cannot invert the assertion), and reads must leave the
    delta buffers untouched."""
    import time

    from repro.grblas import Matrix

    rng = np.random.default_rng(17)
    base = Matrix.from_edges(rng.integers(0, N, 50_000), rng.integers(0, N, 50_000), nrows=N)
    traffic = edge_storm[:1000]

    def run(read) -> float:
        m = DeltaMatrix(N, max_pending=100_000)
        m.replace_base(base.dup())
        start = time.perf_counter()
        for idx, (i, j) in enumerate(traffic):
            m.add(int(i), int(j))
            if idx % 10 == 9:
                read(m, int(i))
        return time.perf_counter() - start

    run(_read_flush_free)  # warm-up
    flush_free = min(run(_read_flush_free) for _ in range(3))
    flush_on_read = min(run(_read_flush_on_read) for _ in range(3))
    assert flush_free * 2 < flush_on_read, (
        f"flush-free reads ({flush_free:.4f}s) must clearly beat flush-on-read "
        f"({flush_on_read:.4f}s)"
    )

    m = DeltaMatrix(N, max_pending=100_000)
    for i, j in edge_storm[:100]:
        m.add(int(i), int(j))
    assert m.dirty
    generation = m.generation
    _read_flush_free(m, 0)
    assert m.dirty, "the flush-free read path must not mutate delta state"
    assert m.generation == generation
