"""A2 — ablation of delta-matrix write buffering.

RedisGraph buffers matrix updates and flushes in bulk.  ``max_pending=1``
forces a CSR rebuild per edge (the naive arm); the default buffers the
whole burst.  The benchmark inserts an edge storm then runs one read
(which forces the flush), so both arms pay end-to-end cost.
"""

import numpy as np
import pytest

from repro.graph.delta_matrix import DeltaMatrix

N = 2048
EDGES = 4000


@pytest.fixture(scope="module")
def edge_storm():
    rng = np.random.default_rng(3)
    return rng.integers(0, N, size=(EDGES, 2))


@pytest.mark.parametrize("max_pending", [1, 100, 100_000], ids=["flush-every", "flush-100", "buffer-all"])
def test_edge_insert_storm(benchmark, edge_storm, max_pending):
    def storm():
        m = DeltaMatrix(N, max_pending=max_pending)
        for i, j in edge_storm:
            m.add(int(i), int(j))
        return m.synced().nvals  # the read forces the final flush

    benchmark.extra_info["max_pending"] = max_pending
    nnz = benchmark(storm)
    assert nnz > 0


def test_interleaved_read_write(benchmark, edge_storm):
    """Mixed workload: a read every 50 writes (forces periodic syncs)."""

    def mixed():
        m = DeltaMatrix(N, max_pending=100_000)
        total = 0
        for idx, (i, j) in enumerate(edge_storm):
            m.add(int(i), int(j))
            if idx % 50 == 49:
                total += m.nvals()
        return total

    benchmark(mixed)
