"""E4 — read throughput vs thread-pool size, plus the ISSUE 6 arms:
multi-client throughput against a live server and intra-query morsel
scaling on a scan-heavy aggregate.

One inter-query round = 40 one-hop queries pushed through the module
pool.  EXPERIMENTS.md discusses the GIL ceiling on absolute scaling;
the intra-query ≥2x assertion is therefore gated on having >= 4 cores
(on smaller machines the numbers are still recorded in extra_info).
"""

import os
import threading
import time

import pytest

from repro.bench.khop import pick_seeds
from repro.bench.throughput import run_throughput
from repro.datasets.loader import build_graphdb
from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer
from repro.rediskv.threadpool import ThreadPool


@pytest.fixture(scope="module")
def db_and_seeds(graph500):
    src, dst, n = graph500
    db = build_graphdb(src, dst, n)
    db.graph.flush_all()
    seeds = pick_seeds(src, n, 40, seed=9)
    return db, seeds


QUERY = "MATCH (s:V)-[:E*1..1]->(m) WHERE id(s) = $seed RETURN count(DISTINCT m)"


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_throughput_by_pool_size(benchmark, db_and_seeds, threads):
    db, seeds = db_and_seeds

    def burst():
        pool = ThreadPool(threads)
        jobs = [pool.submit(db.query, QUERY, {"seed": int(s)}) for s in seeds]
        for job in jobs:
            job.result(timeout=300)
        pool.shutdown()
        return len(jobs)

    benchmark.extra_info["threads"] = threads
    assert benchmark(burst) == len(seeds)


# ----------------------------------------------------------------------
# Multi-client arm: real TCP clients against a live server (io-threads
# parse/flush on two loops; the module pool runs the graph work).
# ----------------------------------------------------------------------
def test_multi_client_live_server(benchmark, db_and_seeds):
    db, seeds = db_and_seeds
    server = RedisLikeServer(
        port=0, config=GraphConfig(thread_count=4, io_threads=2)
    ).start()
    server.keyspace.set_graph("bench", db)
    n_clients = 4
    chunks = [seeds[i::n_clients] for i in range(n_clients)]

    def burst():
        replies = []
        errors = []

        def client_run(chunk):
            try:
                c = RedisClient(port=server.port)
                for s in chunk:
                    replies.append(
                        c.graph_ro_query("bench", QUERY.replace("$seed", str(int(s)))).scalar()
                    )
                c.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client_run, args=(ch,)) for ch in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors
        return len(replies)

    try:
        benchmark.extra_info["clients"] = n_clients
        benchmark.extra_info["io_threads"] = 2
        assert benchmark(burst) == len(seeds)
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Intra-query scaling arm: one scan-heavy aggregate, serial vs 4 morsel
# workers.  ISSUE 6 acceptance: >= 2x at 4 workers — asserted only where
# 4 real cores exist (the matmul kernels release the GIL; Python-bound
# portions cannot scale on fewer cores).
# ----------------------------------------------------------------------
SCAN_AGG = "MATCH (s:V)-[:E]->(t) RETURN count(t)"


def _timed_run(db, query, workers, morsel_size=512):
    cfg = db.graph.config
    cfg.parallel_workers, cfg.morsel_size = workers, morsel_size
    try:
        started = time.perf_counter()
        result = db.query(query)
        return time.perf_counter() - started, result
    finally:
        cfg.parallel_workers, cfg.morsel_size = 1, 2048


@pytest.mark.parametrize("workers", [1, 4])
def test_intra_query_scaling(benchmark, db_and_seeds, workers):
    db, _ = db_and_seeds
    _, reference = _timed_run(db, SCAN_AGG, workers=1)  # warm plan cache

    def run():
        _, result = _timed_run(db, SCAN_AGG, workers=workers)
        return result

    result = benchmark(run)
    benchmark.extra_info["parallel_workers"] = workers
    assert result.scalar() == reference.scalar()
    if workers > 1:
        assert result.stats.morsels >= 2  # the plan really partitioned


def test_intra_query_speedup_at_4_workers(benchmark, db_and_seeds):
    db, _ = db_and_seeds
    _, reference = _timed_run(db, SCAN_AGG, workers=1)  # warm

    def best_of(workers, rounds=3):
        times = []
        for _ in range(rounds):
            elapsed, result = _timed_run(db, SCAN_AGG, workers=workers)
            assert result.scalar() == reference.scalar()  # always: same answer
            times.append(elapsed)
        return min(times)

    serial_s = best_of(1)
    parallel_s = best_of(4)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["parallel_s"] = parallel_s
    benchmark.extra_info["speedup_4_workers"] = speedup
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark(lambda: _timed_run(db, SCAN_AGG, workers=4)[1])
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"intra-query speedup {speedup:.2f}x < 2x at 4 workers"
