"""E4 — read throughput vs thread-pool size (paper §II architecture claim).

One benchmark round = 40 one-hop queries pushed through the module pool.
EXPERIMENTS.md discusses the GIL ceiling on absolute scaling.
"""

import pytest

from repro.bench.khop import pick_seeds
from repro.bench.throughput import run_throughput
from repro.datasets.loader import build_graphdb
from repro.rediskv.threadpool import ThreadPool


@pytest.fixture(scope="module")
def db_and_seeds(graph500):
    src, dst, n = graph500
    db = build_graphdb(src, dst, n)
    db.graph.flush_all()
    seeds = pick_seeds(src, n, 40, seed=9)
    return db, seeds


QUERY = "MATCH (s:V)-[:E*1..1]->(m) WHERE id(s) = $seed RETURN count(DISTINCT m)"


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_throughput_by_pool_size(benchmark, db_and_seeds, threads):
    db, seeds = db_and_seeds

    def burst():
        pool = ThreadPool(threads)
        jobs = [pool.submit(db.query, QUERY, {"seed": int(s)}) for s in seeds]
        for job in jobs:
            job.result(timeout=300)
        pool.shutdown()
        return len(jobs)

    benchmark.extra_info["threads"] = threads
    assert benchmark(burst) == len(seeds)
