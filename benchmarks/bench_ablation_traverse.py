"""A1 — ablation of the algebraic traversal design.

Two knobs the paper's design argues for:

* **batching**: ConditionalTraverse multiplies a whole batch of source
  rows per matrix product.  batch=1 degrades to per-record products
  (pointer-chasing-with-matrices).  The knob is ``exec_batch_size``
  (which since ISSUE 5 batches the whole operator pipeline, traversal
  included; ``traverse_batch_size`` remains as a deprecated alias).
* **algebra vs adjacency**: the same 2-hop count through the matrix
  engine vs a per-row Python adjacency walk.
"""

import pytest

from repro.bench.khop import pick_seeds
from repro.datasets.loader import build_graphdb
from repro.graph.config import GraphConfig


@pytest.fixture(scope="module", params=[1, 8, 64], ids=["batch1", "batch8", "batch64"])
def db_with_batch(request, graph500):
    src, dst, n = graph500
    config = GraphConfig(node_capacity=max(1, n), exec_batch_size=request.param)
    db = build_graphdb(src, dst, n, config=config)
    db.graph.flush_all()
    return request.param, db


TWO_HOP = "MATCH (a:V)-[:E]->(b)-[:E]->(c) RETURN count(c)"


def test_traverse_batching(benchmark, db_with_batch):
    """2-hop path count over ~300 sources: batch size is the ablation."""
    batch, db = db_with_batch
    sub = "MATCH (a:V) WHERE id(a) < 300 WITH a MATCH (a)-[:E]->(b)-[:E]->(c) RETURN count(c)"
    benchmark.extra_info["batch_size"] = batch
    result = benchmark(lambda: db.query(sub).scalar())
    assert result >= 0


def test_algebraic_vs_python_walk(benchmark, graph500):
    """The same 2-hop neighborhood via raw Python adjacency — the 'no
    algebra' arm of the ablation (compare with batch64 above)."""
    src, dst, n = graph500
    adj = {}
    for s, d in zip(src.tolist(), dst.tolist()):
        adj.setdefault(s, []).append(d)

    def walk():
        total = 0
        for a in range(300):
            for b in adj.get(a, ()):
                total += len(adj.get(b, ()))
        return total

    benchmark(walk)
