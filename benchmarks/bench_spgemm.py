"""Kernel calibration — the ESC SpGEMM and masked BFS primitives against
scipy.sparse (a compiled CSR implementation).  Not a paper experiment; it
bounds how much of the engine gap is our Python kernels vs the algorithm.
"""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")

from repro.datasets import graph500_edges
from repro.grblas import Matrix, Vector, semiring, Mask
from repro.grblas.descriptor import Descriptor


@pytest.fixture(scope="module")
def pair():
    src, dst, n = graph500_edges(11, 8, seed=4)
    A = Matrix.from_edges(src, dst, nrows=n)
    S = scipy_sparse.csr_matrix(
        (np.ones(len(src)), (src, dst)), shape=(n, n), dtype=np.float64
    )
    S.sum_duplicates()
    return A, S


def test_esc_spgemm_plus_times(benchmark, pair):
    A, _ = pair
    Af = A.cast("FP64")
    C = benchmark(lambda: Af.mxm(Af, semiring.plus_times))
    assert C.nvals > 0


def test_scipy_csr_matmul(benchmark, pair):
    _, S = pair
    C = benchmark(lambda: S @ S)
    assert C.nnz > 0


def test_structural_any_pair(benchmark, pair):
    """The traversal semiring: structural kernels skip value arithmetic."""
    A, _ = pair
    C = benchmark(lambda: A.mxm(A, semiring.any_pair))
    assert C.nvals > 0


def test_masked_bfs_layer(benchmark, pair):
    """One BFS layer: vxm with complemented structural mask (pushdown path)."""
    A, _ = pair
    frontier = Vector.from_coo([0], None, size=A.nrows)
    visited = frontier.dup()
    desc = Descriptor(replace=True)

    def layer():
        return frontier.vxm(A, semiring.any_pair, mask=Mask(visited, complement=True, structure=True), desc=desc)

    out = benchmark(layer)
    assert out.nvals >= 0


def test_transpose(benchmark, pair):
    A, _ = pair
    T = benchmark(A.transpose)
    assert T.nvals == A.nvals
