"""Vectorized execution-engine ablation — batched vs row-at-a-time.

The same compiled plans run twice: once with ``exec_batch_size=1``
(exactly the old ``Iterator[Record]`` engine — every operator handles one
row per Python-level step) and once at the default batch granularity,
where scans emit id columns, the traversal keeps its matmul COO output
columnar, filters evaluate as numpy masks over one bulk property gather,
and aggregation group-bys factorize through ``np.unique``.

Arms (the graph is a 2 000-source × 50-fanout 1-hop neighborhood,
~100 000 traversal rows before filtering):

* ``filter_project`` — the headline: filter-heavy 1-hop returning
  property columns.  CI bar: batched >= 3x row-at-a-time (~10x measured;
  ``exec_batch_size=1`` gates every vectorized fast path off, so the
  baseline is the genuine scalar engine).
* ``return_handles`` — same filter but returning the node variable, so
  every surviving row pays lazy handle materialization on escape.
* ``aggregate`` — grouped count over the traversal (np.unique fast path).
* ``sort_topk`` — ORDER BY … LIMIT over the filtered stream.
"""

import numpy as np
import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

N_SRC = 2_000
N_DST = 5_000
FANOUT = 50
DEFAULT_BATCH = 1_024

FILTER_PROJECT = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) "
    "WHERE b.age > 30 AND b.age < 70 RETURN a.age, b.age"
)
RETURN_HANDLES = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) "
    "WHERE b.age > 30 AND b.age < 70 RETURN a, b.age"
)
AGGREGATE = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, count(b)"
SORT_TOPK = (
    "MATCH (a:Person)-[:KNOWS]->(b:Person) "
    "WHERE b.age > 30 RETURN b.age ORDER BY b.age DESC LIMIT 100"
)

ARMS = {
    "filter_project": FILTER_PROJECT,
    "return_handles": RETURN_HANDLES,
    "aggregate": AGGREGATE,
    "sort_topk": SORT_TOPK,
}


@pytest.fixture(scope="module")
def db():
    d = GraphDB("bench-exec-engine", GraphConfig(node_capacity=8192))
    g = d.graph
    rng = np.random.default_rng(42)
    with g.lock.write():
        src_ids = g.bulk_load_nodes(
            N_SRC,
            label="Person",
            properties={"age": rng.integers(18, 80, N_SRC).tolist()},
        )
        dst_ids = g.bulk_load_nodes(
            N_DST,
            label="Person",
            properties={"age": rng.integers(18, 80, N_DST).tolist()},
        )
        g.bulk_load_edges(
            np.repeat(src_ids, FANOUT),
            rng.choice(dst_ids, size=N_SRC * FANOUT),
            "KNOWS",
        )
    return d


def run_query(db, query, batch_size):
    db.graph.config.exec_batch_size = batch_size
    try:
        return len(db.query(query))
    finally:
        db.graph.config.exec_batch_size = DEFAULT_BATCH


@pytest.mark.parametrize("arm", sorted(ARMS))
@pytest.mark.parametrize("mode", ["row", "batched"])
def test_exec_engine(benchmark, db, arm, mode):
    query = ARMS[arm]
    batch_size = 1 if mode == "row" else DEFAULT_BATCH
    run_query(db, query, batch_size)  # prime the plan cache
    benchmark.extra_info["arm"] = arm
    benchmark.extra_info["mode"] = mode
    rows = benchmark(run_query, db, query, batch_size)
    assert rows > 0


def test_differential_rowcounts(db):
    """Both engines agree on every arm's cardinality (the bench-level
    slice of the differential net in tests/execplan)."""
    for arm, query in ARMS.items():
        assert run_query(db, query, 1) == run_query(db, query, DEFAULT_BATCH), arm


def test_batched_speedup_headline(db):
    """The acceptance check itself (runs even with --benchmark-disable):
    batched execution >= 3x row-at-a-time on the filter-heavy ~100k-row
    1-hop arm (ISSUE-5 CI bar; target 5x).

    Best-of-3 with min-time per side so a GC pause on a noisy CI box
    cannot fake a regression; REPRO_BENCH_EXEC_SPEEDUP_MIN overrides."""
    import os
    import time

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    run_query(db, FILTER_PROJECT, 1)  # prime
    row = best_of(3, lambda: run_query(db, FILTER_PROJECT, 1))
    batched = best_of(3, lambda: run_query(db, FILTER_PROJECT, DEFAULT_BATCH))
    speedup = row / batched
    floor = float(os.environ.get("REPRO_BENCH_EXEC_SPEEDUP_MIN", "3"))
    print(
        f"\nexec-engine speedup (filter_project): row={row:.4f}s "
        f"batched={batched:.4f}s -> {speedup:.1f}x"
    )
    assert speedup >= floor, f"batched only {speedup:.1f}x faster (need >= {floor}x)"
