"""IVF vector-search ablation — partitioned top-k vs the exact flat scan.

The workload is ~200k :Doc nodes carrying 64-d embeddings drawn from a
mixture of clusters (the regime IVF partitioning serves: coarse-quantizer
buckets approximate the clusters, so a handful of probes recovers the
true neighbours).  The same top-k query runs through two indexes over the
same rows: one trained IVF index (nlist ~ sqrt(N), default nprobe) and
one pinned ``exact: true`` (PR 9's brute-force matmul, the oracle).

The acceptance bar (asserted even under ``--benchmark-disable``): the IVF
query is >= 5x faster than the exact scan, and recall@10 against the
exact answer stays >= 0.95 averaged over a seeded query batch.
``REPRO_BENCH_VECTOR_SPEEDUP_MIN`` / ``REPRO_BENCH_VECTOR_RECALL_MIN``
override the floors; measured speedup and recall land in the benchmark
JSON artifact via ``extra_info``.  The ``exact: true`` arm is also
asserted byte-identical (ids and scores) to an independent numpy oracle.
"""

import os
import time

import numpy as np
import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig
from repro.graph.index import VectorIndex

VEC_N = int(os.environ.get("REPRO_BENCH_VECTOR_N", "200000"))
VEC_DIM = int(os.environ.get("REPRO_BENCH_VECTOR_DIM", "64"))
VEC_K = 10
N_CLUSTERS = 64
N_QUERIES = 20


def clustered_vectors(rng, n, dim):
    """Rows around N_CLUSTERS random unit directions + noise."""
    centers = rng.normal(size=(N_CLUSTERS, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assign = rng.integers(0, N_CLUSTERS, size=n)
    return centers[assign] + 0.15 * rng.normal(size=(n, dim)), centers


@pytest.fixture(scope="module")
def vec_db():
    d = GraphDB("bench-ivf", GraphConfig(node_capacity=1024))
    rng = np.random.default_rng(17)
    vecs, centers = clustered_vectors(rng, VEC_N, VEC_DIM)
    d.bulk_insert(
        nodes=[{
            "labels": ("Doc",),
            "count": VEC_N,
            "properties": {"emb": [row.tolist() for row in vecs]},
        }],
        edges=[],
    )
    d.query(f"CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {{dimension: {VEC_DIM}}}")
    ivf = d.graph.get_vector_index("Doc", "emb")
    assert ivf.trained, "bulk load past vector_train_min must train the quantizer"
    # the exact arm: a standalone `exact: true` index over the same rows —
    # PR 9's flat brute-force path, the timing baseline and answer oracle
    exact = VectorIndex(0, 10, dim=VEC_DIM, exact=True)
    exact.bulk_insert([row.tolist() for row in vecs], list(range(VEC_N)))
    # queries near cluster centers — the realistic ANN lookup pattern
    queries = [
        (centers[i % N_CLUSTERS] + 0.1 * rng.normal(size=VEC_DIM)).tolist()
        for i in range(N_QUERIES)
    ]
    return d, vecs, exact, queries


def brute_force_topk(vecs: np.ndarray, q, k: int):
    """Independent numpy oracle: normalize, matmul, lexsort with id
    tie-break."""
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    unit = np.divide(vecs, norms, out=np.zeros_like(vecs), where=norms > 0)
    qv = np.asarray(q, dtype=np.float64)
    qn = float(np.linalg.norm(qv))
    if qn > 0:
        qv = qv / qn
    scores = unit @ qv
    order = np.lexsort((np.arange(len(vecs)), -scores))[:k]
    return order.tolist(), scores[order]


def recall_at_k(ivf_ids, exact_ids):
    return len(set(int(i) for i in ivf_ids) & set(int(i) for i in exact_ids)) / max(
        1, len(exact_ids)
    )


def test_exact_arm_matches_oracle_bit_for_bit(vec_db):
    """``exact: true`` must reproduce the brute-force scan exactly — the
    IVF arm is measured against a trusted baseline, not a drifted one."""
    d, vecs, exact, queries = vec_db
    for q in queries[:5]:
        exact_ids, exact_scores = exact.query(q, VEC_K)
        oracle_ids, oracle_scores = brute_force_topk(vecs, q, VEC_K)
        assert [int(i) for i in exact_ids] == oracle_ids
        assert np.allclose(exact_scores, oracle_scores)


def test_ivf_topk(benchmark, vec_db):
    d, vecs, exact, queries = vec_db
    ivf = d.graph.get_vector_index("Doc", "emb")
    benchmark.extra_info["vectors"] = VEC_N
    benchmark.extra_info["dim"] = VEC_DIM
    benchmark.extra_info["nlist"] = ivf.nlist
    benchmark.extra_info["nprobe"] = ivf.nprobe
    benchmark(ivf.query, queries[0], VEC_K)


def test_ivf_speedup_and_recall_headline(benchmark, vec_db):
    """The acceptance check: IVF top-k >= 5x faster than the exact flat
    scan at 200k x 64d, with recall@10 >= 0.95 over the query batch."""
    d, vecs, exact, queries = vec_db
    ivf = d.graph.get_vector_index("Doc", "emb")

    recalls = []
    for q in queries:
        ivf_ids, _ = ivf.query(q, VEC_K)
        exact_ids, _ = brute_force_topk(vecs, q, VEC_K)
        recalls.append(recall_at_k(ivf_ids, exact_ids))
    recall = float(np.mean(recalls))

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def run_batch(index):
        for q in queries:
            index.query(q, VEC_K)

    exact_s = best_of(3, lambda: run_batch(exact))
    ivf_s = best_of(3, lambda: run_batch(ivf))
    speedup = exact_s / ivf_s

    benchmark.extra_info["vectors"] = VEC_N
    benchmark.extra_info["dim"] = VEC_DIM
    benchmark.extra_info["nlist"] = ivf.nlist
    benchmark.extra_info["nprobe"] = ivf.nprobe
    benchmark.extra_info["exact_s"] = round(exact_s, 6)
    benchmark.extra_info["ivf_s"] = round(ivf_s, 6)
    benchmark.extra_info["ivf_speedup"] = round(speedup, 2)
    benchmark.extra_info["recall_at_10"] = round(recall, 4)
    benchmark(run_batch, ivf)

    speedup_floor = float(os.environ.get("REPRO_BENCH_VECTOR_SPEEDUP_MIN", "5"))
    recall_floor = float(os.environ.get("REPRO_BENCH_VECTOR_RECALL_MIN", "0.95"))
    print(
        f"\nivf top-k ({VEC_N} x {VEC_DIM}d, nlist={ivf.nlist}, nprobe={ivf.nprobe}, "
        f"{N_QUERIES} queries): exact={exact_s:.4f}s ivf={ivf_s:.4f}s "
        f"-> {speedup:.1f}x, recall@{VEC_K}={recall:.3f}"
    )
    assert speedup >= speedup_floor, (
        f"IVF only {speedup:.1f}x faster than exact (need >= {speedup_floor}x)"
    )
    assert recall >= recall_floor, (
        f"recall@{VEC_K} {recall:.3f} below {recall_floor}"
    )


def test_ivf_via_procedure(benchmark, vec_db):
    d, vecs, exact, queries = vec_db
    q = queries[0]
    call = (
        "CALL db.idx.vector.query('Doc', 'emb', $q, $k) "
        "YIELD node, score RETURN id(node)"
    )
    rows = d.query(call, {"q": q, "k": VEC_K}).rows
    exact_ids, _ = brute_force_topk(vecs, q, VEC_K)
    assert recall_at_k([r[0] for r in rows], exact_ids) >= 0.8  # single query
    benchmark(lambda: d.query(call, {"q": q, "k": VEC_K}).rows)
