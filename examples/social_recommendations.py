#!/usr/bin/env python
"""Real-time recommendations over a social network (paper §I use case).

Uses the LDBC-lite generator, then answers the classic recommendation
queries — all of which compile to algebraic traversals:

* friends-of-friends who aren't already friends (triadic closure),
* posts liked by my friends that I haven't liked,
* the most-connected people per city (aggregation + ordering).

Run:  python examples/social_recommendations.py
"""

from repro.datasets import ldbc_lite


def main() -> None:
    db = ldbc_lite(persons=80, seed=11)
    print(f"graph: {db.graph.node_count} nodes, {db.graph.edge_count} edges")

    who = db.query("MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 1").scalar()
    print(f"\nrecommendations for {who}:")

    # friend-of-friend, excluding existing friends and self
    foaf = db.query(
        """
        MATCH (me:Person {name: $who})-[:KNOWS]->(friend)-[:KNOWS]->(fof)
        WHERE fof.name <> $who AND NOT exists(fof.hidden)
        OPTIONAL MATCH (me)-[k:KNOWS]->(fof)
        WITH fof, count(friend) AS mutuals, collect(k)[0] AS already
        WHERE already IS NULL
        RETURN fof.name AS suggestion, mutuals
        ORDER BY mutuals DESC, suggestion
        LIMIT 5
        """,
        {"who": who},
    )
    print("  people you may know (by mutual friends):")
    for name, mutuals in foaf:
        print(f"    {name}  ({mutuals} mutual)")

    # posts my friends liked that I haven't interacted with
    posts = db.query(
        """
        MATCH (me:Person {name: $who})-[:KNOWS]->(:Person)-[:LIKES]->(post:Post)
        WITH DISTINCT post, count(*) AS friend_likes
        RETURN post.topic AS topic, friend_likes
        ORDER BY friend_likes DESC, topic
        LIMIT 5
        """,
        {"who": who},
    )
    print("  posts trending among your friends:")
    for topic, likes in posts:
        print(f"    topic={topic}  liked by {likes} friend(s)")

    # community influencers: in-degree of KNOWS per city
    influencers = db.query(
        """
        MATCH (p:Person)<-[:KNOWS]-(follower:Person)
        RETURN p.city AS city, p.name AS name, count(follower) AS followers
        ORDER BY followers DESC
        LIMIT 5
        """
    )
    print("\nmost-followed people:")
    for city, name, followers in influencers:
        print(f"  {name} ({city}): {followers} followers")

    # 2-hop reach distribution: the k-hop benchmark's query as analytics
    reach = db.query(
        """
        MATCH (p:Person)-[:KNOWS*1..2]->(other:Person)
        RETURN p.name AS name, count(DISTINCT other) AS reach
        ORDER BY reach DESC LIMIT 3
        """
    )
    print("\nwidest 2-hop reach:")
    for name, r in reach:
        print(f"  {name}: {r} people")


if __name__ == "__main__":
    main()
