#!/usr/bin/env python
"""Quickstart: the embedded graph database in five minutes.

Creates a small property graph with Cypher, traverses it (the traversals
run as sparse matrix products underneath), inspects the execution plan,
and shows updates, aggregation and indexes.

Run:  python examples/quickstart.py
"""

from repro import GraphDB


def main() -> None:
    db = GraphDB("quickstart")

    # -- create a small social graph -----------------------------------
    db.query(
        """
        CREATE (ann:Person {name: 'Ann', age: 30}),
               (bo:Person  {name: 'Bo',  age: 25}),
               (cy:Person  {name: 'Cy',  age: 35}),
               (di:Person  {name: 'Di',  age: 28}),
               (ann)-[:KNOWS {since: 2019}]->(bo),
               (ann)-[:KNOWS {since: 2020}]->(cy),
               (bo)-[:KNOWS  {since: 2021}]->(cy),
               (cy)-[:KNOWS  {since: 2018}]->(di)
        """
    )
    print(f"graph: {db.graph.node_count} nodes, {db.graph.edge_count} edges")

    # -- traverse -------------------------------------------------------
    result = db.query(
        "MATCH (a:Person {name: 'Ann'})-[:KNOWS]->(friend) "
        "RETURN friend.name AS name, friend.age AS age ORDER BY age"
    )
    print("\nAnn's friends:")
    for name, age in result:
        print(f"  {name} ({age})")

    # -- the plan: traversal is linear algebra --------------------------
    print("\nexecution plan for a 2-hop query:")
    print(db.explain("MATCH (a:Person {name:'Ann'})-[:KNOWS*1..2]->(x) RETURN count(DISTINCT x)"))

    two_hop = db.query(
        "MATCH (a:Person {name:'Ann'})-[:KNOWS*1..2]->(x) RETURN count(DISTINCT x)"
    ).scalar()
    print(f"\npeople within 2 hops of Ann: {two_hop}")

    # -- aggregate ------------------------------------------------------
    rows = db.query(
        "MATCH (p:Person)-[:KNOWS]->(f) RETURN p.name AS who, count(f) AS friends "
        "ORDER BY friends DESC, who"
    )
    print("\nout-degree table:")
    for who, friends in rows:
        print(f"  {who}: {friends}")

    # -- update + index ---------------------------------------------------
    db.query("CREATE INDEX ON :Person(name)")
    db.query("MATCH (p:Person {name: 'Bo'}) SET p.age = 26")
    print("\nafter SET (via index scan):",
          db.query("MATCH (p:Person {name: 'Bo'}) RETURN p.age").scalar())

    # -- parameters -------------------------------------------------------
    young = db.query(
        "MATCH (p:Person) WHERE p.age < $limit RETURN collect(p.name)", {"limit": 30}
    ).scalar()
    print("under 30:", sorted(young))


if __name__ == "__main__":
    main()
