#!/usr/bin/env python
"""A miniature run of the paper's benchmark (Fig. 1 + k-hop table).

Generates small Graph500 and Twitter-like graphs, runs the four engines
over k = 1, 2, 3, 6 and prints the table, the log-scale chart and the
paper-claim verdicts.  For larger runs use the CLI:

    python -m repro.bench all --scale 15 --twitter-n 32768

Run:  python examples/khop_benchmark.py
"""

from repro.bench import BenchmarkSuite, DatasetSpec, make_engines
from repro.bench.paper import check_claims
from repro.bench.report import format_fig1_chart, format_table


def main() -> None:
    datasets = [
        DatasetSpec.graph500(scale=12, edge_factor=16, seed=1),
        DatasetSpec.twitter(n=1 << 13, edge_factor=20, seed=2),
    ]
    suite = BenchmarkSuite(datasets, make_engines(), hops=[1, 2, 3, 6], seed_fraction=0.05)
    measurements = suite.run()

    print()
    print(format_table(measurements, title="k-hop single-request response time (scaled-down)"))
    print(format_fig1_chart(measurements))
    print("paper-claim verdicts:")
    for check in check_claims(measurements):
        print("  " + check.line())
    print(
        "\nnote: the mechanism gap (C1) grows with graph size; this example uses"
        "\ntiny graphs for speed. Run `python -m repro.bench claims` for the"
        "\nfull-scale (about 1M-edge) measurement used in EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
