#!/usr/bin/env python
"""Client/server round trip: the Redis-module deployment shape.

Starts the single-threaded server with a 4-thread graph pool (paper §II),
connects a RESP client over TCP, creates a graph with GRAPH.QUERY, runs
reads — including concurrent reads from several client threads — and
shows GRAPH.EXPLAIN / INFO.

Run:  python examples/server_client.py
"""

import threading
import time

from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer


def main() -> None:
    server = RedisLikeServer(port=0, config=GraphConfig(thread_count=4)).start()
    time.sleep(0.05)
    print(f"server on {server.host}:{server.port}, pool={server.pool.size} threads")

    with RedisClient(port=server.port) as client:
        print("PING ->", client.ping())

        client.graph_query(
            "flights",
            "CREATE (:City {name:'SFO'})-[:ROUTE {km: 4100}]->(:City {name:'JFK'}),"
            " (:City {name:'LAX'})-[:ROUTE {km: 3980}]->(:City {name:'JFK'})",
        )
        result = client.graph_query(
            "flights",
            "MATCH (a:City)-[r:ROUTE]->(b:City) RETURN a.name, b.name, r.km ORDER BY r.km",
        )
        print("\nroutes:")
        for row in result.rows:
            print("  ", row)
        print("stats:", result.statistics[:2])

        print("\nGRAPH.EXPLAIN:")
        for line in client.graph_explain("flights", "MATCH (a:City)-[:ROUTE]->(b) RETURN b"):
            print("  " + line)

        print("\nINFO:", client.info())

    # concurrent readers: each query runs on one pool thread
    def reader(i: int, results: list) -> None:
        with RedisClient(port=server.port) as c:
            r = c.graph_query("flights", "MATCH (a:City) RETURN count(a)")
            results.append((i, r.scalar()))

    results: list = []
    threads = [threading.Thread(target=reader, args=(i, results)) for i in range(6)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = (time.perf_counter() - started) * 1e3
    print(f"\n6 concurrent readers finished in {elapsed:.1f} ms:", sorted(results))

    server.stop()
    print("server stopped")


if __name__ == "__main__":
    main()
