#!/usr/bin/env python
"""Fraud-ring detection over a payments graph (paper §I use case).

Builds accounts/devices/transactions, then hunts fraud patterns whose
traversals are matrix products:

* money cycles (A pays B pays C pays A) via a closed 3-hop pattern,
* device sharing: many accounts operating through one device,
* fan-out bursts: mule accounts dispersing to many counterparties,
* guilt-by-association: accounts within 2 hops of a flagged account.

Run:  python examples/fraud_detection.py
"""

import numpy as np

from repro import GraphDB
from repro.graph.config import GraphConfig


def build_payments_graph(db: GraphDB, accounts: int = 60, seed: int = 13) -> None:
    rng = np.random.default_rng(seed)
    db.query("UNWIND range(0, $n - 1) AS i CREATE (:Account {id: i})", {"n": accounts})
    db.query("UNWIND range(0, $n - 1) AS i CREATE (:Device {id: i})", {"n": accounts // 4})

    # background traffic
    for _ in range(accounts * 3):
        a, b = rng.integers(0, accounts, 2)
        if a == b:
            continue
        db.query(
            "MATCH (x:Account {id: $a}), (y:Account {id: $b}) "
            "CREATE (x)-[:PAYS {amount: $amt}]->(y)",
            {"a": int(a), "b": int(b), "amt": float(rng.integers(5, 500))},
        )
    # planted ring: 7 -> 8 -> 9 -> 7
    for a, b in [(7, 8), (8, 9), (9, 7)]:
        db.query(
            "MATCH (x:Account {id: $a}), (y:Account {id: $b}) "
            "CREATE (x)-[:PAYS {amount: 9999.0}]->(y)",
            {"a": a, "b": b},
        )
    # device sharing: accounts 20..24 share device 3
    for a in range(20, 25):
        db.query(
            "MATCH (x:Account {id: $a}), (d:Device {id: 3}) CREATE (x)-[:USES]->(d)",
            {"a": a},
        )
    # everyone else uses a random device
    for a in range(accounts):
        if 20 <= a < 25:
            continue
        db.query(
            "MATCH (x:Account {id: $a}), (d:Device {id: $d}) CREATE (x)-[:USES]->(d)",
            {"a": int(a), "d": int(rng.integers(0, accounts // 4))},
        )
    # flag one ring member
    db.query("MATCH (x:Account {id: 7}) SET x:Flagged")


def main() -> None:
    db = GraphDB("fraud", GraphConfig(node_capacity=256))
    build_payments_graph(db)
    print(f"graph: {db.graph.node_count} nodes, {db.graph.edge_count} edges")

    rings = db.query(
        """
        MATCH (a:Account)-[p1:PAYS]->(b:Account)-[p2:PAYS]->(c:Account), (c)-[p3:PAYS]->(a)
        WHERE p1.amount > 1000 AND p2.amount > 1000 AND p3.amount > 1000
          AND id(a) < id(b) AND id(b) < id(c)
        RETURN a.id, b.id, c.id, p1.amount + p2.amount + p3.amount AS volume
        """
    )
    print("\nhigh-value payment cycles (length 3):")
    for a, b, c, volume in rings:
        print(f"  ring {a} -> {b} -> {c} -> {a}, volume {volume:.0f}")

    shared = db.query(
        """
        MATCH (a:Account)-[:USES]->(d:Device)
        WITH d, collect(a.id) AS accounts, count(a) AS n
        WHERE n >= 4
        RETURN d.id AS device, n, accounts ORDER BY n DESC
        """
    )
    print("\nsuspicious device sharing (>= 4 accounts on one device):")
    for device, n, accounts in shared:
        print(f"  device {device}: {n} accounts {sorted(accounts)}")

    fanout = db.query(
        """
        MATCH (a:Account)-[:PAYS]->(t:Account)
        WITH a, count(DISTINCT t) AS counterparties
        WHERE counterparties >= 8
        RETURN a.id AS account, counterparties ORDER BY counterparties DESC LIMIT 5
        """
    )
    print("\nfan-out accounts (>= 8 distinct counterparties):")
    for account, n in fanout:
        print(f"  account {account}: pays {n} counterparties")

    near = db.query(
        """
        MATCH (f:Flagged)-[:PAYS*1..2]->(risky:Account)
        RETURN count(DISTINCT risky) AS exposed
        """
    ).scalar()
    print(f"\naccounts within 2 payment hops of a flagged account: {near}")


if __name__ == "__main__":
    main()
