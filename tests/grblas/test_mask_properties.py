"""Property-based verification of the GraphBLAS write semantics
(mask × complement × structural × replace × accumulate) against a
brute-force dense reference, plus pushdown-equivalence checks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grblas import FP64, Mask, Matrix, Vector, binary, semiring
from repro.grblas.descriptor import Descriptor

from tests.helpers import matrix_and_pattern, matrix_dense_and_pattern, ref_mxm


@st.composite
def mask_setup(draw, shape):
    """A random mask matrix (with some False values stored) + flags."""
    pattern = draw(arrays(np.bool_, shape))
    values = draw(arrays(np.bool_, shape)) & pattern  # stored value may be False
    rows, cols = np.nonzero(pattern)
    M = Matrix.from_coo(rows, cols, values[rows, cols], nrows=shape[0], ncols=shape[1], dtype=bool)
    complement = draw(st.booleans())
    structural = draw(st.booleans())
    replace = draw(st.booleans())
    return M, pattern, values, complement, structural, replace


class TestMaskedMxmProperty:
    @given(st.data())
    def test_masked_accum_write_matches_reference(self, data):
        A, Ad, Ap = data.draw(matrix_and_pattern(max_dim=4))
        n = data.draw(st.integers(1, 4))
        Bp = data.draw(arrays(np.bool_, (A.ncols, n)))
        Bv = data.draw(arrays(np.int64, (A.ncols, n), elements=st.integers(1, 5))).astype(np.float64) * Bp
        rows, cols = np.nonzero(Bp)
        B = Matrix.from_coo(rows, cols, Bv[rows, cols], nrows=A.ncols, ncols=n, dtype=FP64)

        M, m_pattern, m_values, complement, structural, replace = data.draw(
            mask_setup((A.nrows, n))
        )
        use_accum = data.draw(st.booleans())
        # existing output content
        Cp = data.draw(arrays(np.bool_, (A.nrows, n)))
        Cv = data.draw(arrays(np.int64, (A.nrows, n), elements=st.integers(10, 15))).astype(np.float64) * Cp
        c_rows, c_cols = np.nonzero(Cp)
        C0 = Matrix.from_coo(c_rows, c_cols, Cv[c_rows, c_cols], nrows=A.nrows, ncols=n, dtype=FP64)

        got = A.mxm(
            B,
            semiring.plus_times,
            mask=Mask(M, complement=complement, structure=structural),
            accum=binary.plus if use_accum else None,
            desc=Descriptor(replace=replace),
            out=C0.dup(),
        )

        # ---- brute-force reference ----
        t_dense, t_present = ref_mxm(Ad, Ap, Bv, Bp, semiring.plus_times)
        if use_accum:
            z_dense = np.where(Cp & t_present, Cv + t_dense, np.where(Cp, Cv, t_dense))
            z_present = Cp | t_present
        else:
            z_dense, z_present = t_dense, t_present
        writable = m_pattern if structural else (m_pattern & m_values)
        if complement:
            writable = ~writable
        out_present = (z_present & writable) | (Cp & ~writable & (not replace))
        out_dense = np.where(z_present & writable, z_dense, Cv)

        gd, gp = matrix_dense_and_pattern(got)
        assert np.array_equal(gp, out_present)
        assert np.allclose(gd[out_present], out_dense[out_present])


class TestVxmPushdownEquivalence:
    """The masked-kernel pushdown (fast BFS path) must be observationally
    identical to the generic post-multiply masking."""

    @given(st.data())
    def test_pushdown_matches_generic(self, data):
        n = data.draw(st.integers(2, 8))
        Ap = data.draw(arrays(np.bool_, (n, n)))
        rows, cols = np.nonzero(Ap)
        A = Matrix.from_edges(rows, cols, nrows=n)
        v_idx = data.draw(st.lists(st.integers(0, n - 1), min_size=1, unique=True))
        v = Vector.from_coo(sorted(v_idx), None, size=n)
        m_idx = data.draw(st.lists(st.integers(0, n - 1), unique=True))
        visited = Vector.from_coo(sorted(m_idx), None, size=n)

        fast = v.vxm(
            A,
            semiring.any_pair,
            mask=Mask(visited, complement=True, structure=True),
            desc=Descriptor(replace=True),
        )
        # generic path: compute unmasked, then subtract the visited set
        unmasked = v.vxm(A, semiring.any_pair)
        expected = sorted(set(unmasked.indices.tolist()) - set(visited.indices.tolist()))
        assert fast.indices.tolist() == expected

    def test_pushdown_not_applied_with_accum(self):
        """With an accumulator the generic path must be taken and old
        values preserved outside the mask."""
        A = Matrix.from_edges([0, 1], [1, 0], nrows=2)
        v = Vector.from_coo([0], None, size=2)
        visited = Vector.from_coo([1], None, size=2)
        out = Vector.from_coo([0], [True], size=2, dtype=bool)
        got = v.vxm(
            A,
            semiring.any_pair,
            mask=Mask(visited, complement=True, structure=True),
            accum=binary.lor,
            out=out,
        )
        # target (1) is masked away; existing entry at 0 stays via accum
        assert got[0] is not None


class TestEmptyMaskCorners:
    def test_empty_mask_blocks_everything(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.new(bool, 2, 2)  # no stored entries
        C = A.mxm(A, semiring.plus_times, mask=M)
        assert C.nvals == 0

    def test_empty_complement_mask_allows_everything(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.new(bool, 2, 2)
        C = A.mxm(A, semiring.plus_times, mask=Mask(M, complement=True))
        assert C.nvals == 4

    def test_mask_invert_operator(self):
        M = Mask(Matrix.new(bool, 2, 2))
        assert (~M).complement and not (~~M).complement
