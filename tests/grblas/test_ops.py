"""Unit tests for unary/binary operator semantics."""

import numpy as np
import pytest

from repro.errors import DomainMismatch
from repro.grblas import binary, unary


class TestUnary:
    def test_identity_copies(self):
        x = np.array([1, 2, 3])
        out = unary.identity(x)
        assert np.array_equal(out, x)
        out[0] = 99
        assert x[0] == 1

    def test_ainv(self):
        assert np.array_equal(unary.ainv(np.array([1, -2])), [-1, 2])

    def test_minv_float(self):
        assert np.allclose(unary.minv(np.array([2.0, 4.0])), [0.5, 0.25])

    def test_minv_integer_zero_safe(self):
        out = unary.minv(np.array([0, 1, 2], dtype=np.int64))
        assert np.array_equal(out, [0, 1, 0])

    def test_lnot(self):
        out = unary.lnot(np.array([True, False]))
        assert out.dtype == np.bool_
        assert np.array_equal(out, [False, True])

    def test_one(self):
        assert np.array_equal(unary.one(np.array([5, 7])), [1, 1])

    def test_abs(self):
        assert np.array_equal(unary.abs(np.array([-3, 4])), [3, 4])

    def test_unknown_raises(self):
        with pytest.raises(DomainMismatch):
            unary["frobnicate"]


class TestBinaryArithmetic:
    def test_plus(self):
        assert np.array_equal(binary.plus(np.array([1, 2]), np.array([3, 4])), [4, 6])

    def test_minus(self):
        assert np.array_equal(binary.minus(np.array([5]), np.array([3])), [2])

    def test_times(self):
        assert np.array_equal(binary.times(np.array([2, 3]), np.array([4, 5])), [8, 15])

    def test_div_float(self):
        assert np.allclose(binary.div(np.array([1.0]), np.array([4.0])), [0.25])

    def test_div_integer_zero_safe(self):
        out = binary.div(np.array([6, 7]), np.array([2, 0]))
        assert np.array_equal(out, [3, 0])

    def test_min_max(self):
        a, b = np.array([1, 9]), np.array([5, 2])
        assert np.array_equal(binary.min(a, b), [1, 2])
        assert np.array_equal(binary.max(a, b), [5, 9])


class TestBinaryPositional:
    def test_first_second(self):
        a, b = np.array([1, 2]), np.array([8, 9])
        assert np.array_equal(binary.first(a, b), a)
        assert np.array_equal(binary.second(a, b), b)
        assert binary.first.positional == "first"
        assert binary.second.positional == "second"

    def test_pair_is_one(self):
        out = binary.pair(np.array([7, 7]), np.array([9, 9]))
        assert np.array_equal(out, [1, 1])
        assert binary.pair.positional == "one"

    def test_any_picks_deterministically(self):
        a, b = np.array([4]), np.array([6])
        assert binary.any(a, b)[0] in (4, 6)


class TestBinaryComparison:
    def test_result_type_is_bool(self):
        for name in ("eq", "ne", "lt", "gt", "le", "ge"):
            assert binary[name].result_type.name == "BOOL"

    def test_eq(self):
        assert np.array_equal(binary.eq(np.array([1, 2]), np.array([1, 3])), [True, False])

    def test_lt(self):
        assert np.array_equal(binary.lt(np.array([1, 5]), np.array([2, 2])), [True, False])


class TestBinaryLogical:
    def test_lor_casts_to_bool(self):
        out = binary.lor(np.array([0, 2]), np.array([0, 0]))
        assert out.dtype == np.bool_
        assert np.array_equal(out, [False, True])

    def test_land(self):
        assert np.array_equal(binary.land(np.array([1, 1]), np.array([0, 3])), [False, True])

    def test_lxor(self):
        assert np.array_equal(binary.lxor(np.array([1, 1]), np.array([0, 1])), [True, False])

    def test_ufunc_attached_for_reduceat(self):
        assert binary.plus.ufunc is np.add
        assert binary.lor.ufunc is np.logical_or
