"""eWiseAdd (union) / eWiseMult (intersection) vs dense references."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DimensionMismatch
from repro.grblas import FP64, Matrix, Vector, binary, semiring

from tests.helpers import (
    matrix_and_pattern,
    matrix_dense_and_pattern,
    ref_ewise_add,
    ref_ewise_mult,
    vector_dense_and_pattern,
)

OPS = ["plus", "times", "min", "max", "first", "second"]


@st.composite
def same_shape_pair(draw):
    A, Ad, Ap = draw(matrix_and_pattern(max_dim=4))
    Bp = draw(arrays(np.bool_, Ap.shape))
    Bv = draw(arrays(np.int64, Ap.shape, elements=st.integers(1, 5))).astype(np.float64) * Bp
    rows, cols = np.nonzero(Bp)
    B = Matrix.from_coo(rows, cols, Bv[rows, cols], nrows=Ap.shape[0], ncols=Ap.shape[1], dtype=FP64)
    return A, Ad, Ap, B, Bv, Bp


class TestEwiseAdd:
    @pytest.mark.parametrize("op_name", OPS)
    @given(data=st.data())
    def test_matches_reference(self, op_name, data):
        A, Ad, Ap, B, Bd, Bp = data.draw(same_shape_pair())
        got = A.ewise_add(B, binary[op_name])
        exp_d, exp_p = ref_ewise_add(Ad, Ap, Bd, Bp, binary[op_name])
        gd, gp = matrix_dense_and_pattern(got)
        assert np.array_equal(gp, exp_p)
        assert np.allclose(gd[gp], exp_d[gp])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Matrix.new(FP64, 2, 2).ewise_add(Matrix.new(FP64, 3, 3), binary.plus)

    def test_union_includes_single_side(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=2)
        B = Matrix.from_coo([0], [1], [2.0], nrows=1, ncols=2)
        C = A.ewise_add(B, binary.plus)
        assert C[0, 0] == 1.0 and C[0, 1] == 2.0


class TestEwiseMult:
    @pytest.mark.parametrize("op_name", OPS)
    @given(data=st.data())
    def test_matches_reference(self, op_name, data):
        A, Ad, Ap, B, Bd, Bp = data.draw(same_shape_pair())
        got = A.ewise_mult(B, binary[op_name])
        exp_d, exp_p = ref_ewise_mult(Ad, Ap, Bd, Bp, binary[op_name])
        gd, gp = matrix_dense_and_pattern(got)
        assert np.array_equal(gp, exp_p)
        assert np.allclose(gd[gp], exp_d[gp])

    def test_intersection_only(self):
        A = Matrix.from_coo([0, 0], [0, 1], [1.0, 3.0], nrows=1, ncols=2)
        B = Matrix.from_coo([0], [1], [2.0], nrows=1, ncols=2)
        C = A.ewise_mult(B, binary.times)
        assert C.nvals == 1 and C[0, 1] == 6.0


class TestVectorEwise:
    def test_add(self):
        u = Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        v = Vector.from_coo([1, 2], [10.0, 20.0], size=3)
        w = u.ewise_add(v, binary.plus)
        assert np.allclose(w.to_dense(), [1.0, 12.0, 20.0])

    def test_mult(self):
        u = Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        v = Vector.from_coo([1, 2], [10.0, 20.0], size=3)
        w = u.ewise_mult(v, binary.times)
        assert w.nvals == 1 and w[1] == 20.0

    def test_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Vector.new(FP64, 2).ewise_add(Vector.new(FP64, 3), binary.plus)

    def test_comparison_result_is_bool(self):
        u = Vector.from_coo([0], [1.0], size=1)
        v = Vector.from_coo([0], [2.0], size=1)
        w = u.ewise_mult(v, binary.lt)
        assert w.dtype.name == "BOOL" and w[0] is True
