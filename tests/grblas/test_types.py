"""Unit tests for the GraphBLAS domain/type system."""

import numpy as np
import pytest

from repro.errors import DomainMismatch
from repro.grblas import BOOL, FP32, FP64, INT8, INT32, INT64, UINT8, UINT64, lookup_type
from repro.grblas.types import from_numpy_dtype, promote, type_of_scalar


class TestLookup:
    def test_lookup_by_name(self):
        assert lookup_type("FP64") is FP64
        assert lookup_type("bool") is BOOL
        assert lookup_type("int64") is INT64

    def test_lookup_by_python_type(self):
        assert lookup_type(bool) is BOOL
        assert lookup_type(int) is INT64
        assert lookup_type(float) is FP64

    def test_lookup_by_numpy_dtype(self):
        assert lookup_type(np.dtype(np.float32)) is FP32
        assert lookup_type(np.uint8) is UINT8

    def test_lookup_identity(self):
        assert lookup_type(INT32) is INT32

    def test_unknown_name_raises(self):
        with pytest.raises(DomainMismatch):
            lookup_type("COMPLEX128")

    def test_unsupported_dtype_raises(self):
        with pytest.raises(DomainMismatch):
            from_numpy_dtype(np.dtype("datetime64[s]"))


class TestPredicates:
    def test_bool_flags(self):
        assert BOOL.is_bool
        assert not BOOL.is_float

    def test_integer_flags(self):
        assert INT8.is_integer and INT8.is_signed
        assert UINT64.is_integer and not UINT64.is_signed

    def test_float_flags(self):
        assert FP64.is_float and not FP64.is_integer


class TestPromotion:
    def test_same_type(self):
        assert promote(INT64, INT64) is INT64

    def test_int_float(self):
        assert promote(INT32, FP32) is FP64
        assert promote(INT8, FP32) is FP32

    def test_bool_int(self):
        assert promote(BOOL, INT8) is INT8


class TestScalarInference:
    def test_bool(self):
        assert type_of_scalar(True) is BOOL

    def test_int(self):
        assert type_of_scalar(7) is INT64

    def test_float(self):
        assert type_of_scalar(1.5) is FP64

    def test_unsupported(self):
        with pytest.raises(DomainMismatch):
            type_of_scalar("x")


class TestCoerce:
    def test_coerce_casts(self):
        out = FP64.coerce(np.array([1, 2, 3]))
        assert out.dtype == np.float64

    def test_coerce_no_copy_when_same(self):
        arr = np.array([1.0, 2.0])
        assert FP64.coerce(arr) is arr
