"""Submatrix/subvector extract and assign semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexOutOfBounds, InvalidValue, DimensionMismatch
from repro.grblas import FP64, Matrix, Vector, binary
from repro.grblas.assign import assign_matrix_scalar, delete_rows_cols

from tests.helpers import matrix_and_pattern


def _dense(A):
    return A.to_dense()


class TestExtractSubmatrix:
    def setup_method(self):
        self.d = np.arange(1, 13, dtype=np.float64).reshape(3, 4)
        self.A = Matrix.from_dense(self.d)

    def test_all_all(self):
        C = self.A.extract(None, None)
        assert np.allclose(_dense(C), self.d)

    def test_row_subset(self):
        C = self.A.extract([2, 0], None)
        assert np.allclose(_dense(C), self.d[[2, 0]])

    def test_col_subset(self):
        C = self.A.extract(None, [3, 1])
        assert np.allclose(_dense(C), self.d[:, [3, 1]])

    def test_both_subsets(self):
        C = self.A.extract([1, 2], [0, 2])
        assert np.allclose(_dense(C), self.d[np.ix_([1, 2], [0, 2])])

    def test_slices(self):
        C = self.A.extract(slice(0, 2), slice(1, 3))
        assert np.allclose(_dense(C), self.d[0:2, 1:3])

    def test_duplicate_rows_allowed(self):
        C = self.A.extract([1, 1], None)
        assert np.allclose(_dense(C), self.d[[1, 1]])

    def test_duplicate_cols_rejected(self):
        with pytest.raises(InvalidValue):
            self.A.extract(None, [1, 1])

    def test_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            self.A.extract([9], None)

    @given(matrix_and_pattern(max_dim=5), st.data())
    def test_property_rows(self, mp, data):
        M, values, pattern = mp
        rows = data.draw(st.lists(st.integers(0, M.nrows - 1), min_size=1, max_size=6))
        C = M.extract(rows, None)
        assert np.allclose(C.to_dense(), values[rows])


class TestExtractRowColVector:
    def test_extract_row(self):
        A = Matrix.from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
        v = A.extract_row(0)
        assert v.size == 2 and v[1] == 2.0 and v[0] is None

    def test_extract_col(self):
        A = Matrix.from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
        v = A.extract_col(0)
        assert v.size == 2 and v[1] == 3.0 and v[0] is None

    def test_extract_col_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            Matrix.new(FP64, 2, 2).extract_col(5)

    def test_extract_subvector(self):
        v = Vector.from_coo([0, 2, 4], [1.0, 2.0, 3.0], size=5)
        w = v.extract([4, 0, 1])
        assert w.size == 3
        assert w[0] == 3.0 and w[1] == 1.0 and w[2] is None


class TestAssign:
    def test_assign_submatrix_overwrites_region(self):
        C = Matrix.from_dense(np.ones((3, 3)))
        A = Matrix.from_dense(np.array([[5.0, 0.0], [0.0, 6.0]]))
        out = C.assign(A, [0, 1], [0, 1])
        # implicit entries of A delete old values inside the region
        assert out[0, 0] == 5.0 and out[1, 1] == 6.0
        assert out[0, 1] is None and out[1, 0] is None
        assert out[2, 2] == 1.0  # outside region untouched

    def test_assign_with_accum(self):
        C = Matrix.from_dense(np.ones((2, 2)))
        A = Matrix.from_dense(np.array([[5.0]]))
        out = C.assign(A, [0], [0], accum=binary.plus)
        assert out[0, 0] == 6.0
        assert out[0, 1] == 1.0  # accum keeps everything else

    def test_assign_shape_mismatch(self):
        C = Matrix.new(FP64, 3, 3)
        A = Matrix.new(FP64, 2, 2)
        with pytest.raises(DimensionMismatch):
            C.assign(A, [0], [0])

    def test_assign_scalar_region(self):
        C = Matrix.new(FP64, 3, 3)
        out = assign_matrix_scalar(C, 7.0, [0, 2], [1])
        assert out[0, 1] == 7.0 and out[2, 1] == 7.0 and out.nvals == 2

    def test_assign_vector_scalar(self):
        v = Vector.from_coo([0], [1.0], size=4)
        w = v.assign_scalar(9.0, [1, 3])
        assert w[0] == 1.0 and w[1] == 9.0 and w[3] == 9.0

    def test_delete_rows_cols(self):
        A = Matrix.from_dense(np.ones((3, 3)))
        out = delete_rows_cols(A, rows=np.array([1]), cols=np.array([2]))
        assert out.nvals == 4  # 9 - row(3) - col(3) + overlap(1) = 4
        assert out[1, 0] is None and out[0, 2] is None and out[0, 0] == 1.0
