"""Algebraic laws the semiring machinery must satisfy — property-based."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grblas import FP64, Matrix, binary, monoid, semiring

from tests.helpers import matrix_and_pattern


def square_matrix(draw, n, data):
    Ap = data.draw(arrays(np.bool_, (n, n)))
    Av = data.draw(arrays(np.int64, (n, n), elements=st.integers(1, 4))).astype(np.float64) * Ap
    rows, cols = np.nonzero(Ap)
    return Matrix.from_coo(rows, cols, Av[rows, cols], nrows=n, ncols=n, dtype=FP64)


class TestIdentityLaws:
    @given(matrix_and_pattern(max_dim=5))
    def test_identity_matrix_is_mxm_identity(self, mp):
        """A ⊕.⊗ I == A for plus_times (I = diagonal of ones)."""
        A, _, _ = mp
        I = Matrix.identity(A.ncols, dtype=FP64, value=1.0)
        assert A.mxm(I, semiring.plus_times) == A

    @given(matrix_and_pattern(max_dim=5))
    def test_left_identity(self, mp):
        A, _, _ = mp
        I = Matrix.identity(A.nrows, dtype=FP64, value=1.0)
        assert I.mxm(A, semiring.plus_times) == A

    @given(matrix_and_pattern(max_dim=5))
    def test_structural_identity(self, mp):
        A, _, _ = mp
        I = Matrix.identity(A.ncols)
        got = A.mxm(I, semiring.any_pair)
        assert np.array_equal(got.indptr, A.indptr)
        assert np.array_equal(got.indices, A.indices)

    @given(matrix_and_pattern(max_dim=5))
    def test_empty_matrix_annihilates(self, mp):
        A, _, _ = mp
        Z = Matrix.new(FP64, A.ncols, 3)
        assert A.mxm(Z, semiring.plus_times).nvals == 0


class TestAssociativityDistributivity:
    @pytest.mark.parametrize("ring_name", ["plus_times", "min_plus", "any_pair"])
    @given(data=st.data())
    def test_mxm_associative(self, ring_name, data):
        n = data.draw(st.integers(1, 4))
        A = square_matrix(None, n, data)
        B = square_matrix(None, n, data)
        C = square_matrix(None, n, data)
        ring = semiring[ring_name]
        left = A.mxm(B, ring).mxm(C, ring)
        right = A.mxm(B.mxm(C, ring), ring)
        if ring_name == "any_pair":
            assert np.array_equal(left.indptr, right.indptr)
            assert np.array_equal(left.indices, right.indices)
        else:
            assert left == right

    @given(data=st.data())
    def test_mxm_distributes_over_ewise_add(self, data):
        """A·(B ⊕ C) == A·B ⊕ A·C for plus_times over full-pattern values."""
        n = data.draw(st.integers(1, 4))
        A = square_matrix(None, n, data)
        B = square_matrix(None, n, data)
        C = square_matrix(None, n, data)
        ring = semiring.plus_times
        left = A.mxm(B.ewise_add(C, binary.plus), ring)
        right = A.mxm(B, ring).ewise_add(A.mxm(C, ring), binary.plus)
        # patterns can differ where numerical zeros appear; compare densely
        assert np.allclose(left.to_dense(), right.to_dense())


class TestTransposeLaws:
    @given(data=st.data())
    def test_transpose_of_product(self, data):
        """(A·B)ᵀ == Bᵀ·Aᵀ."""
        n = data.draw(st.integers(1, 4))
        A = square_matrix(None, n, data)
        B = square_matrix(None, n, data)
        left = A.mxm(B, semiring.plus_times).transpose()
        right = B.transpose().mxm(A.transpose(), semiring.plus_times)
        assert left == right

    @given(matrix_and_pattern(max_dim=5))
    def test_ewise_commutes_with_transpose(self, mp):
        A, _, _ = mp
        B = A.apply_bind(binary.times, 2.0)
        left = A.ewise_add(B, binary.plus).transpose()
        right = A.transpose().ewise_add(B.transpose(), binary.plus)
        assert left == right


class TestVectorMatrixDuality:
    @given(matrix_and_pattern(max_dim=5), st.data())
    def test_vxm_equals_transposed_mxv(self, mp, data):
        """v·A == Aᵀ·v for every semiring we register."""
        from repro.grblas import Vector

        A, _, _ = mp
        idx = data.draw(st.lists(st.integers(0, A.nrows - 1), min_size=1, unique=True))
        vals = [float(data.draw(st.integers(1, 5))) for _ in idx]
        order = np.argsort(idx)
        v = Vector.from_coo(np.array(idx)[order], np.array(vals)[order], size=A.nrows, dtype=FP64)
        # for non-commutative multiplies the dual flips the operand picked:
        # (v ⊕.first A) == (Aᵀ ⊕.second v)
        for left_name, right_name in (
            ("plus_times", "plus_times"),
            ("min_plus", "min_plus"),
            ("plus_first", "plus_second"),
        ):
            left = v.vxm(A, semiring[left_name])
            right = A.transpose().mxv(v, semiring[right_name])
            assert left == right, (left_name, right_name)
