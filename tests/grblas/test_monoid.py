"""Monoid identities and vectorized segmented reduction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grblas import monoid


class TestIdentity:
    def test_plus_identity(self):
        assert monoid.plus.identity_for(np.float64) == 0

    def test_min_identity_float_is_inf(self):
        assert monoid.min.identity_for(np.float64) == np.inf

    def test_min_identity_int_is_intmax(self):
        assert monoid.min.identity_for(np.int32) == np.iinfo(np.int32).max

    def test_max_identity_float(self):
        assert monoid.max.identity_for(np.float64) == -np.inf

    def test_max_identity_bool(self):
        assert monoid.max.identity_for(np.bool_) is False

    def test_lor_land(self):
        assert monoid.lor.identity is False
        assert monoid.land.identity is True


class TestSegmentReduce:
    def test_plus_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([0, 2, 3])
        out = monoid.plus.segment_reduce(vals, starts)
        assert np.allclose(out, [3.0, 3.0, 9.0])

    def test_min_segments(self):
        vals = np.array([5, 1, 7, 2])
        out = monoid.min.segment_reduce(vals, np.array([0, 2]))
        assert np.array_equal(out, [1, 2])

    def test_lor_segments(self):
        vals = np.array([False, False, True, False])
        out = monoid.lor.segment_reduce(vals, np.array([0, 2]))
        assert np.array_equal(out, [False, True])

    def test_first_segments(self):
        vals = np.array([9, 8, 7, 6])
        out = monoid.first.segment_reduce(vals, np.array([0, 1, 3]))
        assert np.array_equal(out, [9, 8, 6])

    def test_second_segments_takes_last(self):
        vals = np.array([9, 8, 7, 6])
        out = monoid.second.segment_reduce(vals, np.array([0, 2]))
        assert np.array_equal(out, [8, 6])

    def test_empty_input(self):
        out = monoid.plus.segment_reduce(np.empty(0), np.empty(0, dtype=np.int64))
        assert len(out) == 0

    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=30),
        st.data(),
    )
    def test_matches_python_loop(self, values, data):
        """Segmented reduce == per-segment functools.reduce, for all monoids."""
        vals = np.array(values, dtype=np.int64)
        # random segmentation: pick strictly-increasing start offsets incl. 0
        cuts = data.draw(
            st.lists(st.integers(1, len(vals) - 1), max_size=5, unique=True)
            if len(vals) > 1
            else st.just([])
        )
        starts = np.array(sorted({0, *cuts}), dtype=np.int64)
        ends = list(starts[1:]) + [len(vals)]
        for name in ("plus", "min", "max", "times", "first", "second"):
            m = monoid[name]
            got = m.segment_reduce(vals, starts)
            for i, (s, e) in enumerate(zip(starts, ends)):
                seg = vals[s:e]
                expected = seg[0]
                for x in seg[1:]:
                    expected = m.op(np.asarray(expected), np.asarray(x))
                assert got[i] == expected, f"monoid {name} segment {i}"


class TestReduceAll:
    def test_plus(self):
        assert monoid.plus.reduce_all(np.array([1, 2, 3])) == 6

    def test_empty_returns_identity(self):
        assert monoid.plus.reduce_all(np.empty(0, dtype=np.int64)) == 0
        assert monoid.min.reduce_all(np.empty(0, dtype=np.float64)) == np.inf

    def test_lor(self):
        assert monoid.lor.reduce_all(np.array([False, True])) == True  # noqa: E712
