"""apply / select / reduce operation tests."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import InvalidValue
from repro.grblas import FP64, INT64, Matrix, Vector, binary, monoid, unary

from tests.helpers import matrix_and_pattern


class TestApply:
    def test_unary_matrix(self):
        A = Matrix.from_dense(np.array([[1.0, -2.0], [0.0, -3.0]]))
        B = A.apply(unary.abs)
        assert B[0, 1] == 2.0 and B[1, 1] == 3.0

    def test_unary_changes_dtype(self):
        A = Matrix.from_coo([0], [0], [5.0], nrows=1, ncols=1, dtype=FP64)
        B = A.apply(unary.lnot)
        assert B.dtype.name == "BOOL"

    def test_bind_scalar_right(self):
        A = Matrix.from_coo([0, 0], [0, 1], [2.0, 3.0], nrows=1, ncols=2)
        B = A.apply_bind(binary.times, 10.0)
        assert B[0, 0] == 20.0 and B[0, 1] == 30.0

    def test_bind_scalar_left(self):
        A = Matrix.from_coo([0], [0], [2.0], nrows=1, ncols=1)
        B = A.apply_bind(binary.minus, 10.0, right=False)
        assert B[0, 0] == 8.0

    def test_bind_comparison_gives_bool(self):
        A = Matrix.from_coo([0, 0], [0, 1], [2.0, 9.0], nrows=1, ncols=2)
        B = A.apply_bind(binary.gt, 5.0)
        assert B[0, 0] == False and B[0, 1] == True  # noqa: E712

    def test_vector_apply(self):
        v = Vector.from_coo([0, 1], [-1.0, 4.0], size=2)
        w = v.apply(unary.abs)
        assert w[0] == 1.0

    def test_vector_bind(self):
        v = Vector.from_coo([0], [3.0], size=1)
        w = v.apply_bind(binary.plus, 1.0)
        assert w[0] == 4.0

    @given(matrix_and_pattern(max_dim=5))
    def test_apply_preserves_pattern(self, mp):
        M, _, pattern = mp
        out = M.apply(unary.one)
        assert out.nvals == M.nvals
        assert np.array_equal(out.indices, M.indices)


class TestSelect:
    def setup_method(self):
        self.A = Matrix.from_dense(
            np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]])
        )

    def test_tril(self):
        L = self.A.select("tril")
        d = L.to_dense()
        assert d[0, 1] == 0 and d[1, 0] == 4.0 and d[1, 1] == 5.0

    def test_tril_offset(self):
        L = self.A.select("tril", -1)
        assert L[1, 1] is None and L[1, 0] == 4.0

    def test_triu(self):
        U = self.A.select("triu", 1)
        assert U[0, 0] is None and U[0, 1] == 2.0

    def test_diag_offdiag(self):
        D = self.A.select("diag")
        O = self.A.select("offdiag")
        assert D.nvals == 3 and O.nvals == 6

    def test_value_predicates(self):
        G = self.A.select("valuegt", 5.0)
        assert G.nvals == 4
        E = self.A.select("valueeq", 5.0)
        assert E.nvals == 1 and E[1, 1] == 5.0

    def test_callable_predicate(self):
        C = self.A.select(lambda r, c, v: (r + c) % 2 == 0)
        assert C[0, 0] == 1.0 and C[0, 1] is None

    def test_unknown_predicate(self):
        with pytest.raises(InvalidValue):
            self.A.select("bogus")

    def test_vector_select(self):
        v = Vector.from_coo([0, 1, 2], [1.0, 5.0, 9.0], size=3)
        w = v.select("valuege", 5.0)
        assert w.nvals == 2 and w[0] is None


class TestReduce:
    def setup_method(self):
        self.A = Matrix.from_coo(
            [0, 0, 2], [0, 2, 1], [1.0, 2.0, 5.0], nrows=3, ncols=3
        )

    def test_reduce_rows(self):
        r = self.A.reduce_rows(monoid.plus)
        assert r[0] == 3.0 and r[1] is None and r[2] == 5.0

    def test_reduce_cols(self):
        c = self.A.reduce_cols(monoid.plus)
        assert c[0] == 1.0 and c[1] == 5.0 and c[2] == 2.0

    def test_reduce_rows_min(self):
        r = self.A.reduce_rows(monoid.min)
        assert r[0] == 1.0

    def test_reduce_scalar(self):
        s = self.A.reduce_scalar(monoid.plus)
        assert s.value() == 8.0

    def test_reduce_scalar_empty(self):
        s = Matrix.new(FP64, 2, 2).reduce_scalar(monoid.plus)
        assert s.is_empty

    def test_vector_reduce(self):
        v = Vector.from_coo([0, 3], [2.0, 3.0], size=4)
        assert v.reduce(monoid.plus).value() == 5.0
        assert v.reduce(monoid.max).value() == 3.0

    @given(matrix_and_pattern(max_dim=5))
    def test_row_reduce_matches_dense(self, mp):
        M, values, pattern = mp
        r = M.reduce_rows(monoid.plus)
        expected = values.sum(axis=1)
        got = r.to_dense()
        nonempty = pattern.any(axis=1)
        assert np.allclose(got[nonempty], expected[nonempty])
        assert not np.any(got[~nonempty])
