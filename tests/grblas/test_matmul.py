"""mxm / mxv / vxm correctness against dense references, across semirings,
with masks, accumulators and transposes — the load-bearing tests of the
whole reproduction (the traversal engine sits on these three calls)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionMismatch
from repro.grblas import FP64, Mask, Matrix, Vector, binary, semiring
from repro.grblas.descriptor import Descriptor

from tests.helpers import (
    matrix_and_pattern,
    matrix_dense_and_pattern,
    ref_mxm,
    vector_and_pattern,
    vector_dense_and_pattern,
)

RINGS = ["plus_times", "min_plus", "max_plus", "plus_pair", "lor_land", "any_pair", "plus_first", "plus_second"]


def _check_matrix_against(got: Matrix, exp_dense, exp_present):
    gd, gp = matrix_dense_and_pattern(got)
    assert np.array_equal(gp, exp_present), "pattern mismatch"
    # compare only where present (semiring value semantics)
    assert np.allclose(gd[exp_present], exp_dense[exp_present]), "value mismatch"


class TestMxmAgainstDense:
    @pytest.mark.parametrize("ring_name", RINGS)
    @given(data=st.data())
    def test_mxm_matches_reference(self, ring_name, data):
        A, Ad, Ap = data.draw(matrix_and_pattern(max_dim=4))
        # B with compatible inner dimension
        from hypothesis.extra.numpy import arrays

        n = data.draw(st.integers(1, 4))
        Bp = data.draw(arrays(np.bool_, (A.ncols, n)))
        Bv = data.draw(arrays(np.int64, (A.ncols, n), elements=st.integers(1, 5))).astype(np.float64) * Bp
        rows, cols = np.nonzero(Bp)
        B = Matrix.from_coo(rows, cols, Bv[rows, cols], nrows=A.ncols, ncols=n, dtype=FP64)
        ring = semiring[ring_name]
        got = A.mxm(B, ring)
        exp_d, exp_p = ref_mxm(Ad, Ap, Bv, Bp, ring)
        if ring_name in ("lor_land", "any_pair"):
            # boolean output values are all truthy; only pattern is meaningful
            _, gp = matrix_dense_and_pattern(got)
            assert np.array_equal(gp, exp_p)
        else:
            _check_matrix_against(got, exp_d, exp_p)

    def test_dimension_mismatch(self):
        A = Matrix.new(FP64, 2, 3)
        B = Matrix.new(FP64, 4, 2)
        with pytest.raises(DimensionMismatch):
            A.mxm(B, semiring.plus_times)

    def test_empty_result(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1], [1], [1.0], nrows=2, ncols=2)
        C = A.mxm(B, semiring.plus_times)
        assert C.nvals == 0

    def test_transpose_descriptors(self):
        A = Matrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        B = Matrix.from_dense(np.array([[1.0, 0.0], [4.0, 5.0]]))
        C = A.mxm(B, semiring.plus_times, desc=Descriptor(transpose_a=True))
        assert np.allclose(C.to_dense(), A.to_dense().T @ B.to_dense())
        C2 = A.mxm(B, semiring.plus_times, desc=Descriptor(transpose_b=True))
        assert np.allclose(C2.to_dense(), A.to_dense() @ B.to_dense().T)

    def test_tiled_equals_untiled(self):
        """Force tiny tile budget; result must be identical."""
        from repro.grblas import _kernels as K

        rng = np.random.default_rng(42)
        d = (rng.random((20, 20)) < 0.2).astype(np.float64) * rng.integers(1, 5, (20, 20))
        A = Matrix.from_dense(d)
        r1, c1, v1 = K.esc_spgemm(
            A.nrows, A.indptr, A.indices, A.values,
            A.indptr, A.indices, A.values, A.ncols,
            semiring.plus_times, np.float64, tile_budget=1 << 60,
        )
        r2, c2, v2 = K.esc_spgemm(
            A.nrows, A.indptr, A.indices, A.values,
            A.indptr, A.indices, A.values, A.ncols,
            semiring.plus_times, np.float64, tile_budget=4,
        )
        assert np.array_equal(r1, r2) and np.array_equal(c1, c2)
        assert np.allclose(v1, v2)


class TestMxmMaskAccum:
    def setup_method(self):
        self.A = Matrix.from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        self.B = Matrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_value_mask(self):
        M = Matrix.from_coo([0], [0], [True], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, mask=M)
        assert C.nvals == 1 and C[0, 0] == 4.0

    def test_complement_mask(self):
        M = Matrix.from_coo([0], [0], [True], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, mask=Mask(M, complement=True))
        assert C[0, 0] is None and C[0, 1] == 6.0 and C[1, 0] == 1.0

    def test_structural_mask_ignores_false(self):
        M = Matrix.from_coo([0, 1], [0, 0], [False, True], nrows=2, ncols=2)
        C_value = self.A.mxm(self.B, semiring.plus_times, mask=M)
        assert C_value.nvals == 1  # only (1,0): (0,0) masked out by False value
        C_struct = self.A.mxm(self.B, semiring.plus_times, mask=Mask(M, structure=True))
        assert C_struct.nvals == 2  # both stored positions writable

    def test_accum_merges_existing(self):
        C0 = Matrix.from_coo([0, 1], [0, 1], [100.0, 100.0], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, accum=binary.plus, out=C0)
        assert C[0, 0] == 104.0  # 100 + 4
        assert C[1, 1] == 102.0  # 100 + (1*2)
        assert C[0, 1] == 6.0  # new entry passes through

    def test_no_accum_overwrites(self):
        C0 = Matrix.from_coo([0], [0], [100.0], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, out=C0)
        assert C[0, 0] == 4.0

    def test_mask_keeps_old_outside_region(self):
        C0 = Matrix.from_coo([1, 1], [0, 1], [100.0, 50.0], nrows=2, ncols=2)
        M = Matrix.from_coo([0], [1], [True], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, mask=M, out=C0)
        # inside mask: new value; outside: old C kept (no replace)
        assert C[0, 1] == 6.0 and C[1, 0] == 100.0 and C[1, 1] == 50.0

    def test_replace_clears_outside(self):
        C0 = Matrix.from_coo([1], [0], [100.0], nrows=2, ncols=2)
        M = Matrix.from_coo([0], [1], [True], nrows=2, ncols=2)
        C = self.A.mxm(self.B, semiring.plus_times, mask=M, out=C0, desc=Descriptor(replace=True))
        assert C.nvals == 1 and C[0, 1] == 6.0

    def test_mask_shape_mismatch(self):
        M = Matrix.new(FP64, 3, 3)
        with pytest.raises(DimensionMismatch):
            self.A.mxm(self.B, semiring.plus_times, mask=M)


class TestMxvVxm:
    @pytest.mark.parametrize("ring_name", ["plus_times", "min_plus", "any_pair", "plus_second"])
    @given(data=st.data())
    def test_mxv_matches_mxm_column(self, ring_name, data):
        A, Ad, Ap = data.draw(matrix_and_pattern(max_dim=4))
        v, vd, vp = data.draw(vector_and_pattern(size=A.ncols))
        ring = semiring[ring_name]
        got = A.mxv(v, ring)
        exp_d, exp_p = ref_mxm(Ad, Ap, vd.reshape(-1, 1), vp.reshape(-1, 1), ring)
        gd, gp = vector_dense_and_pattern(got)
        assert np.array_equal(gp, exp_p[:, 0])
        if ring_name != "any_pair":
            assert np.allclose(gd[gp], exp_d[:, 0][gp])

    @pytest.mark.parametrize("ring_name", ["plus_times", "min_plus", "any_pair", "plus_first"])
    @given(data=st.data())
    def test_vxm_matches_mxm_row(self, ring_name, data):
        A, Ad, Ap = data.draw(matrix_and_pattern(max_dim=4))
        v, vd, vp = data.draw(vector_and_pattern(size=A.nrows))
        ring = semiring[ring_name]
        got = v.vxm(A, ring)
        exp_d, exp_p = ref_mxm(vd.reshape(1, -1), vp.reshape(1, -1), Ad, Ap, ring)
        gd, gp = vector_dense_and_pattern(got)
        assert np.array_equal(gp, exp_p[0])
        if ring_name != "any_pair":
            assert np.allclose(gd[gp], exp_d[0][gp])

    def test_vxm_bfs_step_with_complement_mask(self):
        """The canonical BFS layer: next = frontier · A, masked by ¬visited."""
        A = Matrix.from_edges([0, 1, 2], [1, 2, 0], nrows=3)
        frontier = Vector.from_coo([0], None, size=3)
        visited = frontier.dup()
        nxt = frontier.vxm(A, semiring.any_pair, mask=Mask(visited, complement=True))
        assert np.array_equal(nxt.indices, [1])

    def test_mxv_dimension_mismatch(self):
        A = Matrix.new(FP64, 2, 3)
        v = Vector.new(FP64, 5)
        with pytest.raises(DimensionMismatch):
            A.mxv(v, semiring.plus_times)

    def test_vxm_dimension_mismatch(self):
        A = Matrix.new(FP64, 2, 3)
        v = Vector.new(FP64, 5)
        with pytest.raises(DimensionMismatch):
            v.vxm(A, semiring.plus_times)
