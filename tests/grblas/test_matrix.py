"""Matrix container semantics: construction, access, mutation, invariants."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import DimensionMismatch, IndexOutOfBounds, InvalidValue
from repro.grblas import BOOL, FP64, INT64, Matrix, Vector, monoid

from tests.helpers import matrix_and_pattern


class TestConstruction:
    def test_new_empty(self):
        A = Matrix.new(FP64, 3, 4)
        assert A.shape == (3, 4) and A.nvals == 0

    def test_from_coo_basic(self):
        A = Matrix.from_coo([0, 1], [1, 2], [5.0, 6.0], nrows=2, ncols=3)
        assert A.nvals == 2
        assert A[0, 1] == 5.0 and A[1, 2] == 6.0

    def test_from_coo_scalar_broadcast(self):
        A = Matrix.from_coo([0, 1], [0, 1], 7, nrows=2, ncols=2)
        assert A[0, 0] == 7 and A[1, 1] == 7

    def test_from_coo_none_values_bool(self):
        A = Matrix.from_coo([0], [1], None, nrows=2, ncols=2)
        assert A.dtype is BOOL and A[0, 1] is True

    def test_from_coo_dup_monoid(self):
        A = Matrix.from_coo([0, 0], [1, 1], [2.0, 3.0], nrows=1, ncols=2, dup=monoid.plus)
        assert A[0, 1] == 5.0

    def test_from_coo_length_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Matrix.from_coo([0, 1], [0], [1.0, 2.0], nrows=2, ncols=2)

    def test_from_coo_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            Matrix.from_coo([5], [0], [1.0], nrows=2, ncols=2)

    def test_from_edges(self):
        A = Matrix.from_edges([0, 1], [1, 0], nrows=2)
        assert A.dtype is BOOL and A.nvals == 2

    def test_from_dense(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        A = Matrix.from_dense(d)
        assert A.nvals == 2
        assert np.allclose(A.to_dense(), d)

    def test_identity(self):
        I = Matrix.identity(3)
        assert I.nvals == 3 and I[1, 1] is True and I[0, 1] is None

    def test_diag_from_vector(self):
        v = Vector.from_coo([0, 2], [1.5, 2.5], size=3, dtype=FP64)
        D = Matrix.diag(v)
        assert D[0, 0] == 1.5 and D[2, 2] == 2.5 and D[1, 1] is None

    def test_negative_dims_raise(self):
        with pytest.raises(InvalidValue):
            Matrix(-1, 2)


class TestAccess:
    def test_getitem_absent_is_none(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        assert A[1, 1] is None

    def test_contains(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        assert (0, 1) in A and (1, 0) not in A

    def test_row_view(self):
        A = Matrix.from_coo([0, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0], nrows=2, ncols=3)
        cols, vals = A.row(0)
        assert np.array_equal(cols, [0, 2]) and np.allclose(vals, [1, 2])

    def test_row_out_of_range(self):
        A = Matrix.new(FP64, 2, 2)
        with pytest.raises(IndexOutOfBounds):
            A.row(5)

    def test_row_degree(self):
        A = Matrix.from_coo([0, 0, 1], [0, 1, 0], None, nrows=3, ncols=2)
        assert np.array_equal(A.row_degree(), [2, 1, 0])

    def test_to_coo_sorted(self):
        A = Matrix.from_coo([1, 0, 1], [0, 1, 2], [1.0, 2.0, 3.0], nrows=2, ncols=3)
        rows, cols, vals = A.to_coo()
        keys = rows * 3 + cols
        assert np.all(np.diff(keys) > 0)


class TestMutation:
    def test_set_element_insert(self):
        A = Matrix.new(FP64, 2, 2)
        A.set_element(0, 1, 4.5)
        assert A[0, 1] == 4.5 and A.nvals == 1
        A.check_invariants()

    def test_set_element_overwrite(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        A.set_element(0, 1, 9.0)
        assert A[0, 1] == 9.0 and A.nvals == 1

    def test_set_element_out_of_range(self):
        A = Matrix.new(FP64, 2, 2)
        with pytest.raises(IndexOutOfBounds):
            A.set_element(5, 0, 1.0)

    def test_remove_element(self):
        A = Matrix.from_coo([0, 1], [1, 0], [1.0, 2.0], nrows=2, ncols=2)
        assert A.remove_element(0, 1)
        assert A[0, 1] is None and A.nvals == 1
        assert not A.remove_element(0, 1)
        A.check_invariants()

    def test_clear(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        A.clear()
        assert A.nvals == 0 and A.shape == (2, 2)

    def test_resize_grow(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=1)
        A.resize(3, 3)
        assert A.shape == (3, 3) and A[0, 0] == 1.0
        A.check_invariants()

    def test_resize_shrink_drops_entries(self):
        A = Matrix.from_coo([0, 2], [0, 2], [1.0, 2.0], nrows=3, ncols=3)
        A.resize(1, 1)
        assert A.nvals == 1 and A[0, 0] == 1.0

    def test_dup_independent(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=1)
        B = A.dup()
        B.set_element(0, 0, 9.0)
        assert A[0, 0] == 1.0


class TestEquality:
    def test_equal(self):
        A = Matrix.from_coo([0, 1], [1, 0], [1.0, 2.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1, 0], [0, 1], [2.0, 1.0], nrows=2, ncols=2)
        assert A == B

    def test_different_pattern(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1], [0], [1.0], nrows=2, ncols=2)
        assert A != B

    def test_different_values(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        assert A != B


class TestConversions:
    def test_cast(self):
        A = Matrix.from_coo([0], [0], [1.7], nrows=1, ncols=1, dtype=FP64)
        B = A.cast(INT64)
        assert B.dtype is INT64 and B[0, 0] == 1

    def test_pattern(self):
        A = Matrix.from_coo([0], [0], [3.5], nrows=1, ncols=1, dtype=FP64)
        P = A.pattern()
        assert P.dtype is BOOL and P[0, 0] is True

    def test_to_dense_fill(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=2)
        d = A.to_dense(fill=-1.0)
        assert d[0, 1] == -1.0


class TestPropertyInvariants:
    @given(matrix_and_pattern(max_dim=6))
    def test_canonical_form(self, mp):
        M, values, pattern = mp
        M.check_invariants()
        assert M.nvals == pattern.sum()
        assert np.allclose(M.to_dense(), values)

    @given(matrix_and_pattern(max_dim=5))
    def test_transpose_involution(self, mp):
        M, _, _ = mp
        assert M.T.T == M

    @given(matrix_and_pattern(max_dim=5))
    def test_dense_roundtrip(self, mp):
        M, values, pattern = mp
        M2 = Matrix.from_dense(M.to_dense())
        # from_dense drops explicit zeros; values are 1..5 so pattern survives
        assert M2 == M
