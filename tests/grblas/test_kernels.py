"""Unit + property tests for the low-level vectorized kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grblas import _kernels as K
from repro.grblas import binary, monoid


class TestConcatRanges:
    def test_basic(self):
        out = K.concat_ranges(np.array([0, 10]), np.array([3, 2]))
        assert np.array_equal(out, [0, 1, 2, 10, 11])

    def test_empty_segments_mixed(self):
        out = K.concat_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert np.array_equal(out, [7, 8])

    def test_all_empty(self):
        assert len(K.concat_ranges(np.array([1, 2]), np.array([0, 0]))) == 0

    def test_no_segments(self):
        assert len(K.concat_ranges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))) == 0

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)), max_size=20))
    def test_matches_python(self, segs):
        starts = np.array([s for s, _ in segs], dtype=np.int64)
        lens = np.array([l for _, l in segs], dtype=np.int64)
        expected = [x for s, l in segs for x in range(s, s + l)]
        assert np.array_equal(K.concat_ranges(starts, lens), expected)


class TestRunStarts:
    def test_basic(self):
        out = K.run_starts(np.array([3, 3, 5, 7, 7, 7]))
        assert np.array_equal(out, [0, 2, 3])

    def test_all_unique(self):
        assert np.array_equal(K.run_starts(np.array([1, 2, 3])), [0, 1, 2])

    def test_empty(self):
        assert len(K.run_starts(np.empty(0, dtype=np.int64))) == 0


class TestRowsToIndptr:
    def test_basic(self):
        out = K.rows_to_indptr(np.array([0, 0, 2]), 4)
        assert np.array_equal(out, [0, 2, 2, 3, 3])

    def test_empty(self):
        assert np.array_equal(K.rows_to_indptr(np.empty(0, dtype=np.int64), 3), [0, 0, 0, 0])


class TestLinearKeys:
    @given(st.lists(st.tuples(st.integers(0, 99), st.integers(0, 99)), max_size=30))
    def test_roundtrip(self, pairs):
        rows = np.array([r for r, _ in pairs], dtype=np.int64)
        cols = np.array([c for _, c in pairs], dtype=np.int64)
        keys = K.linear_keys(rows, cols, 100)
        r2, c2 = K.split_keys(keys, 100)
        assert np.array_equal(r2, rows)
        assert np.array_equal(c2, cols)


class TestMembership:
    def test_basic(self):
        present, pos = K.membership(np.array([2, 5, 9]), np.array([5, 1, 9]))
        assert np.array_equal(present, [True, False, True])
        assert pos[0] == 1 and pos[2] == 2

    def test_empty_ref(self):
        present, _ = K.membership(np.empty(0, dtype=np.int64), np.array([1, 2]))
        assert not present.any()

    def test_empty_queries(self):
        present, pos = K.membership(np.array([1, 2]), np.empty(0, dtype=np.int64))
        assert len(present) == 0 and len(pos) == 0

    def test_query_beyond_max(self):
        present, _ = K.membership(np.array([1, 2]), np.array([99]))
        assert not present[0]


class TestSetOps:
    @given(
        st.lists(st.integers(0, 30), max_size=20, unique=True),
        st.lists(st.integers(0, 30), max_size=20, unique=True),
    )
    def test_intersect_matches_python(self, a, b):
        a, b = np.array(sorted(a), dtype=np.int64), np.array(sorted(b), dtype=np.int64)
        ia, ib = K.intersect_sorted(a, b)
        expected = sorted(set(a) & set(b))
        assert np.array_equal(a[ia], expected)
        assert np.array_equal(b[ib], expected)

    @given(
        st.lists(st.integers(0, 30), max_size=20, unique=True),
        st.lists(st.integers(0, 30), max_size=20, unique=True),
    )
    def test_setdiff_matches_python(self, a, b):
        a, b = np.array(sorted(a), dtype=np.int64), np.array(sorted(b), dtype=np.int64)
        keep = K.setdiff_sorted(a, b)
        assert np.array_equal(a[keep], sorted(set(a) - set(b)))


class TestMergeUnion:
    def test_disjoint(self):
        keys, vals = K.merge_union(
            np.array([1, 3]), np.array([10.0, 30.0]),
            np.array([2, 4]), np.array([20.0, 40.0]),
            binary.plus, np.float64,
        )
        assert np.array_equal(keys, [1, 2, 3, 4])
        assert np.allclose(vals, [10, 20, 30, 40])

    def test_overlap_applies_op(self):
        keys, vals = K.merge_union(
            np.array([1, 2]), np.array([10.0, 5.0]),
            np.array([2, 3]), np.array([7.0, 9.0]),
            binary.plus, np.float64,
        )
        assert np.array_equal(keys, [1, 2, 3])
        assert np.allclose(vals, [10, 12, 9])

    def test_none_op_second_wins(self):
        keys, vals = K.merge_union(
            np.array([2]), np.array([5.0]),
            np.array([2]), np.array([7.0]),
            None, np.float64,
        )
        assert np.allclose(vals, [7.0])

    def test_empty_sides(self):
        keys, vals = K.merge_union(
            np.empty(0, dtype=np.int64), np.empty(0),
            np.array([1]), np.array([2.0]),
            binary.plus, np.float64,
        )
        assert np.array_equal(keys, [1]) and vals[0] == 2.0


class TestCooToCsr:
    def test_unsorted_input(self):
        indptr, indices, vals = K.coo_to_csr(
            np.array([1, 0, 1]), np.array([0, 2, 1]), np.array([9.0, 8.0, 7.0]), 2, 3, None
        )
        assert np.array_equal(indptr, [0, 1, 3])
        assert np.array_equal(indices, [2, 0, 1])
        assert np.allclose(vals, [8.0, 9.0, 7.0])

    def test_duplicates_last_wins(self):
        _, _, vals = K.coo_to_csr(
            np.array([0, 0]), np.array([1, 1]), np.array([3.0, 5.0]), 1, 2, None
        )
        assert np.allclose(vals, [5.0])

    def test_duplicates_monoid(self):
        _, _, vals = K.coo_to_csr(
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([3.0, 5.0, 2.0]), 1, 2, monoid.plus
        )
        assert np.allclose(vals, [10.0])

    def test_empty(self):
        indptr, indices, vals = K.coo_to_csr(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0), 3, 3, None
        )
        assert np.array_equal(indptr, [0, 0, 0, 0])
        assert len(indices) == 0 and len(vals) == 0


class TestCsrTranspose:
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15, unique=True))
    def test_roundtrip(self, coords):
        rows = np.array([r for r, _ in coords], dtype=np.int64)
        cols = np.array([c for _, c in coords], dtype=np.int64)
        vals = np.arange(len(coords), dtype=np.float64)
        indptr, indices, v = K.coo_to_csr(rows, cols, vals, 5, 5, None)
        t_indptr, t_indices, t_vals = K.csr_transpose(5, 5, indptr, indices, v)
        tt_indptr, tt_indices, tt_vals = K.csr_transpose(5, 5, t_indptr, t_indices, t_vals)
        assert np.array_equal(tt_indptr, indptr)
        assert np.array_equal(tt_indices, indices)
        assert np.array_equal(tt_vals, v)


class TestRowBlocks:
    def test_respects_budget(self):
        from repro.grblas._kernels import _row_blocks

        blocks = _row_blocks(np.array([4, 4, 4, 4]), budget=8)
        assert blocks == [(0, 2), (2, 4)]

    def test_oversized_row_alone(self):
        from repro.grblas._kernels import _row_blocks

        blocks = _row_blocks(np.array([100, 1]), budget=8)
        assert blocks[0] == (0, 1)

    def test_empty(self):
        from repro.grblas._kernels import _row_blocks

        assert _row_blocks(np.empty(0, dtype=np.int64), 8) == []
