"""Scalar, descriptor, kronecker, transpose and I/O tests."""

import io

import numpy as np
import pytest
from hypothesis import given

from repro.errors import EmptyObject, InvalidValue
from repro.grblas import FP64, INT64, Matrix, Scalar, binary
from repro.grblas.descriptor import NULL, RC, Descriptor, T0
from repro.grblas.io import mm_read, mm_write

from tests.helpers import matrix_and_pattern


class TestScalar:
    def test_empty(self):
        s = Scalar(FP64)
        assert s.is_empty and s.nvals == 0
        assert s.get() is None
        with pytest.raises(EmptyObject):
            s.value()

    def test_set_get(self):
        s = Scalar(INT64, 42)
        assert s.value() == 42 and s.nvals == 1

    def test_set_casts(self):
        s = Scalar(INT64, 3.9)
        assert s.value() == 3

    def test_clear(self):
        s = Scalar(INT64, 1)
        s.clear()
        assert s.is_empty

    def test_bool(self):
        assert not Scalar(INT64)
        assert not Scalar(INT64, 0)
        assert Scalar(INT64, 5)

    def test_eq_python_scalar(self):
        assert Scalar(INT64, 5) == 5
        assert Scalar(FP64) == None  # noqa: E711


class TestDescriptor:
    def test_defaults(self):
        assert not NULL.transpose_a and not NULL.replace

    def test_prebuilt(self):
        assert T0.transpose_a
        assert RC.replace and RC.mask_complement

    def test_with_override(self):
        d = NULL.with_(replace=True)
        assert d.replace and not NULL.replace

    def test_repr(self):
        assert "T0" in repr(Descriptor(transpose_a=True))
        assert "NULL" in repr(NULL)


class TestKronecker:
    def test_small(self):
        A = Matrix.from_dense(np.array([[1.0, 2.0]]))
        B = Matrix.from_dense(np.array([[3.0], [4.0]]))
        C = A.kronecker(B, binary.times)
        assert C.shape == (2, 2)
        assert np.allclose(C.to_dense(), np.kron(A.to_dense(), B.to_dense()))

    @given(matrix_and_pattern(max_dim=3), matrix_and_pattern(max_dim=3))
    def test_matches_numpy(self, mp1, mp2):
        A, Ad, _ = mp1
        B, Bd, _ = mp2
        C = A.kronecker(B, binary.times)
        assert np.allclose(C.to_dense(), np.kron(Ad, Bd))

    def test_empty_operand(self):
        A = Matrix.new(FP64, 2, 2)
        B = Matrix.from_dense(np.ones((2, 2)))
        C = A.kronecker(B, binary.times)
        assert C.shape == (4, 4) and C.nvals == 0


class TestTranspose:
    @given(matrix_and_pattern(max_dim=5))
    def test_matches_dense(self, mp):
        M, values, _ = mp
        assert np.allclose(M.T.to_dense(), values.T)

    @given(matrix_and_pattern(max_dim=5))
    def test_preserves_invariants(self, mp):
        M, _, _ = mp
        M.T.check_invariants()


class TestMatrixMarketIO:
    def _roundtrip(self, A):
        buf = io.StringIO()
        mm_write(buf, A)
        buf.seek(0)
        return mm_read(buf)

    def test_real_roundtrip(self):
        A = Matrix.from_dense(np.array([[1.5, 0.0], [0.25, 3.0]]))
        assert self._roundtrip(A) == A

    def test_integer_roundtrip(self):
        A = Matrix.from_coo([0, 1], [1, 0], [7, -3], nrows=2, ncols=2, dtype=INT64)
        assert self._roundtrip(A) == A

    def test_pattern_roundtrip(self):
        A = Matrix.from_edges([0, 1, 1], [1, 0, 1], nrows=2)
        assert self._roundtrip(A) == A

    def test_comment_written(self):
        buf = io.StringIO()
        mm_write(buf, Matrix.new(FP64, 1, 1), comment="hello")
        assert "% hello" in buf.getvalue()

    def test_empty_matrix(self):
        A = Matrix.new(FP64, 3, 2)
        B = self._roundtrip(A)
        assert B.shape == (3, 2) and B.nvals == 0

    def test_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5.0\n2 1 7.0\n"
        A = mm_read(io.StringIO(text))
        assert A[0, 0] == 5.0 and A[1, 0] == 7.0 and A[0, 1] == 7.0

    def test_rejects_non_mm(self):
        with pytest.raises(InvalidValue):
            mm_read(io.StringIO("garbage\n"))

    def test_rejects_array_format(self):
        with pytest.raises(InvalidValue):
            mm_read(io.StringIO("%%MatrixMarket matrix array real general\n"))
