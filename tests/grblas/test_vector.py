"""Vector container semantics."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import DimensionMismatch, IndexOutOfBounds
from repro.grblas import BOOL, FP64, Vector, monoid

from tests.helpers import vector_and_pattern


class TestConstruction:
    def test_new(self):
        v = Vector.new(FP64, 5)
        assert v.size == 5 and v.nvals == 0

    def test_from_coo(self):
        v = Vector.from_coo([3, 1], [30.0, 10.0], size=5)
        assert v[1] == 10.0 and v[3] == 30.0
        assert np.array_equal(v.indices, [1, 3])

    def test_from_coo_dup(self):
        v = Vector.from_coo([1, 1], [2.0, 3.0], size=3, dup=monoid.plus)
        assert v[1] == 5.0

    def test_from_coo_none_values(self):
        v = Vector.from_coo([0, 2], None, size=3)
        assert v.dtype is BOOL and v[2] is True

    def test_from_coo_out_of_range(self):
        with pytest.raises(IndexOutOfBounds):
            Vector.from_coo([9], [1.0], size=3)

    def test_from_dense(self):
        v = Vector.from_dense(np.array([0.0, 5.0, 0.0]))
        assert v.nvals == 1 and v[1] == 5.0

    def test_full(self):
        v = Vector.full(4, 2.5)
        assert v.nvals == 4 and v[3] == 2.5

    def test_values_length_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Vector.from_coo([0, 1], [1.0], size=3)


class TestAccessMutation:
    def test_getitem_absent(self):
        v = Vector.from_coo([1], [1.0], size=3)
        assert v[0] is None

    def test_getitem_out_of_range(self):
        v = Vector.new(FP64, 3)
        with pytest.raises(IndexOutOfBounds):
            v[7]

    def test_contains(self):
        v = Vector.from_coo([1], [1.0], size=3)
        assert 1 in v and 0 not in v

    def test_set_element(self):
        v = Vector.new(FP64, 4)
        v.set_element(2, 9.0)
        v.set_element(0, 1.0)
        assert np.array_equal(v.indices, [0, 2])
        v.check_invariants()

    def test_remove_element(self):
        v = Vector.from_coo([0, 2], [1.0, 2.0], size=3)
        assert v.remove_element(0)
        assert not v.remove_element(0)
        assert v.nvals == 1

    def test_resize(self):
        v = Vector.from_coo([0, 4], [1.0, 2.0], size=5)
        v.resize(2)
        assert v.size == 2 and v.nvals == 1

    def test_clear(self):
        v = Vector.from_coo([0], [1.0], size=2)
        v.clear()
        assert v.nvals == 0

    def test_dup_independent(self):
        v = Vector.from_coo([0], [1.0], size=2)
        w = v.dup()
        w.set_element(0, 5.0)
        assert v[0] == 1.0


class TestEqualityAndCasts:
    def test_isequal(self):
        a = Vector.from_coo([1], [2.0], size=3)
        b = Vector.from_coo([1], [2.0], size=3)
        assert a == b

    def test_size_matters(self):
        a = Vector.from_coo([1], [2.0], size=3)
        b = Vector.from_coo([1], [2.0], size=4)
        assert a != b

    def test_cast(self):
        v = Vector.from_coo([0], [2.9], size=1, dtype=FP64)
        assert v.cast("INT64")[0] == 2

    def test_pattern(self):
        v = Vector.from_coo([0], [2.9], size=1, dtype=FP64)
        assert v.pattern()[0] is True

    def test_to_dense_fill(self):
        v = Vector.from_coo([1], [3.0], size=3)
        assert v.to_dense(fill=-1)[0] == -1


class TestPropertyInvariants:
    @given(vector_and_pattern(max_dim=8))
    def test_canonical(self, vp):
        v, values, pattern = vp
        v.check_invariants()
        assert v.nvals == pattern.sum()
        assert np.allclose(v.to_dense(), values)
