"""Writers concurrent with algorithm procedures over a live RESP socket.

Algorithm procs read adjacency through flush-free overlay views under
the graph's read lock, so a CALL running while writers append must see a
consistent snapshot: never a partial write, never an error, and node
counts that only grow between successive reads on one connection.
"""

import threading
import time

import pytest

from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer


@pytest.fixture(scope="module")
def server():
    cfg = GraphConfig(
        thread_count=4,
        parallel_workers=2,
        morsel_size=64,
        node_capacity=4096,
    )
    srv = RedisLikeServer(port=0, config=cfg).start()
    time.sleep(0.05)
    yield srv
    srv.stop()


def test_algo_procs_snapshot_isolated_under_writes(server):
    seed = RedisClient(port=server.port)
    try:
        seed.execute("FLUSHALL")
        seed.graph_query(
            "iso", "UNWIND range(0, 63) AS i CREATE (:N {v: i})"
        )
        seed.graph_query(
            "iso",
            "MATCH (a:N), (b:N) WHERE b.v = a.v + 1 CREATE (a)-[:R]->(b)",
        )
    finally:
        seed.close()

    stop = threading.Event()
    errors = []

    def writer(idx):
        c = RedisClient(port=server.port)
        try:
            for i in range(40):
                if stop.is_set():
                    break
                base = 1000 * (idx + 1) + 10 * i
                c.graph_query(
                    "iso",
                    f"CREATE (:N {{v: {base}}})-[:R]->(:N {{v: {base + 1}}})",
                )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            c.close()

    def reader(query, check):
        c = RedisClient(port=server.port)
        try:
            prev = -1
            while not stop.is_set():
                rows = c.graph_query("iso", query).rows
                prev = check(rows, prev)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            c.close()

    def check_wcc(rows, prev):
        # every live node appears exactly once, count never shrinks
        total = sum(int(r[1]) for r in rows)
        assert total >= max(prev, 64)
        return total

    def check_pagerank(rows, prev):
        (count,) = rows[0]
        assert int(count) >= max(prev, 64)
        return int(count)

    readers = [
        threading.Thread(
            target=reader,
            args=(
                "CALL algo.wcc() YIELD node, componentId "
                "RETURN componentId, count(node)",
                check_wcc,
            ),
        ),
        threading.Thread(
            target=reader,
            args=("CALL algo.pagerank() YIELD node RETURN count(node)", check_pagerank),
        ),
    ]
    writers = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors

    final = RedisClient(port=server.port)
    try:
        rows = final.graph_query(
            "iso", "CALL algo.wcc() YIELD node RETURN count(node)"
        ).rows
        # 64 seed nodes + 2 writers x 40 iterations x 2 nodes
        assert rows[0][0] == 64 + 2 * 40 * 2
    finally:
        final.close()


def test_call_and_path_encode_over_resp(server):
    c = RedisClient(port=server.port)
    try:
        c.graph_query("wire", "CREATE (:A {name: 'a'})-[:R]->(:B {name: 'b'})")
        rows = c.graph_query(
            "wire", "CALL db.labels() YIELD label RETURN label ORDER BY label"
        ).rows
        assert [tuple(r) for r in rows] == [("A",), ("B",)]
        rows = c.graph_query(
            "wire",
            "MATCH (a:A), (b:B) CALL algo.shortestPath(a, b) YIELD path, length "
            "RETURN path, length",
        ).rows
        ((encoded, length),) = rows
        assert length == 1
        kind, nodes, edges = encoded
        assert kind == "path"
        assert [n[0] for n in nodes] == ["node", "node"]
        assert [e[0] for e in edges] == ["relationship"]
    finally:
        c.close()
