"""CALL ... YIELD end-to-end: registry, introspection, algorithms (ISSUE 8).

The procedure framework serves the GraphBLAS algorithm suite as
first-class Cypher: every registered procedure must be callable, compose
with downstream clauses, validate its arguments, and appear in
``CALL dbms.procedures()``.
"""

import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError, CypherTypeError
from repro.graph.config import GraphConfig
from repro.procedures import ProcArg, ProcCol, Procedure, registry


@pytest.fixture(scope="module")
def db():
    d = GraphDB("procs", GraphConfig(node_capacity=256))
    # a 4-node KNOWS chain plus a disconnected LIKES pair and a triangle
    d.query(
        "CREATE (a:Person {name: 'a'})-[:KNOWS]->(b:Person {name: 'b'})"
        "-[:KNOWS]->(c:Person {name: 'c'})-[:KNOWS]->(d:Person {name: 'd'})"
    )
    d.query("CREATE (x:Item {name: 'x'})-[:LIKES]->(y:Item {name: 'y'})")
    d.query(
        "CREATE (t1:Tri {name: 't1'})-[:KNOWS]->(t2:Tri {name: 't2'})"
        "-[:KNOWS]->(t3:Tri {name: 't3'})-[:KNOWS]->(t1)"
    )
    d.query("CREATE INDEX ON :Person(name)")
    return d


# ---------------------------------------------------------------------------
# Introspection procedures
# ---------------------------------------------------------------------------


class TestIntrospection:
    def test_db_labels(self, db):
        rows = db.query("CALL db.labels()").rows
        assert rows == [("Item",), ("Person",), ("Tri",)]

    def test_db_relationship_types(self, db):
        rows = db.query("CALL db.relationshipTypes()").rows
        assert rows == [("KNOWS",), ("LIKES",)]

    def test_db_property_keys(self, db):
        rows = db.query("CALL db.propertyKeys()").rows
        assert ("name",) in rows

    def test_db_indexes(self, db):
        rows = db.query("CALL db.indexes()").rows
        assert ("Person", "name", "range", 4, 4, None) in rows

    def test_dbms_procedures_lists_whole_catalog(self, db):
        names = [r[0] for r in db.query("CALL dbms.procedures() YIELD name RETURN name").rows]
        for expected in (
            "algo.bfs",
            "algo.pagerank",
            "algo.wcc",
            "algo.sssp",
            "algo.kcore",
            "algo.ktruss",
            "algo.triangleCount",
            "algo.khop",
            "algo.shortestPath",
            "db.labels",
            "db.relationshipTypes",
            "db.propertyKeys",
            "db.indexes",
            "dbms.procedures",
        ):
            assert expected in names

    def test_embedded_api_listing_matches_registry(self, db):
        listing = GraphDB.procedures()
        assert set(listing) == set(p.name for p in registry.all())
        assert "algo.pagerank" in listing
        assert listing["db.labels"].startswith("db.labels(")


# ---------------------------------------------------------------------------
# YIELD forms and composition
# ---------------------------------------------------------------------------


class TestYieldAndComposition:
    def test_trailing_call_without_yield_returns_all_columns(self, db):
        result = db.query("CALL db.labels()")
        assert result.columns == ["label"]

    def test_yield_alias(self, db):
        result = db.query("CALL db.labels() YIELD label AS l RETURN l ORDER BY l")
        assert result.columns == ["l"]
        assert result.rows[0] == ("Item",)

    def test_yield_where_filters(self, db):
        rows = db.query(
            "CALL db.labels() YIELD label WHERE label STARTS WITH 'P' RETURN label"
        ).rows
        assert rows == [("Person",)]

    def test_yield_into_return_expression(self, db):
        rows = db.query(
            "CALL algo.pagerank() YIELD node, score "
            "RETURN node.name AS name, score ORDER BY score DESC"
        ).rows
        scores = {name: score for name, score in rows}
        # rank flows down the chain: each hop accumulates strictly more
        assert scores["d"] > scores["c"] > scores["b"] > scores["a"]

    def test_call_composes_after_match(self, db):
        rows = db.query(
            "MATCH (s:Person {name: 'a'}) CALL algo.bfs(s) YIELD node, level "
            "RETURN node.name, level ORDER BY level"
        ).rows
        assert rows == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]

    def test_yield_node_feeds_downstream_match(self, db):
        # YIELD a node column, then traverse from it in a later MATCH
        rows = db.query(
            "MATCH (s:Person {name: 'a'}) CALL algo.khop(s, 1) YIELD node, hop "
            "MATCH (node)-[:KNOWS]->(m) RETURN node.name, m.name"
        ).rows
        assert rows == [("b", "c")]

    def test_call_runs_once_per_input_record(self, db):
        rows = db.query(
            "MATCH (s:Person) CALL algo.khop(s, 1) YIELD node "
            "RETURN s.name, node.name ORDER BY s.name"
        ).rows
        # every Person except the sink 'd' has exactly one 1-hop neighbour
        assert rows == [("a", "b"), ("b", "c"), ("c", "d")]

    def test_aggregate_over_yield(self, db):
        rows = db.query(
            "CALL algo.wcc() YIELD node, componentId "
            "RETURN componentId, count(node) AS size ORDER BY size DESC"
        ).rows
        assert [r[1] for r in rows] == [4, 3, 2]

    def test_explain_shows_procedure_call(self, db):
        plan = db.explain("CALL algo.pagerank() YIELD node, score RETURN score")
        assert "ProcedureCall | algo.pagerank() YIELD node, score" in plan


# ---------------------------------------------------------------------------
# Algorithms through CALL
# ---------------------------------------------------------------------------


class TestAlgorithmProcedures:
    def test_wcc_components(self, db):
        rows = db.query(
            "CALL algo.wcc() YIELD node, componentId RETURN node.name, componentId"
        ).rows
        comp = dict(rows)
        assert comp["a"] == comp["b"] == comp["c"] == comp["d"]
        assert comp["x"] == comp["y"] != comp["a"]
        assert comp["t1"] == comp["t2"] == comp["t3"] != comp["a"]

    def test_sssp_distances(self, db):
        rows = db.query(
            "MATCH (s:Person {name: 'a'}) CALL algo.sssp(s) YIELD node, distance "
            "RETURN node.name, distance ORDER BY distance"
        ).rows
        assert rows == [("a", 0.0), ("b", 1.0), ("c", 2.0), ("d", 3.0)]

    def test_triangle_count(self, db):
        rows = db.query("CALL algo.triangleCount() YIELD triangles RETURN triangles").rows
        assert rows == [(1,)]

    def test_kcore(self, db):
        rows = db.query(
            "CALL algo.kcore(2) YIELD node, coreNumber RETURN node.name ORDER BY node.name"
        ).rows
        assert [r[0] for r in rows] == ["t1", "t2", "t3"]

    def test_ktruss_returns_triangle_edges(self, db):
        rows = db.query(
            "CALL algo.ktruss(3) YIELD src, dst RETURN src.name, dst.name"
        ).rows
        names = {n for row in rows for n in row}
        assert names == {"t1", "t2", "t3"}

    def test_khop_frontiers(self, db):
        rows = db.query(
            "MATCH (s:Person {name: 'a'}) CALL algo.khop(s, 2) YIELD node, hop "
            "RETURN node.name, hop ORDER BY hop"
        ).rows
        assert rows == [("b", 1), ("c", 2)]

    def test_shortest_path(self, db):
        rows = db.query(
            "MATCH (a:Person {name: 'a'}), (d:Person {name: 'd'}) "
            "CALL algo.shortestPath(a, d) YIELD path, length "
            "RETURN length, size(nodes(path)), size(relationships(path))"
        ).rows
        assert rows == [(3, 4, 3)]

    def test_shortest_path_unreachable_yields_no_rows(self, db):
        rows = db.query(
            "MATCH (a:Person {name: 'a'}), (x:Item {name: 'x'}) "
            "CALL algo.shortestPath(a, x) YIELD path, length RETURN length"
        ).rows
        assert rows == []

    def test_reltype_scoping(self, db):
        # restricting WCC to LIKES leaves the KNOWS chain as singletons
        rows = db.query(
            "CALL algo.wcc('LIKES') YIELD node, componentId "
            "RETURN componentId, count(node) AS n ORDER BY n DESC LIMIT 1"
        ).rows
        assert rows[0][1] == 2


# ---------------------------------------------------------------------------
# Validation errors
# ---------------------------------------------------------------------------


class TestValidation:
    def test_unknown_procedure(self, db):
        with pytest.raises(CypherSemanticError, match="unknown procedure"):
            db.query("CALL algo.nope()")

    def test_unknown_yield_column(self, db):
        with pytest.raises(CypherSemanticError, match="does not yield"):
            db.query("CALL db.labels() YIELD nope RETURN nope")

    def test_duplicate_yield_name(self, db):
        with pytest.raises(CypherSemanticError, match="duplicate YIELD"):
            db.query("CALL db.indexes() YIELD label, property AS label RETURN label")

    def test_yield_shadowing_bound_variable(self, db):
        with pytest.raises(CypherSemanticError, match="already bound"):
            db.query(
                "MATCH (node:Person) CALL algo.wcc() YIELD node, componentId RETURN node"
            )

    def test_composing_call_requires_yield(self, db):
        with pytest.raises(CypherSemanticError, match="must use YIELD"):
            db.query("CALL db.labels() RETURN 1")

    def test_arity_too_many(self, db):
        with pytest.raises(CypherTypeError, match="argument"):
            db.query("CALL db.labels(1)")

    def test_arity_missing_required(self, db):
        with pytest.raises(CypherTypeError, match="argument"):
            db.query("CALL algo.kcore()")

    def test_argument_type_mismatch(self, db):
        with pytest.raises(CypherTypeError, match="expects an integer"):
            db.query("CALL algo.kcore('two')")

    def test_node_argument_rejects_scalar(self, db):
        with pytest.raises(CypherTypeError, match="node"):
            db.query("CALL algo.bfs('a')")

    def test_domain_validation(self, db):
        with pytest.raises(CypherTypeError, match="damping"):
            db.query("CALL algo.pagerank(null, 1.5)")

    def test_null_required_argument(self, db):
        with pytest.raises(CypherTypeError, match="must not be null"):
            db.query(
                "MATCH (s:Person {name: 'a'}) OPTIONAL MATCH (s)-[:NOPE]->(m) "
                "CALL algo.bfs(m) YIELD node RETURN node"
            )


# ---------------------------------------------------------------------------
# Plan-cache interaction
# ---------------------------------------------------------------------------


class TestPlanCacheFreshness:
    def test_registry_version_invalidates_cached_plans(self, db):
        query = "CALL db.labels() YIELD label RETURN count(label)"
        db.query(query)
        info = db.plan_cache_info()
        db.query(query)
        assert db.plan_cache_info()["hits"] == info["hits"] + 1
        # a (re-)registration bumps the registry version: cached CALL
        # plans must recompile rather than resolve against the old catalog
        registry.register(
            Procedure(
                name="test.fresh",
                args=(ProcArg("x", "integer"),),
                yields=(ProcCol("x", "integer"),),
                fn=lambda graph, x: [[x]],
            )
        )
        before = db.plan_cache_info()["misses"]
        db.query(query)
        assert db.plan_cache_info()["misses"] == before + 1

    def test_custom_registered_procedure_is_callable(self, db):
        registry.register(
            Procedure(
                name="test.echo",
                args=(ProcArg("x", "integer"),),
                yields=(ProcCol("doubled", "integer"),),
                fn=lambda graph, x: [[x * 2]],
            )
        )
        rows = db.query("CALL test.echo(21) YIELD doubled RETURN doubled").rows
        assert rows == [(42,)]
