"""Differential net for CALL: batch-size and worker-count invariance.

Every registered procedure runs through the full pipeline at
``exec_batch_size`` 1 (row-at-a-time bridge), 7 (misaligns every chunk
boundary) and 1024, and under ``parallel_workers`` 1 and 4 — results
must be identical, in order.  The ProcedureCall op chunks its columnar
YIELD output at the context batch size; none of that may change what
comes out.
"""

import pytest

from repro import GraphDB
from repro.execplan.ops_stream import _hashable
from repro.graph.config import GraphConfig

BATCH_SIZES = (1, 7, 1024)
WORKER_COUNTS = (1, 4)


def _normalize(rows):
    return [tuple(_hashable(v) for v in row) for row in rows]


@pytest.fixture(scope="module")
def db():
    d = GraphDB("diff-call", GraphConfig(node_capacity=512))
    # hub-and-spoke plus a chain and a triangle: enough rows that morsels
    # split, components differ, and k-core/k-truss are non-trivial
    d.query(
        "UNWIND range(0, 39) AS i "
        "CREATE (:Spoke {name: 'spoke' + toString(i), idx: i})"
    )
    d.query("CREATE (:Hub {name: 'hub'})")
    d.query(
        "MATCH (h:Hub), (s:Spoke) CREATE (h)-[:KNOWS {w: 1}]->(s)"
    )
    d.query(
        "MATCH (a:Spoke {idx: 0}), (b:Spoke {idx: 1}) CREATE (a)-[:LIKES]->(b)"
    )
    d.query(
        "CREATE (t1:Tri {name: 't1'})-[:KNOWS]->(t2:Tri {name: 't2'})"
        "-[:KNOWS]->(t3:Tri {name: 't3'})-[:KNOWS]->(t1)"
    )
    d.query("CREATE INDEX ON :Spoke(idx)")
    return d


# one query per registered procedure, plus composition shapes
QUERIES = [
    "CALL db.labels() YIELD label RETURN label ORDER BY label",
    "CALL db.relationshipTypes() YIELD relationshipType "
    "RETURN relationshipType ORDER BY relationshipType",
    "CALL db.propertyKeys() YIELD propertyKey RETURN propertyKey ORDER BY propertyKey",
    "CALL db.indexes() YIELD label, property, type RETURN label, property, type",
    "CALL dbms.procedures() YIELD name, signature, mode RETURN name, mode ORDER BY name",
    "MATCH (h:Hub) CALL algo.bfs(h) YIELD node, level "
    "RETURN node.name, level ORDER BY level, node.name",
    "CALL algo.pagerank() YIELD node, score RETURN node.name, score ORDER BY node.name",
    "CALL algo.wcc() YIELD node, componentId "
    "RETURN componentId, count(node) AS size ORDER BY size DESC, componentId",
    "MATCH (h:Hub) CALL algo.sssp(h) YIELD node, distance "
    "RETURN node.name, distance ORDER BY distance, node.name",
    "CALL algo.kcore(2) YIELD node, coreNumber RETURN node.name, coreNumber ORDER BY node.name",
    "CALL algo.ktruss(3) YIELD src, dst RETURN src.name, dst.name ORDER BY src.name, dst.name",
    "CALL algo.triangleCount() YIELD triangles RETURN triangles",
    "MATCH (h:Hub) CALL algo.khop(h, 2) YIELD node, hop "
    "RETURN node.name, hop ORDER BY hop, node.name",
    "MATCH (h:Hub), (s:Spoke {idx: 7}) CALL algo.shortestPath(h, s) YIELD path, length "
    "RETURN length, size(nodes(path))",
    # YIELD WHERE + downstream filter/aggregate
    "CALL algo.wcc() YIELD node, componentId WHERE componentId > 0 "
    "RETURN count(node)",
    # YIELD node into a downstream MATCH (the composition acceptance shape)
    "MATCH (h:Hub) CALL algo.khop(h, 1) YIELD node, hop "
    "MATCH (node)-[:LIKES]->(m) RETURN node.name, m.name ORDER BY node.name",
    # per-record fan-out: the proc runs once per incoming row
    "MATCH (t:Tri) CALL algo.khop(t, 1) YIELD node, hop "
    "RETURN t.name, node.name ORDER BY t.name, node.name",
    # named path + CALL in one query
    "MATCH p = (h:Hub)-[:KNOWS]->(s:Spoke {idx: 3}) CALL algo.bfs(s) YIELD node "
    "RETURN length(p), count(node)",
]


@pytest.mark.parametrize("query", QUERIES)
def test_batch_size_invariance(db, query):
    results = {}
    for size in BATCH_SIZES:
        db.graph.config.exec_batch_size = size
        try:
            results[size] = _normalize(db.query(query).rows)
        finally:
            db.graph.config.exec_batch_size = 1024
    assert results[1] == results[7] == results[1024], query


@pytest.mark.parametrize("query", QUERIES)
def test_worker_count_invariance(db, query):
    cfg = db.graph.config
    results = {}
    for workers in WORKER_COUNTS:
        cfg.parallel_workers, cfg.morsel_size = workers, 8
        try:
            results[workers] = _normalize(db.query(query).rows)
        finally:
            cfg.parallel_workers, cfg.morsel_size = 1, 2048
    assert results[1] == results[4], query
