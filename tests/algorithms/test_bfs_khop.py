"""BFS / k-hop algorithms validated against networkx references."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import bfs_levels, bfs_parents, khop_counts, khop_frontiers
from repro.grblas import Matrix


def random_digraph(n, p, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) < p
    np.fill_diagonal(dense, False)
    src, dst = np.nonzero(dense)
    A = Matrix.from_edges(src, dst, nrows=n)
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return A, G


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("p", [0.05, 0.2])
def test_bfs_levels_matches_networkx(seed, p):
    A, G = random_digraph(30, p, seed)
    expected = nx.single_source_shortest_path_length(G, 0)
    got = bfs_levels(A, 0)
    got_map = {int(i): int(v) for i, v in zip(got.indices, got.values)}
    assert got_map == expected


@pytest.mark.parametrize("direction_optimized", [False, True])
def test_bfs_direction_optimization_equivalent(direction_optimized):
    A, G = random_digraph(60, 0.15, seed=7)
    base = bfs_levels(A, 0, direction_optimized=False)
    got = bfs_levels(A, 0, direction_optimized=direction_optimized)
    assert got == base


def test_bfs_levels_max_level_truncates():
    A, _ = random_digraph(30, 0.1, seed=5)
    full = bfs_levels(A, 0)
    capped = bfs_levels(A, 0, max_level=1)
    assert capped.nvals <= full.nvals
    assert int(capped.values.max(initial=0)) <= 1


def test_bfs_levels_isolated_source():
    A = Matrix.from_edges([1], [2], nrows=3)
    levels = bfs_levels(A, 0)
    assert levels.nvals == 1 and levels[0] == 0


def test_bfs_parents_valid_tree():
    A, G = random_digraph(40, 0.1, seed=9)
    parents = bfs_parents(A, 0)
    levels = bfs_levels(A, 0)
    # same reachable set
    assert np.array_equal(parents.indices, levels.indices)
    for node, parent in zip(parents.indices, parents.values):
        node, parent = int(node), int(parent)
        if node == 0:
            assert parent == 0
            continue
        assert A[parent, node] is not None, "parent edge must exist"
        assert levels[parent] == levels[node] - 1, "parent one level up"


class TestKhop:
    def nx_khop(self, G, seed, k):
        lengths = nx.single_source_shortest_path_length(G, seed, cutoff=k)
        return len(lengths) - 1  # exclude the seed itself

    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    @pytest.mark.parametrize("seed_graph", [0, 1])
    def test_within_matches_networkx(self, k, seed_graph):
        A, G = random_digraph(40, 0.08, seed_graph)
        for s in (0, 5, 17):
            assert khop_counts(A, s, k) == self.nx_khop(G, s, k)

    def test_exact_mode(self):
        # path graph 0 -> 1 -> 2 -> 3
        A = Matrix.from_edges([0, 1, 2], [1, 2, 3], nrows=4)
        assert khop_counts(A, 0, 2, mode="exact") == 1
        assert khop_counts(A, 0, 2, mode="within") == 2
        assert khop_counts(A, 0, 9, mode="exact") == 0

    def test_frontiers_disjoint_and_exclude_seed(self):
        A, _ = random_digraph(30, 0.15, seed=3)
        frontiers = khop_frontiers(A, 0, 4)
        seen = {0}
        for f in frontiers:
            ids = set(int(i) for i in f.indices)
            assert not (ids & seen), "frontiers must be disjoint from visited"
            seen |= ids

    def test_khop_on_cycle_saturates(self):
        A = Matrix.from_edges([0, 1, 2], [1, 2, 0], nrows=3)
        assert khop_counts(A, 0, 6) == 2  # whole cycle minus the seed

    @given(st.integers(0, 2**31 - 1), st.integers(1, 4))
    def test_within_count_monotone_in_k(self, seed, k):
        A, _ = random_digraph(25, 0.1, seed % 100)
        assert khop_counts(A, 0, k) <= khop_counts(A, 0, k + 1)
