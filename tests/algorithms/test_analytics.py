"""SSSP, PageRank, triangles, k-truss, components vs networkx references."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    connected_components,
    ktruss,
    pagerank,
    sssp_bellman_ford,
    triangle_count,
)
from repro.errors import InvalidValue
from repro.grblas import FP64, Matrix


def random_weighted_digraph(n, p, seed, wmin=1.0, wmax=9.0):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) < p
    np.fill_diagonal(dense, False)
    src, dst = np.nonzero(dense)
    w = rng.uniform(wmin, wmax, len(src)).round(2)
    A = Matrix.from_coo(src, dst, w, nrows=n, ncols=n, dtype=FP64)
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    for s, d, ww in zip(src.tolist(), dst.tolist(), w.tolist()):
        G.add_edge(s, d, weight=ww)
    return A, G


def random_undirected(n, p, seed):
    rng = np.random.default_rng(seed)
    dense = np.triu(rng.random((n, n)) < p, 1)
    src, dst = np.nonzero(dense)
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    A = Matrix.from_edges(all_src, all_dst, nrows=n)
    G = nx.Graph()
    G.add_nodes_from(range(n))
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return A, G


class TestSSSP:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        A, G = random_weighted_digraph(25, 0.15, seed)
        expected = nx.single_source_bellman_ford_path_length(G, 0)
        got = sssp_bellman_ford(A, 0)
        got_map = {int(i): float(v) for i, v in zip(got.indices, got.values)}
        assert set(got_map) == set(expected)
        for k in expected:
            assert got_map[k] == pytest.approx(expected[k])

    def test_negative_edges_ok_without_cycle(self):
        A = Matrix.from_coo([0, 1], [1, 2], [5.0, -3.0], nrows=3, ncols=3, dtype=FP64)
        d = sssp_bellman_ford(A, 0)
        assert d[2] == 2.0

    def test_negative_cycle_detected(self):
        A = Matrix.from_coo([0, 1, 2], [1, 2, 1], [1.0, -2.0, 1.0], nrows=3, ncols=3, dtype=FP64)
        with pytest.raises(InvalidValue):
            sssp_bellman_ford(A, 0)


class TestPageRank:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, seed):
        A, G = random_weighted_digraph(30, 0.1, seed)
        expected = nx.pagerank(G.copy(), alpha=0.85, weight=None, tol=1e-10)
        got = pagerank(A.pattern(), damping=0.85, tol=1e-12).to_dense()
        for node, val in expected.items():
            assert got[node] == pytest.approx(val, abs=1e-6)

    def test_sums_to_one(self):
        A, _ = random_weighted_digraph(40, 0.05, 3)
        assert pagerank(A).to_dense().sum() == pytest.approx(1.0)

    def test_dangling_nodes_handled(self):
        # 0 -> 1, node 1 dangles
        A = Matrix.from_edges([0], [1], nrows=2)
        r = pagerank(A).to_dense()
        assert r.sum() == pytest.approx(1.0)
        assert r[1] > r[0]

    def test_empty_graph(self):
        assert pagerank(Matrix.new(FP64, 0, 0)).size == 0


class TestTriangles:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx(self, seed):
        A, G = random_undirected(25, 0.25, seed)
        expected = sum(nx.triangles(G).values()) // 3
        assert triangle_count(A) == expected

    def test_k4_has_four_triangles(self):
        G = nx.complete_graph(4)
        src, dst = zip(*G.to_directed().edges())
        A = Matrix.from_edges(src, dst, nrows=4)
        assert triangle_count(A) == 4

    def test_triangle_free(self):
        A = Matrix.from_edges([0, 1, 1, 2], [1, 0, 2, 1], nrows=3)
        assert triangle_count(A) == 0

    def test_directed_input_symmetrized(self):
        # one-directional triangle edges still form one undirected triangle
        A = Matrix.from_edges([0, 1, 2], [1, 2, 0], nrows=3)
        assert triangle_count(A) == 1


class TestKTruss:
    @pytest.mark.parametrize("k", [3, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, k, seed):
        A, G = random_undirected(20, 0.3, seed)
        expected = nx.k_truss(G, k)
        got = ktruss(A, k)
        got_edges = set()
        rows, cols, _ = got.to_coo()
        for r, c in zip(rows.tolist(), cols.tolist()):
            if r < c:
                got_edges.add((r, c))
        exp_edges = {(min(u, v), max(u, v)) for u, v in expected.edges()}
        assert got_edges == exp_edges

    def test_k2_returns_graph(self):
        A, _ = random_undirected(10, 0.3, 5)
        assert ktruss(A, 2).nvals == A.nvals

    def test_invalid_k(self):
        with pytest.raises(InvalidValue):
            ktruss(Matrix.new(FP64, 2, 2), 1)


class TestComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        A, G = random_undirected(30, 0.05, seed)
        labels = connected_components(A).to_dense()
        for comp in nx.connected_components(G):
            comp = sorted(comp)
            assert len({labels[c] for c in comp}) == 1, "one label per component"
            assert labels[comp[0]] == comp[0], "label is the min node id"

    def test_directed_weak_components(self):
        A = Matrix.from_edges([0, 2], [1, 3], nrows=5)
        labels = connected_components(A).to_dense()
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 2
        assert labels[4] == 4

    def test_fully_connected(self):
        A = Matrix.from_edges([0, 1, 2], [1, 2, 0], nrows=3)
        assert set(connected_components(A).to_dense().tolist()) == {0}
