"""k-core / core numbers / clustering coefficient vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import clustering_coefficient, core_numbers, kcore
from repro.errors import InvalidValue
from repro.grblas import Matrix


def random_undirected(n, p, seed):
    rng = np.random.default_rng(seed)
    dense = np.triu(rng.random((n, n)) < p, 1)
    src, dst = np.nonzero(dense)
    A = Matrix.from_edges(np.concatenate([src, dst]), np.concatenate([dst, src]), nrows=n)
    G = nx.Graph()
    G.add_nodes_from(range(n))
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return A, G


class TestKCore:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, k, seed):
        A, G = random_undirected(25, 0.2, seed)
        expected = nx.k_core(G, k)
        got = kcore(A, k)
        got_edges = set()
        rows, cols, _ = got.to_coo()
        for r, c in zip(rows.tolist(), cols.tolist()):
            if r < c:
                got_edges.add((r, c))
        exp_edges = {(min(u, v), max(u, v)) for u, v in expected.edges()}
        assert got_edges == exp_edges

    def test_k0_is_graph(self):
        A, _ = random_undirected(10, 0.3, 4)
        assert kcore(A, 0).nvals == A.nvals

    def test_negative_k(self):
        with pytest.raises(InvalidValue):
            kcore(Matrix.new("BOOL", 2, 2), -1)

    def test_triangle_is_2core(self):
        A = Matrix.from_edges([0, 1, 2, 1, 2, 0], [1, 2, 0, 0, 1, 2], nrows=4)
        assert kcore(A, 2).nvals == 6
        assert kcore(A, 3).nvals == 0


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        A, G = random_undirected(30, 0.15, seed)
        expected = nx.core_number(G)
        got = core_numbers(A).to_dense()
        for node, core in expected.items():
            assert got[node] == core, f"node {node}"

    def test_isolated_vertices_zero(self):
        A = Matrix.from_edges([0, 1], [1, 0], nrows=5)
        got = core_numbers(A).to_dense()
        assert got[4] == 0 and got[0] == 1


class TestClusteringCoefficient:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        A, G = random_undirected(20, 0.3, seed)
        expected = nx.clustering(G)
        got = clustering_coefficient(A).to_dense()
        for node, coeff in expected.items():
            assert got[node] == pytest.approx(coeff), f"node {node}"

    def test_complete_graph_all_ones(self):
        G = nx.complete_graph(5).to_directed()
        src, dst = zip(*G.edges())
        A = Matrix.from_edges(src, dst, nrows=5)
        assert np.allclose(clustering_coefficient(A).to_dense(), 1.0)

    def test_star_graph_zero(self):
        # hub connected to 4 leaves: no triangles anywhere
        src = [0, 0, 0, 0, 1, 2, 3, 4]
        dst = [1, 2, 3, 4, 0, 0, 0, 0]
        A = Matrix.from_edges(src, dst, nrows=5)
        assert np.allclose(clustering_coefficient(A).to_dense(), 0.0)
