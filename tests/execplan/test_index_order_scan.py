"""Index-backed ORDER BY: ``MATCH (n:L) ... ORDER BY n.attr [DESC] LIMIT k``
over an indexed attribute must plan as :class:`IndexOrderScan` (no Sort
operator — rows stream out of the index in order, so LIMIT k stops after
k rows instead of sorting the whole label), and the fast path must return
exactly what the generic ``label scan + Sort`` pipeline returns — same
rows, same order — across types, directions, aliases and churn.
"""

import random

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

SEEDS = [5, 21, 77]


def build_pair(seed):
    """Two graphs with identical data; only one has the index."""
    rng = random.Random(seed)
    fast = GraphDB("fast", GraphConfig(index_merge_threshold=4))
    slow = GraphDB("slow")
    fast.query("CREATE INDEX ON :P(v)")
    values = []
    for i in range(60):
        values.append(
            rng.choice(
                [
                    rng.randint(-5, 5),
                    rng.randint(0, 3) + 0.5,
                    10**18 + rng.randint(0, 3),  # beyond float64 ULP
                    f"s{rng.randint(0, 9)}",
                    rng.random() < 0.5,
                    [rng.randint(0, 2)],
                    None,  # property absent on the node
                ]
            )
        )
    for db in (fast, slow):
        for v in values:
            if v is None:
                db.query("CREATE (:P {other: 1})")
            else:
                db.query("CREATE (:P {v: $v})", {"v": v})
    # churn: updates move nodes between index buckets, deletes shrink it
    for db in (fast, slow):
        db.query("MATCH (n:P) WHERE id(n) % 7 = 0 SET n.v = id(n)")
        db.query("MATCH (n:P) WHERE id(n) % 11 = 3 REMOVE n.v")
        db.query("MATCH (n:P) WHERE id(n) % 13 = 5 DELETE n")
    return fast, slow


QUERIES = [
    "MATCH (n:P) RETURN id(n), n.v ORDER BY n.v",
    "MATCH (n:P) RETURN id(n), n.v ORDER BY n.v DESC",
    "MATCH (n:P) RETURN id(n), n.v ORDER BY n.v LIMIT 5",
    "MATCH (n:P) RETURN id(n), n.v ORDER BY n.v DESC LIMIT 5",
    "MATCH (n:P) RETURN id(n), n.v AS x ORDER BY x",  # alias dereference
    "MATCH (n:P) RETURN id(n) ORDER BY n.v",  # key not projected
    "MATCH (n:P) RETURN id(n), n.v ORDER BY n.v SKIP 3 LIMIT 4",
]


class TestDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_path_matches_sort(self, seed):
        fast, slow = build_pair(seed)
        for q in QUERIES:
            assert "IndexOrderScan" in fast.explain(q), q
            assert "IndexOrderScan" not in slow.explain(q), q
            assert fast.query(q).rows == slow.query(q).rows, q

    def test_order_is_total_including_unindexed_nodes(self):
        """Nodes missing the attribute (and non-scalar values) still appear,
        in the same type-class positions Sort gives them."""
        fast, slow = build_pair(99)
        q = "MATCH (n:P) RETURN id(n) ORDER BY n.v"
        assert fast.query(q).rows == slow.query(q).rows
        q = "MATCH (n:P) RETURN id(n) ORDER BY n.v DESC"
        assert fast.query(q).rows == slow.query(q).rows


class TestPlanShape:
    @pytest.fixture()
    def db(self):
        d = GraphDB("shape")
        d.query("CREATE INDEX ON :P(age)")
        for i in range(10):
            d.query("CREATE (:P {age: $a, name: $n})", {"a": i, "n": f"p{i}"})
        return d

    def test_explain_shows_index_order_scan_and_no_sort(self, db):
        plan = db.explain("MATCH (n:P) RETURN n.name ORDER BY n.age LIMIT 3")
        assert "IndexOrderScan | (n:P) [age ASC]" in plan
        assert "Sort" not in plan
        assert "Limit" in plan

    def test_desc_direction_in_plan(self, db):
        plan = db.explain("MATCH (n:P) RETURN n.name ORDER BY n.age DESC")
        assert "IndexOrderScan | (n:P) [age DESC]" in plan

    def test_no_fast_path_without_index(self, db):
        plan = db.explain("MATCH (n:P) RETURN n.name ORDER BY n.name")
        assert "IndexOrderScan" not in plan
        assert "Sort" in plan

    def test_no_fast_path_with_where(self, db):
        # a WHERE filter plans a Filter (or a seek) above the scan — the
        # scan is no longer the direct child of the projection
        plan = db.explain(
            "MATCH (n:P) WHERE n.name = 'p3' RETURN n.name ORDER BY n.age"
        )
        assert "IndexOrderScan" not in plan

    def test_no_fast_path_with_aggregate(self, db):
        plan = db.explain("MATCH (n:P) RETURN n.age, count(n) ORDER BY n.age")
        assert "IndexOrderScan" not in plan

    def test_no_fast_path_with_distinct(self, db):
        plan = db.explain("MATCH (n:P) RETURN DISTINCT n.age ORDER BY n.age")
        assert "IndexOrderScan" not in plan

    def test_no_fast_path_on_multiple_keys(self, db):
        plan = db.explain("MATCH (n:P) RETURN n.name ORDER BY n.age, n.name")
        assert "IndexOrderScan" not in plan

    def test_vector_index_never_triggers_fast_path(self, db):
        db.query("CREATE VECTOR INDEX ON :P(emb) OPTIONS {dimension: 2}")
        plan = db.explain("MATCH (n:P) RETURN n.name ORDER BY n.emb")
        assert "IndexOrderScan" not in plan

    def test_runtime_fallback_when_index_dropped(self, db):
        """A cached plan keeps running (stable sorted label scan) if the
        index disappears between planning and execution."""
        text = "MATCH (n:P) RETURN n.age ORDER BY n.age DESC LIMIT 4"
        compiled, _ = db.engine.get_plan(text)
        expected = db.query(text).rows
        db.query("DROP INDEX ON :P(age)")
        result = db.engine.execute(compiled, None)
        assert list(result.rows) == expected == [(9,), (8,), (7,), (6,)]
