"""Runtime expression semantics (evaluated through RETURN projections)."""

import math

import pytest

from repro import GraphDB
from repro.errors import CypherTypeError


@pytest.fixture
def db():
    return GraphDB("expr")


def val(db, expression, params=None):
    return db.query(f"RETURN {expression} AS v", params).scalar()


class TestArithmetic:
    def test_integer_ops(self, db):
        assert val(db, "1 + 2 * 3") == 7
        assert val(db, "7 - 10") == -3
        assert val(db, "2 ^ 10") == 1024.0

    def test_integer_division_truncates(self, db):
        assert val(db, "7 / 2") == 3
        assert val(db, "-7 / 2") == -3  # toward zero

    def test_float_division(self, db):
        assert val(db, "7.0 / 2") == 3.5

    def test_modulo(self, db):
        assert val(db, "7 % 3") == 1
        assert val(db, "7.5 % 2") == pytest.approx(1.5)

    def test_division_by_zero_integer(self, db):
        with pytest.raises(CypherTypeError):
            val(db, "1 / 0")

    def test_unary_minus(self, db):
        assert val(db, "-(3 + 4)") == -7

    def test_string_concat(self, db):
        assert val(db, "'a' + 'b'") == "ab"
        assert val(db, "'a' + 1") == "a1"

    def test_list_concat(self, db):
        assert val(db, "[1] + [2, 3]") == [1, 2, 3]
        assert val(db, "[1] + 2") == [1, 2]

    def test_null_propagation(self, db):
        assert val(db, "1 + null") is None
        assert val(db, "null * 3") is None


class TestComparisonLogic:
    def test_comparisons(self, db):
        assert val(db, "1 < 2") is True
        assert val(db, "2 <= 1") is False
        assert val(db, "'a' < 'b'") is True

    def test_equality_across_numeric_types(self, db):
        assert val(db, "1 = 1.0") is True
        assert val(db, "1 <> 2") is True

    def test_equality_across_kinds_is_false(self, db):
        assert val(db, "1 = 'a'") is False

    def test_null_comparisons_are_null(self, db):
        assert val(db, "null = null") is None
        assert val(db, "1 > null") is None

    def test_kleene_and_or(self, db):
        assert val(db, "true AND null") is None
        assert val(db, "false AND null") is False
        assert val(db, "true OR null") is True
        assert val(db, "false OR null") is None
        assert val(db, "NOT null") is None

    def test_xor(self, db):
        assert val(db, "true XOR false") is True
        assert val(db, "true XOR true") is False
        assert val(db, "true XOR null") is None

    def test_in_list_null_semantics(self, db):
        assert val(db, "1 IN [1, 2]") is True
        assert val(db, "3 IN [1, 2]") is False
        assert val(db, "3 IN [1, null]") is None
        assert val(db, "null IN [1]") is None
        assert val(db, "1 IN null") is None

    def test_is_null(self, db):
        assert val(db, "null IS NULL") is True
        assert val(db, "1 IS NOT NULL") is True


class TestListsAndMaps:
    def test_index(self, db):
        assert val(db, "[10, 20, 30][1]") == 20
        assert val(db, "[10, 20, 30][-1]") == 30
        assert val(db, "[10][5]") is None

    def test_slice(self, db):
        assert val(db, "[1,2,3,4][1..3]") == [2, 3]
        assert val(db, "[1,2,3,4][..2]") == [1, 2]
        assert val(db, "[1,2,3,4][2..]") == [3, 4]

    def test_map_literal_and_access(self, db):
        assert val(db, "{a: 1, b: 'x'}.b") == "x"
        assert val(db, "{a: 1}['a']") == 1

    def test_range_function(self, db):
        assert val(db, "range(1, 4)") == [1, 2, 3, 4]
        assert val(db, "range(0, 10, 5)") == [0, 5, 10]

    def test_size_head_last(self, db):
        assert val(db, "size([1,2,3])") == 3
        assert val(db, "head([1,2])") == 1
        assert val(db, "last([1,2])") == 2
        assert val(db, "head([])") is None


class TestStringsAndFunctions:
    def test_case_functions(self, db):
        assert val(db, "toUpper('ab')") == "AB"
        assert val(db, "toLower('AB')") == "ab"

    def test_trim_replace_split(self, db):
        assert val(db, "trim('  x ')") == "x"
        assert val(db, "replace('aXb', 'X', '-')") == "a-b"
        assert val(db, "split('a,b', ',')") == ["a", "b"]

    def test_substring_left_right(self, db):
        assert val(db, "substring('hello', 1, 3)") == "ell"
        assert val(db, "left('hello', 2)") == "he"
        assert val(db, "right('hello', 2)") == "lo"

    def test_conversions(self, db):
        assert val(db, "toInteger('42')") == 42
        assert val(db, "toInteger('nope')") is None
        assert val(db, "toFloat('2.5')") == 2.5
        assert val(db, "toString(true)") == "true"

    def test_numeric_functions(self, db):
        assert val(db, "abs(-3)") == 3
        assert val(db, "sign(-9)") == -1
        assert val(db, "ceil(1.2)") == 2.0
        assert val(db, "floor(1.8)") == 1.0
        assert val(db, "round(2.5)") == 3.0
        assert val(db, "sqrt(16)") == 4.0

    def test_coalesce(self, db):
        assert val(db, "coalesce(null, null, 7)") == 7
        assert val(db, "coalesce(null)") is None

    def test_null_propagates_through_functions(self, db):
        assert val(db, "toUpper(null)") is None
        assert val(db, "abs(null)") is None

    def test_case_expression_generic(self, db):
        assert val(db, "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END") == "b"

    def test_case_expression_subject(self, db):
        assert val(db, "CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"
        assert val(db, "CASE 9 WHEN 1 THEN 'one' END") is None

    def test_unknown_function(self, db):
        with pytest.raises(CypherTypeError, match="unknown function"):
            val(db, "frobnicate(1)")


class TestEntityFunctions:
    def test_id_labels_type(self, db):
        db.query("CREATE (:A:B {x: 1})-[:R]->(:C)")
        row = db.query("MATCH (a:A)-[e:R]->(c) RETURN id(a), labels(a), type(e)").rows[0]
        assert isinstance(row[0], int)
        assert sorted(row[1]) == ["A", "B"]
        assert row[2] == "R"

    def test_properties_and_keys(self, db):
        db.query("CREATE (:A {x: 1, y: 2})")
        row = db.query("MATCH (a:A) RETURN properties(a), keys(a)").rows[0]
        assert row[0] == {"x": 1, "y": 2}
        assert row[1] == ["x", "y"]

    def test_start_end_node(self, db):
        db.query("CREATE (:A {n: 'src'})-[:R]->(:B {n: 'dst'})")
        row = db.query(
            "MATCH ()-[e:R]->() RETURN startNode(e).n, endNode(e).n"
        ).rows[0]
        assert row == ("src", "dst")

    def test_parameter_list(self, db):
        assert val(db, "$xs[1]", {"xs": [9, 8, 7]}) == 8
