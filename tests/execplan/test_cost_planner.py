"""Cost-based planning: plan choices must follow the statistics, results
must never depend on them.

The differential battery runs every query twice on the same graph —
``cost_based_planner`` on and off — and requires identical results
(sorted multisets for unordered queries, exact rows under ORDER BY).
The plan-shape tests use a deliberately skewed graph (120 :Common vs
5 :Rare) where the statistics-driven anchor, join order and traversal
direction are observably different from the syntactic ones.
"""

import types

import pytest

from repro import GraphDB
from repro.execplan import executor as executor_module
from repro.execplan.morsel import MorselDriver
from repro.execplan.optimizer import _literal_count


def set_knob(db: GraphDB, value: int) -> None:
    db.graph.config.cost_based_planner = value
    db.graph.bump_schema_version()  # GRAPH.CONFIG SET does the same


@pytest.fixture
def skewed():
    """120 :Common fanning into 5 :Rare — the anchor-choice battleground."""
    db = GraphDB("skew")
    set_knob(db, 1)  # explicit: survives the REPRO_COST_BASED_PLANNER=0 CI leg
    db.query(
        "UNWIND range(0, 119) AS i "
        "CREATE (:Common {i: i, grp: i % 4})"
    )
    db.query("UNWIND range(0, 4) AS i CREATE (:Rare {i: i})")
    db.query(
        "MATCH (a:Common), (b:Rare) WHERE a.i % 5 = b.i AND a.grp < 3 "
        "CREATE (a)-[:R]->(b)"
    )
    db.query("MATCH (b:Rare), (c:Common) WHERE c.i = b.i CREATE (b)-[:S]->(c)")
    return db


DIFFERENTIAL_QUERIES = [
    "MATCH (a:Common)-[:R]->(b:Rare) RETURN a.i, b.i",
    "MATCH (a:Rare)<-[:R]-(b:Common) RETURN a.i, b.i",
    "MATCH (a:Common)-[:R]->(b:Rare)-[:S]->(c:Common) RETURN a.i, b.i, c.i",
    "MATCH (a:Common {grp: 1})-[:R]->(b) RETURN a.i, b.i",
    "MATCH (a:Rare)-[:S*1..2]->(b) RETURN a.i, b.i",
    "MATCH (b:Rare) OPTIONAL MATCH (b)<-[:R]-(a:Common {grp: 0}) RETURN b.i, a.i",
    "MATCH (a:Rare), (b:Rare) WHERE a.i < b.i RETURN a.i, b.i",
    "MATCH (a:Common) WHERE a.grp = 2 RETURN count(a)",
    "MATCH (a:Common)-[:R]->(b:Rare) RETURN b.i, count(a) ORDER BY b.i",
]


class TestDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_same_results_both_modes(self, skewed, query):
        on = skewed.query(query).rows
        set_knob(skewed, 0)
        off = skewed.query(query).rows
        if "ORDER BY" in query:
            assert on == off
        else:
            assert sorted(map(repr, on)) == sorted(map(repr, off))

    def test_same_results_with_index(self, skewed):
        skewed.query("CREATE INDEX ON :Common(grp)")
        query = "MATCH (a:Common {grp: 3})-[:R]->(b) RETURN a.i, b.i"
        on = skewed.query(query).rows
        set_knob(skewed, 0)
        off = skewed.query(query).rows
        assert sorted(map(repr, on)) == sorted(map(repr, off))


class TestPlanChoices:
    def test_anchor_by_cardinality_not_syntax(self, skewed):
        """Left-to-right syntax says scan :Common; statistics say the
        5-node :Rare side is 24x cheaper, entering through the cached
        transpose."""
        plan = skewed.explain("MATCH (a:Common)-[:R]->(b:Rare) RETURN a.i")
        assert "NodeByLabelScan | (b:Rare)" in plan
        assert "T(R)" in plan  # walked backwards -> transposed operand
        set_knob(skewed, 0)
        rule = skewed.explain("MATCH (a:Common)-[:R]->(b:Rare) RETURN a.i")
        assert "NodeByLabelScan | (a:Common)" in rule
        assert "T(R)" not in rule

    def test_chain_anchors_mid_pattern(self, skewed):
        """A three-hop chain anchors on the rare middle node and expands
        outward both ways — impossible for the syntactic planner, which
        only ever starts at an end."""
        plan = skewed.explain(
            "MATCH (a:Common)-[:R]->(b:Rare)-[:S]->(c:Common) RETURN a.i, c.i"
        )
        assert "NodeByLabelScan | (b:Rare)" in plan

    def test_priced_index_choice(self):
        """Two indexed properties: the planner seeks the one with the
        smaller average posting list (higher NDV), not the first one
        written in the pattern."""
        db = GraphDB("idx")
        set_knob(db, 1)
        db.query("UNWIND range(0, 99) AS i CREATE (:Item {sku: i, cat: i % 2})")
        db.query("CREATE INDEX ON :Item(cat)")
        db.query("CREATE INDEX ON :Item(sku)")
        plan = db.explain("MATCH (n:Item {cat: 1, sku: 7}) RETURN n")
        assert "NodeByIndexScan | (n:Item {sku})" in plan

    def test_rule_planner_reproduced_when_off(self, skewed):
        """The knob's contract: off must reproduce today's rule-based
        plans byte-for-byte (no estimates, syntactic anchor)."""
        queries = DIFFERENTIAL_QUERIES[:4]
        set_knob(skewed, 0)
        off_plans = [skewed.explain(q) for q in queries]
        for plan in off_plans:
            assert "est_rows" not in plan


class TestEstimateSurfacing:
    def test_explain_shows_est_rows(self, skewed):
        plan = skewed.explain("MATCH (a:Rare) RETURN a.i")
        assert "NodeByLabelScan | (a:Rare) | est_rows: 5" in plan

    def test_every_op_is_annotated(self, skewed):
        plan = skewed.explain(
            "MATCH (a:Common)-[:R]->(b:Rare) WHERE a.grp = 1 RETURN a.i ORDER BY a.i LIMIT 3"
        )
        for line in plan.splitlines():
            assert "est_rows:" in line, line

    def test_profile_shows_estimated_vs_actual(self, skewed):
        result = skewed.profile("MATCH (a:Rare) RETURN a.i")
        line = next(l for l in result.profile.splitlines() if "NodeByLabelScan" in l)
        assert "est_rows: 5" in line and "Records produced: 5" in line

    def test_estimates_follow_growth(self, skewed):
        assert "est_rows: 5" in skewed.explain("MATCH (a:Rare) RETURN a.i")
        skewed.query("UNWIND range(5, 260) AS i CREATE (:Rare {i: i})")
        # growth crossed the epoch drift threshold: the cached plan was
        # re-priced, not reused with 5-node estimates
        assert "est_rows: 261" in skewed.explain("MATCH (a:Rare) RETURN a.i")


class TestMorselGating:
    def _spy(self, monkeypatch):
        created = []

        def factory(workers, morsel_size):
            created.append((workers, morsel_size))
            return MorselDriver(workers, morsel_size)

        monkeypatch.setattr(executor_module, "MorselDriver", factory)
        return created

    def test_small_estimate_skips_the_driver(self, skewed, monkeypatch):
        created = self._spy(monkeypatch)
        skewed.graph.config.parallel_workers = 2
        skewed.query("MATCH (a:Rare) RETURN a.i")  # est 5 << morsel_size
        assert created == []

    def test_large_estimate_keeps_the_driver(self, skewed, monkeypatch):
        created = self._spy(monkeypatch)
        skewed.graph.config.parallel_workers = 2
        skewed.graph.config.morsel_size = 16
        set_knob(skewed, 1)  # re-bump: config edits above bypassed CONFIG SET
        skewed.query("MATCH (a:Common) RETURN a.i")  # est 120 >= 16
        assert len(created) == 1

    def test_rule_based_plans_always_get_the_driver(self, skewed, monkeypatch):
        created = self._spy(monkeypatch)
        set_knob(skewed, 0)
        skewed.graph.config.parallel_workers = 2
        skewed.query("MATCH (a:Rare) RETURN a.i")  # no estimate -> old behavior
        assert len(created) == 1


class TestPlanCacheEpochs:
    def test_hit_while_epoch_stable(self, skewed):
        skewed.query("MATCH (a:Rare) RETURN a.i")
        before = skewed.plan_cache_info()["hits"]
        skewed.query("MATCH (a:Rare) RETURN a.i")
        assert skewed.plan_cache_info()["hits"] == before + 1

    def test_miss_after_epoch_drift(self, skewed):
        skewed.query("MATCH (a:Rare) RETURN a.i")
        epoch = skewed.graph.stats.epoch
        skewed.query("UNWIND range(0, 399) AS i CREATE (:Filler)")
        assert skewed.graph.stats.epoch > epoch
        misses = skewed.plan_cache_info()["misses"]
        skewed.query("MATCH (a:Rare) RETURN a.i")
        assert skewed.plan_cache_info()["misses"] == misses + 1


class TestLiteralCountErrors:
    def test_expected_probe_errors_mean_dynamic(self):
        for exc in (AttributeError, IndexError, KeyError, TypeError):
            limit = types.SimpleNamespace(_count=_raiser(exc))
            assert _literal_count(limit) == -1

    def test_unexpected_errors_propagate(self):
        """The old bare ``except Exception`` silently degraded top-k sort
        on planner bugs; anything unexpected must now surface."""
        limit = types.SimpleNamespace(_count=_raiser(ZeroDivisionError))
        with pytest.raises(ZeroDivisionError):
            _literal_count(limit)

    def test_non_integer_literals_are_dynamic(self):
        for value in (True, 2.5, -1, "3"):
            limit = types.SimpleNamespace(_count=lambda rec, params, v=value: v)
            assert _literal_count(limit) == -1
        limit = types.SimpleNamespace(_count=lambda rec, params: 7)
        assert _literal_count(limit) == 7


def _raiser(exc_type):
    def _count(record, params):
        raise exc_type("probe")

    return _count
