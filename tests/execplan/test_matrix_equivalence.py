"""Ground-truth equivalence: Cypher queries vs direct GraphBLAS kernels vs
networkx, on randomized graphs.

This is the test that ties the whole reproduction together: the k-hop
Cypher query the paper benchmarks must return exactly the count the
matrix-level k-hop kernel (and networkx) computes.
"""

import networkx as nx
import numpy as np
import pytest

from repro import GraphDB
from repro.algorithms import khop_counts
from repro.graph.config import GraphConfig


def build_random_db(n, p, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) < p
    np.fill_diagonal(dense, False)
    src, dst = np.nonzero(dense)
    db = GraphDB("rand", GraphConfig(node_capacity=n))
    db.query(
        "UNWIND range(0, $max) AS i CREATE (:V {idx: i})", {"max": n - 1}
    )
    for s, d in zip(src.tolist(), dst.tolist()):
        db.query(
            "MATCH (a:V {idx: $s}), (b:V {idx: $d}) CREATE (a)-[:E]->(b)",
            {"s": s, "d": d},
        )
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return db, G


@pytest.fixture(scope="module")
def random_db():
    return build_random_db(n=24, p=0.12, seed=7)


class TestKhopEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    @pytest.mark.parametrize("seed_node", [0, 5, 11])
    def test_cypher_equals_matrix_equals_networkx(self, random_db, k, seed_node):
        db, G = random_db
        cypher = db.query(
            f"MATCH (s:V {{idx: $seed}})-[:E*1..{k}]->(n) RETURN count(DISTINCT n)",
            {"seed": seed_node},
        ).scalar()
        A = db.graph.relation_matrix("E")
        matrix = khop_counts(A, seed_node, k)
        reference = len(nx.single_source_shortest_path_length(G, seed_node, cutoff=k)) - 1
        assert cypher == matrix == reference

    def test_one_hop_neighbors_match(self, random_db):
        db, G = random_db
        for s in (0, 7, 13):
            cypher = db.query(
                "MATCH (a:V {idx: $s})-[:E]->(b) RETURN b.idx ORDER BY b.idx", {"s": s}
            ).column("b.idx")
            assert cypher == sorted(G.successors(s))

    def test_two_hop_paths_match(self, random_db):
        """Fixed 2-hop patterns enumerate *paths*; verify against networkx."""
        db, G = random_db
        cypher = db.query(
            "MATCH (a:V {idx: 0})-[:E]->(b)-[:E]->(c) RETURN count(*)"
        ).scalar()
        expected = sum(
            1 for b in G.successors(0) for _ in G.successors(b)
        )
        assert cypher == expected

    def test_reverse_traversal_matches(self, random_db):
        db, G = random_db
        for s in (3, 9):
            cypher = db.query(
                "MATCH (a:V {idx: $s})<-[:E]-(b) RETURN b.idx ORDER BY b.idx", {"s": s}
            ).column("b.idx")
            assert cypher == sorted(G.predecessors(s))

    def test_undirected_degree_matches(self, random_db):
        db, G = random_db
        for s in (2, 8):
            cypher = db.query(
                "MATCH (a:V {idx: $s})-[:E]-(b) RETURN count(DISTINCT b)", {"s": s}
            ).scalar()
            expected = len(set(G.successors(s)) | set(G.predecessors(s)))
            assert cypher == expected

    def test_triangle_count_via_cypher(self, random_db):
        db, G = random_db
        cypher = db.query(
            "MATCH (a)-[:E]->(b)-[:E]->(c), (c)-[:E]->(a) RETURN count(*)"
        ).scalar()
        # directed 3-cycles counted 3x (one per rotation)
        cycles = sum(
            1
            for a in G
            for b in G.successors(a)
            for c in G.successors(b)
            if G.has_edge(c, a)
        )
        assert cypher == cycles
