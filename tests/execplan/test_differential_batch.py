"""The row-vs-batch semantics net (ISSUE 5).

Every read query in the battery runs at ``exec_batch_size`` 1 (exactly
row-at-a-time), 7 (a prime that misaligns every internal chunk boundary)
and the default — results must be identical, in order.  This is the
differential hook the vectorized engine is built around: batch size may
change how many rows move per Python-level step, never what comes out.
"""

import pytest

from repro import GraphDB
from repro.execplan.ops_stream import _hashable
from repro.graph.config import GraphConfig

BATCH_SIZES = (1, 7, 1024)


def _normalize(rows):
    """Rows with entity handles replaced by comparable (kind, id) keys."""
    return [tuple(_hashable(v) for v in row) for row in rows]


@pytest.fixture(scope="module")
def db():
    d = GraphDB("diff-batch", GraphConfig(node_capacity=512))
    # people: some without age (NULL-propagating predicates), mixed-type
    # `tag` values (DISTINCT over mixed types), a few duplicate names
    d.query(
        "CREATE (:Person {name: 'Ann', age: 34, tag: 1}),"
        " (:Person {name: 'Bo', age: 27, tag: 'x'}),"
        " (:Person {name: 'Cy', tag: 1.0}),"
        " (:Person {name: 'Dee', age: 41, tag: true}),"
        " (:Person {name: 'Ann', age: 34, tag: 'x'}),"
        " (:Person {name: 'Eve', age: 27}),"
        " (:Ghost {name: 'Zed'})"
    )
    d.query(
        "MATCH (a:Person {name: 'Ann'}), (b:Person {name: 'Bo'}) "
        "CREATE (a)-[:KNOWS {w: 2}]->(b)"
    )
    d.query(
        "MATCH (a:Person {name: 'Bo'}), (b:Person {name: 'Dee'}) "
        "CREATE (a)-[:KNOWS {w: 5}]->(b), (b)-[:LIKES]->(a)"
    )
    d.query(
        "MATCH (a:Person {name: 'Dee'}), (b:Person {name: 'Cy'}) "
        "CREATE (a)-[:KNOWS]->(b)"
    )
    return d


QUERIES = [
    # filters with NULL-propagating predicates (missing age -> null > 30
    # -> null -> dropped; NOT null stays null; IS NULL keeps it)
    "MATCH (n:Person) WHERE n.age > 30 RETURN n.name ORDER BY n.name",
    "MATCH (n:Person) WHERE NOT (n.age > 30) RETURN n.name ORDER BY n.name",
    "MATCH (n:Person) WHERE n.age IS NULL RETURN n.name",
    "MATCH (n:Person) WHERE n.age > 25 AND n.name STARTS WITH 'A' RETURN n.name, n.age",
    "MATCH (n:Person) WHERE n.age = 27 OR n.tag = 1 RETURN n.name ORDER BY n.name",
    "MATCH (n:Person) WHERE n.age IN [27, 41] RETURN n.name ORDER BY n.name",
    # DISTINCT over mixed types (int/float/str/bool tags + missing)
    "MATCH (n:Person) RETURN DISTINCT n.tag",
    "MATCH (n:Person) RETURN DISTINCT n.name, n.age",
    # aggregates on empty input
    "MATCH (n:Nobody) RETURN count(n), count(*), sum(n.age), avg(n.age), min(n.age), collect(n.age)",
    "MATCH (n:Person) WHERE n.age > 1000 RETURN count(*), sum(n.age)",
    # grouped aggregates (np.unique fast path vs dict path) + DISTINCT agg
    "MATCH (n:Person) RETURN n.age, count(*) ORDER BY n.age",
    "MATCH (n:Person) RETURN n.name, collect(n.age) ORDER BY n.name",
    "MATCH (n:Person) RETURN count(DISTINCT n.name), min(n.name), max(n.age)",
    "MATCH (a:Person)-[:KNOWS]->(b) RETURN a, count(b) ORDER BY count(b) DESC, a.name",
    # ORDER BY mixed directions + SKIP/LIMIT (cross-batch carry)
    "MATCH (n:Person) RETURN n.name, n.age ORDER BY n.age DESC, n.name ASC",
    "MATCH (n:Person) RETURN n.name ORDER BY n.name SKIP 2 LIMIT 3",
    "MATCH (n:Person) RETURN n.name, n.age ORDER BY n.age ASC, n.name DESC SKIP 1 LIMIT 4",
    "UNWIND range(0, 19) AS x RETURN x ORDER BY x % 5 ASC, x DESC LIMIT 7",
    # OPTIONAL MATCH null-extension
    "MATCH (n:Person) OPTIONAL MATCH (n)-[:KNOWS]->(m) RETURN n.name, m.name ORDER BY n.name, m.name",
    "MATCH (n:Person) OPTIONAL MATCH (n)-[r:LIKES]->(m) RETURN n.name, r.w, m.name ORDER BY n.name",
    # traversal shapes: edge vars, undirected, var-length, closed cycles
    "MATCH (a)-[r:KNOWS]->(b) RETURN a.name, r.w, b.name ORDER BY a.name, b.name",
    "MATCH (a:Person)-[:KNOWS]-(b) RETURN a.name, b.name ORDER BY a.name, b.name",
    "MATCH (a:Person)-[:KNOWS*1..3]->(b) RETURN a.name, b.name ORDER BY a.name, b.name",
    "MATCH (a)-[:KNOWS]->(b)-[:LIKES]->(a) RETURN a.name, b.name",
    # expression zoo: CASE, arithmetic, string ops, parameters via literal
    "MATCH (n:Person) RETURN n.name, CASE WHEN n.age > 30 THEN 'old' WHEN n.age IS NULL THEN '?' ELSE 'young' END ORDER BY n.name",
    "MATCH (n:Person) RETURN n.name, n.age * 2 + 1, -n.age ORDER BY n.name",
    "MATCH (n:Person) WHERE n.name CONTAINS 'e' RETURN n.name ORDER BY n.name",
    "MATCH (n:Person) RETURN n.name + '!' ORDER BY n.name",
    "RETURN 1 + 2, 'a' + 'b', [1, 2] + [3]",
    # UNWIND fan-out with list building
    "MATCH (n:Person) UNWIND [1, 2] AS k RETURN n.name, k ORDER BY n.name, k",
    "UNWIND [[1, 2], [], [3]] AS xs RETURN size(xs)",
    # cartesian product of disconnected patterns
    "MATCH (a:Ghost), (b:Person) RETURN a.name, b.name ORDER BY b.name",
    # WITH pipeline + id() / labels()
    "MATCH (n:Person) WITH n.age AS age WHERE age > 25 RETURN age ORDER BY age",
    "MATCH (n:Ghost) RETURN labels(n), id(n) >= 0",
    # UNION dedup across plan parts
    "MATCH (n:Person) RETURN n.name AS name UNION MATCH (n:Ghost) RETURN n.name AS name",
]


@pytest.mark.parametrize("query", QUERIES)
def test_batch_size_invariance(db, query):
    results = {}
    for size in BATCH_SIZES:
        db.graph.config.exec_batch_size = size
        try:
            results[size] = _normalize(db.query(query).rows)
        finally:
            db.graph.config.exec_batch_size = 1024
    assert results[1] == results[7] == results[1024], query


@pytest.mark.parametrize("query", QUERIES[:12])
def test_profile_rowcounts_match_row_engine(db, query):
    """PROFILE per-op row counts are identical to the row-at-a-time
    engine's on the same query (ISSUE 5 acceptance criterion)."""

    def counts(size):
        db.graph.config.exec_batch_size = size
        try:
            report = db.profile(query).profile
        finally:
            db.graph.config.exec_batch_size = 1024
        out = []
        for line in report.splitlines():
            op = line.split("|")[0].strip()
            rows = line.split("Records produced: ")[1].split(",")[0]
            out.append((op, int(rows)))
        return out

    assert counts(1) == counts(1024)


def test_params_are_batch_invariant(db):
    q = "MATCH (n:Person) WHERE n.age > $lo AND n.age < $hi RETURN n.name ORDER BY n.name"
    rows = None
    for size in BATCH_SIZES:
        db.graph.config.exec_batch_size = size
        try:
            got = db.query(q, {"lo": 25, "hi": 40}).rows
        finally:
            db.graph.config.exec_batch_size = 1024
        if rows is None:
            rows = got
        assert got == rows
