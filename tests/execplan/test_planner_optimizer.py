"""Plan-shape and optimizer tests: the planner must pick the access paths
and operation structure RedisGraph's planner picks."""

import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError


@pytest.fixture
def db():
    d = GraphDB("plans")
    d.query(
        "CREATE (a:Person {name:'A', age: 1}), (b:Person {name:'B', age: 2}),"
        " (c:City {name:'X'}), (a)-[:KNOWS]->(b), (a)-[:LIVES_IN]->(c)"
    )
    return d


class TestAccessPaths:
    def test_label_scan_chosen(self, db):
        assert "NodeByLabelScan" in db.explain("MATCH (n:Person) RETURN n")

    def test_all_scan_without_label(self, db):
        assert "AllNodeScan" in db.explain("MATCH (n) RETURN n")

    def test_id_seek_from_where(self, db):
        plan = db.explain("MATCH (n) WHERE id(n) = 0 RETURN n")
        assert "NodeByIdSeek" in plan and "AllNodeScan" not in plan

    def test_id_seek_reversed_equality(self, db):
        plan = db.explain("MATCH (n) WHERE 0 = id(n) RETURN n")
        assert "NodeByIdSeek" in plan

    def test_id_seek_inside_and(self, db):
        plan = db.explain("MATCH (n:Person) WHERE id(n) = 0 AND n.age > 1 RETURN n")
        assert "NodeByIdSeek" in plan

    def test_id_seek_not_used_for_or(self, db):
        plan = db.explain("MATCH (n) WHERE id(n) = 0 OR n.age > 1 RETURN n")
        assert "NodeByIdSeek" not in plan

    def test_index_scan_after_create_index(self, db):
        db.query("CREATE INDEX ON :Person(name)")
        plan = db.explain("MATCH (n:Person {name: 'A'}) RETURN n")
        assert "NodeByIndexScan" in plan

    def test_anchor_prefers_indexed_side(self, db):
        db.query("CREATE INDEX ON :Person(name)")
        plan = db.explain("MATCH (c:City)<-[:LIVES_IN]-(p:Person {name: 'A'}) RETURN c")
        # the Person side has an index: scan starts there, traverses backwards
        assert plan.index("NodeByIndexScan") > plan.index("ConditionalTraverse")


class TestTraverseShapes:
    def test_labels_folded_into_expression(self, db):
        plan = db.explain("MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN b")
        assert "KNOWS * diag(Person)" in plan

    def test_type_union_in_expression(self, db):
        plan = db.explain("MATCH (a)-[:KNOWS|LIVES_IN]->(b) RETURN b")
        assert "KNOWS|LIVES_IN" in plan

    def test_transposed_for_incoming(self, db):
        plan = db.explain("MATCH (a)<-[:KNOWS]-(b) RETURN b")
        assert "T(KNOWS)" in plan

    def test_expand_into_for_cycle(self, db):
        plan = db.explain("MATCH (a)-[:KNOWS]->(b), (a)-[:LIVES_IN]->(b) RETURN a")
        assert "ExpandInto" in plan

    def test_cartesian_for_disconnected(self, db):
        plan = db.explain("MATCH (a:Person), (b:City) RETURN a, b")
        assert "CartesianProduct" in plan

    def test_correlated_path_not_cartesian(self, db):
        plan = db.explain("UNWIND ['A'] AS x MATCH (n:Person {name: x}) RETURN n")
        assert "CartesianProduct" not in plan


class TestOptimizer:
    def test_filters_fused(self, db):
        # two residual filters (label check + WHERE) stack and fuse
        plan = db.explain("MATCH (n:Person:Person) WHERE n.age > 0 RETURN n")
        assert plan.count("Filter") == 1

    def test_topk_sort_annotated(self, db):
        plan = db.explain("MATCH (n:Person) RETURN n.age ORDER BY n.age LIMIT 2")
        assert "Sort | top=2" in plan

    def test_sort_without_limit_not_annotated(self, db):
        plan = db.explain("MATCH (n:Person) RETURN n.age ORDER BY n.age")
        assert "top=" not in plan

    def test_topk_results_match_full_sort(self, db):
        db.query("UNWIND range(1, 50) AS i CREATE (:N {v: i})")
        topk = db.query("MATCH (n:N) RETURN n.v ORDER BY n.v DESC LIMIT 5").column("n.v")
        assert topk == [50, 49, 48, 47, 46]
        topk_asc = db.query("MATCH (n:N) RETURN n.v ORDER BY n.v LIMIT 3").column("n.v")
        assert topk_asc == [1, 2, 3]


class TestProfileInstrumentation:
    def test_row_counts_accurate(self, db):
        report = db.profile("MATCH (n:Person) RETURN n").profile
        scan_line = next(l for l in report.splitlines() if "NodeByLabelScan" in l)
        assert "Records produced: 2" in scan_line

    def test_profile_returns_same_rows_as_query(self, db):
        plain = db.query("MATCH (n:Person) RETURN n.name ORDER BY n.name")
        profiled = db.profile("MATCH (n:Person) RETURN n.name ORDER BY n.name")
        assert plain.rows == profiled.rows


class TestUnsupportedConstructs:
    def test_named_path_plans_project_path(self, db):
        plan = db.explain("MATCH p = (a)-[:KNOWS]->(b) RETURN length(p)")
        assert "ProjectPath" in plan
        rows = db.query("MATCH p = (a)-[:KNOWS]->(b) RETURN length(p)").rows
        assert all(r == (1,) for r in rows)

    def test_varlen_properties_rejected(self, db):
        with pytest.raises(CypherSemanticError, match="variable-length"):
            db.query("MATCH (a)-[:KNOWS* {w: 1}]->(b) RETURN b")

    def test_anonymous_edge_properties_rejected(self, db):
        with pytest.raises(CypherSemanticError, match="anonymous"):
            db.query("MATCH (a)-[:KNOWS {w: 1}]->(b) RETURN b")
