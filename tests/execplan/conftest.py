"""Shared fixtures: a small social graph used across execution tests."""

import pytest

from repro import GraphDB


@pytest.fixture
def db():
    return GraphDB("test")


@pytest.fixture
def social(db):
    """A deterministic little social network.

    People: Ann(30), Bo(25), Cy(35), Di(28), Ed(40); Robot: R2.
    KNOWS: Ann->Bo, Ann->Cy, Bo->Cy, Cy->Di, Di->Ed
    LIKES: Ann->Di, Ed->Ann
    """
    db.query(
        "CREATE (ann:Person {name:'Ann', age:30}),"
        " (bo:Person {name:'Bo', age:25}),"
        " (cy:Person {name:'Cy', age:35}),"
        " (di:Person {name:'Di', age:28}),"
        " (ed:Person {name:'Ed', age:40}),"
        " (r2:Robot {name:'R2'}),"
        " (ann)-[:KNOWS {since:2019}]->(bo),"
        " (ann)-[:KNOWS {since:2020}]->(cy),"
        " (bo)-[:KNOWS {since:2021}]->(cy),"
        " (cy)-[:KNOWS {since:2018}]->(di),"
        " (di)-[:KNOWS {since:2022}]->(ed),"
        " (ann)-[:LIKES]->(di),"
        " (ed)-[:LIKES]->(ann)"
    )
    return db
