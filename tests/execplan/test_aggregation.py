"""Aggregation semantics through the full stack."""

import pytest


class TestSimpleAggregates:
    def test_count_star_empty(self, db):
        assert db.query("MATCH (n) RETURN count(*)").scalar() == 0

    def test_count_expr_skips_null(self, social):
        # Robot has no age
        assert db_count(social, "MATCH (n) RETURN count(n.age)") == 5
        assert db_count(social, "MATCH (n) RETURN count(*)") == 6

    def test_sum_avg(self, social):
        assert social.query("MATCH (n:Person) RETURN sum(n.age)").scalar() == 158
        assert social.query("MATCH (n:Person) RETURN avg(n.age)").scalar() == pytest.approx(31.6)

    def test_sum_empty_is_zero(self, db):
        assert db.query("MATCH (n) RETURN sum(n.x)").scalar() == 0

    def test_avg_empty_is_null(self, db):
        assert db.query("MATCH (n) RETURN avg(n.x)").scalar() is None

    def test_min_max(self, social):
        assert social.query("MATCH (n:Person) RETURN min(n.age)").scalar() == 25
        assert social.query("MATCH (n:Person) RETURN max(n.age)").scalar() == 40

    def test_collect(self, social):
        got = social.query("MATCH (n:Person) RETURN collect(n.name)").scalar()
        assert sorted(got) == ["Ann", "Bo", "Cy", "Di", "Ed"]

    def test_collect_skips_nulls(self, social):
        got = social.query("MATCH (n) RETURN collect(n.age)").scalar()
        assert len(got) == 5


class TestGrouping:
    def test_group_by_key(self, social):
        rows = social.query(
            "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, count(b) ORDER BY a.name"
        ).rows
        assert rows == [("Ann", 2), ("Bo", 1), ("Cy", 1), ("Di", 1)]

    def test_group_key_is_entity(self, social):
        rows = social.query(
            "MATCH (a:Person)-[:KNOWS]->(b) RETURN a, count(b)"
        ).rows
        assert len(rows) == 4

    def test_multiple_aggregates(self, social):
        row = social.query(
            "MATCH (n:Person) RETURN min(n.age), max(n.age), count(*)"
        ).rows[0]
        assert row == (25, 40, 5)

    def test_count_distinct(self, social):
        # 5 KNOWS edges but 4 distinct destinations
        assert social.query("MATCH ()-[:KNOWS]->(b) RETURN count(b)").scalar() == 5
        assert social.query("MATCH ()-[:KNOWS]->(b) RETURN count(DISTINCT b)").scalar() == 4

    def test_collect_distinct(self, social):
        got = social.query("MATCH ()-[:KNOWS]->(b) RETURN collect(DISTINCT b.name)").scalar()
        assert sorted(got) == ["Bo", "Cy", "Di", "Ed"]


class TestMixedExpressions:
    def test_aggregate_plus_constant(self, social):
        assert social.query("MATCH (n:Person) RETURN count(*) + 1").scalar() == 6

    def test_arithmetic_over_aggregates(self, social):
        got = social.query(
            "MATCH (n:Person) RETURN max(n.age) - min(n.age)"
        ).scalar()
        assert got == 15

    def test_implicit_group_key_in_mixed_expr(self, social):
        rows = social.query(
            "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.age + count(b) AS v ORDER BY v"
        ).column("v")
        # Ann 30+2, Bo 25+1, Cy 35+1, Di 28+1
        assert rows == [26, 29, 32, 36]

    def test_function_of_aggregate(self, social):
        got = social.query("MATCH (n:Person) RETURN toFloat(count(*))").scalar()
        assert got == 5.0

    def test_aggregate_of_expression(self, social):
        got = social.query("MATCH (n:Person) RETURN sum(n.age * 2)").scalar()
        assert got == 316


def db_count(db, q):
    return db.query(q).scalar()
