"""Differential net over index seeks: with secondary indexes present the
engine routes WHERE conjuncts through :class:`IndexRangeScan`; without
them it filters a label scan.  Both worlds must return identical rows for
every predicate shape the seek layer claims to serve — equality, one- and
two-sided ranges, string prefixes, ``IN`` lists, composite prefixes,
cross-type and null probes — under create/update/delete/bulk workloads,
at scalar and batched execution, with both planners."""

import random

import pytest

from repro import GraphDB
from repro.errors import CypherTypeError
from repro.graph.config import GraphConfig

SEEDS = [11, 37, 90]

# every query here must be served by a seek when indexes exist (or fall
# back soundly) and by a filtered scan when they don't
QUERIES = [
    "MATCH (n:P) WHERE n.v = 3 RETURN id(n)",
    "MATCH (n:P) WHERE n.v = 3.0 RETURN id(n)",          # cross-type numeric eq
    "MATCH (n:P) WHERE n.v = true RETURN id(n)",          # bool family isolation
    "MATCH (n:P) WHERE n.v = '3' RETURN id(n)",           # string family isolation
    "MATCH (n:P) WHERE n.v = null RETURN id(n)",          # null probe: no rows
    "MATCH (n:P) WHERE n.v > 2 RETURN id(n)",
    "MATCH (n:P) WHERE n.v >= 2 AND n.v < 5 RETURN id(n)",
    "MATCH (n:P) WHERE n.v < 4 RETURN id(n), n.v",
    "MATCH (n:P) WHERE n.v IN [1, 3, 9, true, 'x'] RETURN id(n)",
    "MATCH (n:P) WHERE n.v IN [] RETURN id(n)",
    "MATCH (n:P) WHERE n.v IN [[1], 2] RETURN id(n)",     # list element -> fallback guard
    "MATCH (n:P) WHERE n.name STARTS WITH 'u' RETURN id(n)",
    "MATCH (n:P) WHERE n.name STARTS WITH '' RETURN id(n)",
    "MATCH (n:P) WHERE n.name STARTS WITH 'u1' AND n.v > 1 RETURN id(n)",
    "MATCH (n:P) WHERE n.g = 1 AND n.name = 'u3' RETURN id(n)",   # composite full width
    "MATCH (n:P) WHERE n.g = 2 RETURN id(n)",                      # composite prefix
    "MATCH (n:P) WHERE n.g = 1 AND n.v > 2 RETURN id(n)",          # seek + residual
    "MATCH (n:P) WHERE n.v = 3 OR n.name = 'u5' RETURN id(n)",     # OR: no seek, still equal
    "MATCH (n:P)-[:R]->(m) WHERE n.v = 3 RETURN id(n), id(m)",     # seek under expand
    "MATCH (n:P) WHERE n.v = 3 RETURN count(n)",
]

INDEX_DDL = [
    "CREATE INDEX ON :P(v)",
    "CREATE INDEX ON :P(name)",
    "CREATE INDEX ON :P(g, name)",
]


def run_workload(db: GraphDB, seed: int, bulk: bool) -> None:
    """Seeded create/update/delete churn; ``bulk`` routes the initial
    cohort through the columnar bulk writer instead of per-row CREATE."""
    rng = random.Random(seed)
    count = 40
    vs = [rng.choice([rng.randint(0, 9), rng.uniform(0, 9), True, None, "3", "x"])
          for _ in range(count)]
    names = [f"u{rng.randint(0, 12)}" if rng.random() < 0.9 else None for _ in range(count)]
    gs = [rng.randint(0, 3) if rng.random() < 0.8 else None for _ in range(count)]
    if bulk:
        db.bulk_insert(
            nodes=[{"labels": ("P",), "count": count,
                    "properties": {"v": vs, "name": names, "g": gs}}],
            edges=[{"type": "R",
                    "src": [rng.randrange(count) for _ in range(count)],
                    "dst": [rng.randrange(count) for _ in range(count)],
                    "endpoints": "batch"}],
        )
    else:
        for v, name, g in zip(vs, names, gs):
            db.query("CREATE (:P {v: $v, name: $name, g: $g})",
                     {"v": v, "name": name, "g": g})
        for _ in range(count):
            db.query(
                "MATCH (a:P), (b:P) WHERE id(a) = $s AND id(b) = $d CREATE (a)-[:R]->(b)",
                {"s": rng.randrange(count), "d": rng.randrange(count)},
            )
    # churn: updates (including to/from null and across families), deletes
    for _ in range(20):
        nid = rng.randrange(count)
        nv = rng.choice([rng.randint(0, 9), None, True, "3", rng.uniform(0, 9)])
        db.query("MATCH (n:P) WHERE id(n) = $i SET n.v = $nv", {"i": nid, "nv": nv})
    for nid in rng.sample(range(count), 5):
        db.query("MATCH (n:P) WHERE id(n) = $i DETACH DELETE n", {"i": nid})
    db.query("CREATE (:P {v: 3, name: 'u1tail', g: 1})")


def build(seed, bulk, indexed, *, batch=1024, cost=1, merge_threshold=512):
    cfg = GraphConfig(exec_batch_size=batch, cost_based_planner=cost,
                      index_merge_threshold=merge_threshold)
    db = GraphDB("diff", cfg)
    if indexed == "before":
        for ddl in INDEX_DDL:
            db.query(ddl)
    run_workload(db, seed, bulk)
    if indexed == "after":
        for ddl in INDEX_DDL:
            db.query(ddl)
    return db


class TestIndexOnOffDifferential:
    @pytest.mark.parametrize("cost", [0, 1], ids=["rule", "cost"])
    @pytest.mark.parametrize("batch", [1, 1024], ids=["scalar", "batched"])
    @pytest.mark.parametrize("bulk", [False, True], ids=["per-row", "bulk"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_indexed_equals_unindexed(self, seed, bulk, batch, cost):
        plain = build(seed, bulk, indexed=None, batch=batch, cost=cost)
        seek = build(seed, bulk, indexed="before", batch=batch, cost=cost,
                     merge_threshold=8)
        for q in QUERIES:
            assert sorted(seek.query(q).rows) == sorted(plain.query(q).rows), q

    @pytest.mark.parametrize("seed", SEEDS)
    def test_index_created_after_workload(self, seed):
        """Backfill path: indexes created over existing data answer like
        indexes that watched every write."""
        before = build(seed, True, indexed="before", merge_threshold=4)
        after = build(seed, True, indexed="after", merge_threshold=4)
        for q in QUERIES:
            assert sorted(before.query(q).rows) == sorted(after.query(q).rows), q

    @pytest.mark.parametrize("cost", [0, 1], ids=["rule", "cost"])
    def test_in_type_error_parity(self, cost):
        """`x IN <non-list>` raises the same CypherTypeError whether it
        runs as a seek or a filter."""
        plain = build(1, False, indexed=None, cost=cost)
        seek = build(1, False, indexed="before", cost=cost)
        for db in (plain, seek):
            with pytest.raises(CypherTypeError, match="IN expects a list"):
                db.query("MATCH (n:P) WHERE n.v IN 5 RETURN n")

    def test_seek_plan_shapes(self):
        db = build(1, False, indexed="before")
        plan = db.explain("MATCH (n:P) WHERE n.v > 2 RETURN n")
        assert "IndexRangeScan" in plan and "range: n.v > 2" in plan
        assert "est_rows" in plan
        assert "Filter" not in plan  # fully consumed conjunct leaves no residual
        comp = db.explain("MATCH (n:P) WHERE n.g = 1 AND n.name = 'u3' RETURN n")
        assert "composite" in comp
        residual = db.explain("MATCH (n:P) WHERE n.g = 1 AND n.v > 2 RETURN n")
        assert "IndexRangeScan" in residual and "Filter" in residual

    def test_rule_planner_uses_seeks_too(self):
        db = build(1, False, indexed="before", cost=0)
        assert "IndexRangeScan" in db.explain("MATCH (n:P) WHERE n.v > 2 RETURN n")

    def test_profile_reports_actual_rows(self):
        db = build(1, False, indexed="before")
        expect = db.query("MATCH (n:P) WHERE n.v > 2 RETURN count(n)").scalar()
        report = db.profile("MATCH (n:P) WHERE n.v > 2 RETURN id(n)").profile
        line = next(l for l in report.splitlines() if "IndexRangeScan" in l)
        assert f"Records produced: {expect}," in line and "est_rows" in line
