"""Unit tests for the columnar batch layer (RecordBatch / columns /
vectorized expression kernels) and the ISSUE-5 satellite fixes:
SKIP/LIMIT operand validation and strict UNWIND list typing."""

import numpy as np
import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError, CypherTypeError
from repro.execplan.batch import (
    EntityColumn,
    RecordBatch,
    ValueColumn,
    as_entity_ids,
    object_column,
)
from repro.execplan.record import Layout
from repro.graph.config import GraphConfig
from repro.graph.graph import Graph


def GraphConfigDefault() -> GraphConfig:
    return GraphConfig(node_capacity=256)


@pytest.fixture()
def db():
    d = GraphDB("batch-unit", GraphConfig(node_capacity=256))
    d.query(
        "CREATE (:P {name: 'a', v: 1}), (:P {name: 'b', v: 2}), (:P {name: 'c'})"
    )
    return d


# ---------------------------------------------------------------------------
# RecordBatch / column ops
# ---------------------------------------------------------------------------


class TestRecordBatch:
    def _batch(self, graph):
        layout = Layout(["n", "x"])
        ids = EntityColumn("node", np.array([0, 1, 2], dtype=np.int64), graph)
        vals = ValueColumn(object_column([10, None, "s"]))
        return RecordBatch(layout, [ids, vals])

    def test_take_compress_slice(self):
        g = Graph("t")
        for _ in range(3):
            g.create_node(["L"], {})
        b = self._batch(g)
        taken = b.take(np.array([2, 0]))
        assert taken.columns[0].ids.tolist() == [2, 0]
        assert taken.columns[1].to_objects().tolist() == ["s", 10]
        kept = b.compress(np.array([True, False, True]))
        assert kept.columns[0].ids.tolist() == [0, 2]
        assert b.slice(1, 5).columns[0].ids.tolist() == [1, 2]
        assert len(b.slice(3, 3)) == 0

    def test_lazy_handle_materialization(self):
        g = Graph("t")
        for _ in range(3):
            g.create_node(["L"], {})
        b = self._batch(g)
        col = b.columns[0]
        assert col._objects is None  # nothing materialized yet
        rows = list(b.iter_rows())
        assert col._objects is not None
        assert rows[0][0].id == 0 and rows[1][1] is None
        # cached: second materialization returns the same handles
        assert b.columns[0].to_objects()[0] is rows[0][0]

    def test_null_ids_materialize_as_none(self):
        g = Graph("t")
        g.create_node(["L"], {})
        col = EntityColumn("node", np.array([0, -1], dtype=np.int64), g)
        objs = col.to_objects()
        assert objs[0].id == 0 and objs[1] is None
        assert col.null_mask().tolist() == [False, True]
        assert col.hash_keys() == [("node", 0), None]

    def test_from_rows_round_trip(self):
        layout = Layout(["a", "b"])
        rows = [[1, "x"], [2, None], [3]]  # short row pads with None
        b = RecordBatch.from_rows(layout, rows)
        assert [list(r) for r in b.iter_rows()] == [[1, "x"], [2, None], [3, None]]

    def test_zero_column_batches_keep_length(self):
        b = RecordBatch.from_rows(Layout(), [[], [], []])
        assert len(b) == 3
        assert [list(r) for r in b.iter_rows()] == [[], [], []]

    def test_concat_entity_and_value(self):
        g = Graph("t")
        for _ in range(4):
            g.create_node(["L"], {})
        layout = Layout(["n"])
        b1 = RecordBatch(layout, [EntityColumn("node", np.array([0, 1], dtype=np.int64), g)])
        b2 = RecordBatch(layout, [EntityColumn("node", np.array([3], dtype=np.int64), g)])
        merged = RecordBatch.concat(layout, [b1, b2])
        assert isinstance(merged.columns[0], EntityColumn)
        assert merged.columns[0].ids.tolist() == [0, 1, 3]

    def test_as_entity_ids_recovers_from_object_columns(self):
        g = Graph("t")
        n0 = g.create_node(["L"], {})
        col = ValueColumn(object_column([n0, None]))
        kind, ids = as_entity_ids(col)
        assert kind == "node" and ids.tolist() == [n0.id, -1]
        assert as_entity_ids(ValueColumn(object_column([1, 2]))) is None

    def test_property_gather_memoized(self):
        g = Graph("t")
        a = g.create_node(["L"], {"v": 7})
        col = EntityColumn("node", np.array([a.id], dtype=np.int64), g)
        first = col.property_values("v")
        assert first.tolist() == [7]
        assert col.property_values("v") is first


class TestGraphGathers:
    def test_property_column_nulls_and_missing(self):
        g = Graph("t")
        a = g.create_node(["L"], {"v": 1})
        b = g.create_node(["L"], {})
        vals = g.node_property_column(np.array([a.id, b.id, -1], dtype=np.int64), "v")
        assert vals.tolist() == [1, None, None]
        assert g.node_property_column([a.id], "nope").tolist() == [None]

    def test_property_column_dead_id_raises(self):
        from repro.errors import EntityNotFound

        g = Graph("t")
        a = g.create_node(["L"], {"v": 1})
        g.delete_node(a.id)
        with pytest.raises(EntityNotFound):
            g.node_property_column([a.id], "v")
        with pytest.raises(EntityNotFound):
            g.node_property_column([99], "v")

    def test_nodes_have_labels(self):
        g = Graph("t")
        a = g.create_node(["L", "M"], {})
        b = g.create_node(["L"], {})
        ids = np.array([a.id, b.id, -1], dtype=np.int64)
        assert g.nodes_have_labels(ids, ["L"]).tolist() == [True, True, False]
        assert g.nodes_have_labels(ids, ["L", "M"]).tolist() == [True, False, False]
        assert g.nodes_have_labels(ids, ["Nope"]).tolist() == [False, False, False]


# ---------------------------------------------------------------------------
# Satellite: SKIP/LIMIT operand validation
# ---------------------------------------------------------------------------


class TestSkipLimitValidation:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (n:P) RETURN n.name LIMIT -1",
            "MATCH (n:P) RETURN n.name SKIP -3",
            "MATCH (n:P) RETURN n.name LIMIT 1.5",
            "MATCH (n:P) RETURN n.name SKIP 'two'",
            "MATCH (n:P) RETURN n.name LIMIT true",
        ],
    )
    def test_rejected(self, db, query):
        with pytest.raises(CypherSemanticError, match="must be a non-negative integer"):
            db.query(query)

    def test_parameterized_counts_validated(self, db):
        q = "MATCH (n:P) RETURN n.name ORDER BY n.name SKIP $s LIMIT $l"
        assert db.query(q, {"s": 1, "l": 1}).column("n.name") == ["b"]
        with pytest.raises(CypherSemanticError, match="SKIP must be a non-negative integer"):
            db.query(q, {"s": -1, "l": 1})
        with pytest.raises(CypherSemanticError, match="LIMIT must be a non-negative integer"):
            db.query(q, {"s": 0, "l": 2.5})

    def test_zero_still_legal(self, db):
        assert db.query("MATCH (n:P) RETURN n LIMIT 0").rows == []
        assert len(db.query("MATCH (n:P) RETURN n SKIP 0")) == 3


# ---------------------------------------------------------------------------
# Satellite: UNWIND of a non-list scalar is a type error
# ---------------------------------------------------------------------------


class TestUnwindTyping:
    def test_scalar_raises(self, db):
        with pytest.raises(CypherTypeError, match="UNWIND expects a list"):
            db.query("UNWIND 42 AS x RETURN x")
        with pytest.raises(CypherTypeError, match="UNWIND expects a list"):
            db.query("UNWIND 'abc' AS x RETURN x")

    def test_null_produces_zero_rows(self, db):
        assert db.query("UNWIND null AS x RETURN x").rows == []
        assert db.query("MATCH (n:P) UNWIND n.missing AS x RETURN x").rows == []

    def test_lists_still_fan_out(self, db):
        assert db.query("UNWIND [1, 2, 3] AS x RETURN x").column("x") == [1, 2, 3]
        assert db.query("UNWIND [] AS x RETURN x").rows == []

    def test_scalar_raises_at_every_batch_size(self, db):
        for size in (1, 7, 1024):
            db.graph.config.exec_batch_size = size
            try:
                with pytest.raises(CypherTypeError):
                    db.query("MATCH (n:P) UNWIND n.v AS x RETURN x")
            finally:
                db.graph.config.exec_batch_size = 1024


# ---------------------------------------------------------------------------
# Aggregate fast-path/row-loop coherence (code-review regressions)
# ---------------------------------------------------------------------------


class TestAggregatePathCoherence:
    def test_mixed_batches_share_groups(self):
        """One run may route different batches through the np.unique fast
        path and the object-dict row loop; both must land in the same
        groups (regression: bare-value vs 1-tuple dict keys split them)."""
        d = GraphDB("agg-coherence", GraphConfig(node_capacity=256, exec_batch_size=4))
        for p in [1, 2, 1, 2, "x", 1]:
            d.query("CREATE (:N {p: $p})", {"p": p})
        rows = sorted(
            d.query("MATCH (n:N) RETURN n.p, count(*)").rows, key=lambda r: str(r[0])
        )
        assert rows == [(1, 3), (2, 2), ("x", 1)]

    def test_sort_large_ints_exact(self):
        """ORDER BY must not collapse or crash on ints float64 cannot
        represent (regressions: 2**53 tie-collapse, 10**400 OverflowError)."""
        d = GraphDB("sort-bigint", GraphConfigDefault())
        big = 2**53
        rows = d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x", {"xs": [big + 1, big]}
        ).column("x")
        assert rows == [big, big + 1]
        rows = d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x", {"xs": [1, 10**400, 2]}
        ).column("x")
        assert rows == [1, 2, 10**400]
        rows = d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x DESC", {"xs": [5, -(2**63), 7]}
        ).column("x")
        assert rows == [7, 5, -(2**63)]

    def test_minmax_int64_edges(self):
        """max() must survive INT64_MIN (negation wraps) and ints beyond
        float64 (OverflowError) by dropping to the row loop."""
        d = GraphDB("agg-int64", GraphConfigDefault())
        assert d.query(
            "UNWIND $xs AS x RETURN max(x)", {"xs": [-(2**63), 5]}
        ).scalar() == 5
        assert d.query(
            "UNWIND $xs AS x RETURN max(x)", {"xs": [10**400, 1.5]}
        ).scalar() == 10**400
        assert d.query(
            "UNWIND $xs AS x RETURN min(x)", {"xs": [10**400, 1.5]}
        ).scalar() == 1.5

    def test_group_keys_beyond_float64(self):
        d = GraphDB("agg-hugekeys", GraphConfigDefault())
        rows = d.query(
            "UNWIND $xs AS x RETURN x, count(x)", {"xs": [10**400, 1.5, 10**400]}
        ).rows
        assert sorted(rows, key=lambda r: float("inf") if r[0] == 10**400 else r[0]) == [
            (1.5, 1),
            (10**400, 2),
        ]

    def test_batch_size_one_is_the_row_engine(self):
        """At exec_batch_size=1 the vectorized fast paths are gated off,
        so the CI differential leg really exercises the scalar engine."""
        d = GraphDB("rowleg", GraphConfig(node_capacity=256, exec_batch_size=1))
        big = 2**53
        assert d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x", {"xs": [big + 1, big]}
        ).column("x") == [big, big + 1]
        assert d.query(
            "UNWIND $xs AS x RETURN max(x)", {"xs": [-(2**63), 5]}
        ).scalar() == 5

    def test_minmax_nan_matches_row_engine(self):
        """The min/max fast path must bail on NaN — the row engine's
        sort_key never replaces a NaN best (all comparisons are False)."""
        import math

        d = GraphDB("agg-nan", GraphConfigDefault())
        nan = float("nan")
        batched = d.query("UNWIND $xs AS x RETURN min(x), max(x)", {"xs": [nan, 1.0]}).rows
        d.graph.config.exec_batch_size = 1
        row = d.query("UNWIND $xs AS x RETURN min(x), max(x)", {"xs": [nan, 1.0]}).rows
        assert [math.isnan(v) for v in batched[0]] == [math.isnan(v) for v in row[0]]
        assert [v for v in batched[0] if not math.isnan(v)] == [
            v for v in row[0] if not math.isnan(v)
        ]

    def test_mixed_numeric_group_keys_past_2_53(self):
        """int 2**53+1 and float 2**53.0 are distinct group keys in the
        scalar engine; the float64 unique must not merge them."""
        big = 2**53
        d = GraphDB("agg-mixed53", GraphConfigDefault())
        rows = d.query(
            "UNWIND $xs AS x RETURN x, count(*)", {"xs": [big + 1, float(big)]}
        ).rows
        assert len(rows) == 2

    def test_id_seek_boolean_matches_nothing(self):
        """id(n) = true must return no rows even though the residual
        WHERE filter is dropped for consumed id-seeks."""
        d = GraphDB("seek-bool", GraphConfigDefault())
        d.query("CREATE (:N), (:N)")  # node ids 0 and 1
        assert d.query("MATCH (n) WHERE id(n) = true RETURN n").rows == []
        assert d.query("MATCH (n) WHERE id(n) = $p RETURN n", {"p": True}).rows == []
        assert len(d.query("MATCH (n) WHERE id(n) = 1 RETURN n")) == 1

    def test_cross_dtype_comparison_stays_exact(self):
        """An int column past 2**53 compared against a float constant
        must not collapse through float64 promotion."""
        big = 2**53
        d = GraphDB("cmp-crossdtype", GraphConfigDefault())
        d.query("CREATE (:N {v: $a}), (:N {v: 1})", {"a": big + 1})
        assert d.query(
            f"MATCH (n:N) WHERE n.v = {float(big)} RETURN count(*)"
        ).scalar() == 0
        assert d.query(
            "MATCH (n:N) WHERE n.v = $f RETURN count(*)", {"f": float(big)}
        ).scalar() == 0

    def test_nul_bytes_in_string_keys(self):
        """numpy U-dtype NUL padding must not merge 'a' with 'a\\x00' in
        group keys or tie them in ORDER BY."""
        d = GraphDB("nul-keys", GraphConfigDefault())
        d.query("CREATE (:N {s: $a, i: 1}), (:N {s: $b, i: 2})", {"a": "a\x00", "b": "a"})
        assert len(d.query("MATCH (n:N) RETURN n.s, count(*)")) == 2
        assert d.query("MATCH (n:N) RETURN n.i ORDER BY n.s").column("n.i") == [2, 1]

    def test_streaming_topk_matches_full_sort(self):
        d = GraphDB("topk", GraphConfig(node_capacity=256, exec_batch_size=64))
        vals = [(i * 37) % 501 for i in range(2000)]
        got = d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x LIMIT 10", {"xs": vals}
        ).column("x")
        assert got == sorted(vals)[:10]
        got_desc = d.query(
            "UNWIND $xs AS x RETURN x ORDER BY x DESC LIMIT 7", {"xs": vals}
        ).column("x")
        assert got_desc == sorted(vals, reverse=True)[:7]

    def test_large_ints_stay_exact(self):
        """Ints past 2**53 must not collapse through float64 in the
        vectorized comparison, grouping, or min/max kernels."""
        big = 2**53
        d = GraphDB("agg-bigint", GraphConfig(node_capacity=256))
        d.query("CREATE (:N {p: $a}), (:N {p: $b})", {"a": big, "b": big + 1})
        assert d.query(
            "MATCH (n:N) WHERE n.p = $v RETURN count(*)", {"v": big}
        ).scalar() == 1
        assert len(d.query("MATCH (n:N) RETURN n.p, count(*)")) == 2
        assert d.query("MATCH (n:N) RETURN min(n.p), max(n.p)").rows == [(big, big + 1)]
        # literal comparisons route through the Const kernel path
        assert d.query(f"MATCH (n:N) WHERE n.p > {big} RETURN count(*)").scalar() == 1


# ---------------------------------------------------------------------------
# exec_batch_size knob (traverse_batch_size migration)
# ---------------------------------------------------------------------------


class TestExecBatchSizeConfig:
    def test_legacy_alias_wins_and_mirrors(self):
        cfg = GraphConfig(traverse_batch_size=7).validate()
        assert cfg.exec_batch_size == 7
        assert cfg.traverse_batch_size == 7

    def test_default_mirrors_exec(self):
        cfg = GraphConfig(exec_batch_size=33).validate()
        assert cfg.traverse_batch_size == 33

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            GraphConfig(exec_batch_size=0).validate()

    def test_revalidate_keeps_direct_writes(self):
        """A later direct write to exec_batch_size must survive another
        validate() (the alias mirror tracks both directions)."""
        cfg = GraphConfig(exec_batch_size=256).validate()
        cfg.exec_batch_size = 512
        cfg.validate()
        assert cfg.exec_batch_size == 512
        assert cfg.traverse_batch_size == 512
        cfg.traverse_batch_size = 64
        cfg.validate()
        assert cfg.exec_batch_size == 64

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BATCH_SIZE", "5")
        assert GraphConfig().validate().exec_batch_size == 5

    def test_graph_config_roundtrip_via_module(self):
        from repro.rediskv.graph_module import GraphModule
        from repro.rediskv.keyspace import Keyspace

        module = GraphModule(Keyspace(), GraphConfig())
        module.config_set("EXEC_BATCH_SIZE", "128")
        assert module.config_get("EXEC_BATCH_SIZE") == ["EXEC_BATCH_SIZE", 128]
        # legacy name stays readable and settable, mirroring the new knob
        assert module.config_get("TRAVERSE_BATCH_SIZE") == ["TRAVERSE_BATCH_SIZE", 128]
        module.config_set("TRAVERSE_BATCH_SIZE", "64")
        assert module.config_get("EXEC_BATCH_SIZE") == ["EXEC_BATCH_SIZE", 64]
