"""End-to-end update queries: CREATE / MERGE / DELETE / SET / REMOVE / indices."""

import pytest

from repro.errors import ConstraintViolation, CypherSemanticError, CypherTypeError


class TestCreate:
    def test_create_node_with_stats(self, db):
        r = db.query("CREATE (:Person {name:'A'})")
        assert r.stats.nodes_created == 1
        assert r.stats.labels_added == 1
        assert r.stats.properties_set == 1

    def test_create_returns_entity(self, db):
        r = db.query("CREATE (n:Person {name:'A'}) RETURN n.name")
        assert r.rows == [("A",)]

    def test_create_path(self, db):
        r = db.query("CREATE (:A)-[:R {w: 2}]->(:B)")
        assert r.stats.nodes_created == 2
        assert r.stats.relationships_created == 1
        assert db.query("MATCH (:A)-[e:R]->(:B) RETURN e.w").scalar() == 2

    def test_create_from_match(self, db):
        db.query("CREATE (:Person {name:'A'}), (:Person {name:'B'})")
        r = db.query(
            "MATCH (a:Person {name:'A'}), (b:Person {name:'B'}) CREATE (a)-[:KNOWS]->(b)"
        )
        assert r.stats.relationships_created == 1
        assert r.stats.nodes_created == 0

    def test_create_incoming_direction(self, db):
        db.query("CREATE (a:A)<-[:R]-(b:B)")
        assert db.query("MATCH (:B)-[:R]->(:A) RETURN count(*)").scalar() == 1

    def test_create_per_input_record(self, db):
        db.query("UNWIND [1,2,3] AS x CREATE (:N {v: x})")
        assert db.query("MATCH (n:N) RETURN count(n)").scalar() == 3

    def test_create_var_reuse_in_clause(self, db):
        r = db.query("CREATE (a:X), (a)-[:R]->(b:Y)")
        assert r.stats.nodes_created == 2
        assert db.query("MATCH (:X)-[:R]->(:Y) RETURN count(*)").scalar() == 1

    def test_create_null_properties_skipped(self, db):
        db.query("CREATE (:P {a: 1, b: null})")
        node = db.query("MATCH (n:P) RETURN n").scalar()
        assert node.properties == {"a": 1}

    def test_restated_props_on_bound_var_rejected(self, db):
        db.query("CREATE (:P {name:'x'})")
        with pytest.raises(CypherSemanticError):
            db.query("MATCH (a:P) CREATE (a {name:'y'})-[:R]->(:Q)")


class TestMerge:
    def test_merge_creates_when_absent(self, db):
        r = db.query("MERGE (n:P {name:'A'}) RETURN id(n)")
        assert r.stats.nodes_created == 1

    def test_merge_matches_when_present(self, db):
        id1 = db.query("MERGE (n:P {name:'A'}) RETURN id(n)").scalar()
        r = db.query("MERGE (n:P {name:'A'}) RETURN id(n)")
        assert r.stats.nodes_created == 0
        assert r.scalar() == id1

    def test_merge_edge(self, db):
        db.query("CREATE (:P {name:'A'}), (:P {name:'B'})")
        q = "MATCH (a:P {name:'A'}), (b:P {name:'B'}) MERGE (a)-[:KNOWS]->(b)"
        r1 = db.query(q)
        assert r1.stats.relationships_created == 1
        r2 = db.query(q)
        assert r2.stats.relationships_created == 0
        assert db.query("MATCH (:P)-[:KNOWS]->(:P) RETURN count(*)").scalar() == 1


class TestDelete:
    def test_delete_node(self, db):
        db.query("CREATE (:P)")
        r = db.query("MATCH (n:P) DELETE n")
        assert r.stats.nodes_deleted == 1
        assert db.query("MATCH (n) RETURN count(n)").scalar() == 0

    def test_delete_connected_requires_detach(self, db):
        db.query("CREATE (:A)-[:R]->(:B)")
        with pytest.raises(ConstraintViolation):
            db.query("MATCH (n:A) DELETE n")

    def test_detach_delete(self, db):
        db.query("CREATE (:A)-[:R]->(:B)")
        r = db.query("MATCH (n:A) DETACH DELETE n")
        assert r.stats.nodes_deleted == 1
        assert r.stats.relationships_deleted == 1

    def test_delete_edge_only(self, db):
        db.query("CREATE (:A)-[:R]->(:B)")
        r = db.query("MATCH (:A)-[e:R]->(:B) DELETE e")
        assert r.stats.relationships_deleted == 1
        assert db.query("MATCH (n) RETURN count(n)").scalar() == 2

    def test_delete_null_is_noop(self, db):
        db.query("CREATE (:A)")
        r = db.query("MATCH (n:A) OPTIONAL MATCH (n)-[:R]->(m) DELETE m")
        assert r.stats.nodes_deleted == 0

    def test_delete_scalar_rejected(self, db):
        db.query("CREATE (:A {x: 1})")
        with pytest.raises(CypherTypeError):
            db.query("MATCH (n:A) DELETE n.x")


class TestSetRemove:
    def test_set_property(self, db):
        db.query("CREATE (:P {name:'A'})")
        r = db.query("MATCH (n:P) SET n.age = 9")
        assert r.stats.properties_set == 1
        assert db.query("MATCH (n:P) RETURN n.age").scalar() == 9

    def test_set_from_expression(self, db):
        db.query("CREATE (:P {a: 2})")
        db.query("MATCH (n:P) SET n.b = n.a * 10")
        assert db.query("MATCH (n:P) RETURN n.b").scalar() == 20

    def test_set_null_removes(self, db):
        db.query("CREATE (:P {a: 1})")
        db.query("MATCH (n:P) SET n.a = null")
        node = db.query("MATCH (n:P) RETURN n").scalar()
        assert node.properties == {}

    def test_set_plus_equals_map(self, db):
        db.query("CREATE (:P {a: 1})")
        db.query("MATCH (n:P) SET n += {b: 2, c: 3}")
        node = db.query("MATCH (n:P) RETURN n").scalar()
        assert node.properties == {"a": 1, "b": 2, "c": 3}

    def test_set_replace_map(self, db):
        db.query("CREATE (:P {a: 1, b: 2})")
        db.query("MATCH (n:P) SET n = {z: 9}")
        node = db.query("MATCH (n:P) RETURN n").scalar()
        assert node.properties == {"z": 9}

    def test_set_label(self, db):
        db.query("CREATE (:P)")
        r = db.query("MATCH (n:P) SET n:Admin")
        assert r.stats.labels_added == 1
        assert db.query("MATCH (n:Admin) RETURN count(n)").scalar() == 1

    def test_set_edge_property(self, db):
        db.query("CREATE (:A)-[:R]->(:B)")
        db.query("MATCH (:A)-[e:R]->(:B) SET e.w = 5")
        assert db.query("MATCH (:A)-[e:R]->(:B) RETURN e.w").scalar() == 5

    def test_remove_property(self, db):
        db.query("CREATE (:P {a: 1, b: 2})")
        db.query("MATCH (n:P) REMOVE n.a")
        node = db.query("MATCH (n:P) RETURN n").scalar()
        assert node.properties == {"b": 2}

    def test_remove_label(self, db):
        db.query("CREATE (:P:Admin)")
        db.query("MATCH (n:P) REMOVE n:Admin")
        assert db.query("MATCH (n:Admin) RETURN count(n)").scalar() == 0
        assert db.query("MATCH (n:P) RETURN count(n)").scalar() == 1


class TestIndexClauses:
    def test_create_index_and_planner_uses_it(self, db):
        db.query("CREATE (:P {name:'A'}), (:P {name:'B'})")
        r = db.query("CREATE INDEX ON :P(name)")
        assert r.stats.indices_created == 1
        plan = db.explain("MATCH (n:P {name:'A'}) RETURN n")
        assert "NodeByIndexScan" in plan
        assert db.query("MATCH (n:P {name:'A'}) RETURN n.name").scalar() == "A"

    def test_without_index_label_scan(self, db):
        db.query("CREATE (:P {name:'A'})")
        plan = db.explain("MATCH (n:P {name:'A'}) RETURN n")
        assert "NodeByLabelScan" in plan

    def test_drop_index(self, db):
        db.query("CREATE INDEX ON :P(name)")
        r = db.query("DROP INDEX ON :P(name)")
        assert r.stats.indices_deleted == 1
        plan = db.explain("MATCH (n:P {name:'A'}) RETURN n")
        assert "NodeByIndexScan" not in plan

    def test_index_used_with_parameters(self, db):
        db.query("CREATE (:P {name:'A', v: 1})")
        db.query("CREATE INDEX ON :P(name)")
        got = db.query("MATCH (n:P {name: $x}) RETURN n.v", {"x": "A"}).scalar()
        assert got == 1
