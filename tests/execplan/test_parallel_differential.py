"""The serial-vs-parallel semantics net (ISSUE 6).

Every read query in the battery runs serial (``parallel_workers=1``,
byte-for-byte the pre-parallelism engine) and morsel-parallel
(``parallel_workers=4``) at morsel sizes 1 (every row its own morsel),
7 (a prime that misaligns every partition boundary) and the default —
row streams must be identical, IN ORDER, with no ORDER BY required:
partition order equals serial emission order by construction, so
parallel execution is not allowed to reorder anything.
"""

import threading

import pytest

from repro import GraphDB
from repro.execplan import morsel
from repro.execplan.ops_stream import _hashable
from repro.graph.config import GraphConfig

MORSEL_SIZES = (1, 7, 2048)


def _normalize(rows):
    return [tuple(_hashable(v) for v in row) for row in rows]


@pytest.fixture(scope="module")
def db():
    d = GraphDB("diff-parallel", GraphConfig(node_capacity=512))
    # enough nodes that even mid-size morsels split into many partitions;
    # nulls, duplicate groups and mixed tags keep the operators honest
    d.query(
        "UNWIND range(0, 199) AS i "
        "CREATE (:Person {name: 'p' + toString(i % 23), age: i % 17, grp: i % 5})"
    )
    d.query("UNWIND range(0, 9) AS i CREATE (:Ghost {name: 'g' + toString(i)})")
    d.query("MATCH (n:Person) WHERE n.grp = 0 SET n.age = null")
    d.query(
        "MATCH (a:Person), (b:Person) "
        "WHERE b.grp = a.grp AND a.age = b.age - 1 "
        "CREATE (a)-[:KNOWS {w: a.grp}]->(b)"
    )
    yield d
    morsel.shutdown_shared_pool()


def _run(db, query, workers, morsel_size):
    cfg = db.graph.config
    cfg.parallel_workers, cfg.morsel_size = workers, morsel_size
    try:
        res = db.query(query)
        return _normalize(res.rows), res.stats
    finally:
        cfg.parallel_workers, cfg.morsel_size = 1, 2048


QUERIES = [
    # pure scans WITHOUT ORDER BY: the merged morsel stream must be the
    # serial stream verbatim (the strongest differential there is)
    "MATCH (n:Person) RETURN n.name, n.age",
    "MATCH (n:Person) WHERE n.age > 8 RETURN n.name, n.age",
    "MATCH (n) RETURN id(n)",
    "MATCH (n:Person) UNWIND [1, 2] AS k RETURN n.name, k",
    # traversals partitioned over source rows
    "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name",
    "MATCH (a:Person)-[r:KNOWS]->(b) WHERE r.w > 1 RETURN a.age, r.w, b.age",
    "MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a.name, c.name",
    # parallel aggregate: partial groups merged in partition order
    "MATCH (n:Person) RETURN count(n), sum(n.age), min(n.age), max(n.age), avg(n.age)",
    "MATCH (n:Person) RETURN n.grp, count(*), sum(n.age) ORDER BY n.grp",
    "MATCH (n:Person) RETURN n.name, collect(n.age) ORDER BY n.name",
    "MATCH (a:Person)-[:KNOWS]->(b) RETURN a.grp, count(b) ORDER BY a.grp",
    # first-appearance group order without ORDER BY must survive too
    "MATCH (n:Person) RETURN n.grp, count(*)",
    # DISTINCT aggregates force the serial path — still identical
    "MATCH (n:Person) RETURN count(DISTINCT n.name), count(DISTINCT n.age)",
    # parallel sort (per-partition sort + final merge sort, stable)
    "MATCH (n:Person) RETURN n.name, n.age ORDER BY n.age DESC, n.name",
    "MATCH (n:Person) RETURN n.age ORDER BY n.age LIMIT 9",
    "MATCH (n:Person) RETURN n.name ORDER BY n.name SKIP 5 LIMIT 7",
    # parallel distinct: partition-local dedup + global filter, in order
    "MATCH (n:Person) RETURN DISTINCT n.age",
    "MATCH (n:Person) RETURN DISTINCT n.name, n.grp",
    # null handling across partition boundaries
    "MATCH (n:Person) WHERE n.age IS NULL RETURN n.name",
    "MATCH (n:Person) OPTIONAL MATCH (n)-[:KNOWS]->(m) RETURN n.name, m.name",
    # skip/limit carry across morsel-produced batches
    "MATCH (n:Person) RETURN n.name SKIP 13 LIMIT 40",
    # cartesian products and unions
    "MATCH (a:Ghost), (b:Person) WHERE b.grp = 4 RETURN a.name, b.name",
    "MATCH (n:Person) RETURN n.name AS name UNION MATCH (n:Ghost) RETURN n.name AS name",
    # expression work inside the partitioned chain
    "MATCH (n:Person) RETURN n.name, CASE WHEN n.age > 8 THEN 'hi' ELSE 'lo' END",
    "MATCH (n:Person) WITH n.age AS age WHERE age > 3 RETURN age, age * 2",
]


@pytest.mark.parametrize("query", QUERIES)
def test_parallel_matches_serial(db, query):
    serial, _ = _run(db, query, workers=1, morsel_size=2048)
    for size in MORSEL_SIZES:
        parallel, _ = _run(db, query, workers=4, morsel_size=size)
        assert parallel == serial, (query, size)


def test_parallel_run_reports_morsels(db):
    rows, stats = _run(db, "MATCH (n:Person) RETURN n.age", workers=4, morsel_size=16)
    assert len(rows) == 200
    assert stats.parallel_workers == 4
    assert stats.morsels >= 2
    assert any("Parallel execution: 4 workers" in line for line in stats.summary())


def test_serial_run_reports_no_morsels(db):
    _, stats = _run(db, "MATCH (n:Person) RETURN n.age", workers=1, morsel_size=16)
    assert stats.parallel_workers == 0 and stats.morsels == 0
    assert not any("Parallel execution" in line for line in stats.summary())


def test_write_queries_stay_serial(db):
    cfg = db.graph.config
    cfg.parallel_workers, cfg.morsel_size = 4, 1
    try:
        res = db.query("CREATE (:Tmp) WITH 1 AS one MATCH (t:Tmp) RETURN count(t)")
        assert res.stats.morsels == 0  # writers never get a driver
    finally:
        cfg.parallel_workers, cfg.morsel_size = 1, 2048
        db.query("MATCH (t:Tmp) DELETE t")


def test_profile_rowcounts_match_serial(db):
    """Per-op Records produced are identical parallel vs serial, and the
    partitioned scan reports its morsel count."""
    query = "MATCH (n:Person) WHERE n.age > 5 RETURN n.grp, count(*) ORDER BY n.grp"

    def counts(workers, morsel_size):
        cfg = db.graph.config
        cfg.parallel_workers, cfg.morsel_size = workers, morsel_size
        try:
            report = db.profile(query).profile
        finally:
            cfg.parallel_workers, cfg.morsel_size = 1, 2048
        out = []
        for line in report.splitlines():
            op = line.split("|")[0].strip()
            rows = line.split("Records produced: ")[1].split(",")[0]
            out.append((op, int(rows)))
        return out, report

    serial, _ = counts(1, 2048)
    parallel, report = counts(4, 16)
    assert parallel == serial
    assert "Morsels:" in report


def test_parallel_ro_query_and_params(db):
    q = "MATCH (n:Person) WHERE n.age > $lo RETURN n.name, n.age"
    cfg = db.graph.config
    serial = db.ro_query(q, {"lo": 10}).rows
    cfg.parallel_workers, cfg.morsel_size = 4, 7
    try:
        assert db.ro_query(q, {"lo": 10}).rows == serial
    finally:
        cfg.parallel_workers, cfg.morsel_size = 1, 2048


def test_concurrent_parallel_queries_share_the_pool(db):
    """Many coordinators at once: the shared morsel pool must not
    deadlock or cross results between queries."""
    cfg = db.graph.config
    cfg.parallel_workers, cfg.morsel_size = 4, 8
    errors = []

    def worker(grp):
        try:
            q = f"MATCH (n:Person) WHERE n.grp = {grp} RETURN count(n)"
            for _ in range(5):
                assert db.query(q).scalar() == 40
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    try:
        threads = [threading.Thread(target=worker, args=(g,)) for g in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
    finally:
        cfg.parallel_workers, cfg.morsel_size = 1, 2048


class TestMorselDriver:
    def test_run_ordered_preserves_submission_order(self):
        driver = morsel.MorselDriver(workers=4, morsel_size=8)
        thunks = [lambda i=i: i * i for i in range(50)]
        assert list(driver.run_ordered(thunks)) == [i * i for i in range(50)]
        morsel.shutdown_shared_pool()

    def test_run_ordered_propagates_worker_errors(self):
        driver = morsel.MorselDriver(workers=2, morsel_size=8)

        def boom():
            raise ValueError("morsel failed")

        with pytest.raises(ValueError, match="morsel failed"):
            list(driver.run_ordered([lambda: 1, boom, lambda: 3]))
        morsel.shutdown_shared_pool()

    def test_pool_recreated_after_shutdown(self):
        pool = morsel.shared_pool(2)
        morsel.shutdown_shared_pool()
        fresh = morsel.shared_pool(3)
        assert fresh is not pool
        assert fresh.size >= 3
        morsel.shutdown_shared_pool()

    def test_pool_grows_to_largest_request(self):
        pool = morsel.shared_pool(2)
        assert morsel.shared_pool(5) is pool
        assert pool.size >= 5
        morsel.shutdown_shared_pool()
