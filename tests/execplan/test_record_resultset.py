"""Record/Layout and ResultSet unit tests."""

import pytest

from repro.execplan.record import Layout
from repro.execplan.resultset import QueryStatistics, ResultSet


class TestLayout:
    def test_slots_in_order(self):
        layout = Layout(["a", "b", "c"])
        assert layout.slot("a") == 0 and layout.slot("c") == 2
        assert len(layout) == 3

    def test_get_missing(self):
        layout = Layout(["a"])
        assert layout.get("zz") is None
        assert "zz" not in layout and "a" in layout

    def test_extend_preserves_existing_slots(self):
        base = Layout(["a", "b"])
        ext = base.extend("c", "a")
        assert ext.slot("a") == 0 and ext.slot("b") == 1 and ext.slot("c") == 2
        assert len(ext) == 3

    def test_extend_dedupes_new_names(self):
        ext = Layout(["a"]).extend("b", "b")
        assert len(ext) == 2

    def test_new_record_width(self):
        layout = Layout(["a", "b"])
        rec = layout.new_record()
        assert rec == [None, None]

    def test_project_from(self):
        src = Layout(["a", "b", "c"])
        dst = Layout(["c", "a", "zz"])
        out = dst.project_from([1, 2, 3], src)
        assert out == [3, 1, None]

    def test_duplicate_names_rejected(self):
        with pytest.raises(AssertionError):
            Layout(["a", "a"])


class TestResultSet:
    def make(self):
        return ResultSet(["x", "y"], [(1, "a"), (2, "b")], QueryStatistics())

    def test_len_iter(self):
        rs = self.make()
        assert len(rs) == 2
        assert list(rs) == [(1, "a"), (2, "b")]

    def test_column(self):
        assert self.make().column("y") == ["a", "b"]

    def test_column_missing(self):
        with pytest.raises(ValueError):
            self.make().column("zz")

    def test_to_dicts(self):
        assert self.make().to_dicts()[0] == {"x": 1, "y": "a"}

    def test_scalar_requires_1x1(self):
        rs = ResultSet(["x"], [(42,)], QueryStatistics())
        assert rs.scalar() == 42
        with pytest.raises(AssertionError):
            self.make().scalar()


class TestQueryStatistics:
    def test_summary_includes_nonzero_only(self):
        stats = QueryStatistics(nodes_created=2, execution_time_ms=1.5)
        text = "\n".join(stats.summary())
        assert "Nodes created: 2" in text
        assert "Relationships created" not in text
        assert "execution time" in text

    def test_all_counters(self):
        stats = QueryStatistics(
            nodes_created=1,
            nodes_deleted=2,
            relationships_created=3,
            relationships_deleted=4,
            properties_set=5,
            labels_added=6,
            indices_created=7,
            indices_deleted=8,
        )
        text = "\n".join(stats.summary())
        for token in ("1", "2", "3", "4", "5", "6", "7", "8"):
            assert token in text
