"""The compile-once pipeline: CompiledQuery artifacts, the schema-versioned
LRU plan cache, and concurrent execution of cached (stateless) plans."""

import threading
import time

import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError
from repro.execplan.compiled import PlanSchema, compile_query
from repro.execplan.plan_cache import PlanCache
from repro.graph.config import GraphConfig
from repro.graph.graph import Graph


@pytest.fixture
def db():
    d = GraphDB("pc", GraphConfig(node_capacity=64))
    d.query(
        "UNWIND range(0, 9) AS i CREATE (:Person {name: 'p' + i, grp: i % 3})"
    )
    d.query(
        "MATCH (a:Person {grp: 0}), (b:Person {grp: 1}) CREATE (a)-[:KNOWS]->(b)"
    )
    return d


class TestCompiledQuery:
    def test_compile_collects_metadata(self, db):
        compiled = db.engine.compile(
            "MATCH (a:Person)-[:KNOWS]->(b) WHERE a.name = $who RETURN b.name LIMIT $n"
        )
        assert compiled.writes is False
        assert compiled.param_names == frozenset({"who", "n"})
        assert compiled.columns == ["b.name"]
        assert compiled.schema_version == db.graph.schema_version

    def test_artifact_is_graph_independent(self, db):
        """A CompiledQuery built from a bare schema snapshot (no graph)
        executes fine against a live graph — names bind at run time."""
        compiled = compile_query("MATCH (n:Person) RETURN count(n)", PlanSchema())
        assert db.engine.execute(compiled).scalar() == 10

    def test_writes_flag(self, db):
        assert db.engine.compile("CREATE (:X)").writes is True
        assert db.engine.compile("MATCH (n) RETURN n").writes is False


class TestCacheHits:
    def test_second_execution_hits(self, db):
        q = "MATCH (n:Person) RETURN count(n)"
        r1 = db.query(q)
        r2 = db.query(q)
        assert r1.stats.cached_execution is False
        assert r2.stats.cached_execution is True
        assert "Cached execution: 0" in "\n".join(r1.stats.summary())
        assert "Cached execution: 1" in "\n".join(r2.stats.summary())
        assert r1.scalar() == r2.scalar() == 10

    def test_parameterized_queries_share_one_plan(self, db):
        q = "MATCH (n:Person {grp: $g}) RETURN count(n)"
        counts = {g: db.query(q, {"g": g}).scalar() for g in (0, 1, 2)}
        assert counts == {0: 4, 1: 3, 2: 3}
        info = db.engine.plan_cache.info()
        assert info["entries"] >= 1
        assert info["hits"] >= 2  # second and third run reused the plan

    def test_whitespace_canonicalization(self, db):
        db.query("MATCH (n:Person) RETURN count(n)")
        r = db.query("  MATCH (n:Person) RETURN count(n)  ")
        assert r.stats.cached_execution is True

    def test_explain_profile_query_share_compilation(self, db):
        q = "MATCH (n:Person) RETURN count(n)"
        db.explain(q)
        misses_after_explain = db.engine.plan_cache.info()["misses"]
        db.query(q)
        report = db.profile(q).profile
        assert "Records produced" in report
        assert db.engine.plan_cache.info()["misses"] == misses_after_explain

    def test_data_writes_do_not_invalidate(self, db):
        q = "MATCH (n:Person) RETURN count(n)"
        db.query(q)
        db.query("CREATE (:Person {name: 'new'})")  # no new label/reltype
        r = db.query(q)
        assert r.stats.cached_execution is True
        assert r.scalar() == 11


class TestSchemaVersionInvalidation:
    def test_new_label_bumps_version(self, db):
        v = db.graph.schema_version
        db.query("CREATE (:Brand)")
        assert db.graph.schema_version > v

    def test_new_reltype_bumps_version(self, db):
        v = db.graph.schema_version
        db.query("MATCH (a:Person {grp: 0}), (b:Person {grp: 1}) CREATE (a)-[:LIKES]->(b)")
        assert db.graph.schema_version > v

    def test_plain_data_write_does_not_bump(self, db):
        v = db.graph.schema_version
        db.query("MATCH (n:Person {grp: 0}) SET n.seen = true")
        db.query("CREATE (:Person {name: 'dup'})")  # label already known
        assert db.graph.schema_version == v

    def test_index_create_invalidates_cached_plan(self, db):
        q = "MATCH (n:Person {name: 'p1'}) RETURN n.grp"
        assert "NodeByLabelScan" in db.explain(q)
        db.query("CREATE INDEX ON :Person(name)")
        plan = db.explain(q)
        assert "NodeByIndexScan" in plan
        assert db.query(q).scalar() == 1

    def test_index_drop_invalidates_cached_plan(self, db):
        db.query("CREATE INDEX ON :Person(name)")
        q = "MATCH (n:Person {name: 'p1'}) RETURN n.grp"
        assert "NodeByIndexScan" in db.explain(q)
        db.query("DROP INDEX ON :Person(name)")
        assert "NodeByIndexScan" not in db.explain(q)
        assert db.query(q).scalar() == 1

    def test_stale_entry_counts_as_miss(self, db):
        q = "MATCH (n:Person) RETURN count(n)"
        db.query(q)
        db.query("CREATE (:Brand)")  # bump
        r = db.query(q)
        assert r.stats.cached_execution is False

    def test_bulk_load_new_label_invalidates_cached_plan(self, db):
        """A plan compiled before a bulk load that introduces its label
        must recompile (schema_version bump) and return the new nodes."""
        q = "MATCH (n:Imported) RETURN count(n)"
        assert db.query(q).scalar() == 0  # compiled while :Imported is unknown
        assert db.query(q).stats.cached_execution is True
        report = db.bulk_insert(
            nodes=[{"labels": ["Imported"], "count": 7, "properties": {"v": list(range(7))}}]
        )
        assert report.labels_added == 1
        r = db.query(q)
        assert r.stats.cached_execution is False  # schema bump evicted it
        assert r.scalar() == 7
        assert db.query(q).stats.cached_execution is True  # recompiled once

    def test_bulk_load_known_labels_keep_cache_warm(self, db):
        """A bulk load that introduces nothing schema-shaped is a data
        write: cached plans survive and see the new rows."""
        q = "MATCH (n:Person) RETURN count(n)"
        before = db.query(q).scalar()
        db.bulk_insert(nodes=[{"labels": ["Person"], "count": 3}])
        r = db.query(q)
        assert r.stats.cached_execution is True
        assert r.scalar() == before + 3

    def test_bulk_load_new_reltype_invalidates_cached_plan(self, db):
        q = "MATCH ()-[:SHIPPED]->(b) RETURN count(b)"
        assert db.query(q).scalar() == 0
        db.bulk_insert(
            nodes=[{"labels": ["Depot"], "count": 2}],
            edges=[{"type": "SHIPPED", "src": [0], "dst": [1]}],
        )
        r = db.query(q)
        assert r.stats.cached_execution is False
        assert r.scalar() == 1


class TestCachePolicy:
    def test_lru_eviction(self):
        db = GraphDB("lru", GraphConfig(node_capacity=16, plan_cache_size=2))
        db.query("RETURN 1")
        db.query("RETURN 2")
        db.query("RETURN 3")  # evicts "RETURN 1"
        assert len(db.engine.plan_cache) == 2
        assert db.query("RETURN 2").stats.cached_execution is True
        assert db.query("RETURN 1").stats.cached_execution is False

    def test_zero_capacity_disables(self):
        db = GraphDB("off", GraphConfig(node_capacity=16, plan_cache_size=0))
        db.query("RETURN 1")
        assert db.query("RETURN 1").stats.cached_execution is False
        assert len(db.engine.plan_cache) == 0

    def test_runtime_resize_knob(self, db):
        db.query("RETURN 1")
        v = db.graph.schema_version
        db.engine.set_plan_cache_size(0)
        assert db.graph.schema_version > v  # config change bumps
        assert len(db.engine.plan_cache) == 0
        assert db.query("RETURN 1").stats.cached_execution is False
        db.engine.set_plan_cache_size(8)
        db.query("RETURN 1")
        assert db.query("RETURN 1").stats.cached_execution is True

    def test_negative_capacity_rejected(self, db):
        with pytest.raises(ValueError):
            db.engine.set_plan_cache_size(-1)
        with pytest.raises(ValueError):
            GraphConfig(plan_cache_size=-1).validate()

    def test_plan_cache_unit_staleness(self):
        cache = PlanCache(4)
        compiled = compile_query("RETURN 1", PlanSchema(version=3))
        cache.put(compiled)
        assert cache.get("RETURN 1", 3) is compiled
        assert cache.get("RETURN 1", 4) is None  # stale: evicted on sight
        assert cache.get("RETURN 1", 3) is None


class TestExplainParams:
    def test_explain_accepts_params(self, db):
        plan = db.explain("MATCH (n:Person {grp: $g}) RETURN n", {"g": 1})
        assert "NodeByLabelScan" in plan

    def test_explain_rejects_missing_param(self, db):
        with pytest.raises(CypherSemanticError, match="missing query parameter"):
            db.explain("MATCH (n:Person {grp: $g}) RETURN n.x + $other", {"g": 1})

    def test_explain_without_params_skips_check(self, db):
        # bare EXPLAIN of a parameterized query still renders the plan
        assert "Results" in db.explain("MATCH (n:Person {grp: $g}) RETURN n")


class TestProfilePerRun:
    def test_profile_counters_do_not_accumulate_across_runs(self, db):
        q = "MATCH (n:Person) RETURN n.name"

        def row_counts(report):
            return [line.split(", Execution time")[0] for line in report.splitlines()]

        first = db.profile(q).profile
        second = db.profile(q).profile
        # cached plan, fresh counters each run — a second PROFILE must not
        # report doubled record counts
        assert row_counts(first) == row_counts(second)

    def test_profile_does_not_disturb_plain_queries(self, db):
        q = "MATCH (n:Person) RETURN count(n)"
        db.query(q)
        db.profile(q)
        assert db.query(q).scalar() == 10


class TestConcurrentCachedExecution:
    def test_many_readers_one_cached_plan(self, db):
        """Acceptance: concurrent executions of ONE cached plan produce
        correct, independent results.  OPTIONAL MATCH exercises the
        Argument seeding that used to live on the (shared) plan ops."""
        q = (
            "MATCH (a:Person {grp: $g}) "
            "OPTIONAL MATCH (a)-[:KNOWS]->(b) "
            "RETURN a.name, count(b) ORDER BY a.name"
        )
        expected = {g: db.query(q, {"g": g}).rows for g in (0, 1, 2)}
        assert len(db.engine.plan_cache) >= 1
        errors = []
        mismatches = []

        def reader(g):
            try:
                for _ in range(25):
                    rows = db.query(q, {"g": g}).rows
                    if rows != expected[g]:
                        mismatches.append((g, rows))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(g,)) for g in (0, 1, 2) * 3]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert mismatches == []

    def test_concurrent_profile_and_query(self, db):
        q = "MATCH (a:Person)-[:KNOWS]->(b) RETURN count(b)"
        expected = db.query(q).scalar()
        errors = []

        def plain():
            try:
                for _ in range(20):
                    assert db.query(q).scalar() == expected
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def profiled():
            try:
                for _ in range(10):
                    result = db.profile(q)
                    report = result.profile
                    assert result.scalar() == expected
                    assert "Records produced" in report
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=plain) for _ in range(3)]
        threads += [threading.Thread(target=profiled) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors


class TestWarmCacheSpeedup:
    def test_warm_path_skips_compilation(self, db):
        """Repeated parameterized queries must be much faster warm than
        cold (the bench arm measures the headline >=5x; this guards the
        mechanism with a safety margin for noisy CI boxes)."""
        q = "MATCH (a:Person)-[:KNOWS]->(b) WHERE id(a) = $src RETURN count(b)"
        db.query(q, {"src": 0})  # populate

        n = 60
        t0 = time.perf_counter()
        for i in range(n):
            db.engine.plan_cache.clear()
            db.query(q, {"src": i % 10})
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        for i in range(n):
            db.query(q, {"src": i % 10})
        warm = time.perf_counter() - t0

        assert db.query(q, {"src": 0}).stats.cached_execution is True
        assert cold / warm > 2.0, f"warm cache not faster: cold={cold:.4f}s warm={warm:.4f}s"


class TestReadYourWrites:
    def test_write_query_sees_own_edges(self, db):
        """Write executions must NOT memoize matrix operands: a traversal
        after CREATE in the same query observes the new edge."""
        r = db.query(
            "MATCH (a:Person {name: 'p0'}), (b:Person {name: 'p9'}) "
            "CREATE (a)-[:MENTORS]->(b) "
            "WITH a MATCH (a)-[:MENTORS]->(x) RETURN x.name"
        )
        assert r.rows == [("p9",)]


def test_schema_version_monotonic_under_mixed_ops():
    g = Graph("mono", GraphConfig(node_capacity=16))
    seen = [g.schema_version]
    g.create_node(["A"], {})
    seen.append(g.schema_version)
    n1 = g.create_node(["A"], {})
    n2 = g.create_node(["B"], {"k": 1})
    seen.append(g.schema_version)
    g.create_edge(n1.id, "R", n2.id)
    seen.append(g.schema_version)
    g.create_index("B", "k")
    seen.append(g.schema_version)
    g.drop_index("B", "k")
    seen.append(g.schema_version)
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)  # every schema-shaping op bumped
