"""End-to-end read queries through the full Cypher → algebra stack."""

import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError, GraphError


class TestBasicMatch:
    def test_all_nodes(self, social):
        assert social.query("MATCH (n) RETURN count(n)").scalar() == 6

    def test_label_scan(self, social):
        assert social.query("MATCH (n:Person) RETURN count(n)").scalar() == 5

    def test_missing_label(self, social):
        assert social.query("MATCH (n:Ghost) RETURN count(n)").scalar() == 0

    def test_property_map_filter(self, social):
        rows = social.query("MATCH (n:Person {name:'Ann'}) RETURN n.age").rows
        assert rows == [(30,)]

    def test_return_entity(self, social):
        rows = social.query("MATCH (n:Person {name:'Ann'}) RETURN n").rows
        node = rows[0][0]
        assert node.properties["name"] == "Ann"
        assert node.labels == ("Person",)

    def test_return_multiple_columns(self, social):
        r = social.query("MATCH (n:Person {name:'Ann'}) RETURN n.name AS name, n.age AS age")
        assert r.columns == ["name", "age"]
        assert r.rows == [("Ann", 30)]

    def test_missing_property_is_null(self, social):
        rows = social.query("MATCH (n:Robot) RETURN n.age").rows
        assert rows == [(None,)]


class TestTraversals:
    def test_one_hop(self, social):
        names = social.query(
            "MATCH (:Person {name:'Ann'})-[:KNOWS]->(b) RETURN b.name ORDER BY b.name"
        ).column("b.name")
        assert names == ["Bo", "Cy"]

    def test_incoming(self, social):
        names = social.query(
            "MATCH (:Person {name:'Cy'})<-[:KNOWS]-(a) RETURN a.name ORDER BY a.name"
        ).column("a.name")
        assert names == ["Ann", "Bo"]

    def test_undirected(self, social):
        names = social.query(
            "MATCH (:Person {name:'Ann'})-[:LIKES]-(x) RETURN x.name ORDER BY x.name"
        ).column("x.name")
        assert names == ["Di", "Ed"]  # out to Di, in from Ed

    def test_two_hop_chain(self, social):
        rows = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN b.name, c.name ORDER BY b.name, c.name"
        ).rows
        assert rows == [("Bo", "Cy"), ("Cy", "Di")]

    def test_type_alternation(self, social):
        names = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS|LIKES]->(x) RETURN x.name ORDER BY x.name"
        ).column("x.name")
        assert names == ["Bo", "Cy", "Di"]

    def test_untyped_edge(self, social):
        names = social.query(
            "MATCH (a {name:'Ed'})-[]->(x) RETURN x.name"
        ).column("x.name")
        assert names == ["Ann"]

    def test_dst_label_folded(self, social):
        # Robot R2 has no KNOWS edges; the Person diagonal filters nothing here
        count = social.query(
            "MATCH (:Person)-[:KNOWS]->(p:Person) RETURN count(p)"
        ).scalar()
        assert count == 5

    def test_edge_variable_binding(self, social):
        rows = social.query(
            "MATCH (a {name:'Ann'})-[e:KNOWS]->(b) RETURN e.since, b.name ORDER BY e.since"
        ).rows
        assert rows == [(2019, "Bo"), (2020, "Cy")]

    def test_edge_property_map(self, social):
        rows = social.query(
            "MATCH (a)-[e:KNOWS {since: 2021}]->(b) RETURN a.name, b.name"
        ).rows
        assert rows == [("Bo", "Cy")]

    def test_cycle_close_expand_into(self, social):
        # triangle check: Ann->Bo->Cy and Ann->Cy closes
        rows = social.query(
            "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c), (a)-[:KNOWS]->(c) RETURN a.name, b.name, c.name"
        ).rows
        assert rows == [("Ann", "Bo", "Cy")]

    def test_cartesian_product(self, social):
        count = social.query("MATCH (a:Robot), (b:Robot) RETURN count(*)").scalar()
        assert count == 1
        count = social.query("MATCH (a:Person), (b:Robot) RETURN count(*)").scalar()
        assert count == 5


class TestVariableLength:
    def test_one_to_two_hops(self, social):
        names = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS*1..2]->(x) RETURN x.name ORDER BY x.name"
        ).column("x.name")
        assert names == ["Bo", "Cy", "Di"]

    def test_exact_two(self, social):
        names = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS*2]->(x) RETURN x.name ORDER BY x.name"
        ).column("x.name")
        # distinct destinations first reached at hop 2
        assert names == ["Di"]

    def test_unbounded(self, social):
        count = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS*]->(x) RETURN count(DISTINCT x)"
        ).scalar()
        assert count == 4  # Bo, Cy, Di, Ed

    def test_varlen_label_applies_to_endpoint_only(self, social):
        # path Ann -> ... -> Ed passes through unlabeled-robot-free chain;
        # label on endpoint must not restrict intermediates
        count = social.query(
            "MATCH (a {name:'Ann'})-[:KNOWS*1..4]->(x:Person) RETURN count(DISTINCT x)"
        ).scalar()
        assert count == 4

    def test_varlen_bound_destination(self, social):
        rows = social.query(
            "MATCH (a {name:'Ann'}), (e {name:'Ed'}) MATCH (a)-[:KNOWS*1..6]->(e) RETURN count(*)"
        ).scalar()
        assert rows == 1

    def test_varlen_incoming(self, social):
        names = social.query(
            "MATCH (x)<-[:KNOWS*1..2]-(a {name:'Ann'}) RETURN x.name ORDER BY x.name"
        ).column("x.name")
        assert names == ["Bo", "Cy", "Di"]


class TestWhere:
    def test_comparison(self, social):
        names = social.query(
            "MATCH (n:Person) WHERE n.age > 28 RETURN n.name ORDER BY n.name"
        ).column("n.name")
        assert names == ["Ann", "Cy", "Ed"]

    def test_boolean_ops(self, social):
        names = social.query(
            "MATCH (n:Person) WHERE n.age >= 25 AND n.age <= 30 RETURN n.name ORDER BY n.name"
        ).column("n.name")
        assert names == ["Ann", "Bo", "Di"]

    def test_string_predicates(self, social):
        names = social.query(
            "MATCH (n:Person) WHERE n.name STARTS WITH 'A' RETURN n.name"
        ).column("n.name")
        assert names == ["Ann"]

    def test_in_list(self, social):
        count = social.query(
            "MATCH (n:Person) WHERE n.name IN ['Ann', 'Ed', 'Zz'] RETURN count(n)"
        ).scalar()
        assert count == 2

    def test_null_comparisons_filter_out(self, social):
        # Robot has no age: age > 10 is null -> filtered
        count = social.query("MATCH (n) WHERE n.age > 10 RETURN count(n)").scalar()
        assert count == 5

    def test_is_null(self, social):
        names = social.query(
            "MATCH (n) WHERE n.age IS NULL RETURN n.name"
        ).column("n.name")
        assert names == ["R2"]

    def test_where_on_edges(self, social):
        rows = social.query(
            "MATCH (a)-[e:KNOWS]->(b) WHERE e.since >= 2021 RETURN a.name ORDER BY e.since"
        ).rows
        assert rows == [("Bo",), ("Di",)]

    def test_exists_property(self, social):
        count = social.query(
            "MATCH (n) WHERE exists(n.age) RETURN count(n)"
        ).scalar()
        assert count == 5


class TestProjectionModifiers:
    def test_order_by_asc_desc(self, social):
        asc = social.query("MATCH (n:Person) RETURN n.age ORDER BY n.age").column("n.age")
        assert asc == sorted(asc)
        desc = social.query("MATCH (n:Person) RETURN n.age ORDER BY n.age DESC").column("n.age")
        assert desc == sorted(desc, reverse=True)

    def test_order_by_hidden_column(self, social):
        names = social.query(
            "MATCH (n:Person) RETURN n.name ORDER BY n.age DESC"
        ).column("n.name")
        assert names == ["Ed", "Cy", "Ann", "Di", "Bo"]

    def test_skip_limit(self, social):
        names = social.query(
            "MATCH (n:Person) RETURN n.name ORDER BY n.name SKIP 1 LIMIT 2"
        ).column("n.name")
        assert names == ["Bo", "Cy"]

    def test_distinct(self, social):
        rows = social.query(
            "MATCH (:Person)-[:KNOWS]->(b) RETURN DISTINCT b.name ORDER BY b.name"
        ).column("b.name")
        assert rows == ["Bo", "Cy", "Di", "Ed"]

    def test_return_star(self, social):
        r = social.query("MATCH (a {name:'Ann'})-[:LIKES]->(b) RETURN *")
        assert set(r.columns) == {"a", "b"}

    def test_with_pipeline(self, social):
        rows = social.query(
            "MATCH (n:Person) WITH n.age AS age WHERE age > 30 RETURN age ORDER BY age"
        ).column("age")
        assert rows == [35, 40]

    def test_with_aggregation_then_filter(self, social):
        rows = social.query(
            "MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends > 1 "
            "RETURN a.name, friends"
        ).rows
        assert rows == [("Ann", 2)]

    def test_unwind(self, social):
        rows = social.query("UNWIND [3, 1, 2] AS x RETURN x ORDER BY x").column("x")
        assert rows == [1, 2, 3]

    def test_unwind_with_match(self, social):
        rows = social.query(
            "UNWIND ['Ann', 'Bo'] AS who MATCH (n:Person {name: who}) RETURN n.age ORDER BY n.age"
        ).column("n.age")
        assert rows == [25, 30]

    def test_union(self, social):
        rows = social.query(
            "MATCH (n:Robot) RETURN n.name AS name UNION MATCH (n:Person {name:'Ann'}) RETURN n.name AS name"
        ).column("name")
        assert sorted(rows) == ["Ann", "R2"]

    def test_union_dedups_union_all_does_not(self, social):
        q1 = "RETURN 1 AS x UNION RETURN 1 AS x"
        q2 = "RETURN 1 AS x UNION ALL RETURN 1 AS x"
        assert len(social.query(q1).rows) == 1
        assert len(social.query(q2).rows) == 2


class TestOptionalMatch:
    def test_optional_no_match_gives_null(self, social):
        rows = social.query(
            "MATCH (n {name:'R2'}) OPTIONAL MATCH (n)-[:KNOWS]->(m) RETURN n.name, m"
        ).rows
        assert rows == [("R2", None)]

    def test_optional_with_matches(self, social):
        rows = social.query(
            "MATCH (n {name:'Ann'}) OPTIONAL MATCH (n)-[:KNOWS]->(m) RETURN m.name ORDER BY m.name"
        ).column("m.name")
        assert rows == ["Bo", "Cy"]

    def test_optional_where_inside(self, social):
        rows = social.query(
            "MATCH (n:Person) OPTIONAL MATCH (n)-[:KNOWS]->(m) WHERE m.age > 30 "
            "RETURN n.name, m.name ORDER BY n.name, m.name"
        ).rows
        by_n = {}
        for n, m in rows:
            by_n.setdefault(n, []).append(m)
        assert by_n["Ann"] == ["Cy"]
        assert by_n["Ed"] == [None]


class TestParameters:
    def test_parameter_in_filter(self, social):
        rows = social.query(
            "MATCH (n:Person) WHERE n.age > $min RETURN count(n)", {"min": 29}
        ).scalar()
        assert rows == 3

    def test_parameter_in_property_map(self, social):
        rows = social.query(
            "MATCH (n:Person {name: $who}) RETURN n.age", {"who": "Cy"}
        ).scalar()
        assert rows == 35

    def test_missing_parameter(self, social):
        with pytest.raises(CypherSemanticError, match="missing query parameter"):
            social.query("MATCH (n:Person {name: $who}) RETURN n.age")


class TestExplain:
    def test_explain_shows_algebraic_expression(self, social):
        plan = social.explain("MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN b")
        assert "ConditionalTraverse" in plan
        assert "KNOWS * diag(Person)" in plan
        assert "NodeByLabelScan" in plan

    def test_explain_varlen(self, social):
        plan = social.explain("MATCH (a)-[:KNOWS*1..3]->(b) RETURN b")
        assert "CondVarLenTraverse" in plan

    def test_explain_expand_into(self, social):
        plan = social.explain("MATCH (a)-[:KNOWS]->(b), (a)-[:LIKES]->(b) RETURN a")
        assert "ExpandInto" in plan

    def test_profile_counts_records(self, social):
        report = social.profile("MATCH (n:Person) RETURN count(n)").profile
        assert "Records produced" in report
        assert "NodeByLabelScan" in report
