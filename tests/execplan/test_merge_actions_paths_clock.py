"""Regression tests for the ISSUE 8 satellite bugfixes:

* ``MERGE ... ON CREATE SET ... ON MATCH SET ...`` parses and dispatches
  to exactly the arm that produced each row,
* ``timestamp()`` (plus the math builtins) exists, with an injectable
  clock for reproducible output,
* named path variables bind, with ``length()`` / ``nodes()`` /
  ``relationships()`` over them.
"""

import pytest

from repro import GraphDB
from repro.errors import CypherSemanticError
from repro.cypher.functions import set_clock
from repro.graph.config import GraphConfig
from repro.graph.path import PathValue


@pytest.fixture
def db():
    return GraphDB("merge-actions", GraphConfig(node_capacity=128))


class TestMergeActions:
    def test_on_create_fires_on_create_only(self, db):
        db.query(
            "MERGE (c:City {name: 'rome'}) "
            "ON CREATE SET c.created = true ON MATCH SET c.matched = true"
        )
        rows = db.query("MATCH (c:City) RETURN c.created, c.matched").rows
        assert rows == [(True, None)]

    def test_on_match_fires_on_match_only(self, db):
        db.query("CREATE (:City {name: 'rome'})")
        db.query(
            "MERGE (c:City {name: 'rome'}) "
            "ON CREATE SET c.created = true ON MATCH SET c.matched = true"
        )
        rows = db.query("MATCH (c:City) RETURN c.created, c.matched").rows
        assert rows == [(None, True)]

    def test_action_order_is_free(self, db):
        db.query(
            "MERGE (c:City {name: 'oslo'}) "
            "ON MATCH SET c.matched = true ON CREATE SET c.created = true"
        )
        rows = db.query("MATCH (c:City) RETURN c.created, c.matched").rows
        assert rows == [(True, None)]

    def test_match_counts_per_row(self, db):
        db.query("CREATE (:City {name: 'rome'}), (:City {name: 'rome'})")
        db.query("MERGE (c:City {name: 'rome'}) ON MATCH SET c.seen = true")
        rows = db.query("MATCH (c:City) RETURN c.seen").rows
        assert rows == [(True,), (True,)]

    def test_on_create_sees_upstream_bindings(self, db):
        db.query(
            "UNWIND [1, 2, 3] AS i MERGE (n:Num {v: i}) ON CREATE SET n.doubled = i * 2"
        )
        rows = db.query("MATCH (n:Num) RETURN n.v, n.doubled ORDER BY n.v").rows
        assert rows == [(1, 2), (2, 4), (3, 6)]

    def test_merge_relationship_with_actions(self, db):
        db.query("CREATE (:P {name: 'a'}), (:P {name: 'b'})")
        for expected in (("created",), ("matched",)):
            db.query(
                "MATCH (a:P {name: 'a'}), (b:P {name: 'b'}) "
                "MERGE (a)-[r:KNOWS]->(b) "
                "ON CREATE SET r.how = 'created' ON MATCH SET r.how = 'matched'"
            )
            assert db.query("MATCH ()-[r:KNOWS]->() RETURN r.how").rows == [expected]

    def test_properties_set_statistics(self, db):
        result = db.query("MERGE (c:City {name: 'kyiv'}) ON CREATE SET c.a = 1, c.b = 2")
        assert result.stats.properties_set >= 2

    def test_unknown_variable_in_action_rejected(self, db):
        with pytest.raises(CypherSemanticError, match="ON CREATE SET"):
            db.query("MERGE (c:City {name: 'x'}) ON CREATE SET zzz.y = 1")

    def test_explain_shows_merge_arms(self, db):
        plan = db.explain(
            "MERGE (c:City {name: 'x'}) ON CREATE SET c.a = 1 ON MATCH SET c.b = 2"
        )
        assert "ON CREATE SET" in plan and "ON MATCH SET" in plan


class TestTimestampAndClock:
    def test_timestamp_returns_epoch_millis(self, db):
        (ts,) = db.query("RETURN timestamp()").rows[0]
        assert isinstance(ts, int) and ts > 1_500_000_000_000

    def test_clock_injection_freezes_time(self, db):
        previous = set_clock(lambda: 1234.5)
        try:
            assert db.query("RETURN timestamp()").rows == [(1234500,)]
        finally:
            set_clock(previous)

    def test_merge_on_create_with_frozen_timestamp(self, db):
        previous = set_clock(lambda: 42.0)
        try:
            db.query("MERGE (c:City {name: 'x'}) ON CREATE SET c.at = timestamp()")
            assert db.query("MATCH (c:City) RETURN c.at").rows == [(42000,)]
        finally:
            set_clock(previous)

    def test_math_builtins(self, db):
        rows = db.query(
            "RETURN round(pi() * 100) / 100, round(e() * 100) / 100, "
            "log(e()), log10(100.0), exp(0), sin(0), cos(0), tan(0), atan(0)"
        ).rows
        assert rows == [(3.14, 2.72, 1.0, 2.0, 1.0, 0.0, 1.0, 0.0, 0.0)]


class TestNamedPaths:
    @pytest.fixture
    def chain(self, db):
        db.query(
            "CREATE (a:P {name: 'a'})-[:R {w: 1}]->(b:P {name: 'b'})"
            "-[:R {w: 2}]->(c:P {name: 'c'})"
        )
        return db

    def test_fixed_length_path(self, chain):
        rows = chain.query(
            "MATCH p = (a:P {name: 'a'})-[:R]->(b) RETURN length(p), b.name"
        ).rows
        assert rows == [(1, "b")]

    def test_path_value_contents(self, chain):
        (path,) = chain.query("MATCH p = (:P {name: 'a'})-[:R]->(:P) RETURN p").rows[0]
        assert isinstance(path, PathValue)
        assert [n.properties["name"] for n in path.nodes] == ["a", "b"]
        assert [e.properties["w"] for e in path.edges] == [1]
        assert path.start.id == path.nodes[0].id and path.end.id == path.nodes[-1].id

    def test_nodes_and_relationships_functions(self, chain):
        rows = chain.query(
            "MATCH p = (a:P {name: 'a'})-[:R]->()-[:R]->(c) "
            "RETURN size(nodes(p)), size(relationships(p)), length(p)"
        ).rows
        assert rows == [(3, 2, 2)]

    def test_variable_length_path(self, chain):
        rows = chain.query(
            "MATCH p = (a:P {name: 'a'})-[:R*1..2]->(x) "
            "RETURN x.name, length(p) ORDER BY length(p)"
        ).rows
        assert rows == [("b", 1), ("c", 2)]

    def test_var_len_path_nodes_in_order(self, chain):
        rows = chain.query(
            "MATCH p = (a:P {name: 'a'})-[:R*2..2]->(c) "
            "RETURN length(p), head(nodes(p)).name, last(nodes(p)).name"
        ).rows
        assert rows == [(2, "a", "c")]

    def test_optional_match_null_path(self, chain):
        rows = chain.query(
            "MATCH (c:P {name: 'c'}) OPTIONAL MATCH p = (c)-[:R]->(z) "
            "RETURN p IS NULL"
        ).rows
        assert rows == [(True,)]

    def test_undirected_named_path(self, chain):
        rows = chain.query(
            "MATCH p = (b:P {name: 'b'})-[:R]-(x) RETURN x.name, length(p) ORDER BY x.name"
        ).rows
        assert rows == [("a", 1), ("c", 1)]

    def test_path_equality_and_repr(self, chain):
        (p1,) = chain.query("MATCH p = (:P {name: 'a'})-[:R]->() RETURN p").rows[0]
        (p2,) = chain.query("MATCH p = (:P {name: 'a'})-[:R]->() RETURN p").rows[0]
        assert p1 == p2 and hash(p1) == hash(p2)
        assert repr(p1).startswith("<path (")

    def test_path_batch_size_invariance(self, chain):
        results = {}
        for size in (1, 7, 1024):
            chain.graph.config.exec_batch_size = size
            try:
                rows = chain.query(
                    "MATCH p = (a:P)-[:R*1..2]->(b) "
                    "RETURN a.name, b.name, length(p) ORDER BY a.name, b.name"
                ).rows
                results[size] = rows
            finally:
                chain.graph.config.exec_batch_size = 1024
        assert results[1] == results[7] == results[1024]


class TestCreateCycleRegression:
    def test_repeated_variable_creates_one_node(self, db):
        db.query(
            "CREATE (t1:T {name: 't1'})-[:R]->(t2:T {name: 't2'})-[:R]->(t1)"
        )
        assert db.query("MATCH (n:T) RETURN count(n)").rows == [(2,)]
        rows = db.query("MATCH (a)-[:R]->(b) RETURN a.name, b.name ORDER BY a.name").rows
        assert rows == [("t1", "t2"), ("t2", "t1")]
