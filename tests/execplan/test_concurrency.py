"""Engine-level concurrency: the RW lock must let readers run in parallel
and serialize writers, with no torn reads under mixed load."""

import threading

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig


@pytest.fixture
def db():
    d = GraphDB("conc", GraphConfig(node_capacity=64))
    d.query("UNWIND range(0, 19) AS i CREATE (:N {v: i})")
    return d


class TestConcurrentReads:
    def test_parallel_readers_consistent(self, db):
        results = []
        errors = []

        def reader():
            try:
                for _ in range(20):
                    results.append(db.query("MATCH (n:N) RETURN count(n)").scalar())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert set(results) == {20}


class TestMixedReadWrite:
    def test_counts_always_consistent_snapshot(self, db):
        """Readers racing a writer must observe whole creations: the writer
        adds nodes in pairs, so an odd total count means a torn read."""
        stop = threading.Event()
        bad = []

        def writer():
            for i in range(30):
                db.query("CREATE (:Pair), (:Pair)")
            stop.set()

        def reader():
            while not stop.is_set():
                count = db.query("MATCH (p:Pair) RETURN count(p)").scalar()
                if count % 2 != 0:
                    bad.append(count)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        w.join(timeout=120)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert bad == [], f"torn reads observed: {bad}"
        assert db.query("MATCH (p:Pair) RETURN count(p)").scalar() == 60

    def test_writers_serialize(self, db):
        """Concurrent increments through SET never lose updates."""
        def bump():
            for _ in range(10):
                db.query("MATCH (n:N {v: 0}) SET n.counter = coalesce(n.counter, 0) + 1")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        got = db.query("MATCH (n:N {v: 0}) RETURN n.counter").scalar()
        assert got == 40


class TestBulkCommitConcurrency:
    """Readers traversing overlay views while bulk COMMITs land: every
    read must observe a whole number of commits (snapshot invariants, no
    torn reads), and a commit's effects must be visible to the very next
    read after it returns."""

    def test_bulk_commit_atomic_under_readers(self, db):
        """Each commit adds a PAIR of :Bulk nodes joined by one :LINK
        edge, so any read observing an odd node count — or a node count
        disagreeing with 2x the edge count — caught a half-applied
        commit."""
        stop = threading.Event()
        bad = []
        errors = []
        rounds = 25

        def writer():
            try:
                for i in range(rounds):
                    db.bulk_insert(
                        nodes=[{"labels": ["Bulk"], "count": 2,
                                "properties": {"r": [i, i]}}],
                        edges=[{"type": "LINK", "src": [0], "dst": [1]}],
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    nodes = db.query("MATCH (b:Bulk) RETURN count(b)").scalar()
                    if nodes % 2 != 0:
                        bad.append(("odd-nodes", nodes))
                    pairs = db.query(
                        "MATCH (a:Bulk)-[:LINK]->(b:Bulk) RETURN count(b)"
                    ).scalar()
                    nodes_after = db.query("MATCH (b:Bulk) RETURN count(b)").scalar()
                    # edges only ever trail nodes within one whole commit
                    if not (pairs * 2 <= nodes_after):
                        bad.append(("edges-ahead-of-nodes", pairs, nodes_after))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        w.join(timeout=120)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert not errors
        assert bad == [], f"torn bulk commits observed: {bad}"
        assert db.query("MATCH (b:Bulk) RETURN count(b)").scalar() == 2 * rounds
        assert db.query("MATCH (:Bulk)-[:LINK]->(:Bulk) RETURN count(*)").scalar() == rounds

    def test_post_commit_reads_see_new_base(self, db):
        """After commit() returns, the next read (same thread) must see
        the spliced base — no lost visibility behind overlay caches."""
        for i in range(5):
            report = db.bulk_insert(
                nodes=[{"labels": ["Wave"], "count": 10, "properties": {"wave": [i] * 10}}],
                edges=[{"type": "W", "src": list(range(9)), "dst": list(range(1, 10))}],
            )
            assert report.nodes_created == 10
            assert db.query("MATCH (n:Wave {wave: $i}) RETURN count(n)", {"i": i}).scalar() == 10
            assert db.query("MATCH (n:Wave) RETURN count(n)").scalar() == 10 * (i + 1)
            assert db.query("MATCH (:Wave)-[:W]->(:Wave) RETURN count(*)").scalar() >= 9

    def test_outstanding_view_stays_consistent_across_commit(self, db):
        """A matrix view taken before a bulk commit keeps answering from
        its pre-commit snapshot (the flush-free overlay guarantee)."""
        db.bulk_insert(nodes=[{"labels": ["Snap"], "count": 4}],
                       edges=[{"type": "SN", "src": [0], "dst": [1]}])
        view = db.graph.relation_matrix("SN")
        before = view.nvals
        db.bulk_insert(nodes=[{"labels": ["Snap"], "count": 2}],
                       edges=[{"type": "SN", "src": [0], "dst": [1]}])
        assert view.nvals == before  # old snapshot, not torn
        assert db.graph.relation_matrix("SN").nvals == before + 1
