"""Engine-level concurrency: the RW lock must let readers run in parallel
and serialize writers, with no torn reads under mixed load."""

import threading

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig


@pytest.fixture
def db():
    d = GraphDB("conc", GraphConfig(node_capacity=64))
    d.query("UNWIND range(0, 19) AS i CREATE (:N {v: i})")
    return d


class TestConcurrentReads:
    def test_parallel_readers_consistent(self, db):
        results = []
        errors = []

        def reader():
            try:
                for _ in range(20):
                    results.append(db.query("MATCH (n:N) RETURN count(n)").scalar())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert set(results) == {20}


class TestMixedReadWrite:
    def test_counts_always_consistent_snapshot(self, db):
        """Readers racing a writer must observe whole creations: the writer
        adds nodes in pairs, so an odd total count means a torn read."""
        stop = threading.Event()
        bad = []

        def writer():
            for i in range(30):
                db.query("CREATE (:Pair), (:Pair)")
            stop.set()

        def reader():
            while not stop.is_set():
                count = db.query("MATCH (p:Pair) RETURN count(p)").scalar()
                if count % 2 != 0:
                    bad.append(count)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        w.join(timeout=120)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert bad == [], f"torn reads observed: {bad}"
        assert db.query("MATCH (p:Pair) RETURN count(p)").scalar() == 60

    def test_writers_serialize(self, db):
        """Concurrent increments through SET never lose updates."""
        def bump():
            for _ in range(10):
                db.query("MATCH (n:N {v: 0}) SET n.counter = coalesce(n.counter, 0) + 1")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        got = db.query("MATCH (n:N {v: 0}) RETURN n.counter").scalar()
        assert got == 40
