"""Robustness fuzzing: arbitrary input must produce Cypher errors (or a
valid parse), never an uncontrolled crash; well-formed generated queries
must round-trip the full pipeline without internal errors."""

import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro import GraphDB
from repro.errors import CypherError, ReproError
from repro.cypher import parse, validate
from repro.cypher.lexer import tokenize


class TestLexerFuzz:
    @given(st.text(max_size=120))
    @example("MATCH (n) RETURN n")
    @example("'unterminated")
    @example("/* unterminated")
    @example("$")
    def test_tokenize_never_crashes(self, text):
        try:
            tokens = tokenize(text)
            assert tokens[-1].type.name == "EOF"
        except CypherError:
            pass  # controlled rejection is fine


class TestParserFuzz:
    @given(st.text(max_size=120))
    def test_parse_never_crashes(self, text):
        try:
            parse(text)
        except CypherError:
            pass

    @given(
        st.text(
            alphabet=st.sampled_from(
                list("()[]{}<>-:.,|*=ABCabc123 '\"\n$")
            ),
            max_size=80,
        )
    )
    def test_parse_cypherish_soup(self, text):
        """Soup built from Cypher's own character set."""
        try:
            parse(text)
        except CypherError:
            pass


# -- generated well-formed queries -------------------------------------

labels = st.sampled_from(["Person", "Robot", "City"])
props = st.sampled_from(["name", "age", "x"])
rels = st.sampled_from(["KNOWS", "LIKES"])
vars_ = st.sampled_from(["a", "b", "c"])


@st.composite
def match_queries(draw):
    """A generator of structurally valid MATCH...RETURN queries."""
    v1 = draw(vars_)
    label = draw(labels)
    parts = [f"MATCH ({v1}:{label})"]
    hops = draw(st.integers(0, 2))
    prev = v1
    bound = [v1]
    for i in range(hops):
        nxt = f"n{i}"
        rel = draw(rels)
        direction = draw(st.sampled_from(["-[:%s]->", "<-[:%s]-", "-[:%s]-"]))
        parts.append(f"MATCH ({prev})" + (direction % rel) + f"({nxt})")
        bound.append(nxt)
        prev = nxt
    if draw(st.booleans()):
        target = draw(st.sampled_from(bound))
        prop = draw(props)
        op = draw(st.sampled_from(["=", "<>", "<", ">"]))
        parts.append(f"WHERE {target}.{prop} {op} {draw(st.integers(0, 50))}")
    ret = draw(st.sampled_from(bound))
    agg = draw(st.booleans())
    if agg:
        parts.append(f"RETURN count({ret}) AS c")
    else:
        parts.append(f"RETURN {ret}.name AS v ORDER BY v LIMIT {draw(st.integers(1, 5))}")
    return " ".join(parts)


class TestGeneratedQueries:
    @given(match_queries())
    def test_full_pipeline_executes(self, query):
        """Every generated query must parse, validate, plan and run on a
        small populated graph without non-Cypher exceptions."""
        db = _shared_db()
        result = db.query(query)
        assert isinstance(result.rows, list)

    @given(match_queries())
    def test_explain_always_renders(self, query):
        db = _shared_db()
        plan = db.explain(query)
        assert "Results" in plan


_DB = None


def _shared_db():
    global _DB
    if _DB is None:
        _DB = GraphDB("fuzz")
        _DB.query(
            "CREATE (a:Person {name:'A', age: 1, x: 2}), (b:Person {name:'B', age: 9}),"
            " (c:Robot {name:'R'}), (d:City {name:'X', x: 5}),"
            " (a)-[:KNOWS]->(b), (b)-[:LIKES]->(c), (c)-[:KNOWS]->(d), (d)-[:LIKES]->(a)"
        )
    return _DB
