"""Semantic validation tests."""

import pytest

from repro.errors import CypherSemanticError
from repro.cypher import parse, validate


def check(text):
    validate(parse(text))


class TestScoping:
    def test_bound_variable_ok(self):
        check("MATCH (n) RETURN n")

    def test_unbound_in_return(self):
        with pytest.raises(CypherSemanticError, match="not defined"):
            check("MATCH (n) RETURN m")

    def test_unbound_in_where(self):
        with pytest.raises(CypherSemanticError, match="not defined"):
            check("MATCH (n) WHERE m.x = 1 RETURN n")

    def test_with_narrows_scope(self):
        with pytest.raises(CypherSemanticError, match="not defined"):
            check("MATCH (n)-[:R]->(m) WITH n RETURN m")

    def test_with_alias_visible(self):
        check("MATCH (n) WITH n.age AS age RETURN age")

    def test_with_star_keeps_all(self):
        check("MATCH (n)-[:R]->(m) WITH * RETURN n, m")

    def test_unwind_binds(self):
        check("UNWIND [1,2] AS x RETURN x")

    def test_node_rel_kind_conflict(self):
        with pytest.raises(CypherSemanticError, match="already declared"):
            check("MATCH (n)-[n:R]->(m) RETURN n")

    def test_node_reuse_is_join(self):
        check("MATCH (a)-[:X]->(b), (b)-[:Y]->(c) RETURN a, c")

    def test_set_unbound_target(self):
        with pytest.raises(CypherSemanticError):
            check("MATCH (n) SET m.x = 1")

    def test_delete_unbound(self):
        with pytest.raises(CypherSemanticError):
            check("MATCH (n) DELETE m")


class TestAggregations:
    def test_aggregate_in_return_ok(self):
        check("MATCH (n) RETURN count(n)")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(CypherSemanticError, match="aggregation"):
            check("MATCH (n) WHERE count(n) > 1 RETURN n")

    def test_nested_aggregate_rejected(self):
        with pytest.raises(CypherSemanticError, match="nested"):
            check("MATCH (n) RETURN count(sum(n.x))")

    def test_aggregate_in_with_ok(self):
        check("MATCH (n) WITH count(n) AS c RETURN c")


class TestClauseStructure:
    def test_nothing_after_return(self):
        with pytest.raises(CypherSemanticError, match="follow RETURN"):
            check("MATCH (n) RETURN n MATCH (m) RETURN m")

    def test_match_alone_rejected(self):
        with pytest.raises(CypherSemanticError, match="neither returns"):
            check("MATCH (n)")

    def test_create_alone_ok(self):
        check("CREATE (:Person)")

    def test_duplicate_return_columns(self):
        with pytest.raises(CypherSemanticError, match="duplicate"):
            check("MATCH (n) RETURN n.x AS a, n.y AS a")

    def test_return_star_empty_scope(self):
        with pytest.raises(CypherSemanticError):
            check("RETURN *")


class TestCreateRestrictions:
    def test_create_needs_one_type(self):
        with pytest.raises(CypherSemanticError, match="exactly one relationship type"):
            check("CREATE (a)-[:X|Y]->(b)")

    def test_create_no_varlength(self):
        with pytest.raises(CypherSemanticError, match="variable-length"):
            check("CREATE (a)-[:X*2]->(b)")

    def test_create_requires_direction(self):
        with pytest.raises(CypherSemanticError, match="directed"):
            check("CREATE (a)-[:X]-(b)")

    def test_varlength_binding_rejected(self):
        with pytest.raises(CypherSemanticError, match="variable-length"):
            check("MATCH (a)-[r:X*1..2]->(b) RETURN r")


class TestUnion:
    def test_matching_columns_ok(self):
        check("RETURN 1 AS x UNION RETURN 2 AS x")

    def test_mismatched_columns(self):
        with pytest.raises(CypherSemanticError, match="same columns"):
            check("RETURN 1 AS x UNION RETURN 2 AS y")
