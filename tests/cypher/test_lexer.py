"""Cypher tokenizer tests."""

import pytest

from repro.errors import CypherSyntaxError
from repro.cypher.lexer import tokenize
from repro.cypher.tokens import TokenType


def types(text):
    return [t.type for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        toks = tokenize("match MATCH Match")
        assert all(t.type is TokenType.KEYWORD and t.value == "MATCH" for t in toks[:-1])

    def test_identifiers(self):
        toks = tokenize("foo _bar baz123")
        assert all(t.type is TokenType.IDENT for t in toks[:-1])
        assert values("foo _bar") == ["foo", "_bar"]

    def test_backquoted_identifier(self):
        toks = tokenize("`weird name!`")
        assert toks[0].type is TokenType.IDENT and toks[0].value == "weird name!"

    def test_integers_and_floats(self):
        assert types("42") == [TokenType.INTEGER]
        assert types("3.14") == [TokenType.FLOAT]
        assert types("1e5") == [TokenType.FLOAT]
        assert types("2.5e-3") == [TokenType.FLOAT]

    def test_range_not_float(self):
        # "1..3" must lex as INTEGER RANGE INTEGER (variable-length hops)
        assert types("1..3") == [TokenType.INTEGER, TokenType.RANGE, TokenType.INTEGER]

    def test_strings_both_quotes(self):
        assert values("'abc' \"def\"") == ["abc", "def"]

    def test_string_escapes(self):
        assert values(r"'a\'b\nc'") == ["a'b\nc"]

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")

    def test_parameter(self):
        toks = tokenize("$name")
        assert toks[0].type is TokenType.PARAMETER and toks[0].value == "name"

    def test_bare_dollar_rejected(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("$ x")


class TestOperators:
    def test_arrows(self):
        assert types("-> <- -") == [TokenType.ARROW_RIGHT, TokenType.ARROW_LEFT, TokenType.DASH]

    def test_comparison_ops(self):
        assert values("<> <= >= < > =") == ["<>", "<=", ">=", "<", ">", "="]

    def test_plus_equals(self):
        assert values("+=") == ["+="]

    def test_punctuation(self):
        assert values("()[]{},:;|.") == list("()[]{},:;|.")

    def test_edge_pattern_lexes(self):
        toks = tokenize("(a)-[:KNOWS*1..2]->(b)")
        kinds = [t.type for t in toks[:-1]]
        assert TokenType.ARROW_RIGHT in kinds and TokenType.RANGE in kinds


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("/* never ends")

    def test_positions_tracked(self):
        toks = tokenize("ab\n cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 2)

    def test_error_carries_position(self):
        with pytest.raises(CypherSyntaxError) as exc:
            tokenize("a\n  @")
        assert exc.value.line == 2 and exc.value.column == 3

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("~")
