"""Parser tests: clause structure, patterns, expressions, precedence."""

import pytest

from repro.errors import CypherSyntaxError
from repro.cypher import ast_nodes as A
from repro.cypher.parser import parse


def single(text):
    return parse(text).single


def first_clause(text):
    return single(text).clauses[0]


class TestMatchPatterns:
    def test_simple_match_return(self):
        q = single("MATCH (n) RETURN n")
        assert isinstance(q.clauses[0], A.MatchClause)
        assert isinstance(q.clauses[1], A.ReturnClause)
        node = q.clauses[0].patterns[0].nodes[0]
        assert node.var == "n" and node.labels == ()

    def test_labels_and_properties(self):
        m = first_clause("MATCH (n:Person:Admin {name: 'Ann', age: 30}) RETURN n")
        node = m.patterns[0].nodes[0]
        assert node.labels == ("Person", "Admin")
        props = dict(node.properties)
        assert props["name"] == A.Literal("Ann") and props["age"] == A.Literal(30)

    def test_anonymous_node(self):
        m = first_clause("MATCH (:Person) RETURN 1")
        assert m.patterns[0].nodes[0].var is None

    def test_directed_out(self):
        m = first_clause("MATCH (a)-[r:KNOWS]->(b) RETURN a")
        rel = m.patterns[0].rels[0]
        assert rel.var == "r" and rel.types == ("KNOWS",) and rel.direction == "out"

    def test_directed_in(self):
        m = first_clause("MATCH (a)<-[:KNOWS]-(b) RETURN a")
        assert m.patterns[0].rels[0].direction == "in"

    def test_undirected(self):
        m = first_clause("MATCH (a)-[:KNOWS]-(b) RETURN a")
        assert m.patterns[0].rels[0].direction == "any"

    def test_bare_edges(self):
        m = first_clause("MATCH (a)-->(b)<--(c) RETURN a")
        assert m.patterns[0].rels[0].direction == "out"
        assert m.patterns[0].rels[1].direction == "in"

    def test_type_alternation(self):
        m = first_clause("MATCH (a)-[:A|B|:C]->(b) RETURN a")
        assert m.patterns[0].rels[0].types == ("A", "B", "C")

    def test_long_path(self):
        m = first_clause("MATCH (a)-[:X]->(b)-[:Y]->(c)-[:Z]->(d) RETURN a")
        path = m.patterns[0]
        assert len(path.nodes) == 4 and len(path.rels) == 3

    def test_multiple_patterns(self):
        m = first_clause("MATCH (a), (b)-[:R]->(c) RETURN a")
        assert len(m.patterns) == 2

    def test_named_path(self):
        m = first_clause("MATCH p = (a)-[:R]->(b) RETURN p")
        assert m.patterns[0].var == "p"

    def test_where_attached(self):
        m = first_clause("MATCH (n) WHERE n.age > 30 RETURN n")
        assert isinstance(m.where, A.Comparison)

    def test_optional_match(self):
        m = first_clause("OPTIONAL MATCH (n) RETURN n")
        assert m.optional


class TestVariableLength:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("[*]", (1, -1)),
            ("[*2]", (2, 2)),
            ("[*1..3]", (1, 3)),
            ("[*..4]", (1, 4)),
            ("[*2..]", (2, -1)),
            ("[:R*1..6]", (1, 6)),
        ],
    )
    def test_hop_ranges(self, pattern, expected):
        m = first_clause(f"MATCH (a)-{pattern}->(b) RETURN a")
        rel = m.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == expected
        assert rel.variable_length

    def test_empty_range_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a)-[*3..2]->(b) RETURN a")

    def test_fixed_single_hop_not_variable(self):
        m = first_clause("MATCH (a)-[:R]->(b) RETURN a")
        assert not m.patterns[0].rels[0].variable_length


class TestOtherClauses:
    def test_create(self):
        c = first_clause("CREATE (:Person {name: 'Zed'})")
        assert isinstance(c, A.CreateClause)

    def test_merge(self):
        c = first_clause("MERGE (n:Person {name: 'Zed'})")
        assert isinstance(c, A.MergeClause)

    def test_delete(self):
        q = single("MATCH (n) DELETE n")
        assert isinstance(q.clauses[1], A.DeleteClause) and not q.clauses[1].detach

    def test_detach_delete(self):
        q = single("MATCH (n) DETACH DELETE n")
        assert q.clauses[1].detach

    def test_set_property(self):
        q = single("MATCH (n) SET n.age = 31")
        item = q.clauses[1].items[0]
        assert item.target == "n" and item.key == "age"

    def test_set_merge_map(self):
        q = single("MATCH (n) SET n += {a: 1}")
        assert q.clauses[1].items[0].merge_map

    def test_set_labels(self):
        q = single("MATCH (n) SET n:Admin:Owner")
        assert q.clauses[1].items[0].labels == ("Admin", "Owner")

    def test_remove(self):
        q = single("MATCH (n) REMOVE n.age")
        assert q.clauses[1].items[0].key == "age"

    def test_unwind(self):
        c = first_clause("UNWIND [1,2,3] AS x RETURN x")
        assert isinstance(c, A.UnwindClause) and c.alias == "x"

    def test_with_pipeline(self):
        q = single("MATCH (n) WITH n.age AS age WHERE age > 1 RETURN age")
        w = q.clauses[1]
        assert isinstance(w, A.WithClause)
        assert w.projections[0].alias == "age" and w.where is not None

    def test_return_modifiers(self):
        q = single("MATCH (n) RETURN DISTINCT n ORDER BY n.age DESC SKIP 2 LIMIT 5")
        r = q.clauses[1]
        assert r.distinct and not r.order_by[0].ascending
        assert r.skip == A.Literal(2) and r.limit == A.Literal(5)

    def test_return_star(self):
        q = single("MATCH (n) RETURN *")
        assert q.clauses[1].projections[0].star

    def test_union(self):
        q = parse("RETURN 1 AS x UNION RETURN 2 AS x")
        assert len(q.parts) == 2 and not q.union_all

    def test_union_all(self):
        q = parse("RETURN 1 AS x UNION ALL RETURN 1 AS x")
        assert q.union_all

    def test_create_index(self):
        c = first_clause("CREATE INDEX ON :Person(name)")
        assert isinstance(c, A.CreateIndexClause)
        assert c.label == "Person" and c.attribute == "name"

    def test_drop_index(self):
        c = first_clause("DROP INDEX ON :Person(name)")
        assert isinstance(c, A.DropIndexClause)

    def test_create_composite_index(self):
        c = first_clause("CREATE INDEX ON :Person(age, name)")
        assert isinstance(c, A.CreateIndexClause)
        assert c.kind == "composite" and c.attributes == ("age", "name")

    def test_create_vector_index(self):
        c = first_clause(
            "CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {dimension: 128, similarity: 'cosine'}"
        )
        assert c.kind == "vector" and c.attributes == ("emb",)
        assert dict(c.options) == {"dimension": 128, "similarity": "cosine"}

    def test_vector_index_options_optional(self):
        c = first_clause("CREATE VECTOR INDEX ON :Doc(emb)")
        assert c.kind == "vector" and c.options == ()

    def test_drop_vector_index(self):
        c = first_clause("DROP VECTOR INDEX ON :Doc(emb)")
        assert isinstance(c, A.DropIndexClause) and c.kind == "vector"

    def test_vector_index_single_attribute_only(self):
        with pytest.raises(CypherSyntaxError, match="exactly one property"):
            parse("CREATE VECTOR INDEX ON :Doc(a, b)")

    def test_vector_options_must_be_literals(self):
        with pytest.raises(CypherSyntaxError, match="literal"):
            parse("CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {dimension: x}")

    def test_vector_is_not_a_reserved_word(self):
        c = first_clause("MATCH (vector:VECTOR) RETURN vector")
        assert isinstance(c, A.MatchClause)


class TestExpressions:
    def expr(self, text):
        return first_clause(f"RETURN {text} AS x").projections[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_power_right_assoc(self):
        e = self.expr("2 ^ 3 ^ 2")
        assert e.op == "^" and isinstance(e.right, A.Binary) and e.right.op == "^"

    def test_parens_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and isinstance(e.left, A.Binary)

    def test_unary_minus(self):
        e = self.expr("-n")
        assert isinstance(e, A.Unary) and e.op == "-"

    def test_bool_precedence(self):
        e = self.expr("a OR b AND c")
        assert isinstance(e, A.BoolOp) and e.op == "OR"
        assert isinstance(e.right, A.BoolOp) and e.right.op == "AND"

    def test_not(self):
        e = self.expr("NOT a")
        assert isinstance(e, A.Not)

    def test_comparison_chain_desugars_to_and(self):
        e = self.expr("1 < x < 10")
        assert isinstance(e, A.BoolOp) and e.op == "AND"

    def test_is_null(self):
        e = self.expr("n.x IS NULL")
        assert isinstance(e, A.IsNull) and not e.negated
        e2 = self.expr("n.x IS NOT NULL")
        assert e2.negated

    def test_in_list(self):
        e = self.expr("x IN [1, 2]")
        assert isinstance(e, A.InList)

    def test_string_predicates(self):
        assert self.expr("s STARTS WITH 'a'").op == "STARTS_WITH"
        assert self.expr("s ENDS WITH 'a'").op == "ENDS_WITH"
        assert self.expr("s CONTAINS 'a'").op == "CONTAINS"

    def test_property_chain(self):
        e = self.expr("a.b.c")
        assert isinstance(e, A.PropertyAccess) and e.key == "c"
        assert isinstance(e.subject, A.PropertyAccess)

    def test_subscript_and_slice(self):
        assert isinstance(self.expr("xs[0]"), A.Subscript)
        s = self.expr("xs[1..3]")
        assert isinstance(s, A.Slice)
        s2 = self.expr("xs[..2]")
        assert s2.start is None

    def test_list_and_map_literals(self):
        l = self.expr("[1, 'a', true]")
        assert isinstance(l, A.ListLiteral) and len(l.items) == 3
        m = self.expr("{a: 1, b: 'x'}")
        assert isinstance(m, A.MapLiteral)

    def test_count_star(self):
        e = self.expr("count(*)")
        assert isinstance(e, A.FunctionCall) and e.name == "count" and e.args == ()

    def test_count_distinct(self):
        e = self.expr("count(DISTINCT n)")
        assert e.distinct

    def test_function_case_insensitive_name(self):
        e = self.expr("toUpper('x')")
        assert e.name == "toupper"

    def test_case_expression(self):
        e = self.expr("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, A.CaseExpr) and e.subject is None and e.default is not None

    def test_case_with_subject(self):
        e = self.expr("CASE x WHEN 1 THEN 'one' END")
        assert e.subject is not None and e.default is None

    def test_parameters(self):
        e = self.expr("$who")
        assert isinstance(e, A.Parameter) and e.name == "who"

    def test_null_true_false(self):
        assert self.expr("null") == A.Literal(None)
        assert self.expr("TRUE") == A.Literal(True)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "MATCH (n RETURN n",
            "MATCH (n) RETURN",
            "RETURN 1 AS",
            "MATCH (a)-[>(b) RETURN a",
            "MATCH (a)-[:]->(b) RETURN a",
            "SET = 3",
            "FOO (n)",
            "MATCH (n) RETURN n extra_token",
            "CREATE INDEX Person(name)",
            "UNWIND [1] x RETURN x",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(CypherSyntaxError):
            parse(bad)

    def test_error_mentions_position(self):
        with pytest.raises(CypherSyntaxError) as exc:
            parse("MATCH (n)\nRETURN")
        assert "line 2" in str(exc.value)
