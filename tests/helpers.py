"""Test helpers: hypothesis strategies for sparse containers and slow-but-
obviously-correct dense reference implementations of the GraphBLAS ops."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.grblas import Matrix, Vector
from repro.grblas.semiring import Semiring

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def dense_pair(draw, max_dim: int = 5):
    """(values, pattern) for one random sparse matrix; values in 1..5."""
    nr = draw(st.integers(1, max_dim))
    nc = draw(st.integers(1, max_dim))
    pattern = draw(arrays(np.bool_, (nr, nc)))
    values = draw(
        arrays(
            np.int64,
            (nr, nc),
            elements=st.integers(1, 5),
        )
    )
    return values * pattern, pattern


@st.composite
def matrix_and_pattern(draw, max_dim: int = 5, dtype=np.float64):
    values, pattern = draw(dense_pair(max_dim))
    values = values.astype(dtype)
    rows, cols = np.nonzero(pattern)
    M = Matrix.from_coo(rows, cols, values[rows, cols], nrows=pattern.shape[0], ncols=pattern.shape[1], dtype=dtype)
    return M, values, pattern


@st.composite
def vector_and_pattern(draw, size: int | None = None, max_dim: int = 5, dtype=np.float64):
    n = size if size is not None else draw(st.integers(1, max_dim))
    pattern = draw(arrays(np.bool_, (n,)))
    values = draw(arrays(np.int64, (n,), elements=st.integers(1, 5))).astype(dtype) * pattern
    idx = np.flatnonzero(pattern)
    v = Vector.from_coo(idx, values[idx], size=n, dtype=dtype)
    return v, values, pattern


# ---------------------------------------------------------------------------
# Dense references (presence-aware)
# ---------------------------------------------------------------------------


def ref_mxm(Ad, Ap, Bd, Bp, ring: Semiring):
    """O(n^3) reference of C = A ring B with explicit presence tracking."""
    m, k = Ad.shape
    _, n = Bd.shape
    out = np.zeros((m, n), dtype=np.float64)
    present = np.zeros((m, n), dtype=bool)
    for i in range(m):
        for j in range(n):
            acc = None
            for kk in range(k):
                if Ap[i, kk] and Bp[kk, j]:
                    p = _apply_binary(ring.mult, Ad[i, kk], Bd[kk, j])
                    acc = p if acc is None else _apply_binary(ring.add.op, acc, p)
            if acc is not None:
                out[i, j] = acc
                present[i, j] = True
    return out, present


def ref_ewise_add(Ad, Ap, Bd, Bp, op):
    out = np.zeros(Ad.shape, dtype=np.float64)
    present = Ap | Bp
    both = Ap & Bp
    only_a = Ap & ~Bp
    only_b = Bp & ~Ap
    out[only_a] = Ad[only_a]
    out[only_b] = Bd[only_b]
    for i, j in zip(*np.nonzero(both)):
        out[i, j] = _apply_binary(op, Ad[i, j], Bd[i, j])
    return out, present


def ref_ewise_mult(Ad, Ap, Bd, Bp, op):
    out = np.zeros(Ad.shape, dtype=np.float64)
    present = Ap & Bp
    for i, j in zip(*np.nonzero(present)):
        out[i, j] = _apply_binary(op, Ad[i, j], Bd[i, j])
    return out, present


def _apply_binary(op, x, y):
    return float(np.asarray(op(np.asarray([x]), np.asarray([y])))[0])


def matrix_dense_and_pattern(M: Matrix):
    """(dense values, presence pattern) of a Matrix."""
    rows, cols, vals = M.to_coo()
    d = np.zeros(M.shape, dtype=np.float64)
    p = np.zeros(M.shape, dtype=bool)
    d[rows, cols] = vals.astype(np.float64)
    p[rows, cols] = True
    return d, p


def vector_dense_and_pattern(v: Vector):
    idx, vals = v.to_coo()
    d = np.zeros(v.size, dtype=np.float64)
    p = np.zeros(v.size, dtype=bool)
    d[idx] = vals.astype(np.float64)
    p[idx] = True
    return d, p
