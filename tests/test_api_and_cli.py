"""GraphDB facade, bench CLI and throughput-driver tests."""

import pytest

from repro import GraphDB
from repro.bench.__main__ import main as bench_main
from repro.bench.throughput import run_throughput
from repro.datasets import graph500_edges


class TestGraphDB:
    def test_repr(self):
        db = GraphDB("demo")
        db.query("CREATE (:A)-[:R]->(:B)")
        assert "demo" in repr(db) and "2 nodes" in repr(db)

    def test_delete_resets(self):
        db = GraphDB("demo")
        db.query("CREATE (:A)")
        db.delete()
        assert db.query("MATCH (n) RETURN count(n)").scalar() == 0
        assert db.name == "demo"

    def test_profile_returns_pair(self):
        db = GraphDB("demo")
        db.query("CREATE (:A)")
        result = db.profile("MATCH (n) RETURN n")
        report = result.profile
        assert len(result.rows) == 1 and "Records produced" in report

    def test_lazy_import_attribute(self):
        import repro

        assert repro.GraphDB is GraphDB
        with pytest.raises(AttributeError):
            repro.NoSuchThing


class TestThroughputDriver:
    def test_runs_and_reports_qps(self):
        src, dst, n = graph500_edges(8, 8, seed=2)
        results = run_throughput(src, dst, n, thread_counts=(1, 2), queries_per_run=6)
        assert [r.threads for r in results] == [1, 2]
        for r in results:
            assert r.queries == 6 and r.qps > 0


class TestBenchCLI:
    def test_fig1_command(self, capsys):
        code = bench_main(
            [
                "fig1",
                "--scale",
                "7",
                "--twitter-n",
                "256",
                "--seed-fraction",
                "0.01",
                "--engines",
                "matrix,csr-baseline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 1" in out and "matrix" in out

    def test_khop_command_with_csv(self, capsys, tmp_path):
        code = bench_main(
            [
                "khop",
                "--scale",
                "7",
                "--twitter-n",
                "256",
                "--hops",
                "1,2",
                "--seed-fraction",
                "0.01",
                "--engines",
                "matrix",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        csv = (tmp_path / "khop.csv").read_text()
        assert csv.startswith("dataset,engine,k")

    def test_claims_command(self, capsys):
        code = bench_main(
            [
                "claims",
                "--scale",
                "7",
                "--twitter-n",
                "256",
                "--hops",
                "1,2",
                "--seed-fraction",
                "0.01",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "C1" in out and "C3" in out
