"""Dataset generator tests: shape, determinism, degree structure."""

import numpy as np
import pytest

from repro.datasets import (
    build_graph,
    build_graphdb,
    edges_to_matrix,
    graph500_edges,
    ldbc_lite,
    twitter_edges,
)


class TestGraph500:
    def test_sizes(self):
        src, dst, n = graph500_edges(scale=10, edge_factor=16, seed=3)
        assert n == 1024
        assert len(src) == len(dst)
        assert len(src) <= 16 * n
        assert len(src) > 14 * n  # only self-loops were dropped

    def test_ids_in_range(self):
        src, dst, n = graph500_edges(scale=8, seed=1)
        assert src.min() >= 0 and src.max() < n
        assert dst.min() >= 0 and dst.max() < n

    def test_deterministic(self):
        a = graph500_edges(scale=8, seed=5)
        b = graph500_edges(scale=8, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_output(self):
        a = graph500_edges(scale=8, seed=1)
        b = graph500_edges(scale=8, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_no_self_loops(self):
        src, dst, _ = graph500_edges(scale=8, seed=1)
        assert np.all(src != dst)

    def test_kronecker_skew(self):
        """RMAT graphs have heavy-tailed degrees: the max out-degree far
        exceeds the mean (unlike an Erdos-Renyi graph)."""
        src, dst, n = graph500_edges(scale=12, seed=1)
        deg = np.bincount(src, minlength=n)
        assert deg.max() > 8 * deg.mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            graph500_edges(scale=0)
        with pytest.raises(ValueError):
            graph500_edges(scale=4, a=0.6, b=0.3, c=0.2)


class TestTwitter:
    def test_sizes_and_range(self):
        src, dst, n = twitter_edges(n=2048, edge_factor=10, seed=2)
        assert n == 2048
        assert src.max() < n and dst.max() < n and src.min() >= 0

    def test_deterministic(self):
        a = twitter_edges(n=1024, seed=9)
        b = twitter_edges(n=1024, seed=9)
        assert np.array_equal(a[0], b[0])

    def test_in_degree_heavier_than_out(self):
        """alpha_in > alpha_out must skew in-degree harder (celebrity)."""
        src, dst, n = twitter_edges(n=4096, edge_factor=20, seed=3)
        in_deg = np.bincount(dst, minlength=n)
        out_deg = np.bincount(src, minlength=n)
        assert in_deg.max() > out_deg.max()

    def test_no_self_loops(self):
        src, dst, _ = twitter_edges(n=512, seed=1)
        assert np.all(src != dst)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            twitter_edges(n=1)


class TestLoader:
    def test_edges_to_matrix(self):
        src = np.array([0, 1, 0])
        dst = np.array([1, 2, 1])  # duplicate (0,1)
        A = edges_to_matrix(src, dst, 3)
        assert A.nvals == 2 and A[0, 1] is not None

    def test_build_graph(self):
        src, dst, n = graph500_edges(scale=6, seed=1)
        g = build_graph(src, dst, n)
        assert g.node_count == n
        A = g.relation_matrix("E")
        assert A.nvals == len(np.unique(src * n + dst))

    def test_build_graphdb_queryable(self):
        src, dst, n = graph500_edges(scale=6, seed=1)
        db = build_graphdb(src, dst, n)
        assert db.query("MATCH (v:V) RETURN count(v)").scalar() == n
        # 1-hop from the highest-degree node works through Cypher
        hub = int(np.bincount(src, minlength=n).argmax())
        count = db.query(
            "MATCH (s:V)-[:E]->(t) WHERE id(s) = $s RETURN count(DISTINCT t)",
            {"s": hub},
        ).scalar()
        expected = len(np.unique(dst[src == hub]))
        assert count == expected


class TestLdbcLite:
    @pytest.fixture(scope="class")
    def db(self):
        return ldbc_lite(persons=40, seed=5)

    def test_entity_counts(self, db):
        assert db.query("MATCH (p:Person) RETURN count(p)").scalar() == 40
        assert db.query("MATCH (p:Post) RETURN count(p)").scalar() == 80

    def test_created_edges(self, db):
        assert db.query("MATCH (:Person)-[:CREATED]->(:Post) RETURN count(*)").scalar() == 80

    def test_cities_assigned(self, db):
        cities = db.query("MATCH (p:Person) RETURN DISTINCT p.city ORDER BY p.city").column("p.city")
        assert len(cities) == 4

    def test_community_structure(self, db):
        """KNOWS should be denser within a city than across."""
        intra = db.query(
            "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.city = b.city RETURN count(*)"
        ).scalar()
        inter = db.query(
            "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.city <> b.city RETURN count(*)"
        ).scalar()
        assert intra > inter

    def test_likes_present(self, db):
        assert db.query("MATCH (:Person)-[:LIKES]->(:Post) RETURN count(*)").scalar() == 120
