"""CSV bulk import: type inference, external-id resolution, atomic
commit through the BulkWriter, and malformed-file errors."""

import pytest

from repro import GraphDB
from repro.datasets.csv_import import import_csv, infer_value
from repro.errors import GraphError
from repro.graph.config import GraphConfig


@pytest.fixture
def db():
    return GraphDB("csv", GraphConfig(node_capacity=16))


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestInference:
    def test_types(self):
        assert infer_value("3") == 3
        assert infer_value("3.5") == 3.5
        assert infer_value("true") is True
        assert infer_value("False") is False
        assert infer_value("null") is None
        assert infer_value("") is None
        assert infer_value("bob") == "bob"
        assert infer_value("3x") == "3x"


class TestImport:
    def test_nodes_and_edges(self, db, tmp_path):
        people = write(tmp_path, "people.csv", "id,name,age\np1,ann,30\np2,bo,\n")
        cities = write(tmp_path, "cities.csv", "id,name\nc1,berlin\n")
        knows = write(tmp_path, "knows.csv", "src,dst,since\np1,p2,2019\n")
        lives = write(tmp_path, "lives.csv", "src,dst\np1,c1\np2,c1\n")
        report = import_csv(
            db,
            nodes={"Person": people, "City": cities},
            edges={"KNOWS": knows, "LIVES_IN": lives},
        )
        assert report.nodes_created == 3
        assert report.relationships_created == 3
        r = db.query("MATCH (a:Person)-[e:KNOWS]->(b:Person) RETURN a.name, b.name, e.since")
        assert r.rows == [("ann", "bo", 2019)]
        assert db.query("MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN count(p)").scalar() == 2
        # the external id is kept as a queryable property
        assert db.query("MATCH (n {id: 'p2'}) RETURN n.age").rows == [(None,)]

    def test_accepts_bare_graph(self, db, tmp_path):
        people = write(tmp_path, "p.csv", "id,name\na,x\n")
        report = import_csv(db.graph, nodes={"P": people})
        assert report.nodes_created == 1

    def test_duplicate_external_id(self, db, tmp_path):
        bad = write(tmp_path, "p.csv", "id\nx\nx\n")
        with pytest.raises(GraphError, match="duplicate external id"):
            import_csv(db, nodes={"P": bad})
        assert db.graph.node_count == 0

    def test_unknown_edge_endpoint(self, db, tmp_path):
        people = write(tmp_path, "p.csv", "id\na\n")
        edges = write(tmp_path, "e.csv", "src,dst\na,zz\n")
        with pytest.raises(GraphError, match="unknown node id"):
            import_csv(db, nodes={"P": people}, edges={"R": edges})
        assert db.graph.node_count == 0  # staging failed before commit

    def test_missing_id_column(self, db, tmp_path):
        bad = write(tmp_path, "p.csv", "name\nx\n")
        with pytest.raises(GraphError, match="lacks the 'id' column"):
            import_csv(db, nodes={"P": bad})

    def test_ragged_row(self, db, tmp_path):
        bad = write(tmp_path, "p.csv", "id,name\na\n")
        with pytest.raises(GraphError, match="expected 2 fields"):
            import_csv(db, nodes={"P": bad})

    def test_blank_lines_skipped_but_linenos_physical(self, db, tmp_path):
        f = write(tmp_path, "p.csv", "id,name\n\na,ann\n\n\nb,bo\n")
        import_csv(db, nodes={"P": f})
        assert db.graph.node_count == 2
        dup = write(tmp_path, "q.csv", "id\nx\n\nx\n")
        with pytest.raises(GraphError, match="q.csv:4: duplicate"):
            import_csv(db, nodes={"Q": dup})

    def test_empty_file(self, db, tmp_path):
        bad = write(tmp_path, "p.csv", "")
        with pytest.raises(GraphError, match="empty"):
            import_csv(db, nodes={"P": bad})

    def test_custom_columns_and_delimiter(self, db, tmp_path):
        people = write(tmp_path, "p.csv", "key|name\na|ann\nb|bo\n")
        edges = write(tmp_path, "e.csv", "from|to\na|b\n")
        import_csv(
            db,
            nodes={"P": people},
            edges={"R": edges},
            id_column="key",
            src_column="from",
            dst_column="to",
            delimiter="|",
        )
        assert db.query("MATCH (:P {name:'ann'})-[:R]->(b:P) RETURN b.name").scalar() == "bo"

    def test_index_backfilled_from_csv(self, db, tmp_path):
        db.query("CREATE INDEX ON :P(name)")
        people = write(tmp_path, "p.csv", "id,name\na,ann\nb,bo\n")
        import_csv(db, nodes={"P": people})
        assert "NodeByIndexScan" in db.explain("MATCH (n:P {name: 'bo'}) RETURN n")
        assert db.query("MATCH (n:P {name: 'bo'}) RETURN n.id").scalar() == "b"
