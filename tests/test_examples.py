"""Smoke tests: the bundled examples must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Ann's friends" in out
    assert "CondVarLenTraverse" in out
    assert "people within 2 hops of Ann: 3" in out


def test_social_recommendations():
    out = run_example("social_recommendations.py")
    assert "people you may know" in out
    assert "most-followed people" in out


def test_fraud_detection():
    out = run_example("fraud_detection.py")
    assert "ring 7 -> 8 -> 9 -> 7" in out
    # the planted device-sharing cluster (accounts 20-24 on device 3)
    assert "device 3:" in out and "20, 21, 22, 23, 24" in out


def test_server_client():
    out = run_example("server_client.py")
    assert "PING -> PONG" in out
    assert "concurrent readers finished" in out
    assert "server stopped" in out
