"""GraphModule unit tests: reply encoding and module-level behaviour
(without the TCP layer)."""

import pytest

from repro.errors import ResponseError
from repro.graph.config import GraphConfig
from repro.rediskv.graph_module import GraphModule, encode_value, parse_cypher_params
from repro.rediskv.keyspace import Keyspace


@pytest.fixture
def module():
    return GraphModule(Keyspace(), GraphConfig(node_capacity=16))


class TestEncodeValue:
    def test_scalars_pass_through(self):
        assert encode_value(5) == 5
        assert encode_value("x") == "x"
        assert encode_value(None) is None
        assert encode_value(2.5) == 2.5

    def test_list_recurses(self):
        assert encode_value([1, [2, None]]) == [1, [2, None]]

    def test_map_becomes_sorted_pairs(self):
        assert encode_value({"b": 2, "a": 1}) == [["a", 1], ["b", 2]]

    def test_node_encoding(self, module):
        module.query("g", "CREATE (:P:Q {b: 2, a: 1})")
        reply = module.query("g", "MATCH (n:P) RETURN n")
        node = reply[1][0][0]
        assert node[0] == "node"
        assert sorted(node[2]) == ["P", "Q"]
        assert node[3] == [["a", 1], ["b", 2]]

    def test_edge_encoding(self, module):
        module.query("g", "CREATE (:A)-[:R {w: 1}]->(:B)")
        reply = module.query("g", "MATCH ()-[e:R]->() RETURN e")
        edge = reply[1][0][0]
        assert edge[0] == "relationship" and edge[2] == "R"
        assert edge[5] == [["w", 1]]


class TestModuleCommands:
    def test_query_creates_graph_on_first_use(self, module):
        module.query("g", "CREATE (:X)")
        assert module.list_graphs() == ["g"]

    def test_reply_structure(self, module):
        reply = module.query("g", "RETURN 1 AS one")
        header, rows, stats = reply
        assert header == ["one"] and rows == [[1]]
        assert any("execution time" in s for s in stats)

    def test_ro_query_missing_graph(self, module):
        with pytest.raises(ResponseError, match="does not exist"):
            module.ro_query("nope", "MATCH (n) RETURN n")

    def test_explain_lines(self, module):
        module.query("g", "CREATE (:X)")
        lines = module.explain("g", "MATCH (n:X) RETURN n")
        assert any("NodeByLabelScan" in l for l in lines)

    def test_profile_lines(self, module):
        module.query("g", "CREATE (:X)")
        lines = module.profile("g", "MATCH (n:X) RETURN n")
        assert any("Records produced" in l for l in lines)

    def test_delete(self, module):
        module.query("g", "CREATE (:X)")
        assert module.delete("g") == "OK"
        assert module.list_graphs() == []
        with pytest.raises(ResponseError):
            module.delete("g")


class TestParamPrefixEdgeCases:
    def test_negative_numbers(self):
        _, p = parse_cypher_params("CYPHER x=-5 y=-2.5 RETURN 1")
        assert p == {"x": -5, "y": -2.5}

    def test_query_starting_with_word_cypher_lookalike(self):
        # 'CYPHERX' is not the prefix keyword
        q, p = parse_cypher_params("CYPHERX RETURN 1")
        assert p == {} and q.startswith("CYPHERX")

    def test_nested_list(self):
        _, p = parse_cypher_params("CYPHER xs=[1, [2, 3]] RETURN 1")
        assert p == {"xs": [1, [2, 3]]}

    def test_empty_params_section(self):
        q, p = parse_cypher_params("CYPHER   MATCH (n) RETURN n")
        assert p == {} and q.strip() == "MATCH (n) RETURN n"
