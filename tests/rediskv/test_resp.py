"""RESP2 protocol encoding/decoding tests, including round-trip fuzzing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.rediskv.resp import NEED_MORE, RespError, RespParser, SimpleString, encode


def decode_one(data: bytes):
    parser = RespParser()
    parser.feed(data)
    return parser.parse_one()


class TestEncode:
    def test_simple_string(self):
        assert encode(SimpleString("OK")) == b"+OK\r\n"

    def test_bulk_string(self):
        assert encode("hi") == b"$2\r\nhi\r\n"

    def test_empty_bulk(self):
        assert encode("") == b"$0\r\n\r\n"

    def test_integer(self):
        assert encode(42) == b":42\r\n"
        assert encode(-1) == b":-1\r\n"

    def test_bool_as_int(self):
        assert encode(True) == b":1\r\n"

    def test_null(self):
        assert encode(None) == b"$-1\r\n"

    def test_float_as_bulk(self):
        assert encode(2.5) == b"$3\r\n2.5\r\n"

    def test_array(self):
        assert encode(["a", 1]) == b"*2\r\n$1\r\na\r\n:1\r\n"

    def test_nested_array(self):
        assert encode([["x"]]) == b"*1\r\n*1\r\n$1\r\nx\r\n"

    def test_error(self):
        assert encode(ValueError("boom")) == b"-ERR boom\r\n"

    def test_unencodable(self):
        with pytest.raises(ProtocolError):
            encode(object())


class TestDecode:
    def test_simple(self):
        assert decode_one(b"+PONG\r\n") == "PONG"

    def test_error_not_raised(self):
        err = decode_one(b"-ERR nope\r\n")
        assert isinstance(err, RespError) and "nope" in str(err)

    def test_integer(self):
        assert decode_one(b":7\r\n") == 7

    def test_bulk(self):
        assert decode_one(b"$5\r\nhello\r\n") == "hello"

    def test_null_bulk(self):
        assert decode_one(b"$-1\r\n") is None

    def test_null_array(self):
        assert decode_one(b"*-1\r\n") is None

    def test_array(self):
        assert decode_one(b"*2\r\n:1\r\n$1\r\nx\r\n") == [1, "x"]

    def test_incremental_feeding(self):
        parser = RespParser()
        payload = encode(["hello", 42, None])
        for i in range(len(payload)):
            assert parser.parse_one() is NEED_MORE or True
            parser.feed(payload[i : i + 1])
        assert parser.parse_one() == ["hello", 42, None]

    def test_pipelined_commands(self):
        parser = RespParser()
        parser.feed(encode(["PING"]) + encode(["GET", "k"]))
        assert parser.parse_all() == [["PING"], ["GET", "k"]]

    def test_bad_type_byte(self):
        with pytest.raises(ProtocolError):
            decode_one(b"?x\r\n")

    def test_bad_integer(self):
        with pytest.raises(ProtocolError):
            decode_one(b":abc\r\n")

    def test_bulk_missing_terminator(self):
        with pytest.raises(ProtocolError):
            decode_one(b"$2\r\nhiXX")


resp_values = st.recursive(
    st.one_of(
        st.none(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(alphabet=st.characters(blacklist_characters="\r\n", codec="utf-8"), max_size=20),
    ),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=12,
)


class TestRoundTrip:
    @given(resp_values)
    def test_encode_decode_roundtrip(self, value):
        assert decode_one(encode(value)) == value

    @given(st.lists(resp_values, min_size=1, max_size=5), st.integers(1, 7))
    def test_arbitrary_chunking(self, values, chunk):
        payload = b"".join(encode(v) for v in values)
        parser = RespParser()
        out = []
        for i in range(0, len(payload), chunk):
            parser.feed(payload[i : i + chunk])
            out.extend(parser.parse_all())
        assert out == values
