"""Live-socket tests for the parallel server (ISSUE 6).

A server running with several I/O event loops AND intra-query morsel
workers, hammered by concurrent clients over real TCP connections:
every reply must be correct, per-connection reply order must hold, and
read results must match what a serial server computes.
"""

import threading
import time

import pytest

from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer


@pytest.fixture(scope="module")
def server():
    cfg = GraphConfig(
        thread_count=3,
        io_threads=2,
        parallel_workers=2,
        morsel_size=64,
        node_capacity=1024,
    )
    srv = RedisLikeServer(port=0, config=cfg).start()
    time.sleep(0.05)
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = RedisClient(port=server.port)
    c.execute("FLUSHALL")
    yield c
    c.close()


def test_info_reports_io_threads(client):
    assert client.info()["io_threads"] == "2"


def test_connections_spread_across_loops(server, client):
    clients = [RedisClient(port=server.port) for _ in range(4)]
    try:
        for c in clients:
            assert c.ping() == "PONG"
        assert all(loop.conns for loop in server.loops)  # both loops own sockets
    finally:
        for c in clients:
            c.close()


def test_parallel_read_over_socket_matches_serial(client):
    client.graph_query("g", "UNWIND range(1, 500) AS i CREATE (:N {v: i})")
    # morsel_size=64 over 500 nodes -> the scan really partitions
    rows = client.graph_query("g", "MATCH (n:N) RETURN n.v").rows
    assert [r[0] for r in rows] == list(range(1, 501))  # serial order, no ORDER BY
    agg = client.graph_query("g", "MATCH (n:N) RETURN count(n), sum(n.v), min(n.v), max(n.v)")
    assert agg.rows == [(500, 125250, 1, 500)]


def test_parallel_stats_in_reply(client):
    client.graph_query("g", "UNWIND range(1, 300) AS i CREATE (:N {v: i})")
    r = client.graph_ro_query("g", "MATCH (n:N) RETURN count(n)")
    assert r.stat("Parallel execution") is not None


def test_reply_order_holds_on_both_loops(server, client):
    """Pipelined slow-query-then-PING on connections landing on each
    loop: the module reply must never be overtaken by the inline PING."""
    client.graph_query("g", "UNWIND range(1, 2000) AS x CREATE (:M {v: x})")
    from repro.rediskv.resp import encode

    for _ in range(4):  # round-robin across both loops
        c = RedisClient(port=server.port)
        try:
            c._sock.sendall(
                encode(["GRAPH.QUERY", "g", "MATCH (a:M) RETURN count(a)"])
                + encode(["PING"])
            )
            first = c._read_reply()
            second = c._read_reply()
            assert first[1][0][0] == 2000
            assert str(second) == "PONG"
        finally:
            c.close()


def test_concurrent_clients_stress(server, client):
    """Readers and writers from many live connections at once; final
    state and every intermediate reply must be consistent."""
    client.graph_query("shared", "UNWIND range(1, 200) AS i CREATE (:S {v: i})")
    errors = []
    N_CLIENTS, N_OPS = 6, 8

    def reader(idx):
        try:
            c = RedisClient(port=server.port)
            for _ in range(N_OPS):
                total = c.graph_ro_query("shared", "MATCH (n:S) RETURN sum(n.v)").scalar()
                assert total == 20100
                ordered = c.graph_query(
                    "shared", "MATCH (n:S) WHERE n.v <= 10 RETURN n.v"
                ).rows
                assert [r[0] for r in ordered] == list(range(1, 11))
            c.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    def writer(idx):
        try:
            c = RedisClient(port=server.port)
            for k in range(N_OPS):
                r = c.graph_query("shared", f"CREATE (:W {{tid: {idx}, op: {k}}})")
                assert r.stat("Nodes created") == "1"
            c.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader if i % 2 else writer, args=(i,))
        for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    made = client.graph_query("shared", "MATCH (w:W) RETURN count(w)").scalar()
    assert made == (N_CLIENTS // 2) * N_OPS


def test_plain_commands_concurrent_on_io_threads(server):
    """SET/GET/DEL from concurrent clients exercise the keyspace lock on
    multiple I/O loops simultaneously."""
    errors = []

    def worker(idx):
        try:
            c = RedisClient(port=server.port)
            for k in range(25):
                key = f"k:{idx}:{k}"
                assert c.set(key, str(k)) == "OK"
                assert c.get(key) == str(k)
                assert c.delete(key) == 1
            c.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
