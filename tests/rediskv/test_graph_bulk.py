"""GRAPH.BULK framing over a live server socket: chunked columnar
batches, malformed-chunk error replies, session lifecycle, and
GRAPH.LIST/GRAPH.DELETE of bulk-created graphs."""

import json
import time

import pytest

from repro.errors import ResponseError
from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer


@pytest.fixture(scope="module")
def server():
    srv = RedisLikeServer(port=0, config=GraphConfig(thread_count=3, node_capacity=16)).start()
    time.sleep(0.05)
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = RedisClient(port=server.port)
    c.execute("FLUSHALL")
    yield c
    c.close()


class TestBulkProtocol:
    def test_full_session_roundtrip(self, client):
        token = client.graph_bulk_begin("bulkg")
        assert token.startswith("bulk")
        assert client.graph_bulk_nodes(
            "bulkg", token, labels=["Person"],
            properties={"name": ["ann", "bo"], "age": [30, None]},
        ) == 2
        # chunked: a second NODES batch extends the same session
        assert client.graph_bulk_nodes("bulkg", token, count=2, labels=["City"]) == 4
        assert client.graph_bulk_edges(
            "bulkg", token, "KNOWS", [0], [1], properties={"since": [2019]}
        ) == 1
        assert client.graph_bulk_edges("bulkg", token, "LIVES_IN", [0, 1], [2, 3]) == 3
        stats = client.graph_bulk_commit("bulkg", token)
        assert "Nodes created: 4" in stats
        assert "Relationships created: 3" in stats
        assert "Properties set: 4" in stats
        r = client.graph_query("bulkg", "MATCH (p:Person)-[:KNOWS]->(q) RETURN p.name, q.name")
        assert r.rows == [("ann", "bo")]
        r = client.graph_query("bulkg", "MATCH (:Person)-[e:KNOWS]->() RETURN e.since")
        assert r.rows == [(2019,)]
        r = client.graph_query("bulkg", "MATCH (c:City) RETURN count(c)")
        assert r.scalar() == 2

    def test_graph_endpoints_mode(self, client):
        client.graph_query("g2", "CREATE (:Seed), (:Seed)")
        token = client.graph_bulk_begin("g2")
        client.graph_bulk_edges("g2", token, "TIES", [0], [1], endpoints="graph")
        client.graph_bulk_commit("g2", token)
        assert client.graph_query("g2", "MATCH (:Seed)-[:TIES]->(:Seed) RETURN count(*)").scalar() == 1

    def test_commit_is_atomic_wrt_queries(self, client):
        """Nothing from a session is visible before COMMIT."""
        token = client.graph_bulk_begin("g3")
        client.graph_bulk_nodes("g3", token, count=5, labels=["Pending"])
        assert client.graph_query("g3", "MATCH (n:Pending) RETURN count(n)").scalar() == 0
        client.graph_bulk_commit("g3", token)
        assert client.graph_query("g3", "MATCH (n:Pending) RETURN count(n)").scalar() == 5

    def test_abort_discards_session(self, client):
        token = client.graph_bulk_begin("g4")
        client.graph_bulk_nodes("g4", token, count=5, labels=["Gone"])
        assert client.graph_bulk_abort("g4", token) == "OK"
        assert client.graph_query("g4", "MATCH (n:Gone) RETURN count(n)").scalar() == 0
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.graph_bulk_commit("g4", token)

    def test_list_and_delete_bulk_created_graph(self, client):
        token = client.graph_bulk_begin("fresh")
        client.graph_bulk_nodes("fresh", token, count=1, labels=["X"])
        client.graph_bulk_commit("fresh", token)
        assert "fresh" in client.graph_list()
        assert client.graph_delete("fresh") == "OK"
        assert "fresh" not in client.graph_list()

    def test_commit_after_graph_delete_fails(self, client):
        token = client.graph_bulk_begin("doomed")
        client.graph_bulk_nodes("doomed", token, count=1)
        client.graph_delete("doomed")
        with pytest.raises(ResponseError, match="deleted or replaced"):
            client.graph_bulk_commit("doomed", token)


class TestBulkErrors:
    def test_invalid_json_chunk(self, client):
        token = client.graph_bulk_begin("e1")
        with pytest.raises(ResponseError, match="invalid JSON"):
            client.execute("GRAPH.BULK", "e1", "NODES", token, "{not json")

    def test_non_object_chunk(self, client):
        token = client.graph_bulk_begin("e1")
        with pytest.raises(ResponseError, match="JSON object"):
            client.execute("GRAPH.BULK", "e1", "NODES", token, "[1, 2]")

    def test_unknown_subcommand(self, client):
        with pytest.raises(ResponseError, match="unknown GRAPH.BULK subcommand"):
            client.execute("GRAPH.BULK", "e1", "FLUSH", "tok")

    def test_bad_token(self, client):
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.execute("GRAPH.BULK", "e1", "NODES", "bulk999", "{}")

    def test_token_bound_to_key(self, client):
        token = client.graph_bulk_begin("owner")
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.graph_bulk_nodes("thief", token, count=1)

    def test_column_length_mismatch_rejected(self, client):
        token = client.graph_bulk_begin("e2")
        with pytest.raises(ResponseError, match="property column"):
            client.execute(
                "GRAPH.BULK", "e2", "NODES", token,
                json.dumps({"count": 3, "props": {"v": [1, 2]}}),
            )

    def test_edges_missing_type(self, client):
        token = client.graph_bulk_begin("e3")
        with pytest.raises(ResponseError, match="non-empty 'type'"):
            client.execute(
                "GRAPH.BULK", "e3", "EDGES", token,
                json.dumps({"src": [0], "dst": [1]}),
            )

    def test_src_dst_mismatch(self, client):
        token = client.graph_bulk_begin("e4")
        with pytest.raises(ResponseError, match="equal-length"):
            client.execute(
                "GRAPH.BULK", "e4", "EDGES", token,
                json.dumps({"type": "R", "src": [0, 1], "dst": [1]}),
            )

    def test_commit_rejects_out_of_range_batch_endpoint(self, client):
        token = client.graph_bulk_begin("e5")
        client.graph_bulk_nodes("e5", token, count=2)
        client.graph_bulk_edges("e5", token, "R", [0], [7])
        with pytest.raises(ResponseError, match="staged nodes"):
            client.graph_bulk_commit("e5", token)
        # failed COMMIT consumed the session and applied nothing
        assert client.graph_query("e5", "MATCH (n) RETURN count(n)").scalar() == 0
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.graph_bulk_commit("e5", token)

    def test_wrong_arity(self, client):
        with pytest.raises(ResponseError, match="wrong number of arguments"):
            client.execute("GRAPH.BULK", "e6")
        token = client.graph_bulk_begin("e6")
        with pytest.raises(ResponseError, match="exactly one JSON chunk"):
            client.execute("GRAPH.BULK", "e6", "NODES", token)

    def test_begin_rejects_extra_args(self, client):
        with pytest.raises(ResponseError, match="takes no further arguments"):
            client.execute("GRAPH.BULK", "e7", "BEGIN", "extra")


class TestBulkRobustness:
    def test_abandoned_sessions_swept_and_bounded(self, client, server):
        module = server.module
        with module._bulk_lock:
            module._bulk_sessions.clear()  # leftovers from earlier tests
        limit = module.BULK_SESSION_LIMIT
        tokens = [client.graph_bulk_begin("sweep") for _ in range(limit)]
        with pytest.raises(ResponseError, match="too many open bulk sessions"):
            client.graph_bulk_begin("sweep")
        # age every session past the TTL: the next BEGIN sweeps them
        with module._bulk_lock:
            for session in module._bulk_sessions.values():
                session.last_used -= module.BULK_SESSION_TTL + 1
        fresh = client.graph_bulk_begin("sweep")
        assert len(module._bulk_sessions) == 1
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.graph_bulk_commit("sweep", tokens[0])
        # sweeping also runs on non-BEGIN dispatches: age the fresh
        # session, then a chunk addressed to it finds it expired
        with module._bulk_lock:
            module._bulk_sessions[fresh].last_used -= module.BULK_SESSION_TTL + 1
        with pytest.raises(ResponseError, match="no open bulk session"):
            client.graph_bulk_nodes("sweep", fresh, count=1)
        assert len(module._bulk_sessions) == 0

    def test_float_endpoints_rejected_on_wire(self, client):
        token = client.graph_bulk_begin("fe")
        client.graph_bulk_nodes("fe", token, count=2)
        with pytest.raises(ResponseError, match="endpoints must be integers"):
            client.execute(
                "GRAPH.BULK", "fe", "EDGES", token,
                json.dumps({"type": "R", "src": [1.9], "dst": [0]}),
            )
        # the client helper must not pre-truncate either
        with pytest.raises(ResponseError, match="endpoints must be integers"):
            client.graph_bulk_edges("fe", token, "R", [1.9], [0])
        client.graph_bulk_abort("fe", token)


    def test_numpy_columns_serialize(self, client):
        """The natural columnar input is numpy arrays; the client must
        coerce their scalars for the JSON framing."""
        np = pytest.importorskip("numpy")
        token = client.graph_bulk_begin("np")
        client.graph_bulk_nodes(
            "np", token, count=np.int64(2), labels=["N"],
            properties={"v": np.array([1, 2]), "w": np.array([0.5, 1.5])},
        )
        client.graph_bulk_edges(
            "np", token, "R", np.array([0]), np.array([1]),
            properties={"k": np.array([9])},
        )
        client.graph_bulk_commit("np", token)
        assert client.graph_query("np", "MATCH (a:N)-[e:R]->(b) RETURN a.v, e.k, b.v").rows == [(1, 9, 2)]

    def test_concurrent_chunks_one_session(self, server):
        """Chunks for one token racing in from several connections (the
        documented pipelining model) must observe disjoint batch index
        ranges — the per-session lock's job."""
        import threading

        from repro.rediskv.client import RedisClient

        setup = RedisClient(port=server.port)
        setup.execute("FLUSHALL")
        token = setup.graph_bulk_begin("race")
        per_thread, threads_n = 50, 4
        errors = []

        def stage(tid):
            try:
                c = RedisClient(port=server.port)
                for i in range(per_thread):
                    c.graph_bulk_nodes(
                        "race", token, labels=["W"],
                        properties={"tag": [f"{tid}-{i}"]},
                    )
                c.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        workers = [threading.Thread(target=stage, args=(t,)) for t in range(threads_n)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=60)
        assert not errors
        total = per_thread * threads_n
        # edges referencing the full staged range prove no two batches
        # overlapped (overlap would leave the tail range unallocated)
        setup.graph_bulk_edges("race", token, "R", list(range(total - 1)), list(range(1, total)))
        stats = setup.graph_bulk_commit("race", token)
        assert f"Nodes created: {total}" in stats
        r = setup.graph_query("race", "MATCH (n:W) RETURN count(n)")
        assert r.scalar() == total
        r = setup.graph_query("race", "MATCH (n:W) RETURN count(DISTINCT n.tag)")
        assert r.scalar() == total
        setup.close()
