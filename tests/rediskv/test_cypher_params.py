"""Edge cases of the ``CYPHER k=v ...`` parameter-prefix parser, plus the
module-level wiring it feeds: RO_QUERY's single shared compile, EXPLAIN
parameter threading, and GRAPH.CONFIG."""

import pytest

from repro.errors import ResponseError
from repro.graph.config import GraphConfig
from repro.rediskv.graph_module import GraphModule, parse_cypher_params
from repro.rediskv.keyspace import Keyspace


class TestParsePrefix:
    def test_no_prefix_passthrough(self):
        assert parse_cypher_params("MATCH (n) RETURN n") == ("MATCH (n) RETURN n", {})

    def test_empty_query_string(self):
        assert parse_cypher_params("") == ("", {})

    def test_whitespace_only(self):
        assert parse_cypher_params("   ") == ("   ", {})

    def test_cypher_word_without_space_is_query_text(self):
        # "CYPHER" alone (no trailing space) is not a parameter prefix
        assert parse_cypher_params("CYPHER") == ("CYPHER", {})

    def test_cypher_prefix_with_no_pairs(self):
        text, params = parse_cypher_params("CYPHER MATCH (n) RETURN n")
        assert text == "MATCH (n) RETURN n"
        assert params == {}

    def test_case_insensitive_prefix(self):
        text, params = parse_cypher_params("cypher a=1 RETURN $a")
        assert text == "RETURN $a"
        assert params == {"a": 1}

    def test_scalar_types(self):
        text, params = parse_cypher_params(
            "CYPHER i=7 f=2.5 t=true fa=false nil=null s=plain RETURN 1"
        )
        assert params == {"i": 7, "f": 2.5, "t": True, "fa": False, "nil": None, "s": "plain"}
        assert text == "RETURN 1"

    def test_negative_and_float_tokens(self):
        _, params = parse_cypher_params("CYPHER a=-3 b=-2.25 c=1e3 RETURN 1")
        assert params == {"a": -3, "b": -2.25, "c": 1000.0}

    def test_quoted_strings_with_spaces(self):
        _, params = parse_cypher_params("CYPHER name='Ann Lee' RETURN $name")
        assert params == {"name": "Ann Lee"}

    def test_escaped_quotes(self):
        _, params = parse_cypher_params("CYPHER s='it\\'s' RETURN 1")
        assert params["s"] == "it's"
        _, params = parse_cypher_params('CYPHER d="a \\" b" RETURN 1')
        assert params["d"] == 'a " b'

    def test_list_values(self):
        _, params = parse_cypher_params("CYPHER xs=[1, 2, 3] RETURN $xs")
        assert params == {"xs": [1, 2, 3]}

    def test_nested_lists(self):
        _, params = parse_cypher_params("CYPHER xs=[[1, 2], [3], []] RETURN $xs")
        assert params == {"xs": [[1, 2], [3], []]}

    def test_mixed_list(self):
        _, params = parse_cypher_params("CYPHER xs=[1, 'two', true, null, -4.5] RETURN $xs")
        assert params == {"xs": [1, "two", True, None, -4.5]}

    def test_query_text_preserved_verbatim(self):
        text, _ = parse_cypher_params("CYPHER a=1 MATCH (n {k: 'CYPHER b=2'}) RETURN n")
        assert text == "MATCH (n {k: 'CYPHER b=2'}) RETURN n"


@pytest.fixture
def module():
    return GraphModule(Keyspace(), GraphConfig(node_capacity=32))


class TestModuleWiring:
    def test_ro_query_compiles_once_and_caches(self, module):
        module.query("g", "CREATE (:X {v: 1})")
        db = module.keyspace.get_graph("g")
        base = db.engine.plan_cache.info()
        module.ro_query("g", "MATCH (n:X) RETURN n.v")
        after_one = db.engine.plan_cache.info()
        # exactly ONE compile for the write-check + execution combined
        assert after_one["misses"] == base["misses"] + 1
        assert after_one["hits"] == base["hits"]
        module.ro_query("g", "MATCH (n:X) RETURN n.v")
        after_two = db.engine.plan_cache.info()
        assert after_two["misses"] == after_one["misses"]
        assert after_two["hits"] == after_one["hits"] + 1

    def test_ro_query_reply_reports_cached(self, module):
        module.query("g", "CREATE (:X)")
        module.ro_query("g", "MATCH (n:X) RETURN n")
        reply = module.ro_query("g", "MATCH (n:X) RETURN n")
        assert any("Cached execution: 1" in s for s in reply[2])

    def test_ro_query_still_rejects_writes(self, module):
        module.query("g", "CREATE (:X)")
        with pytest.raises(ResponseError, match="read-only"):
            module.ro_query("g", "CREATE (:Y)")

    def test_explain_threads_params(self, module):
        module.query("g", "CREATE (:X {v: 1})")
        lines = module.explain("g", "CYPHER v=1 MATCH (n:X {v: $v}) RETURN n")
        assert any("NodeByLabelScan" in l for l in lines)

    def test_explain_rejects_missing_param(self, module):
        module.query("g", "CREATE (:X)")
        with pytest.raises(Exception, match="missing query parameter"):
            module.explain("g", "CYPHER v=1 MATCH (n:X {v: $v}) RETURN n.a + $other")

    def test_config_get(self, module):
        name, value = module.config_get("PLAN_CACHE_SIZE")
        assert name == "PLAN_CACHE_SIZE"
        assert value == module.config.plan_cache_size
        everything = module.config_get("*")
        assert ["PLAN_CACHE_SIZE", value] in everything

    def test_config_get_unknown(self, module):
        with pytest.raises(ResponseError, match="Unknown configuration"):
            module.config_get("NOPE")

    def test_config_set_plan_cache_size_applies_to_live_graphs(self, module):
        module.query("g", "CREATE (:X)")
        module.query("g", "MATCH (n:X) RETURN n")
        db = module.keyspace.get_graph("g")
        assert module.config_set("PLAN_CACHE_SIZE", "0") == "OK"
        assert db.engine.plan_cache.capacity == 0
        reply = module.query("g", "MATCH (n:X) RETURN n")
        assert any("Cached execution: 0" in s for s in reply[2])

    def test_config_set_rejects_bad_values(self, module):
        with pytest.raises(ResponseError):
            module.config_set("PLAN_CACHE_SIZE", "abc")
        with pytest.raises(ResponseError):
            module.config_set("PLAN_CACHE_SIZE", "-1")
        with pytest.raises(ResponseError, match="not settable"):
            module.config_set("THREAD_COUNT", "4")
