"""Keyspace, thread pool and reader-writer lock unit tests."""

import threading
import time

import pytest

from repro.errors import WrongTypeError
from repro.graph.rwlock import RWLock
from repro.rediskv.keyspace import Keyspace
from repro.rediskv.threadpool import JobCancelledError, ThreadPool


class TestKeyspace:
    def test_string_roundtrip(self):
        ks = Keyspace()
        ks.set_string("a", "1")
        assert ks.get_string("a") == "1"
        assert ks.get_string("missing") is None

    def test_type_tags(self):
        ks = Keyspace()
        ks.set_string("s", "x")
        ks.set_graph("g", object())
        assert ks.type_of("s") == "string"
        assert ks.type_of("g") == "graph"
        assert ks.type_of("none") == "none"

    def test_wrongtype(self):
        ks = Keyspace()
        ks.set_string("k", "x")
        with pytest.raises(WrongTypeError):
            ks.get_graph("k")
        with pytest.raises(WrongTypeError):
            ks.set_graph("k", object())

    def test_delete_and_exists(self):
        ks = Keyspace()
        ks.set_string("a", "1")
        ks.set_string("b", "2")
        assert ks.exists("a", "b", "c") == 2
        assert ks.delete("a", "c") == 1
        assert ks.exists("a") == 0

    def test_keys_pattern(self):
        ks = Keyspace()
        for k in ("user:1", "user:2", "cfg"):
            ks.set_string(k, "x")
        assert ks.keys("user:*") == ["user:1", "user:2"]
        assert ks.keys() == ["cfg", "user:1", "user:2"]

    def test_graph_keys(self):
        ks = Keyspace()
        ks.set_string("s", "x")
        ks.set_graph("g1", object())
        assert ks.graph_keys() == ["g1"]

    def test_flush(self):
        ks = Keyspace()
        ks.set_string("a", "1")
        ks.flush()
        assert len(ks) == 0


class TestThreadPool:
    def test_submit_and_result(self):
        pool = ThreadPool(2)
        try:
            job = pool.submit(lambda a, b: a + b, 2, 3)
            assert job.result(timeout=5) == 5
            assert job.done
        finally:
            pool.shutdown()

    def test_error_propagates(self):
        pool = ThreadPool(1)
        try:
            job = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                job.result(timeout=5)
            assert isinstance(job.error(), ZeroDivisionError)
        finally:
            pool.shutdown()

    def test_callback_fires(self):
        pool = ThreadPool(1)
        fired = threading.Event()
        try:
            pool.submit(lambda: 42, callback=lambda job: fired.set())
            assert fired.wait(timeout=5)
        finally:
            pool.shutdown()

    def test_jobs_distribute_across_workers(self):
        pool = ThreadPool(4)
        names = set()
        barrier = threading.Barrier(4, timeout=5)

        def work():
            barrier.wait()
            names.add(threading.current_thread().name)

        try:
            jobs = [pool.submit(work) for _ in range(4)]
            for j in jobs:
                j.result(timeout=5)
            assert len(names) == 4
        finally:
            pool.shutdown()

    def test_submit_after_shutdown(self):
        pool = ThreadPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadPool(0)

    def test_get_or_create_graph_is_atomic(self):
        ks = Keyspace()
        made = []

        def factory():
            made.append(1)
            return object()

        barrier = threading.Barrier(4, timeout=5)
        got = []

        def racer():
            barrier.wait()
            got.append(ks.get_or_create_graph("g", factory))

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(made) == 1  # exactly one instance built
        assert all(g is got[0] for g in got)


class TestThreadPoolFutures:
    """The futures surface grown for morsel scheduling (ISSUE 6)."""

    def test_cancel_queued_job(self):
        pool = ThreadPool(1)
        release = threading.Event()
        try:
            blocker = pool.submit(release.wait, 5)
            victim = pool.submit(lambda: "never")
            assert victim.cancel() is True
            assert victim.cancelled
            release.set()
            blocker.result(timeout=5)
            with pytest.raises(JobCancelledError):
                victim.result(timeout=5)
        finally:
            release.set()
            pool.shutdown()

    def test_cannot_cancel_finished_job(self):
        pool = ThreadPool(1)
        try:
            job = pool.submit(lambda: 7)
            assert job.result(timeout=5) == 7
            assert job.cancel() is False
        finally:
            pool.shutdown()

    def test_worker_traceback_travels(self):
        pool = ThreadPool(1)

        def deep():
            raise KeyError("inner-marker")

        try:
            job = pool.submit(deep)
            with pytest.raises(KeyError):
                job.result(timeout=5)
            tb = job.error_traceback()
            assert "inner-marker" in tb and "deep" in tb
        finally:
            pool.shutdown()

    def test_bounded_queue_try_submit(self):
        pool = ThreadPool(1, max_queue=1)
        release = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            return release.wait(5)

        try:
            blocker = pool.submit(block)
            assert started.wait(5)  # worker holds it; the queue slot is free
            queued = pool.try_submit(lambda: "q")
            assert queued is not None
            overflow = pool.try_submit(lambda: "nope")
            assert overflow is None  # queue full -> caller runs it inline
            release.set()
            assert blocker.result(timeout=5) is True
            assert queued.result(timeout=5) == "q"
        finally:
            release.set()
            pool.shutdown()

    def test_grow(self):
        pool = ThreadPool(1, name="growable")
        try:
            pool.grow(3)
            assert pool.size == 3
            pool.grow(2)  # never shrinks
            assert pool.size == 3
            barrier = threading.Barrier(3, timeout=5)
            jobs = [pool.submit(barrier.wait) for _ in range(3)]
            for j in jobs:
                j.result(timeout=5)  # needs all 3 workers live
        finally:
            pool.shutdown()

    def test_shutdown_drains_queued_jobs(self):
        pool = ThreadPool(1)
        release = threading.Event()
        done = []
        blocker = pool.submit(release.wait, 5)
        queued = pool.submit(lambda: done.append(1))
        release.set()
        pool.shutdown()  # default: drain
        assert blocker.done and queued.done
        assert done == [1]

    def test_shutdown_cancel_pending(self):
        pool = ThreadPool(1)
        release = threading.Event()
        started = threading.Event()
        ran = []

        def block():
            started.set()
            return release.wait(5)

        blocker = pool.submit(block)
        assert started.wait(5)  # blocker is in flight, not queued
        queued = pool.submit(lambda: ran.append(1))
        stopper = threading.Thread(target=lambda: pool.shutdown(cancel_pending=True))
        stopper.start()
        with pytest.raises(JobCancelledError):
            queued.result(timeout=5)  # cancelled while the worker was busy
        release.set()
        stopper.join(timeout=5)
        assert blocker.result(timeout=5) is True  # in-flight job finished
        assert ran == []


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                barrier.wait()  # all three readers inside simultaneously
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 3

    def test_writer_exclusive(self):
        lock = RWLock()
        order = []

        def writer(tag):
            with lock.write():
                order.append(f"{tag}-in")
                time.sleep(0.02)
                order.append(f"{tag}-out")

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # never interleaved: each -in is immediately followed by its -out
        for i in range(0, 6, 2):
            assert order[i].split("-")[0] == order[i + 1].split("-")[0]

    def test_writer_blocks_reader(self):
        lock = RWLock()
        log = []
        lock.acquire_write()

        def reader():
            with lock.read():
                log.append("read")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert log == []  # reader parked while writer holds
        lock.release_write()
        t.join(timeout=5)
        assert log == ["read"]

    def test_writer_preference(self):
        lock = RWLock()
        log = []
        lock.acquire_read()

        def writer():
            with lock.write():
                log.append("write")

        def late_reader():
            with lock.read():
                log.append("late-read")

        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer now waiting
        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)
        assert log == []  # late reader must wait behind the waiting writer
        lock.release_read()
        wt.join(timeout=5)
        rt.join(timeout=5)
        assert log[0] == "write"
