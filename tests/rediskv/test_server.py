"""End-to-end server tests over real TCP sockets."""

import threading
import time

import pytest

from repro.errors import ResponseError
from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.graph_module import parse_cypher_params
from repro.rediskv.server import RedisLikeServer


@pytest.fixture(scope="module")
def server():
    srv = RedisLikeServer(port=0, config=GraphConfig(thread_count=3, node_capacity=16)).start()
    time.sleep(0.05)
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = RedisClient(port=server.port)
    c.execute("FLUSHALL")
    yield c
    c.close()


class TestPlainCommands:
    def test_ping(self, client):
        assert client.ping() == "PONG"

    def test_ping_with_message(self, client):
        assert client.execute("PING", "yo") == "yo"

    def test_echo(self, client):
        assert client.execute("ECHO", "hello") == "hello"

    def test_set_get_del(self, client):
        assert client.set("k", "v") == "OK"
        assert client.get("k") == "v"
        assert client.delete("k") == 1
        assert client.get("k") is None

    def test_exists_type_keys(self, client):
        client.set("a", "1")
        assert client.execute("EXISTS", "a", "zz") == 1
        assert client.execute("TYPE", "a") == "string"
        assert "a" in client.keys("*")

    def test_unknown_command(self, client):
        with pytest.raises(ResponseError, match="unknown command"):
            client.execute("NOPE")

    def test_wrong_arity(self, client):
        with pytest.raises(ResponseError, match="wrong number of arguments"):
            client.execute("SET", "only-key")

    def test_info(self, client):
        info = client.info()
        assert info["graph_thread_count"] == "3"


class TestGraphCommands:
    def test_query_roundtrip(self, client):
        client.graph_query("g", "CREATE (:P {name:'Ann', age: 30})")
        r = client.graph_query("g", "MATCH (n:P) RETURN n.name, n.age")
        assert r.columns == ["n.name", "n.age"]
        assert r.rows == [("Ann", 30)]

    def test_node_encoding(self, client):
        client.graph_query("g", "CREATE (:P {x: 1})")
        r = client.graph_query("g", "MATCH (n:P) RETURN n")
        kind, node_id, labels, props = r.rows[0][0]
        assert kind == "node" and labels == ["P"] and props == [["x", 1]]

    def test_relationship_encoding(self, client):
        client.graph_query("g", "CREATE (:A)-[:R {w: 2}]->(:B)")
        r = client.graph_query("g", "MATCH ()-[e:R]->() RETURN e")
        kind, eid, reltype, src, dst, props = r.rows[0][0]
        assert kind == "relationship" and reltype == "R" and props == [["w", 2]]

    def test_statistics_returned(self, client):
        r = client.graph_query("g", "CREATE (:P)")
        assert r.stat("Nodes created") == "1"
        assert r.stat("Query internal execution time") is not None

    def test_parameters_via_cypher_prefix(self, client):
        client.graph_query("g", "CREATE (:P {name:'Zed'})")
        r = client.graph_query("g", "MATCH (n:P {name: $who}) RETURN n.name", {"who": "Zed"})
        assert r.scalar() == "Zed"

    def test_ro_query_rejects_writes(self, client):
        client.graph_query("g", "CREATE (:P)")
        with pytest.raises(ResponseError, match="read-only"):
            client.graph_ro_query("g", "CREATE (:Q)")

    def test_explain_and_profile(self, client):
        client.graph_query("g", "CREATE (:P)")
        plan = client.graph_explain("g", "MATCH (n:P) RETURN n")
        assert any("NodeByLabelScan" in line for line in plan)
        prof = client.graph_profile("g", "MATCH (n:P) RETURN n")
        assert any("Records produced" in line for line in prof)

    def test_graph_list_and_delete(self, client):
        client.graph_query("g1", "CREATE (:X)")
        client.graph_query("g2", "CREATE (:X)")
        assert client.graph_list() == ["g1", "g2"]
        assert client.graph_delete("g1") == "OK"
        assert client.graph_list() == ["g2"]

    def test_delete_missing_graph(self, client):
        with pytest.raises(ResponseError, match="does not exist"):
            client.graph_delete("missing")

    def test_syntax_error_travels_as_error_reply(self, client):
        with pytest.raises(ResponseError, match="expected"):
            client.graph_query("g", "MATCH (n RETURN n")

    def test_graph_key_isolation(self, client):
        client.graph_query("a", "CREATE (:X)")
        client.graph_query("b", "CREATE (:X), (:X)")
        assert client.graph_query("a", "MATCH (n) RETURN count(n)").scalar() == 1
        assert client.graph_query("b", "MATCH (n) RETURN count(n)").scalar() == 2

    def test_wrongtype_against_string_key(self, client):
        client.set("plain", "v")
        with pytest.raises(ResponseError, match="wrong kind"):
            client.graph_query("plain", "RETURN 1")

    def test_cached_execution_statistic(self, client):
        client.graph_query("g", "CREATE (:P {v: 1})")
        first = client.graph_query("g", "MATCH (n:P) RETURN n.v")
        again = client.graph_query("g", "MATCH (n:P) RETURN n.v")
        assert first.stat("Cached execution") == "0"
        assert again.stat("Cached execution") == "1"

    def test_graph_config_roundtrip(self, client):
        name, value = client.graph_config_get("PLAN_CACHE_SIZE")
        assert name == "PLAN_CACHE_SIZE"
        assert int(value) >= 0
        assert client.graph_config_set("PLAN_CACHE_SIZE", 16) == "OK"
        assert client.graph_config_get("PLAN_CACHE_SIZE")[1] == 16
        pairs = client.graph_config_get("*")
        assert ["PLAN_CACHE_SIZE", 16] in pairs

    def test_graph_config_rejects_unknown(self, client):
        with pytest.raises(ResponseError):
            client.graph_config_get("NOPE")
        with pytest.raises(ResponseError, match="not settable"):
            client.graph_config_set("THREAD_COUNT", 5)


class TestConcurrency:
    def test_reply_order_preserved_with_slow_graph_query(self, client):
        """A slow GRAPH.QUERY must not let a later PING overtake its reply."""
        client.graph_query("g", "UNWIND range(1, 2000) AS x CREATE (:N {v: x})")
        # pipeline: slow query then PING on the same connection
        from repro.rediskv.resp import encode

        sock = client._sock
        sock.sendall(
            encode(["GRAPH.QUERY", "g", "MATCH (a:N) RETURN count(a)"])
            + encode(["PING"])
        )
        first = client._read_reply()
        second = client._read_reply()
        assert first[1][0][0] == 2000  # the query reply arrives first
        assert str(second) == "PONG"

    def test_parallel_clients(self, server):
        results = []
        errors = []

        def worker(i):
            try:
                c = RedisClient(port=server.port)
                c.graph_query("shared", f"CREATE (:W {{tid: {i}}})")
                results.append(c.graph_query("shared", "MATCH (n:W) RETURN count(n)").scalar())
                c.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        c = RedisClient(port=server.port)
        assert c.graph_query("shared", "MATCH (n:W) RETURN count(n)").scalar() == 6
        c.close()


class TestCypherParamParsing:
    def test_no_prefix(self):
        q, p = parse_cypher_params("MATCH (n) RETURN n")
        assert q == "MATCH (n) RETURN n" and p == {}

    def test_prefix_types(self):
        q, p = parse_cypher_params("CYPHER a=1 b=2.5 c='x y' d=true e=null MATCH (n) RETURN n")
        assert p == {"a": 1, "b": 2.5, "c": "x y", "d": True, "e": None}
        assert q.strip() == "MATCH (n) RETURN n"

    def test_list_param(self):
        _, p = parse_cypher_params("CYPHER xs=[1, 2, 3] RETURN 1")
        assert p == {"xs": [1, 2, 3]}

    def test_escaped_string(self):
        _, p = parse_cypher_params(r"CYPHER s='it\'s' RETURN 1")
        assert p == {"s": "it's"}
