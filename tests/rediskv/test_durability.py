"""Durability end-to-end: kill-and-restart recovery over real sockets.

The differential harness (cf. the PR 3 bulk suite): a seeded workload of
per-row writes, a columnar GRAPH.BULK commit, index DDL and deletes runs
against a durable server; the server process is then stopped after the
acks ("crash"), a fresh server is started on the same data dir, and the
restored graph must answer an entire query battery — counts, property
reads, label scans, index lookups, 1-hop/2-hop traversals — exactly like
the live pre-crash graph did.  Variants cover snapshot+tail (GRAPH.SAVE
mid-workload), pure log replay (no snapshot), torn-tail crashes
(truncating the log mid-record) and dirty-counter auto-snapshots.
"""

import random
import time

import pytest

from repro.errors import ResponseError
from repro.graph.config import GraphConfig
from repro.rediskv.client import RedisClient
from repro.rediskv.server import RedisLikeServer

# the differential battery every restored graph must answer identically
DIFF_QUERIES = [
    "MATCH (n) RETURN count(n)",
    "MATCH ()-[e]->() RETURN count(e)",
    "MATCH ()-[e:R]->() RETURN count(e)",
    "MATCH (n) RETURN id(n), n.name, n.v",
    "MATCH (n:A) RETURN id(n)",
    "MATCH (n:B) RETURN id(n), n.v",
    "MATCH ()-[e:R]->() RETURN e.k",
    "MATCH (n:A {v: 3}) RETURN id(n), n.name",
    "MATCH (a)-[:R]->(b) RETURN id(a), id(b)",
    "MATCH (a)-[:R]->()-[:S]->(c) RETURN id(a), id(c)",
]


def start_server(data_dir, **config_kw):
    config_kw.setdefault("thread_count", 3)
    config_kw.setdefault("node_capacity", 64)
    config_kw.setdefault("wal_fsync", "no")  # tests kill objects, not power
    srv = RedisLikeServer(port=0, config=GraphConfig(**config_kw), data_dir=str(data_dir)).start()
    time.sleep(0.02)
    return srv


def run_workload(c: RedisClient, *, seed=7, save_midway=False):
    """Seeded writes against graph key "g": per-row CREATEs, an index, a
    columnar bulk commit, property updates and deletes — with an optional
    GRAPH.SAVE in the middle so later records form a true log tail."""
    rng = random.Random(seed)
    n = 12
    for i in range(n):
        label = ":A" if i % 2 == 0 else ":B"
        c.graph_query("g", f"CREATE ({label} {{name: 'n{i}', v: {rng.randint(0, 5)}}})")
    c.graph_query("g", "CREATE INDEX ON :A(v)")
    for _ in range(2 * n):
        s, d = rng.randrange(n), rng.randrange(n)
        c.graph_query(
            "g",
            "MATCH (a), (b) WHERE id(a) = $s AND id(b) = $d CREATE (a)-[:R {k: $k}]->(b)",
            {"s": s, "d": d, "k": rng.randint(0, 9)},
        )
    if save_midway:
        assert c.graph_save("g") == "OK"
    # columnar bulk commit (must be logged as ONE bulk record)
    token = c.graph_bulk_begin("g")
    c.graph_bulk_nodes("g", token, count=6, labels=["B"], properties={"v": [9, 9, 9, 8, 8, None]})
    c.graph_bulk_edges("g", token, "S", [0, 1, 2], [3, 4, 5])
    c.graph_bulk_edges("g", token, "S", [0, 1], [2, 3], endpoints="graph")
    c.graph_bulk_commit("g", token)
    # post-bulk per-row writes ride the tail too
    c.graph_query("g", "MATCH (x {name: 'n3'}) SET x.v = 42")
    c.graph_query("g", "MATCH (x {name: 'n5'}) DETACH DELETE x")
    c.graph_query("g", "CREATE (:A {name: 'tail', v: 3})")


def snapshot_answers(c: RedisClient):
    return {q: sorted(c.graph_query("g", q).rows) for q in DIFF_QUERIES}


def assert_matches(c: RedisClient, expected):
    for q, rows in expected.items():
        assert sorted(c.graph_query("g", q).rows) == rows, q


class TestKillAndRestart:
    @pytest.mark.parametrize("save_midway", [False, True], ids=["log-only", "snapshot+tail"])
    def test_recovery_differential(self, tmp_path, save_midway):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            run_workload(c, save_midway=save_midway)
            expected = snapshot_answers(c)
            index_plan = "\n".join(c.graph_explain("g", "MATCH (n:A {v: 3}) RETURN n"))
            assert "NodeByIndexScan" in index_plan
        srv.stop()  # "crash": no clean GRAPH.SAVE of the tail

        srv2 = start_server(tmp_path)
        assert srv2.recovery_stats["replayed"] > 0
        if save_midway:
            assert srv2.recovery_stats["snapshots"] == 1
            assert srv2.recovery_stats["skipped"] > 0
        with RedisClient(port=srv2.port) as c2:
            assert_matches(c2, expected)
            # the index survived (snapshot or index.create replay)
            assert "NodeByIndexScan" in "\n".join(
                c2.graph_explain("g", "MATCH (n:A {v: 3}) RETURN n")
            )
            # the restored graph keeps accepting (and logging) writes
            c2.graph_query("g", "CREATE (:A {name: 'post', v: 1})")
        srv2.stop()

    def test_second_generation_restart(self, tmp_path):
        """Snapshot -> tail -> restart -> more writes -> restart again."""
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            run_workload(c, save_midway=True)
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            c.graph_query("g", "CREATE (:A {name: 'gen2', v: 2})")
            expected = snapshot_answers(c)
        srv2.stop()
        srv3 = start_server(tmp_path)
        with RedisClient(port=srv3.port) as c:
            assert_matches(c, expected)
        srv3.stop()

    def test_delete_survives_restart(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_query("g", "CREATE (:A)")
            c.graph_save("g")
            c.graph_query("keepme", "CREATE (:K)")
            c.graph_delete("g")
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            assert c.graph_list() == ["keepme"]
        srv2.stop()

    def test_config_set_survives_restart(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_config_set("WAL_FSYNC", "always")
            c.graph_config_set("AUTO_SNAPSHOT_OPS", "500")
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            assert c.graph_config_get("WAL_FSYNC") == ["WAL_FSYNC", "always"]
            assert c.graph_config_get("AUTO_SNAPSHOT_OPS") == ["AUTO_SNAPSHOT_OPS", 500]
        # the recovered policy reached the live log, not just the config
        assert srv2.durability.wal.fsync == "always"
        srv2.stop()


class TestTornTail:
    def test_truncated_log_recovers_cleanly(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            run_workload(c, save_midway=True)
            c.graph_query("g", "CREATE (:A {name: 'doomed', v: 0})")
        srv.stop()
        # rip the last record's tail off, as a crash mid-append would
        wal_files = sorted((tmp_path / "wal").glob("wal.*.log"))
        last = wal_files[-1]
        raw = last.read_bytes()
        assert len(raw) > 8
        last.write_bytes(raw[:-7])
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c2:
            # everything but the torn record is back; the torn one is gone
            rows = c2.graph_query("g", "MATCH (n {name: 'doomed'}) RETURN n").rows
            assert rows == []
            assert c2.graph_query("g", "MATCH (n {name: 'tail'}) RETURN count(n)").scalar() == 1
            # and the repaired log keeps accepting appends
            c2.graph_query("g", "CREATE (:A {name: 'alive', v: 1})")
        srv2.stop()
        srv3 = start_server(tmp_path)
        with RedisClient(port=srv3.port) as c3:
            assert c3.graph_query("g", "MATCH (n {name: 'alive'}) RETURN count(n)").scalar() == 1
        srv3.stop()


class TestAutoSnapshot:
    def test_dirty_counter_triggers_snapshot(self, tmp_path):
        srv = start_server(tmp_path, auto_snapshot_ops=5)
        with RedisClient(port=srv.port) as c:
            for i in range(6):
                c.graph_query("g", f"CREATE (:A {{i: {i}}})")
            deadline = time.time() + 5
            while time.time() < deadline and not list(tmp_path.glob("g.*.v2.npz")):
                time.sleep(0.02)
            assert list(tmp_path.glob("g.*.v2.npz")), "auto-snapshot never materialized"
            deadline = time.time() + 5  # the background save resets the counter
            while time.time() < deadline and srv.durability.dirty_count("g") >= 6:
                time.sleep(0.02)
            assert srv.durability.dirty_count("g") < 6
        srv.stop()
        srv2 = start_server(tmp_path)
        assert srv2.recovery_stats["snapshots"] == 1
        with RedisClient(port=srv2.port) as c:
            assert c.graph_query("g", "MATCH (n:A) RETURN count(n)").scalar() == 6
        srv2.stop()


class TestNonBlockingSave:
    def test_writers_progress_during_save(self, tmp_path):
        """GRAPH.SAVE on a large graph must not stall concurrent writers:
        while one connection saves, another keeps committing writes, and
        both finish."""
        srv = start_server(tmp_path, node_capacity=1 << 16)
        with RedisClient(port=srv.port) as c:
            token = c.graph_bulk_begin("big")
            n = 30_000
            c.graph_bulk_nodes("big", token, count=n, labels=["V"], properties={"i": list(range(n))})
            c.graph_bulk_edges("big", token, "E", list(range(n - 1)), list(range(1, n)))
            c.graph_bulk_commit("big", token)

            import threading

            writes_done = []

            def writer():
                with RedisClient(port=srv.port) as wc:
                    for i in range(20):
                        wc.graph_query("big", f"CREATE (:W {{i: {i}}})")
                        writes_done.append(i)

            t = threading.Thread(target=writer)
            started = time.perf_counter()
            t.start()
            assert c.graph_save("big") == "OK"
            save_elapsed = time.perf_counter() - started
            t.join(timeout=30)
            assert len(writes_done) == 20
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c2:
            assert c2.graph_query("big", "MATCH (n:V) RETURN count(n)").scalar() == n
            # post-snapshot writes replay from the tail
            assert c2.graph_query("big", "MATCH (n:W) RETURN count(n)").scalar() == 20
        srv2.stop()
        assert save_elapsed < 60


class TestSurface:
    def test_graph_save_requires_data_dir(self):
        srv = RedisLikeServer(port=0, config=GraphConfig(thread_count=2)).start()
        time.sleep(0.02)
        with RedisClient(port=srv.port) as c:
            c.graph_query("g", "CREATE (:A)")
            with pytest.raises(ResponseError, match="persistence is not enabled"):
                c.graph_save("g")
        srv.stop()

    def test_graph_save_unknown_key(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            with pytest.raises(ResponseError, match="does not exist"):
                c.graph_save("nope")
        srv.stop()

    def test_snapshot_filenames_keep_distinct_keys_apart(self, tmp_path):
        """Key escaping must be injective: '\\u2020' and ' 20' must not
        share one snapshot file (variable-width hex escaping collided)."""
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_query("†", "CREATE (:A {v: 1})")
            c.graph_query(" 20", "CREATE (:B {v: 2})")
            c.graph_save("†")
            c.graph_save(" 20")
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            assert c.graph_query("†", "MATCH (n:A) RETURN n.v").scalar() == 1
            assert c.graph_query(" 20", "MATCH (n:B) RETURN n.v").scalar() == 2
        srv2.stop()

    def test_resave_supersedes_snapshot_and_keeps_commit_point(self, tmp_path):
        """Each save writes an anchor-stamped file and the manifest rewrite
        is the commit: after a second save only the newest file remains and
        the manifest points at it."""
        import json

        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_query("g", "CREATE (:A)")
            c.graph_save("g")
            c.graph_query("g", "CREATE (:B)")
            c.graph_save("g")
        srv.stop()
        files = sorted(tmp_path.glob("g.*.v2.npz"))
        assert len(files) == 1  # the superseded generation was cleaned up
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["graphs"]["g"]["file"] == files[0].name
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            assert c.graph_query("g", "MATCH (n) RETURN count(n)").scalar() == 2
        srv2.stop()

    def test_profile_write_is_logged(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_profile("g", "CREATE (:P {v: 1})")
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c:
            assert c.graph_query("g", "MATCH (n:P) RETURN n.v").scalar() == 1
        srv2.stop()

    def test_ro_query_not_logged(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            c.graph_query("g", "CREATE (:A)")
            before = srv.durability.wal.last_seq
            c.graph_ro_query("g", "MATCH (n) RETURN count(n)")
            c.graph_query("g", "MATCH (n) RETURN count(n)")
            assert srv.durability.wal.last_seq == before
        srv.stop()


class TestIndexKindsReplay:
    """All three index kinds — range, composite, vector — must rebuild
    identically from pure WAL replay (crash with no snapshot) and keep
    answering seeks and top-k queries exactly as before the crash."""

    VQ = (
        "CALL db.idx.vector.query('A', 'emb', [0.6, 0.8], 3) "
        "YIELD node, score RETURN id(node), score"
    )
    SEEKS = [
        "MATCH (n:A) WHERE n.v > 1 RETURN id(n)",
        "MATCH (n:A) WHERE n.v = 3 RETURN id(n)",
        "MATCH (n:A) WHERE n.name STARTS WITH 'n' RETURN id(n)",
        "MATCH (n:A) WHERE n.v = 2 AND n.name = 'n4' RETURN id(n)",
    ]
    CATALOG = (
        "CALL db.indexes() YIELD label, property, type, size "
        "RETURN label, property, type, size"
    )

    def seed(self, c: RedisClient):
        for i in range(8):
            c.graph_query(
                "g",
                "CREATE (:A {name: $n, v: $v, emb: $e})",
                {"n": f"n{i}", "v": i % 4, "e": [float(i), float(8 - i)]},
            )
        c.graph_query("g", "CREATE INDEX ON :A(v)")
        c.graph_query("g", "CREATE INDEX ON :A(v, name)")
        c.graph_query("g", "CREATE VECTOR INDEX ON :A(emb) OPTIONS {dimension: 2}")
        # post-DDL churn rides the log tail through index maintenance
        c.graph_query("g", "MATCH (n:A {name: 'n6'}) SET n.v = 3, n.emb = [9.0, 0.1]")
        c.graph_query("g", "MATCH (n:A {name: 'n7'}) DETACH DELETE n")

    def snapshot(self, c: RedisClient):
        state = {q: sorted(c.graph_query("g", q).rows) for q in self.SEEKS}
        state["catalog"] = sorted(c.graph_query("g", self.CATALOG).rows)
        state["vector"] = c.graph_query("g", self.VQ).rows  # ordered: top-k
        return state

    @pytest.mark.parametrize("save_midway", [False, True], ids=["log-only", "snapshot+tail"])
    def test_three_kinds_rebuild_identically(self, tmp_path, save_midway):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            self.seed(c)
            if save_midway:
                assert c.graph_save("g") == "OK"
                c.graph_query("g", "CREATE (:A {name: 'n9', v: 3, emb: [0.5, 0.5]})")
            expected = self.snapshot(c)
            assert sorted(t for _l, _p, t, _s in expected["catalog"]) == [
                "composite", "range", "vector"
            ]
            plan = "\n".join(c.graph_explain("g", "MATCH (n:A) WHERE n.v > 1 RETURN n"))
            assert "IndexRangeScan" in plan
        srv.stop()  # crash: the tail (or everything) exists only in the log

        srv2 = start_server(tmp_path)
        assert srv2.recovery_stats["replayed"] > 0
        with RedisClient(port=srv2.port) as c2:
            assert self.snapshot(c2) == expected
            plan = "\n".join(c2.graph_explain("g", "MATCH (n:A) WHERE n.v > 1 RETURN n"))
            assert "IndexRangeScan" in plan
            # replayed indexes keep maintaining on fresh writes
            c2.graph_query("g", "CREATE (:A {name: 'post', v: 2, emb: [1.0, 0.0]})")
            assert c2.graph_query(
                "g", "MATCH (n:A) WHERE n.v = 2 AND n.name = 'post' RETURN count(n)"
            ).scalar() == 1
        srv2.stop()

    def test_drop_replays_per_kind(self, tmp_path):
        srv = start_server(tmp_path)
        with RedisClient(port=srv.port) as c:
            self.seed(c)
            c.graph_query("g", "DROP INDEX ON :A(v, name)")
            c.graph_query("g", "DROP VECTOR INDEX ON :A(emb)")
        srv.stop()
        srv2 = start_server(tmp_path)
        with RedisClient(port=srv2.port) as c2:
            rows = c2.graph_query("g", self.CATALOG).rows
            assert [(l, p, t) for l, p, t, _s in rows] == [("A", "v", "range")]
        srv2.stop()


class TestIVFReplay:
    """A *trained* IVF index must survive kill-and-restart: pure WAL
    replay retrains deterministically (same seed, same row order → same
    centroids and bucket layout), snapshot restore reinstalls the saved
    centroids without retraining, and pre-IVF log records (no "exact"
    marker in options) replay as brute-force indexes."""

    IVF_KW = dict(vector_train_min=32, index_merge_threshold=8)
    DDL = "CREATE VECTOR INDEX ON :P(emb) OPTIONS {dimension: 4, nlist: 4}"
    VQ = (
        "CALL db.idx.vector.query('P', 'emb', $q, 10) "
        "YIELD node, score RETURN id(node), score"
    )
    OPTS = "CALL db.indexes() YIELD type, options WHERE type = 'vector' RETURN options"

    def seed(self, c: RedisClient, n=80, seed=23):
        rng = random.Random(seed)
        c.graph_query("g", self.DDL)
        for _ in range(n):
            c.graph_query(
                "g",
                "CREATE (:P {emb: $v})",
                {"v": [rng.gauss(0, 1) for _ in range(4)]},
            )

    def options(self, c: RedisClient):
        # RESP flattens maps to [key, value] pairs and booleans to 0/1
        return dict(map(tuple, c.graph_query("g", self.OPTS).rows[0][0]))

    def queries(self, c: RedisClient, seed=29):
        rng = random.Random(seed)
        return [
            c.graph_query("g", self.VQ, {"q": [rng.gauss(0, 1) for _ in range(4)]}).rows
            for _ in range(5)
        ]

    @pytest.mark.parametrize("save_midway", [False, True], ids=["log-only", "snapshot+tail"])
    def test_trained_index_survives_crash(self, tmp_path, save_midway):
        srv = start_server(tmp_path, **self.IVF_KW)
        with RedisClient(port=srv.port) as c:
            self.seed(c)
            if save_midway:
                assert c.graph_save("g") == "OK"
                c.graph_query("g", "CREATE (:P {emb: [0.1, 0.2, 0.3, 0.4]})")
            options = self.options(c)
            assert options["trained"] == 1 and options["nlist"] == 4
            expected = self.queries(c)
        srv.stop()  # crash: tail (or everything) lives only in the log

        srv2 = start_server(tmp_path, **self.IVF_KW)
        with RedisClient(port=srv2.port) as c2:
            options = self.options(c2)
            assert options["trained"] == 1 and options["nlist"] == 4
            assert self.queries(c2) == expected  # ids AND scores, in order
            # the restored index keeps indexing fresh writes
            c2.graph_query("g", "CREATE (:P {emb: [9.0, 0.0, 0.0, 0.0]})")
            top = c2.graph_query(
                "g", self.VQ, {"q": [1.0, 0.0, 0.0, 0.0]}
            ).rows
            assert float(top[0][1]) == pytest.approx(1.0)  # RESP floats are strings
        srv2.stop()

    def test_pre_ivf_log_record_replays_as_exact(self, tmp_path):
        srv = start_server(tmp_path, **self.IVF_KW)
        with RedisClient(port=srv.port) as c:
            c.graph_query("g", "CREATE (:P {emb: [1.0, 0.0]})")
        # a record written by the pre-IVF build: options carry no "exact"
        srv.durability.log_index(
            "g", "create", "P", "emb",
            itype="vector", attributes=["emb"], options={"dimension": 2},
        )
        srv.stop()
        srv2 = start_server(tmp_path, **self.IVF_KW)
        with RedisClient(port=srv2.port) as c2:
            assert self.options(c2)["exact"] == 1  # brute-force semantics kept
        srv2.stop()
