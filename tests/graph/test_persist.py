"""Graph persistence round-trip tests (save_graph / load_graph)."""

import io

import numpy as np
import pytest

from repro import GraphDB
from repro.errors import GraphError
from repro.graph.config import GraphConfig
from repro.graph.persist import load_graph, save_graph


def roundtrip(db: GraphDB) -> GraphDB:
    buf = io.BytesIO()
    db.save(buf)
    buf.seek(0)
    return GraphDB.load(buf)


class TestRoundTrip:
    def test_empty_graph(self):
        db = GraphDB("empty")
        db2 = roundtrip(db)
        assert db2.graph.name == "empty"
        assert db2.graph.node_count == 0

    def test_nodes_and_properties(self):
        db = GraphDB("g")
        db.query("CREATE (:Person {name:'Ann', age: 30, tags: ['a', 'b'], meta: {x: 1}})")
        db2 = roundtrip(db)
        node = db2.query("MATCH (n:Person) RETURN n").scalar()
        assert node.properties == {"name": "Ann", "age": 30, "tags": ["a", "b"], "meta": {"x": 1}}

    def test_edges_and_types(self):
        db = GraphDB("g")
        db.query("CREATE (:A {k: 1})-[:R {w: 2.5}]->(:B {k: 2})")
        db2 = roundtrip(db)
        assert db2.query("MATCH (:A)-[e:R]->(:B) RETURN e.w").scalar() == 2.5
        assert db2.graph.edge_count == 1

    def test_node_ids_preserved(self):
        db = GraphDB("g")
        ids = [db.graph.create_node(["L"]).id for _ in range(5)]
        db.graph.delete_node(ids[2])
        db2 = roundtrip(db)
        assert sorted(db2.graph.all_node_ids().tolist()) == sorted(set(ids) - {ids[2]})
        # deleted slot is reusable in the restored graph
        new = db2.graph.create_node()
        assert new.id == ids[2]

    def test_multiple_reltypes_and_queries(self):
        db = GraphDB("g")
        db.query("CREATE (a:P {i:0}), (b:P {i:1}), (c:P {i:2}), (a)-[:X]->(b), (b)-[:Y]->(c)")
        db2 = roundtrip(db)
        assert db2.query("MATCH (:P)-[:X]->()-[:Y]->(t) RETURN t.i").scalar() == 2

    def test_indices_restored(self):
        db = GraphDB("g")
        db.query("CREATE (:Person {name:'Zed'})")
        db.query("CREATE INDEX ON :Person(name)")
        db2 = roundtrip(db)
        plan = db2.explain("MATCH (n:Person {name:'Zed'}) RETURN n")
        assert "NodeByIndexScan" in plan
        assert db2.query("MATCH (n:Person {name:'Zed'}) RETURN n.name").scalar() == "Zed"

    def test_config_preserved(self):
        db = GraphDB("g", GraphConfig(node_capacity=512, traverse_batch_size=7))
        db2 = roundtrip(db)
        assert db2.graph.config.traverse_batch_size == 7

    def test_bulk_loaded_matrix_preserved(self):
        """Bulk edges have no records; the matrix COO must still survive."""
        db = GraphDB("g", GraphConfig(node_capacity=64))
        db.graph.bulk_load_nodes(10, label="V")
        db.graph.bulk_load_edges(np.array([0, 1]), np.array([1, 2]), "E")
        db2 = roundtrip(db)
        assert db2.query(
            "MATCH (s:V)-[:E*1..2]->(t) WHERE id(s) = 0 RETURN count(DISTINCT t)"
        ).scalar() == 2

    def test_updates_after_restore(self):
        db = GraphDB("g")
        db.query("CREATE (:P {v: 1})")
        db2 = roundtrip(db)
        db2.query("MATCH (n:P) SET n.v = 2")
        db2.query("CREATE (:P {v: 3})")
        assert db2.query("MATCH (n:P) RETURN sum(n.v)").scalar() == 5

    def test_labels_matrix_restored(self):
        db = GraphDB("g")
        db.query("CREATE (:A), (:B), (:A:B)")
        db2 = roundtrip(db)
        assert db2.query("MATCH (n:A) RETURN count(n)").scalar() == 2
        assert db2.query("MATCH (n:B) RETURN count(n)").scalar() == 2

    def test_file_path_roundtrip(self, tmp_path):
        db = GraphDB("g")
        db.query("CREATE (:P {x: 1})")
        path = tmp_path / "graph.npz"
        db.save(str(path))
        db2 = GraphDB.load(str(path))
        assert db2.query("MATCH (n:P) RETURN n.x").scalar() == 1


class TestErrors:
    def test_unpersistable_property(self):
        db = GraphDB("g")
        node = db.graph.create_node(["P"])
        db.graph.set_node_property(node.id, "blob", object())
        with pytest.raises(GraphError, match="cannot be persisted"):
            db.save(io.BytesIO())

    def test_non_string_map_keys(self):
        db = GraphDB("g")
        node = db.graph.create_node(["P"])
        db.graph.set_node_property(node.id, "m", {1: "x"})
        with pytest.raises(GraphError, match="keys must be strings"):
            db.save(io.BytesIO())
