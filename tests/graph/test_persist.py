"""Graph persistence round-trip tests (save_graph / load_graph)."""

import io
import threading
import time

import numpy as np
import pytest

from repro import GraphDB
from repro.errors import GraphError
from repro.graph.config import GraphConfig
from repro.graph.persist import load_graph, save_graph, save_graph_v1


def roundtrip(db: GraphDB) -> GraphDB:
    buf = io.BytesIO()
    db.save(buf)
    buf.seek(0)
    return GraphDB.load(buf)


class TestRoundTrip:
    def test_empty_graph(self):
        db = GraphDB("empty")
        db2 = roundtrip(db)
        assert db2.graph.name == "empty"
        assert db2.graph.node_count == 0

    def test_nodes_and_properties(self):
        db = GraphDB("g")
        db.query("CREATE (:Person {name:'Ann', age: 30, tags: ['a', 'b'], meta: {x: 1}})")
        db2 = roundtrip(db)
        node = db2.query("MATCH (n:Person) RETURN n").scalar()
        assert node.properties == {"name": "Ann", "age": 30, "tags": ["a", "b"], "meta": {"x": 1}}

    def test_edges_and_types(self):
        db = GraphDB("g")
        db.query("CREATE (:A {k: 1})-[:R {w: 2.5}]->(:B {k: 2})")
        db2 = roundtrip(db)
        assert db2.query("MATCH (:A)-[e:R]->(:B) RETURN e.w").scalar() == 2.5
        assert db2.graph.edge_count == 1

    def test_node_ids_preserved(self):
        db = GraphDB("g")
        ids = [db.graph.create_node(["L"]).id for _ in range(5)]
        db.graph.delete_node(ids[2])
        db2 = roundtrip(db)
        assert sorted(db2.graph.all_node_ids().tolist()) == sorted(set(ids) - {ids[2]})
        # deleted slot is reusable in the restored graph
        new = db2.graph.create_node()
        assert new.id == ids[2]

    def test_multiple_reltypes_and_queries(self):
        db = GraphDB("g")
        db.query("CREATE (a:P {i:0}), (b:P {i:1}), (c:P {i:2}), (a)-[:X]->(b), (b)-[:Y]->(c)")
        db2 = roundtrip(db)
        assert db2.query("MATCH (:P)-[:X]->()-[:Y]->(t) RETURN t.i").scalar() == 2

    def test_indices_restored(self):
        db = GraphDB("g")
        db.query("CREATE (:Person {name:'Zed'})")
        db.query("CREATE INDEX ON :Person(name)")
        db2 = roundtrip(db)
        plan = db2.explain("MATCH (n:Person {name:'Zed'}) RETURN n")
        assert "NodeByIndexScan" in plan
        assert db2.query("MATCH (n:Person {name:'Zed'}) RETURN n.name").scalar() == "Zed"

    def test_config_preserved(self):
        db = GraphDB("g", GraphConfig(node_capacity=512, traverse_batch_size=7))
        db2 = roundtrip(db)
        assert db2.graph.config.traverse_batch_size == 7

    def test_bulk_loaded_matrix_preserved(self):
        """Bulk edges have no records; the matrix COO must still survive."""
        db = GraphDB("g", GraphConfig(node_capacity=64))
        db.graph.bulk_load_nodes(10, label="V")
        db.graph.bulk_load_edges(np.array([0, 1]), np.array([1, 2]), "E")
        db2 = roundtrip(db)
        assert db2.query(
            "MATCH (s:V)-[:E*1..2]->(t) WHERE id(s) = 0 RETURN count(DISTINCT t)"
        ).scalar() == 2

    def test_updates_after_restore(self):
        db = GraphDB("g")
        db.query("CREATE (:P {v: 1})")
        db2 = roundtrip(db)
        db2.query("MATCH (n:P) SET n.v = 2")
        db2.query("CREATE (:P {v: 3})")
        assert db2.query("MATCH (n:P) RETURN sum(n.v)").scalar() == 5

    def test_labels_matrix_restored(self):
        db = GraphDB("g")
        db.query("CREATE (:A), (:B), (:A:B)")
        db2 = roundtrip(db)
        assert db2.query("MATCH (n:A) RETURN count(n)").scalar() == 2
        assert db2.query("MATCH (n:B) RETURN count(n)").scalar() == 2

    def test_file_path_roundtrip(self, tmp_path):
        db = GraphDB("g")
        db.query("CREATE (:P {x: 1})")
        path = tmp_path / "graph.npz"
        db.save(str(path))
        db2 = GraphDB.load(str(path))
        assert db2.query("MATCH (n:P) RETURN n.x").scalar() == 1


def populate(db: GraphDB) -> None:
    """A graph exercising every persisted surface: multi-labels, typed
    properties, multi-edges, deletions, recordless bulk edges, an index."""
    db.query("CREATE (:Person {name:'Ann', age: 30, score: 1.5, ok: true, tags: ['a', 1]})")
    db.query("CREATE (:Person:Admin {name:'Bo', meta: {x: 1}})")
    db.query("CREATE (:Thing {name:'t0'}), (:Thing {name:'t1'})")
    db.query("MATCH (a {name:'Ann'}), (b {name:'Bo'}) CREATE (a)-[:KNOWS {w: 1}]->(b)")
    db.query("MATCH (a {name:'Ann'}), (b {name:'Bo'}) CREATE (a)-[:KNOWS {w: 2}]->(b)")
    db.query("MATCH (a {name:'Bo'}), (b {name:'t0'}) CREATE (a)-[:OWNS]->(b)")
    db.query("MATCH (n {name:'t1'}) DELETE n")
    db.query("CREATE INDEX ON :Person(name)")
    db.graph.bulk_load_nodes(4, label="V")
    db.graph.bulk_load_edges(np.array([0, 1]), np.array([1, 2]), "LINK")


DIFF_QUERIES = [
    "MATCH (n) RETURN count(n)",
    "MATCH ()-[e]->() RETURN count(e)",
    "MATCH (n) RETURN id(n), n.name, n.age, n.score, n.ok, n.tags, n.meta",
    "MATCH (n:Person) RETURN id(n) ORDER BY id(n)",
    "MATCH (n:Admin) RETURN n.name",
    "MATCH (n:Person {name:'Ann'}) RETURN n.age",
    "MATCH (a)-[e:KNOWS]->(b) RETURN a.name, e.w, b.name",
    "MATCH (a {name:'Ann'})-[:KNOWS]->(b)-[:OWNS]->(c) RETURN c.name",
]


class TestV2Format:
    def test_differential_restore(self):
        """A restored graph answers the full query battery identically."""
        db = GraphDB("g")
        populate(db)
        db2 = roundtrip(db)
        for q in DIFF_QUERIES:
            assert sorted(db2.query(q).rows) == sorted(db.query(q).rows), q

    def test_v1_migration(self):
        """Files written by the legacy v1 writer still load (read-only
        migration path) and answer like the live graph."""
        db = GraphDB("g")
        populate(db)
        buf = io.BytesIO()
        save_graph_v1(db.graph, buf)
        buf.seek(0)
        db2 = GraphDB.load(buf)
        for q in DIFF_QUERIES:
            assert sorted(db2.query(q).rows) == sorted(db.query(q).rows), q

    def test_save_does_not_flush_pending_deltas(self):
        """Saving is a pure read: pending matrix deltas stay pending and
        no matrix generation moves (the v1 writer flushed via synced())."""
        db = GraphDB("g")
        db.query("CREATE (:P {v: 1})-[:R]->(:P {v: 2})")
        graph = db.graph
        rel = graph._rel_matrix_for(graph.schema.reltype_id("R"))
        assert rel.pending > 0
        pending_before = rel.pending
        generations = [
            m.generation for m in [graph._adj, *graph._rel_matrices, *graph._label_matrices]
        ]
        buf = io.BytesIO()
        db.save(buf)
        assert rel.pending == pending_before
        assert [
            m.generation for m in [graph._adj, *graph._rel_matrices, *graph._label_matrices]
        ] == generations
        buf.seek(0)
        db2 = GraphDB.load(buf)
        assert db2.query("MATCH (:P)-[:R]->(b) RETURN b.v").scalar() == 2

    def test_writers_progress_during_save(self):
        """BGSAVE semantics: the capture runs under the read lock, the
        disk write under no lock — a writer commits while a slow save is
        still streaming bytes out."""
        db = GraphDB("g", GraphConfig(node_capacity=1024))
        db.graph.bulk_load_nodes(500, label="V")

        class SlowSink(io.BytesIO):
            def __init__(self):
                super().__init__()
                self.first_write = threading.Event()

            def write(self, data):
                self.first_write.set()
                time.sleep(0.005)
                return super().write(data)

        sink = SlowSink()
        save_error = []

        def run_save():
            try:
                db.save(sink)
            except Exception as exc:  # pragma: no cover - surfaced below
                save_error.append(exc)

        saver = threading.Thread(target=run_save)
        saver.start()
        assert sink.first_write.wait(timeout=10)
        # the save is mid-write: a write query must not have to wait for it
        started = time.perf_counter()
        db.query("CREATE (:W {i: 0})")
        write_latency = time.perf_counter() - started
        assert saver.is_alive(), "save finished too fast to measure overlap"
        saver.join(timeout=30)
        assert not save_error
        assert write_latency < 1.0
        # the snapshot is the pre-write image; the live graph has the write
        sink.seek(0)
        assert GraphDB.load(sink).query("MATCH (n:W) RETURN count(n)").scalar() == 0
        assert db.query("MATCH (n:W) RETURN count(n)").scalar() == 1

    def test_unknown_version_rejected(self):
        db = GraphDB("g")
        buf = io.BytesIO()
        db.save(buf)
        buf.seek(0)
        import json

        data = dict(np.load(buf))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        evil = io.BytesIO()
        np.savez(evil, **data)
        evil.seek(0)
        with pytest.raises(GraphError, match="unsupported graph file version"):
            load_graph(evil)

    def test_none_valued_index_entries_not_indexed(self):
        """Cypher null matches no predicate, so None is never indexed —
        and the restore-time backfill must agree with live maintenance."""
        db = GraphDB("g")
        db.graph.create_node(["P"], {"v": None})
        db.graph.create_node(["P"], {"v": 1})
        db.query("CREATE INDEX ON :P(v)")
        live = db.graph.get_index("P", "v")
        db2 = roundtrip(db)
        restored = db2.graph.get_index("P", "v")
        assert len(restored) == len(live) == 1
        assert restored.lookup(None) == live.lookup(None) == set()
        assert restored.lookup(1) == live.lookup(1) == {1}

    def test_edge_slot_reuse_preserved(self):
        db = GraphDB("g")
        db.query("CREATE (:A)-[:R {i: 0}]->(:B)")
        db.query("MATCH (:A)-[e:R]->(:B) DELETE e")
        db2 = roundtrip(db)
        # the freed edge slot is recycled in the restored graph
        db2.query("MATCH (a:A), (b:B) CREATE (a)-[:R {i: 1}]->(b)")
        assert db2.query("MATCH ()-[e:R]->() RETURN id(e), e.i").rows == [(0, 1)]


class TestErrors:
    def test_unpersistable_property(self):
        db = GraphDB("g")
        node = db.graph.create_node(["P"])
        db.graph.set_node_property(node.id, "blob", object())
        with pytest.raises(GraphError, match="cannot be persisted"):
            db.save(io.BytesIO())

    def test_non_string_map_keys(self):
        db = GraphDB("g")
        node = db.graph.create_node(["P"])
        db.graph.set_node_property(node.id, "m", {1: "x"})
        with pytest.raises(GraphError, match="keys must be strings"):
            db.save(io.BytesIO())
