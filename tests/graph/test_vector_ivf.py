"""IVF vector index: differential tests against the brute-force path.

The contract under test: ``exact: true`` (and an untrained index) must
reproduce the flat scan bit-for-bit; a trained IVF index probing every
bucket (``nprobe == nlist``) must also be exact; default probing on
clustered data must keep recall@10 high; pending-tail churn (inserts and
deletes after training) must stay visible exactly; and a kill-and-restart
through the WAL must rebuild the identical index (deterministic
training).
"""

import numpy as np
import pytest

from repro import GraphDB
from repro.errors import CypherTypeError
from repro.graph.config import GraphConfig
from repro.graph.index import VectorIndex


def flat_oracle(rows, q, k):
    """PR 9's brute-force path, restated: normalize rows and query, one
    matmul, lexsort with ascending-id tie-break.  The matmul form matters
    — ``exact: true`` is asserted bit-identical to this."""
    def unit(v):
        v = np.asarray(v, dtype=np.float64)
        n = float(np.linalg.norm(v))
        return v / n if n > 0 else v

    ids = np.array([nid for nid, _ in rows], dtype=np.int64)
    mat = np.stack([unit(vec) for _, vec in rows])
    scores = mat @ unit(q)
    order = np.lexsort((ids, -scores))[: int(k)]
    return ids[order].tolist(), scores[order]


def clustered_rows(rng, n, dim, n_clusters=8, spread=0.15):
    """Points drawn tightly around a few random directions — the regime
    IVF is built for (bucket ≈ cluster, so few probes recover the true
    neighbours)."""
    centers = rng.normal(size=(n_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    rows = []
    for nid in range(n):
        c = centers[nid % n_clusters]
        rows.append((nid, (c + spread * rng.normal(size=dim)).tolist()))
    return rows, centers


def build(rows, dim, **kw):
    kw.setdefault("train_min", 64)
    idx = VectorIndex(0, 10, dim=dim, **kw)
    idx.bulk_insert([vec for _, vec in rows], [nid for nid, _ in rows])
    return idx


class TestExactEquivalence:
    def test_exact_true_is_bit_identical_to_flat(self):
        rng = np.random.default_rng(11)
        dim = 16
        rows = [(nid, rng.normal(size=dim).tolist()) for nid in range(500)]
        exact = build(rows, dim, exact=True)
        assert not exact.trained  # exact never trains
        for _ in range(20):
            q = rng.normal(size=dim).tolist()
            got_ids, got_scores = exact.query(q, 10)
            want_ids, want_scores = flat_oracle(rows, q, 10)
            assert [int(i) for i in got_ids] == want_ids
            assert np.array_equal(np.asarray(got_scores), want_scores)

    def test_untrained_is_brute_force(self):
        rng = np.random.default_rng(12)
        dim = 8
        rows = [(nid, rng.normal(size=dim).tolist()) for nid in range(50)]
        idx = build(rows, dim, train_min=1024)  # far below the floor
        assert not idx.trained
        q = rng.normal(size=dim).tolist()
        got_ids, got_scores = idx.query(q, 10)
        want_ids, want_scores = flat_oracle(rows, q, 10)
        assert [int(i) for i in got_ids] == want_ids
        assert np.array_equal(np.asarray(got_scores), want_scores)

    def test_full_probe_recall_is_one(self):
        """nprobe == nlist scans every bucket: exact cosine within each
        bucket plus the global lexsort makes the result identical to the
        flat scan."""
        rng = np.random.default_rng(13)
        dim = 12
        rows, _ = clustered_rows(rng, 600, dim)
        idx = build(rows, dim, nlist=10)
        assert idx.trained and idx.nlist == 10
        for _ in range(10):
            q = rng.normal(size=dim).tolist()
            got_ids, got_scores = idx.query(q, 10, nprobe=idx.nlist)
            want_ids, want_scores = flat_oracle(rows, q, 10)
            assert [int(i) for i in got_ids] == want_ids
            assert np.allclose(got_scores, want_scores)


class TestRecall:
    def test_default_nprobe_recall_on_clustered_data(self):
        rng = np.random.default_rng(14)
        dim = 16
        rows, centers = clustered_rows(rng, 2000, dim)
        idx = build(rows, dim)  # auto nlist ~ sqrt(2000) ≈ 45, nprobe 16
        assert idx.trained
        hits = total = 0
        for i in range(30):
            c = centers[i % len(centers)]
            q = (c + 0.1 * rng.normal(size=dim)).tolist()
            got_ids, _ = idx.query(q, 10)
            want_ids, _ = flat_oracle(rows, q, 10)
            hits += len(set(int(i) for i in got_ids) & set(want_ids))
            total += len(want_ids)
        recall = hits / total
        assert recall >= 0.95, f"recall@10 {recall:.3f} below 0.95"


class TestChurn:
    def test_insert_delete_churn_stays_exact_on_tail(self):
        """Post-training inserts live in the pending tail (scanned exactly)
        and deletes mask bucket entries; full-probe queries must match the
        flat oracle through arbitrary churn."""
        rng = np.random.default_rng(15)
        dim = 8
        rows = [(nid, rng.normal(size=dim).tolist()) for nid in range(300)]
        idx = build(rows, dim, nlist=6, merge_threshold=10_000)
        assert idx.trained
        live = dict(rows)
        # interleave deletes (bucket + tail) and fresh inserts
        for step in range(60):
            if step % 3 != 2:
                nid = sorted(live)[int(rng.integers(len(live)))]
                idx.unindex_node(nid, {10: live.pop(nid)})
            else:
                nid = 1000 + step
                vec = rng.normal(size=dim).tolist()
                assert idx.index_node(nid, {10: vec})
                live[nid] = vec
        q = rng.normal(size=dim).tolist()
        got_ids, got_scores = idx.query(q, 15, nprobe=idx.nlist)
        want_ids, want_scores = flat_oracle(sorted(live.items()), q, 15)
        assert [int(i) for i in got_ids] == want_ids
        assert np.allclose(got_scores, want_scores)

    def test_fold_and_retrain_preserve_answers(self):
        """Crossing the merge threshold folds the tail into buckets and may
        retrain; full-probe answers must be unchanged by layout shifts."""
        rng = np.random.default_rng(16)
        dim = 8
        rows = [(nid, rng.normal(size=dim).tolist()) for nid in range(200)]
        idx = build(rows, dim, nlist=5, merge_threshold=32)
        live = dict(rows)
        for nid in range(500, 900):  # 2x growth → drift retrain at a fold
            vec = rng.normal(size=dim).tolist()
            idx.index_node(nid, {10: vec})
            live[nid] = vec
        assert idx._retrains >= 1
        q = rng.normal(size=dim).tolist()
        got_ids, _ = idx.query(q, 10, nprobe=idx.nlist)
        want_ids, _ = flat_oracle(sorted(live.items()), q, 10)
        assert [int(i) for i in got_ids] == want_ids


class TestProcedureSurface:
    @pytest.fixture()
    def db(self):
        # small merge threshold so the pending tail folds (training runs
        # at fold time) within a 64-row fixture
        d = GraphDB("vec", GraphConfig(vector_train_min=32, index_merge_threshold=8))
        d.query("CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {dimension: 4, nlist: 4}")
        rng = np.random.default_rng(17)
        for _ in range(64):
            d.query("CREATE (:Doc {emb: $v})", {"v": rng.normal(size=4).tolist()})
        return d

    def test_k_must_be_positive(self, db):
        with pytest.raises(CypherTypeError, match=r"k must be a positive integer \(got 0\)"):
            db.query("CALL db.idx.vector.query('Doc', 'emb', [1.0,0.0,0.0,0.0], 0)")
        with pytest.raises(CypherTypeError, match=r"k must be a positive integer \(got -3\)"):
            db.query("CALL db.idx.vector.query('Doc', 'emb', [1.0,0.0,0.0,0.0], -3)")

    def test_dimension_mismatch_names_both_dimensions(self, db):
        with pytest.raises(CypherTypeError, match=r"dimension 2, index expects 4"):
            db.query("CALL db.idx.vector.query('Doc', 'emb', [1.0, 0.0], 5)")

    def test_nprobe_override_full_probe_matches_exact(self, db):
        idx = db.graph.get_vector_index("Doc", "emb")
        assert idx.trained
        q = [0.5, -0.2, 0.1, 0.9]
        full = db.query(
            "CALL db.idx.vector.query('Doc', 'emb', $q, 10, $p) "
            "YIELD node, score RETURN id(node), score",
            {"q": q, "p": idx.nlist},
        ).rows
        ids, scores = idx._query_flat(
            np.asarray(q) / np.linalg.norm(q), 10
        )
        assert [r[0] for r in full] == [int(i) for i in ids]
        with pytest.raises(CypherTypeError, match="nprobe must be a positive integer"):
            db.query("CALL db.idx.vector.query('Doc', 'emb', $q, 5, 0)", {"q": q})

    def test_db_indexes_reports_vector_options(self, db):
        rows = db.query("CALL db.indexes()").rows
        vec = [r for r in rows if r[2] == "vector"]
        assert len(vec) == 1
        options = vec[0][5]
        assert options["dimension"] == 4
        assert options["similarity"] == "cosine"
        assert options["nlist"] == 4
        assert options["trained"] is True
        assert options["exact"] is False
        assert options["nprobe"] >= 1

    def test_options_parse_rejects_bad_knobs(self, db):
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation, match="nlist must be a positive integer"):
            db.query("CREATE VECTOR INDEX ON :Other(e) OPTIONS {dimension: 2, nlist: -5}")
        with pytest.raises(ConstraintViolation, match="exact must be a boolean"):
            db.query("CREATE VECTOR INDEX ON :Other(e) OPTIONS {dimension: 2, exact: 1}")


class TestConfigKnobs:
    def test_nprobe_default_flows_from_config(self):
        d = GraphDB("k", GraphConfig(vector_train_min=32, vector_nprobe_default=3))
        d.query("CREATE VECTOR INDEX ON :D(e) OPTIONS {dimension: 2, nlist: 8}")
        idx = d.graph.get_vector_index("D", "e")
        assert idx.nprobe == 3

    def test_per_index_nprobe_beats_config(self):
        d = GraphDB("k", GraphConfig(vector_nprobe_default=3))
        d.query("CREATE VECTOR INDEX ON :D(e) OPTIONS {dimension: 2, nprobe: 7}")
        assert d.graph.get_vector_index("D", "e").nprobe == 7

    def test_train_min_gates_training(self):
        d = GraphDB("k", GraphConfig(vector_train_min=16, index_merge_threshold=1))
        d.query("CREATE VECTOR INDEX ON :D(e) OPTIONS {dimension: 2}")
        rng = np.random.default_rng(18)
        for _ in range(15):
            d.query("CREATE (:D {e: $v})", {"v": rng.normal(size=2).tolist()})
        assert not d.graph.get_vector_index("D", "e").trained
        for _ in range(10):
            d.query("CREATE (:D {e: $v})", {"v": rng.normal(size=2).tolist()})
        assert d.graph.get_vector_index("D", "e").trained


class TestPersistence:
    def test_snapshot_round_trip_preserves_layout(self, tmp_path):
        import io

        from repro.graph.persist import load_graph, save_graph

        d = GraphDB("p", GraphConfig(vector_train_min=32, index_merge_threshold=8))
        d.query("CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {dimension: 6, nlist: 5}")
        rng = np.random.default_rng(19)
        for _ in range(80):
            d.query("CREATE (:Doc {emb: $v})", {"v": rng.normal(size=6).tolist()})
        idx = d.graph.get_vector_index("Doc", "emb")
        assert idx.trained
        buf = io.BytesIO()
        save_graph(d.graph, buf)
        buf.seek(0)
        g2 = load_graph(buf)
        idx2 = g2.get_vector_index("Doc", "emb")
        assert idx2.trained and idx2.nlist == idx.nlist
        assert np.array_equal(idx._centroids, idx2._centroids)
        q = rng.normal(size=6).tolist()
        a, b = idx.query(q, 10), idx2.query(q, 10)
        assert np.array_equal(a[0], b[0]) and np.allclose(a[1], b[1])

    def test_pre_ivf_snapshot_loads_as_exact(self):
        import io

        from repro.graph.persist import capture_snapshot, load_graph

        d = GraphDB("p")
        d.query("CREATE VECTOR INDEX ON :Doc(emb) OPTIONS {dimension: 3}")
        d.query("CREATE (:Doc {emb: [1.0, 0.0, 0.0]})")
        snap = capture_snapshot(d.graph)
        # a pre-IVF writer never emitted the "exact" marker
        snap.meta["vector_indices"] = [
            [lid, aid, {k: v for k, v in opts.items() if k != "exact"}]
            for lid, aid, opts in snap.meta["vector_indices"]
        ]
        buf = io.BytesIO()
        snap.write(buf)
        buf.seek(0)
        g2 = load_graph(buf)
        assert g2.get_vector_index("Doc", "emb").exact is True
