"""Unit tests for the append-only write log (framing, fsync policies,
rotation, torn-tail repair, snapshot-anchored truncation)."""

import struct

import pytest

from repro.graph.wal import FSYNC_POLICIES, WalError, WriteAheadLog


def make_log(tmp_path, **kw):
    kw.setdefault("fsync", "no")
    return WriteAheadLog(tmp_path / "wal", **kw)


class TestFraming:
    def test_append_replay_roundtrip(self, tmp_path):
        log = make_log(tmp_path)
        records = [
            {"kind": "query", "key": "g", "text": "CREATE (:P)", "params": {}},
            {"kind": "bulk", "key": "g", "payload": {"nodes": [{"count": 3}]}},
            {"kind": "config", "name": "WAL_FSYNC", "value": "always"},
        ]
        seqs = [log.append(r) for r in records]
        assert seqs == [0, 1, 2]
        assert log.last_seq == 2
        log.close()
        reopened = make_log(tmp_path)
        assert list(reopened.replay()) == list(enumerate(records))
        assert reopened.last_seq == 2  # appends continue after the tail
        reopened.close()

    def test_numpy_values_serialize(self, tmp_path):
        import numpy as np

        log = make_log(tmp_path)
        log.append({"kind": "bulk", "key": "g", "payload": {"src": np.arange(3), "n": np.int64(7)}})
        ((_, record),) = list(log.replay())
        assert record["payload"] == {"src": [0, 1, 2], "n": 7}
        log.close()

    def test_empty_log(self, tmp_path):
        log = make_log(tmp_path)
        assert log.last_seq == -1
        assert list(log.replay()) == []
        log.close()


class TestTornTail:
    def _tail_file(self, log):
        return log.segment_files()[-1]

    def test_truncated_payload_dropped(self, tmp_path):
        log = make_log(tmp_path)
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        log.append({"kind": "query", "key": "g", "text": "CREATE (:B)", "params": {}})
        log.close()
        path = self._tail_file(log)
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])  # rip the last record mid-payload
        reopened = make_log(tmp_path)
        replayed = list(reopened.replay())
        assert len(replayed) == 1
        assert replayed[0][1]["text"] == "CREATE (:A)"
        # the torn bytes were physically truncated; appends continue cleanly
        assert reopened.last_seq == 0
        assert reopened.append({"kind": "query", "key": "g", "text": "CREATE (:C)", "params": {}}) == 1
        assert [r["text"] for _, r in reopened.replay()] == ["CREATE (:A)", "CREATE (:C)"]
        reopened.close()

    def test_short_header_dropped(self, tmp_path):
        log = make_log(tmp_path)
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        log.close()
        path = self._tail_file(log)
        with open(path, "ab") as f:
            f.write(b"\x03")  # a lone garbage byte: not even a header
        reopened = make_log(tmp_path)
        assert len(list(reopened.replay())) == 1
        reopened.close()

    def test_corrupt_crc_stops_replay(self, tmp_path):
        log = make_log(tmp_path)
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        log.append({"kind": "query", "key": "g", "text": "CREATE (:B)", "params": {}})
        log.close()
        path = self._tail_file(log)
        raw = bytearray(path.read_bytes())
        # flip one payload byte of the FIRST record; its crc no longer matches
        (length,) = struct.unpack_from("<I", raw, 0)
        raw[8 + length // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        reopened = make_log(tmp_path)
        assert list(reopened.replay()) == []  # nothing after the corruption
        reopened.close()


class TestRotationTruncation:
    def test_rotate_by_size(self, tmp_path):
        log = make_log(tmp_path, rotate_bytes=4096)
        for i in range(200):
            log.append({"kind": "query", "key": "g", "text": f"CREATE (:N{i})", "params": {}})
        assert len(log.segment_files()) > 1
        assert [seq for seq, _ in log.replay()] == list(range(200))
        log.close()

    def test_truncate_upto_drops_covered_segments(self, tmp_path):
        log = make_log(tmp_path, rotate_bytes=4096)
        for i in range(200):
            log.append({"kind": "query", "key": "g", "text": f"CREATE (:N{i})", "params": {}})
        segments_before = len(log.segment_files())
        assert segments_before > 2
        removed = log.truncate_upto(150)
        assert removed > 0
        remaining = [seq for seq, _ in log.replay()]
        assert remaining[-1] == 199
        assert all(seq <= 150 or seq in remaining for seq in range(200)) is True
        # every record above the anchor survived
        assert set(range(151, 200)) <= set(remaining)
        log.close()

    def test_active_segment_never_deleted(self, tmp_path):
        log = make_log(tmp_path)
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        assert log.truncate_upto(10**9) == 0
        assert log.segment_files()[0].exists()
        log.close()


class TestPolicies:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            WriteAheadLog(tmp_path / "wal", fsync="sometimes")
        log = make_log(tmp_path)
        with pytest.raises(WalError, match="fsync policy"):
            log.set_fsync("sometimes")
        log.close()

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_each_policy_appends(self, tmp_path, policy):
        log = WriteAheadLog(tmp_path / f"wal-{policy}", fsync=policy)
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        log.sync()
        assert log.last_seq == 0
        log.close()

    def test_everysec_timer_syncs_idle_log(self, tmp_path):
        """An acknowledged write on an otherwise idle log must be fsynced
        by the background timer within ~1s, not wait for the next append."""
        import time

        log = WriteAheadLog(tmp_path / "wal", fsync="everysec")
        log.append({"kind": "query", "key": "g", "text": "CREATE (:A)", "params": {}})
        log.append({"kind": "query", "key": "g", "text": "CREATE (:B)", "params": {}})
        assert log._dirty  # the second append landed within the 1s window
        deadline = time.time() + 3
        while time.time() < deadline and log._dirty:
            time.sleep(0.05)
        assert not log._dirty, "background everysec timer never fsynced"
        log.close()
