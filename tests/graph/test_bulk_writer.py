"""BulkWriter unit tests + the bookkeeping regressions: bulk loads must
bump the schema version for new labels/reltypes, backfill existing
indexes from staged property columns, and keep nvals/datablock counters
consistent with the per-entity write path."""

import numpy as np
import pytest

from repro import GraphDB
from repro.errors import EntityNotFound, GraphError, IndexOutOfBounds
from repro.graph import BulkWriter, Graph, GraphConfig
from repro.graph.delta_matrix import DeltaMatrix


@pytest.fixture
def g():
    return Graph("bulk-test", GraphConfig(node_capacity=16))


class TestStaging:
    def test_add_nodes_returns_batch_indices(self, g):
        w = BulkWriter(g)
        assert list(w.add_nodes(count=3, labels=["A"])) == [0, 1, 2]
        assert list(w.add_nodes(count=2)) == [3, 4]
        assert w.staged_nodes == 5

    def test_count_inferred_from_columns(self, g):
        w = BulkWriter(g)
        ids = w.add_nodes(labels=["A"], properties={"v": [1, 2, 3, 4]})
        assert len(ids) == 4

    def test_column_length_mismatch(self, g):
        w = BulkWriter(g)
        with pytest.raises(GraphError, match="property column"):
            w.add_nodes(count=3, properties={"v": [1, 2]})

    def test_count_required_without_columns(self, g):
        with pytest.raises(GraphError, match="count"):
            BulkWriter(g).add_nodes(labels=["A"])

    def test_non_integral_count_rejected_at_staging(self, g):
        w = BulkWriter(g)
        with pytest.raises(GraphError, match="must be an integer"):
            w.add_nodes(count=2.5)
        assert list(w.add_nodes(count=2.0)) == [0, 1]  # JSON-integral float ok
        assert w.staged_nodes == 2
        w.commit(lock=False)
        assert g.node_count == 2

    def test_lone_string_label_not_split(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=1, labels="Person")
        w.commit(lock=False)
        assert g.labels_of(0) == ("Person",)

    def test_edges_length_mismatch(self, g):
        with pytest.raises(GraphError, match="equal-length"):
            BulkWriter(g).add_edges("R", [0, 1], [0])

    def test_non_integral_endpoints_rejected(self, g):
        w = BulkWriter(g)
        with pytest.raises(GraphError, match="endpoints must be integers"):
            w.add_edges("R", [1.9], [0])
        with pytest.raises(GraphError, match="endpoints must be integers"):
            w.add_edges("R", [0], ["x"])
        w.add_nodes(count=2)
        w.add_edges("R", [0.0], [1.0])  # integral floats (JSON) are fine
        w.commit(lock=False)
        assert g.relation_matrix("R")[0, 1] is not None

    def test_bad_endpoints_mode(self, g):
        with pytest.raises(GraphError, match="endpoints"):
            BulkWriter(g).add_edges("R", [0], [0], endpoints="nope")

    def test_recordless_edges_reject_properties(self, g):
        with pytest.raises(GraphError, match="recordless"):
            BulkWriter(g).add_edges("R", [0], [0], properties={"w": [1]}, record=False)

    def test_single_use_after_commit(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=1)
        w.commit(lock=False)
        with pytest.raises(GraphError, match="committed"):
            w.add_nodes(count=1)
        with pytest.raises(GraphError, match="committed"):
            w.commit()

    def test_abort_discards(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=5, labels=["A"])
        w.abort()
        assert g.node_count == 0
        with pytest.raises(GraphError, match="aborted"):
            w.commit()


class TestCommit:
    def test_batch_endpoints_map_to_allocated_ids(self, g):
        g.create_node(["Seed"])  # occupy id 0 so batch ids shift
        w = BulkWriter(g)
        w.add_nodes(count=3, labels=["A"])
        w.add_edges("R", [0, 1], [1, 2])
        report = w.commit(lock=False)
        ids = report.node_ids
        assert g.node_count == 4
        R = g.relation_matrix("R")
        assert R[int(ids[0]), int(ids[1])] is not None
        assert R[int(ids[1]), int(ids[2])] is not None

    def test_graph_endpoints_validated_alive(self, g):
        a = g.create_node()
        b = g.create_node()
        g.delete_node(b.id)
        w = BulkWriter(g)
        w.add_edges("R", [a.id], [b.id], endpoints="graph")
        with pytest.raises(EntityNotFound, match="does not exist"):
            w.commit(lock=False)
        assert g.edge_count == 0  # validation failed before mutation

    def test_batch_endpoint_out_of_range(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=2)
        w.add_edges("R", [0], [5])
        with pytest.raises(EntityNotFound, match="staged nodes"):
            w.commit(lock=False)
        assert g.node_count == 0  # nothing applied

    def test_recorded_edges_fully_first_class(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=3, labels=["A"])
        w.add_edges("R", [0, 0], [1, 1], properties={"w": [1, 2]})  # multi-edge
        w.add_edges("R", [1], [2])
        report = w.commit(lock=False)
        assert report.relationships_created == 3
        assert g.edge_count == 3
        assert g.relation_matrix("R").nvals == 2  # multi-edge shares one entry
        eids = g.edges_between(0, 1, "R")
        assert len(eids) == 2
        assert sorted(g.edge_property(e, "w") for e in eids) == [1, 2]
        # deletable like any per-entity edge
        g.delete_edge(eids[0])
        assert g.relation_matrix("R")[0, 1] is not None  # sibling keeps entry
        g.delete_edge(eids[1])
        assert g.relation_matrix("R")[0, 1] is None
        assert g.relation_matrix()[0, 1] is None  # ADJ entry dropped too

    def test_property_columns_with_gaps(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=3, labels=["A"], properties={"v": [1, None, 3]})
        report = w.commit(lock=False)
        assert report.properties_set == 2
        assert g.node_property(0, "v") == 1
        assert g.node_property(1, "v") is None
        assert g.node_property(2, "v") == 3

    def test_report_counts(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=2, labels=["A", "B"])
        w.add_edges("R", [0], [1], properties={"w": [9]})
        report = w.commit(lock=False)
        assert report.nodes_created == 2
        assert report.relationships_created == 1
        assert report.labels_added == 2
        assert report.reltypes_added == 1
        assert report.properties_set == 1
        assert any("Nodes created: 2" in line for line in report.summary())

    def test_empty_commit(self, g):
        report = BulkWriter(g).commit(lock=False)
        assert report.nodes_created == 0 and report.relationships_created == 0

    def test_commit_under_lock_by_default(self, g):
        w = BulkWriter(g)
        w.add_nodes(count=2, labels=["A"])
        w.commit()  # acquires/releases the write lock
        assert g.node_count == 2


class TestBookkeepingRegressions:
    """Satellite fix: the legacy bulk_load shims must run the same
    bookkeeping as per-entity writes."""

    def test_bulk_load_nodes_new_label_bumps_schema_version(self, g):
        v = g.schema_version
        g.bulk_load_nodes(4, label="Fresh")
        assert g.schema_version > v
        v = g.schema_version
        g.bulk_load_nodes(4, label="Fresh")  # known label: data-only write
        assert g.schema_version == v

    def test_bulk_load_edges_new_reltype_bumps_schema_version(self, g):
        g.bulk_load_nodes(4)
        v = g.schema_version
        g.bulk_load_edges(np.array([0]), np.array([1]), "NEWREL")
        assert g.schema_version > v

    def test_bulk_load_nodes_carries_properties(self, g):
        ids = g.bulk_load_nodes(3, label="P", properties={"name": ["x", "y", "z"]})
        assert [g.node_property(int(i), "name") for i in ids] == ["x", "y", "z"]

    def test_bulk_load_backfills_existing_index(self, g):
        idx = g.create_index("P", "name")
        g.bulk_load_nodes(3, label="P", properties={"name": ["x", "y", "x"]})
        assert len(idx) == 3
        assert idx.lookup("x") == {0, 2}

    def test_bulk_insert_backfills_existing_index(self):
        db = GraphDB("idx", GraphConfig(node_capacity=16))
        db.query("CREATE INDEX ON :P(name)")
        db.bulk_insert(nodes=[{"labels": ["P"], "properties": {"name": ["ann", "bo"]}}])
        # the planner must both choose the index and find the bulk rows
        assert "NodeByIndexScan" in db.explain("MATCH (n:P {name: 'ann'}) RETURN n")
        assert db.query("MATCH (n:P {name: 'ann'}) RETURN count(n)").scalar() == 1

    def test_unindexable_bulk_values_skipped(self, g):
        idx = g.create_index("P", "tags")
        g.bulk_load_nodes(2, label="P", properties={"tags": [[1, 2], "ok"]})
        assert len(idx) == 1

    def test_indexed_nodes_report_counts_real_insertions(self, g):
        g.create_index("P", "tags")
        w = BulkWriter(g)
        w.add_nodes(count=3, labels=["P"], properties={"tags": [[1, 2], "ok", None]})
        report = w.commit(lock=False)
        assert report.indexed_nodes == 1  # list unindexable, None absent

    def test_nvals_consistent_after_mixed_writes(self, g):
        g.bulk_load_nodes(6, label="V")
        g.create_edge(0, "R", 1)  # pending delta...
        g.bulk_load_edges(np.array([1, 2]), np.array([2, 3]), "R")  # ...then splice
        dm = g._rel_matrices[g.schema.reltype_id("R")]
        assert dm.nvals() == 3
        assert g.relation_matrix("R").nvals == 3
        assert g.relation_matrix()[0, 1] is not None


class TestUnionSplice:
    def test_merges_with_pending_ops(self):
        dm = DeltaMatrix(8)
        dm.add(0, 1)
        dm.add(2, 2)
        dm.delete(2, 2)
        added = dm.union_splice(np.array([0, 3]), np.array([1, 4]))
        assert added == 1  # (0,1) already present via pending, (3,4) new
        assert dm.nvals() == 2
        assert dm.has(0, 1) and dm.has(3, 4) and not dm.has(2, 2)
        assert dm.pending == 0  # compacted

    def test_duplicates_collapse(self):
        dm = DeltaMatrix(4)
        assert dm.union_splice(np.array([1, 1, 1]), np.array([2, 2, 3])) == 2
        assert dm.nvals() == 2

    def test_bounds_checked(self):
        dm = DeltaMatrix(4)
        with pytest.raises(IndexOutOfBounds):
            dm.union_splice(np.array([0]), np.array([9]))

    def test_outstanding_views_not_torn(self):
        dm = DeltaMatrix(8)
        dm.add(0, 1)
        view = dm.overlay()
        before = view.nvals
        dm.union_splice(np.array([5]), np.array([6]))
        assert view.nvals == before  # pre-splice snapshot unchanged
        assert dm.overlay().nvals == 2
