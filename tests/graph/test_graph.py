"""Property-graph behaviour: entities, labels, matrices, indices, bulk load."""

import numpy as np
import pytest

from repro.errors import ConstraintViolation, EntityNotFound
from repro.graph import Graph, GraphConfig


@pytest.fixture
def g():
    return Graph("test", GraphConfig(node_capacity=4))


class TestNodes:
    def test_create_and_read(self, g):
        n = g.create_node(["Person"], {"name": "Ann", "age": 30})
        assert g.node_count == 1
        assert n.labels == ("Person",)
        assert n.properties == {"name": "Ann", "age": 30}
        assert n["name"] == "Ann"
        assert n.get("missing", 7) == 7

    def test_multiple_labels(self, g):
        n = g.create_node(["Person", "Admin"])
        assert set(n.labels) == {"Person", "Admin"}
        assert g.has_label(n.id, "Admin")
        assert not g.has_label(n.id, "Ghost")

    def test_capacity_growth(self):
        g = Graph("grow", GraphConfig(node_capacity=2))
        ids = [g.create_node().id for _ in range(10)]
        assert g.capacity >= 10
        m = g.relation_matrix()
        assert m.nrows == g.capacity
        assert g.has_node(ids[-1])

    def test_delete_node(self, g):
        n = g.create_node(["Person"])
        g.delete_node(n.id)
        assert g.node_count == 0
        assert not g.has_node(n.id)
        with pytest.raises(EntityNotFound):
            g.get_node(n.id)

    def test_delete_connected_requires_detach(self, g):
        a = g.create_node()
        b = g.create_node()
        g.create_edge(a.id, "KNOWS", b.id)
        with pytest.raises(ConstraintViolation):
            g.delete_node(a.id)
        deleted = g.delete_node(a.id, detach=True)
        assert deleted == 1
        assert g.edge_count == 0

    def test_node_id_reuse_after_delete(self, g):
        a = g.create_node(["L"])
        g.delete_node(a.id)
        b = g.create_node()
        assert b.id == a.id
        assert g.labels_of(b.id) == ()

    def test_label_scan(self, g):
        a = g.create_node(["Person"])
        g.create_node(["Robot"])
        c = g.create_node(["Person"])
        assert np.array_equal(g.nodes_with_label("Person"), [a.id, c.id])
        assert len(g.nodes_with_label("Ghost")) == 0

    def test_add_label_later(self, g):
        n = g.create_node()
        g.add_label(n.id, "Person")
        assert g.has_label(n.id, "Person")
        assert n.id in g.nodes_with_label("Person")

    def test_set_property(self, g):
        n = g.create_node(["P"], {"x": 1})
        g.set_node_property(n.id, "x", 2)
        assert g.node_property(n.id, "x") == 2
        g.set_node_property(n.id, "x", None)
        assert g.node_property(n.id, "x") is None

    def test_unknown_property_returns_none(self, g):
        n = g.create_node()
        assert g.node_property(n.id, "never_interned") is None


class TestEdges:
    def test_create_and_read(self, g):
        a = g.create_node()
        b = g.create_node()
        e = g.create_edge(a.id, "KNOWS", b.id, {"since": 2020})
        assert g.edge_count == 1
        assert e.src == a.id and e.dst == b.id
        assert e.type == "KNOWS"
        assert e["since"] == 2020

    def test_edge_to_missing_node(self, g):
        a = g.create_node()
        with pytest.raises(EntityNotFound):
            g.create_edge(a.id, "KNOWS", 99)
        with pytest.raises(EntityNotFound):
            g.create_edge(99, "KNOWS", a.id)

    def test_matrix_entry_set(self, g):
        a = g.create_node()
        b = g.create_node()
        g.create_edge(a.id, "KNOWS", b.id)
        R = g.relation_matrix("KNOWS")
        assert R[a.id, b.id] is not None
        ADJ = g.relation_matrix()
        assert ADJ[a.id, b.id] is not None

    def test_transposed_matrix(self, g):
        a = g.create_node()
        b = g.create_node()
        g.create_edge(a.id, "KNOWS", b.id)
        RT = g.relation_matrix("KNOWS", transposed=True)
        assert RT[b.id, a.id] is not None

    def test_unknown_reltype_empty_matrix(self, g):
        g.create_node()
        assert g.relation_matrix("NOPE").nvals == 0

    def test_multi_edge_same_pair(self, g):
        a = g.create_node()
        b = g.create_node()
        e1 = g.create_edge(a.id, "KNOWS", b.id)
        e2 = g.create_edge(a.id, "KNOWS", b.id)
        assert g.edge_count == 2
        assert set(g.edges_between(a.id, b.id, "KNOWS")) == {e1.id, e2.id}
        # one matrix entry shared by both edges
        assert g.relation_matrix("KNOWS").nvals == 1
        g.delete_edge(e1.id)
        assert g.relation_matrix("KNOWS")[a.id, b.id] is not None
        g.delete_edge(e2.id)
        assert g.relation_matrix("KNOWS").nvals == 0

    def test_adjacency_multi_reltype(self, g):
        a = g.create_node()
        b = g.create_node()
        e1 = g.create_edge(a.id, "A", b.id)
        g.create_edge(a.id, "B", b.id)
        g.delete_edge(e1.id)
        # ADJ must survive while the B edge remains
        assert g.relation_matrix()[a.id, b.id] is not None

    def test_delete_edge(self, g):
        a = g.create_node()
        b = g.create_node()
        e = g.create_edge(a.id, "KNOWS", b.id)
        g.delete_edge(e.id)
        assert g.edge_count == 0
        assert g.relation_matrix("KNOWS").nvals == 0
        assert g.out_edges(a.id) == [] and g.in_edges(b.id) == []

    def test_out_in_edges(self, g):
        a, b, c = (g.create_node() for _ in range(3))
        e1 = g.create_edge(a.id, "R", b.id)
        e2 = g.create_edge(a.id, "R", c.id)
        e3 = g.create_edge(c.id, "R", a.id)
        assert g.out_edges(a.id) == sorted([e1.id, e2.id])
        assert g.in_edges(a.id) == [e3.id]

    def test_edge_set_property(self, g):
        a = g.create_node()
        b = g.create_node()
        e = g.create_edge(a.id, "R", b.id)
        g.set_edge_property(e.id, "w", 3)
        assert g.edge_property(e.id, "w") == 3


class TestIndices:
    def test_index_populated_from_existing(self, g):
        n = g.create_node(["Person"], {"name": "Ann"})
        idx = g.create_index("Person", "name")
        assert idx.lookup("Ann") == {n.id}

    def test_index_tracks_creates(self, g):
        g.create_index("Person", "name")
        n = g.create_node(["Person"], {"name": "Bo"})
        assert g.get_index("Person", "name").lookup("Bo") == {n.id}

    def test_index_tracks_updates(self, g):
        g.create_index("Person", "name")
        n = g.create_node(["Person"], {"name": "Bo"})
        g.set_node_property(n.id, "name", "Cy")
        idx = g.get_index("Person", "name")
        assert idx.lookup("Bo") == set() and idx.lookup("Cy") == {n.id}

    def test_index_tracks_deletes(self, g):
        g.create_index("Person", "name")
        n = g.create_node(["Person"], {"name": "Bo"})
        g.delete_node(n.id)
        assert g.get_index("Person", "name").lookup("Bo") == set()

    def test_duplicate_index_rejected(self, g):
        g.create_index("P", "a")
        with pytest.raises(ConstraintViolation):
            g.create_index("P", "a")

    def test_drop_index(self, g):
        g.create_index("P", "a")
        assert g.drop_index("P", "a")
        assert not g.drop_index("P", "a")
        assert g.get_index("P", "a") is None

    def test_label_restriction(self, g):
        g.create_index("Person", "name")
        g.create_node(["Robot"], {"name": "R2"})
        assert g.get_index("Person", "name").lookup("R2") == set()

    def test_unindexable_values_skipped(self, g):
        idx = g.create_index("P", "tags")
        g.create_node(["P"], {"tags": [1, 2, 3]})
        assert len(idx) == 0


class TestBulkLoad:
    def test_bulk_nodes(self, g):
        g.bulk_load_nodes(100, label="V")
        assert g.node_count == 100
        assert len(g.nodes_with_label("V")) == 100

    def test_bulk_edges(self, g):
        g.bulk_load_nodes(10, label="V")
        src = np.array([0, 1, 2, 0])
        dst = np.array([1, 2, 3, 1])  # duplicate (0,1)
        added = g.bulk_load_edges(src, dst, "E")
        assert added == 3
        R = g.relation_matrix("E")
        assert R[0, 1] is not None and R[2, 3] is not None
        assert g.relation_matrix()[0, 1] is not None

    def test_bulk_edges_bad_endpoint(self, g):
        g.bulk_load_nodes(2)
        with pytest.raises(EntityNotFound):
            g.bulk_load_edges(np.array([0]), np.array([5]), "E")

    def test_bulk_then_incremental(self, g):
        g.bulk_load_nodes(5, label="V")
        g.bulk_load_edges(np.array([0]), np.array([1]), "E")
        n = g.create_node(["V"])
        g.create_edge(n.id, "E", 0)
        R = g.relation_matrix("E")
        assert R[n.id, 0] is not None and R[0, 1] is not None


class TestRepr:
    def test_repr(self, g):
        g.create_node(["L"])
        text = repr(g)
        assert "nodes=1" in text and "test" in text
