"""Differential net over the write path: for seeded random workloads, a
bulk-ingested graph and an equivalent per-row CREATE-query graph must be
indistinguishable to every read surface we have — counts, property
reads, label scans, index lookups, and 1-hop/2-hop traversals.

The workload generator emits node *cohorts* (one label set + property
columns per cohort, nodes numbered in staging order) so the bulk graph
and the per-row graph allocate identical node ids; edges then reference
those ids directly in both worlds.
"""

import random

import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig

SEEDS = [7, 23, 51, 88, 104]

LABEL_POOL = [("A",), ("B",), ("A", "B"), ("C",), ()]
RELTYPES = ["R", "S"]


def make_workload(seed):
    rng = random.Random(seed)
    cohorts = []
    total = 0
    for labels in rng.sample(LABEL_POOL, k=rng.randint(3, len(LABEL_POOL))):
        count = rng.randint(4, 12)
        props = {}
        if rng.random() < 0.9:
            props["name"] = [f"n{seed}_{total + i}" for i in range(count)]
        if rng.random() < 0.8:
            props["v"] = [rng.randint(0, 5) if rng.random() < 0.8 else None for _ in range(count)]
        if rng.random() < 0.5:
            props["w"] = [round(rng.uniform(0, 1), 3) for _ in range(count)]
        cohorts.append({"labels": labels, "count": count, "props": props})
        total += count
    edges = []
    for reltype in RELTYPES:
        m = rng.randint(total, 2 * total)
        src = [rng.randrange(total) for _ in range(m)]
        dst = [rng.randrange(total) for _ in range(m)]
        props = {"k": [rng.randint(0, 9) for _ in range(m)]} if rng.random() < 0.7 else {}
        edges.append({"type": reltype, "src": src, "dst": dst, "props": props})
    return cohorts, edges, total


def build_bulk(cohorts, edges):
    db = GraphDB("bulk", GraphConfig(node_capacity=64))
    db.bulk_insert(
        nodes=[
            {"labels": c["labels"], "count": c["count"], "properties": c["props"]}
            for c in cohorts
        ],
        edges=[
            {"type": e["type"], "src": e["src"], "dst": e["dst"],
             "properties": e["props"], "endpoints": "batch"}
            for e in edges
        ],
    )
    return db


def _prop_literal(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return "'" + value + "'"  # generator emits quote-free strings
    return repr(value)


def build_per_row(cohorts, edges):
    """The same content through one CREATE query per node / per edge."""
    db = GraphDB("perrow", GraphConfig(node_capacity=64))
    for c in cohorts:
        label_frag = "".join(f":{l}" for l in c["labels"])
        for i in range(c["count"]):
            props = {
                name: column[i]
                for name, column in c["props"].items()
                if column[i] is not None
            }
            prop_frag = ""
            if props:
                prop_frag = " {" + ", ".join(f"{k}: {_prop_literal(v)}" for k, v in props.items()) + "}"
            db.query(f"CREATE ({label_frag}{prop_frag})")
    for e in edges:
        for i, (s, d) in enumerate(zip(e["src"], e["dst"])):
            prop_frag = ""
            if e["props"]:
                prop_frag = " {" + ", ".join(f"{k}: {_prop_literal(col[i])}" for k, col in e["props"].items()) + "}"
            db.query(
                f"MATCH (a), (b) WHERE id(a) = $s AND id(b) = $d "
                f"CREATE (a)-[:{e['type']}{prop_frag}]->(b)",
                {"s": s, "d": d},
            )
    return db


@pytest.fixture(params=SEEDS, scope="module")
def pair(request):
    cohorts, edges, total = make_workload(request.param)
    return build_bulk(cohorts, edges), build_per_row(cohorts, edges), cohorts, edges, total


def both(pair, query, params=None):
    bulk, perrow = pair[0], pair[1]
    a = bulk.query(query, params)
    b = perrow.query(query, params)
    return sorted(a.rows), sorted(b.rows)


class TestDifferential:
    def test_node_and_edge_counts(self, pair):
        bulk, perrow = pair[0], pair[1]
        assert bulk.graph.node_count == perrow.graph.node_count
        assert bulk.graph.edge_count == perrow.graph.edge_count
        for q in ("MATCH (n) RETURN count(n)",
                  "MATCH ()-[e]->() RETURN count(e)",
                  "MATCH ()-[e:R]->() RETURN count(e)",
                  "MATCH ()-[e:S]->() RETURN count(e)"):
            a, b = both(pair, q)
            assert a == b, q

    def test_label_scans(self, pair):
        for label in ("A", "B", "C"):
            a, b = both(pair, f"MATCH (n:{label}) RETURN id(n)")
            assert a == b, label

    def test_property_reads(self, pair):
        for q in ("MATCH (n) RETURN id(n), n.name, n.v, n.w",
                  "MATCH ()-[e:R]->() RETURN e.k",
                  "MATCH (n:A) WHERE n.v > 2 RETURN n.name, n.v"):
            a, b = both(pair, q)
            assert a == b, q

    def test_index_lookup(self, pair):
        bulk, perrow, cohorts = pair[0], pair[1], pair[2]
        bulk.query("CREATE INDEX ON :A(v)")
        perrow.query("CREATE INDEX ON :A(v)")
        for v in range(6):
            a, b = both(pair, "MATCH (n:A {v: $v}) RETURN id(n), n.name", {"v": v})
            assert a == b, v
        # the probe must actually ride the index on the bulk graph
        assert "NodeByIndexScan" in bulk.explain("MATCH (n:A {v: 3}) RETURN n")

    def test_one_hop(self, pair):
        total = pair[4]
        for src in range(0, total, 3):
            a, b = both(pair, "MATCH (a)-[:R]->(b) WHERE id(a) = $s RETURN id(b)", {"s": src})
            assert a == b, src

    def test_two_hop(self, pair):
        total = pair[4]
        for src in range(0, total, 5):
            a, b = both(
                pair,
                "MATCH (a)-[:R]->()-[:S]->(c) WHERE id(a) = $s RETURN id(c)",
                {"s": src},
            )
            assert a == b, src

    def test_aggregation_over_groups(self, pair):
        a, b = both(pair, "MATCH (n) WHERE n.v IS NOT NULL WITH n.v AS v, count(n) AS c RETURN v, c")
        assert a == b

    def test_traversal_after_incremental_write(self, pair):
        """Post-bulk per-entity writes behave identically in both worlds."""
        bulk, perrow = pair[0], pair[1]
        for db in (bulk, perrow):
            db.query("CREATE (:Z {name: 'tail'})")
            db.query("MATCH (z:Z), (n) WHERE id(n) = 0 CREATE (z)-[:R]->(n)")
        a, b = both(pair, "MATCH (z:Z)-[:R]->(n) RETURN id(n)")
        assert a == b
