"""Unit tests for the columnar secondary-index layer: type-family keying
(the True/1/1.0 regression), None/NaN exclusion, big-int exactness, delta
overlay vs merged base equivalence, string-prefix edges, composite
longest-prefix semantics, and the vector index against a brute-force
numpy oracle."""

import random

import numpy as np
import pytest

from repro import GraphDB
from repro.graph.config import GraphConfig
from repro.graph.index import (
    CompositeIndex,
    RangeIndex,
    VectorIndex,
    _family_of,
    _prefix_upper,
)


def ids(arr):
    return sorted(int(i) for i in arr)


class TestTypeFamilies:
    def test_true_one_onefloat_do_not_alias(self):
        """Python dict/set semantics alias True == 1 == 1.0; the index
        must not (Cypher booleans and numbers are different families)."""
        idx = RangeIndex()
        idx.insert(True, 1)
        idx.insert(1, 2)
        idx.insert(1.0, 3)
        idx.insert(False, 4)
        idx.insert(0, 5)
        assert ids(idx.seek_eq(True)) == [1]
        assert ids(idx.seek_eq(False)) == [4]
        # numeric equality is cross-type within the family: 1 == 1.0
        assert ids(idx.seek_eq(1)) == [2, 3]
        assert ids(idx.seek_eq(1.0)) == [2, 3]
        assert ids(idx.seek_eq(0)) == [5]
        assert idx.lookup(True) == {1}

    def test_string_one_is_its_own_family(self):
        idx = RangeIndex()
        idx.insert(1, 1)
        idx.insert("1", 2)
        assert ids(idx.seek_eq(1)) == [1]
        assert ids(idx.seek_eq("1")) == [2]

    def test_true_one_regression_end_to_end(self):
        """The historical ExactMatchIndex collision, driven via Cypher."""
        db = GraphDB("g")
        db.query("CREATE (:P {v: true}), (:P {v: 1}), (:P {v: 1.0}), (:P {v: '1'})")
        db.query("CREATE INDEX ON :P(v)")
        assert "IndexRangeScan" in db.explain("MATCH (n:P) WHERE n.v = true RETURN n")
        assert db.query("MATCH (n:P) WHERE n.v = true RETURN count(n)").scalar() == 1
        assert db.query("MATCH (n:P) WHERE n.v = 1 RETURN count(n)").scalar() == 2
        assert db.query("MATCH (n:P) WHERE n.v = '1' RETURN count(n)").scalar() == 1

    def test_family_of_rejects_unindexables(self):
        assert _family_of(None) is None
        assert _family_of(float("nan")) is None
        assert _family_of([1, 2]) is None
        assert _family_of({"a": 1}) is None


class TestNullExclusion:
    def test_none_and_nan_never_indexed(self):
        idx = RangeIndex()
        assert not idx.insert(None, 1)
        assert not idx.insert(float("nan"), 2)
        assert len(idx) == 0
        assert idx.lookup(None) == set()

    def test_null_probe_equals_scan_result(self):
        """`n.v = null` is Cypher-null, never true: an index seek and a
        label scan must both return zero rows."""
        db = GraphDB("g")
        db.query("CREATE (:P {v: 1}), (:P)")
        unindexed = db.query("MATCH (n:P) WHERE n.v = null RETURN count(n)").scalar()
        db.query("CREATE INDEX ON :P(v)")
        assert db.query("MATCH (n:P) WHERE n.v = null RETURN count(n)").scalar() == unindexed == 0

    def test_set_to_null_unindexes(self):
        db = GraphDB("g")
        db.query("CREATE (:P {v: 7})")
        db.query("CREATE INDEX ON :P(v)")
        db.query("MATCH (n:P) SET n.v = null")
        assert len(db.graph.get_index("P", "v")) == 0
        assert db.query("MATCH (n:P) WHERE n.v = 7 RETURN count(n)").scalar() == 0


class TestBigInts:
    def test_ints_beyond_float53_stay_exact(self):
        """2**53 and 2**53 + 1 share a float64 key; equality seeks must
        still tell them apart via the raw-value verification pass."""
        base = 2 ** 53
        idx = RangeIndex()
        for off in range(4):
            idx.insert(base + off, off)
        idx.merge()
        assert ids(idx.seek_eq(base)) == [0]
        assert ids(idx.seek_eq(base + 1)) == [1]
        assert ids(idx.seek_eq(base + 3)) == [3]
        assert ids(idx.seek_cmp(">", base + 1)) == [2, 3]
        assert ids(idx.seek_cmp("<=", base + 2)) == [0, 1, 2]

    def test_huge_ints_clamp_but_compare_raw(self):
        idx = RangeIndex()
        idx.insert(10 ** 400, 1)  # overflows float()
        idx.insert(-(10 ** 400), 2)
        idx.insert(5, 3)
        idx.merge()
        assert ids(idx.seek_eq(10 ** 400)) == [1]
        assert ids(idx.seek_cmp(">", 10 ** 399)) == [1]
        assert ids(idx.seek_cmp("<", 0)) == [2]


class TestDeltaOverlay:
    @pytest.mark.parametrize("threshold", [1, 3, 10_000])
    def test_same_answers_at_any_merge_threshold(self, threshold):
        """The pending overlay and the merged base must be observationally
        identical; threshold=1 forces merge-per-write, 10k keeps all
        writes pending."""
        rng = random.Random(42)
        values = [rng.randint(0, 20) for _ in range(60)]
        idx = RangeIndex(merge_threshold=threshold)
        for nid, v in enumerate(values):
            idx.insert(v, nid)
        removed = set()
        for nid in rng.sample(range(60), 25):
            idx.remove(values[nid], nid)
            removed.add(nid)
        live = {nid: v for nid, v in enumerate(values) if nid not in removed}
        assert len(idx) == len(live)
        for probe in range(21):
            expect = sorted(n for n, v in live.items() if v == probe)
            assert ids(idx.seek_eq(probe)) == expect, probe
        expect_rng = sorted(n for n, v in live.items() if 5 <= v < 15)
        assert ids(idx.seek_range(5, False, 15, True)) == expect_rng
        expect_in = sorted(n for n, v in live.items() if v in (3, 7, 11))
        assert ids(idx.seek_in([3, 7, 11])) == expect_in

    def test_reinsert_after_base_delete(self):
        idx = RangeIndex(merge_threshold=1)
        idx.insert(5, 1)
        idx.remove(5, 1)
        idx.insert(5, 1)
        assert ids(idx.seek_eq(5)) == [1]


class TestStringPrefix:
    def test_prefix_upper_edges(self):
        assert _prefix_upper("ab") == "ac"
        assert _prefix_upper("a" + chr(0x10FFFF)) == "b"
        assert _prefix_upper(chr(0x10FFFF)) is None

    def test_prefix_seek(self):
        idx = RangeIndex(merge_threshold=1)
        for nid, s in enumerate(["app", "apple", "apply", "banana", "", "ap"]):
            idx.insert(s, nid)
        assert ids(idx.seek_prefix("app")) == [0, 1, 2]
        assert ids(idx.seek_prefix("")) == [0, 1, 2, 3, 4, 5]
        assert ids(idx.seek_prefix("z")) == []
        # non-string probes and non-string values never prefix-match
        idx.insert(7, 9)
        assert ids(idx.seek_prefix("7")) == []
        assert ids(idx.seek_prefix(7)) == []

    def test_prefix_at_max_codepoint(self):
        top = chr(0x10FFFF)
        idx = RangeIndex(merge_threshold=1)
        idx.insert(top + "x", 1)
        idx.insert("a", 2)
        assert ids(idx.seek_prefix(top)) == [1]


class TestCompositeIndex:
    def test_longest_prefix_storage(self):
        """A node missing trailing attributes is indexed under its longest
        indexable prefix, so width-1 seeks still find it."""
        idx = CompositeIndex(0, (10, 11), merge_threshold=1)
        idx.index_node(1, {10: "a", 11: 1})
        idx.index_node(2, {10: "a"})  # no attr 11
        idx.index_node(3, {10: "a", 11: [1]})  # attr 11 unindexable
        idx.index_node(4, {11: 1})  # first attr missing -> not indexed
        assert ids(idx.seek_prefix_eq(["a"])) == [1, 2, 3]
        assert ids(idx.seek_prefix_eq(["a", 1])) == [1]
        assert ids(idx.seek_prefix_eq(["b"])) == []

    def test_families_do_not_alias_in_tuples(self):
        idx = CompositeIndex(0, (10, 11), merge_threshold=1)
        idx.index_node(1, {10: True, 11: "x"})
        idx.index_node(2, {10: 1, 11: "x"})
        assert ids(idx.seek_prefix_eq([True])) == [1]
        assert ids(idx.seek_prefix_eq([1])) == [2]
        assert ids(idx.seek_prefix_eq([1, "x"])) == [2]

    @pytest.mark.parametrize("threshold", [1, 10_000])
    def test_delete_and_update_consistency(self, threshold):
        idx = CompositeIndex(0, (10, 11), merge_threshold=threshold)
        for nid in range(10):
            idx.index_node(nid, {10: nid % 3, 11: nid})
        idx.unindex_node(4, {10: 1, 11: 4})
        idx.index_node(4, {10: 2, 11: 4})
        assert ids(idx.seek_prefix_eq([1])) == [1, 7]
        assert ids(idx.seek_prefix_eq([2])) == [2, 4, 5, 8]
        assert ids(idx.seek_prefix_eq([2, 4])) == [4]

    def test_unindexable_probe_selects_nothing(self):
        idx = CompositeIndex(0, (10,), merge_threshold=1)
        idx.index_node(1, {10: 1})
        assert ids(idx.seek_prefix_eq([None])) == []
        assert ids(idx.seek_prefix_eq([[1]])) == []


class TestVectorIndex:
    def oracle(self, rows, q, k):
        """Brute-force cosine top-k with id tie-break."""
        def norm(v):
            v = np.asarray(v, dtype=np.float64)
            n = float(np.linalg.norm(v))
            return v / n if n > 0 else v

        qn = norm(q)
        scored = sorted(
            ((float(norm(vec) @ qn), nid) for nid, vec in rows),
            key=lambda t: (-t[0], t[1]),
        )
        return [(nid, s) for s, nid in scored[:k]]

    @pytest.mark.parametrize("threshold", [1, 10_000])
    def test_matches_numpy_oracle(self, threshold):
        rng = np.random.default_rng(7)
        dim = 8
        rows = [(nid, rng.normal(size=dim).tolist()) for nid in range(50)]
        idx = VectorIndex(0, 10, dim=dim, merge_threshold=threshold)
        for nid, vec in rows:
            assert idx.index_node(nid, {10: vec})
        # delete a few, from both base and pending
        for nid in (3, 17, 49):
            idx.unindex_node(nid, {10: rows[nid][1]})
        live = [(n, v) for n, v in rows if n not in (3, 17, 49)]
        q = rng.normal(size=dim).tolist()
        got_ids, got_scores = idx.query(q, 10)
        expect = self.oracle(live, q, 10)
        assert [int(i) for i in got_ids] == [nid for nid, _ in expect]
        assert np.allclose(got_scores, [s for _, s in expect])

    def test_rejects_malformed_rows_silently(self):
        idx = VectorIndex(0, 10, dim=3)
        assert not idx.index_node(1, {10: [1.0, 2.0]})  # wrong dim
        assert not idx.index_node(2, {10: [1.0, "x", 3.0]})  # non-numeric
        assert not idx.index_node(3, {10: [1.0, float("nan"), 3.0]})
        assert not idx.index_node(4, {10: "abc"})
        assert not idx.index_node(5, {10: None})
        assert len(idx) == 0

    def test_query_validation(self):
        idx = VectorIndex(0, 10, dim=2)
        idx.index_node(1, {10: [1.0, 0.0]})
        with pytest.raises(ValueError):
            idx.query([1.0], 1)
        with pytest.raises(ValueError):
            idx.query([1.0, float("inf")], 1)
        with pytest.raises(ValueError):
            idx.query("no", 1)

    def test_dimension_inferred_from_first_row(self):
        idx = VectorIndex(0, 10)
        assert idx.index_node(1, {10: [1.0, 2.0, 3.0]})
        assert idx.dim == 3
        assert not idx.index_node(2, {10: [1.0, 2.0]})


class TestGraphLevelCatalog:
    def test_catalog_lists_all_kinds(self):
        db = GraphDB("g")
        db.query("CREATE (:P {a: 1, b: 'x', emb: [1.0, 0.0]})")
        db.query("CREATE INDEX ON :P(a)")
        db.query("CREATE INDEX ON :P(a, b)")
        db.query("CREATE VECTOR INDEX ON :P(emb) OPTIONS {dimension: 2}")
        kinds = sorted(
            (e["label"], tuple(e["properties"]), e["kind"]) for e in db.graph.index_catalog()
        )
        assert kinds == [
            ("P", ("a",), "range"),
            ("P", ("a", "b"), "composite"),
            ("P", ("emb",), "vector"),
        ]

    def test_merge_threshold_config_flows_through(self):
        db = GraphDB("g", GraphConfig(index_merge_threshold=1))
        db.query("CREATE INDEX ON :P(v)")
        db.query("CREATE (:P {v: 5})")
        idx = db.graph.get_index("P", "v")
        # threshold 1 merges on every write: nothing stays pending
        assert all(s.pending() == 0 for s in idx._fams.values())
        assert ids(idx.seek_eq(5)) == [0]
