"""Write-side statistics maintenance (the cost-based planner's input).

The core invariant: after ANY sequence of mutations — per-entity
creates/deletes, label add/remove, multi-edges, bulk ingestion — the
incrementally maintained counters must equal what a from-scratch
``rebuild()`` derives from the matrices and records (the oracle).  A
second family asserts the counters survive persistence: snapshot
save/load and kill-and-restart WAL recovery must restore identical
statistics.
"""

import io
import random

import numpy as np
import pytest

from repro import GraphDB
from repro.graph import BulkWriter, Graph, GraphConfig
from repro.graph.statistics import (
    HIST_BUCKETS,
    StatisticsStore,
    _bucket,
    _degrees_from_vector,
)


def oracle(graph) -> dict:
    """What a from-scratch rebuild computes for the same graph."""
    fresh = StatisticsStore(graph)
    fresh.rebuild()
    return fresh.measure()


def assert_consistent(graph) -> None:
    assert graph.stats.measure() == oracle(graph)


class TestPrimitives:
    def test_bucket_is_log2(self):
        assert _bucket(1) == 0
        assert _bucket(2) == 1
        assert _bucket(3) == 1
        assert _bucket(4) == 2
        assert _bucket(2**70) == HIST_BUCKETS - 1  # clamped, not overflowed

    def test_degrees_from_vector_matches_scalar_buckets(self):
        vec = np.array([0, 1, 5, 0, 1024, 3], dtype=np.int64)
        deg, hist = _degrees_from_vector(vec)
        assert deg == {1: 1, 2: 5, 4: 1024, 5: 3}
        expected = [0] * HIST_BUCKETS
        for d in deg.values():
            expected[_bucket(d)] += 1
        assert hist == expected

    def test_empty_vector(self):
        deg, hist = _degrees_from_vector(np.zeros(4, dtype=np.int64))
        assert deg == {}
        assert hist == [0] * HIST_BUCKETS


class TestIncrementalMaintenance:
    def test_node_create_delete(self):
        g = Graph("s", GraphConfig(node_capacity=16))
        a = g.create_node(["A"])
        g.create_node(["A", "B"])
        c = g.create_node()
        assert_consistent(g)
        g.delete_node(a.id)
        g.delete_node(c.id)
        assert_consistent(g)
        assert g.stats.node_total == 1

    def test_label_add_remove(self):
        g = Graph("s", GraphConfig(node_capacity=16))
        n = g.create_node(["A"])
        g.add_label(n.id, "B")
        assert_consistent(g)
        g.remove_label(n.id, "A")
        assert_consistent(g)

    def test_edge_create_delete(self):
        g = Graph("s", GraphConfig(node_capacity=16))
        ids = [g.create_node(["V"]).id for _ in range(4)]
        e1 = g.create_edge(ids[0], "R", ids[1])
        g.create_edge(ids[1], "R", ids[2])
        g.create_edge(ids[0], "S", ids[2])
        assert_consistent(g)
        g.delete_edge(e1.id)
        assert_consistent(g)

    def test_multi_edge_entry_counting(self):
        """Parallel edges share one matrix entry: record count moves per
        edge, entry/degree stats only when the last sibling goes."""
        g = Graph("s", GraphConfig(node_capacity=16))
        a, b = g.create_node().id, g.create_node().id
        e1 = g.create_edge(a, "R", b)
        e2 = g.create_edge(a, "R", b)
        rel = g.stats._rels[g.schema.intern_reltype("R")]
        assert (rel.edges, rel.entries) == (2, 1)
        assert_consistent(g)
        g.delete_edge(e1.id)
        assert (rel.edges, rel.entries) == (1, 1)  # sibling keeps the entry
        assert_consistent(g)
        g.delete_edge(e2.id)
        assert (rel.edges, rel.entries) == (0, 0)
        assert_consistent(g)

    def test_randomized_workload_matches_oracle(self):
        rng = random.Random(11)
        g = Graph("s", GraphConfig(node_capacity=32))
        nodes, edges = [], []
        for step in range(300):
            op = rng.random()
            if op < 0.45 or len(nodes) < 2:
                nodes.append(g.create_node(rng.sample(["A", "B", "C"], rng.randint(0, 2))).id)
            elif op < 0.80:
                s, d = rng.choice(nodes), rng.choice(nodes)
                edges.append(g.create_edge(s, rng.choice(["R", "S"]), d).id)
            elif op < 0.90 and edges:
                g.delete_edge(edges.pop(rng.randrange(len(edges))))
            elif len(nodes) > 2:
                g.delete_node(nodes.pop(rng.randrange(len(nodes))), detach=True)
                edges = [e for e in edges if g.has_edge(e)]
        assert_consistent(g)

    def test_cypher_detach_delete(self):
        db = GraphDB("s")
        db.query("CREATE (a:P {i: 0})-[:R]->(b:P {i: 1})-[:R]->(c:P {i: 2}), (a)-[:S]->(c)")
        assert_consistent(db.graph)
        db.query("MATCH (n:P {i: 1}) DETACH DELETE n")
        assert_consistent(db.graph)


class TestBulkMaintenance:
    def test_bulk_writer_commit(self):
        g = Graph("s", GraphConfig(node_capacity=16))
        w = BulkWriter(g)
        ids = w.add_nodes(count=6, labels=["V"], properties={"v": [1, 2, 3, 4, 5, 6]})
        w.add_edges("E", ids[:3], ids[3:])
        w.commit(lock=False)
        assert_consistent(g)

    def test_recordless_bulk_edges(self):
        """Dataset-loading path: matrix entries without edge records still
        feed entry/degree statistics (edges stays at the record count)."""
        g = Graph("s", GraphConfig(node_capacity=64))
        g.bulk_load_nodes(10, label="V")
        g.bulk_load_edges(np.array([0, 1, 0]), np.array([1, 2, 1]), "E")
        rel = g.stats._rels[g.schema.intern_reltype("E")]
        assert rel.edges == 0  # no records materialized
        assert rel.entries == 2  # (0,1) deduplicated
        assert_consistent(g)

    def test_bulk_over_existing_graph(self):
        g = Graph("s", GraphConfig(node_capacity=16))
        a, b = g.create_node(["V"]).id, g.create_node(["V"]).id
        g.create_edge(a, "E", b)
        w = BulkWriter(g)
        ids = w.add_nodes(count=2, labels=["V"])
        w.add_edges("E", [0], [1])  # batch-relative: the two new nodes
        w.commit(lock=False)
        assert_consistent(g)


class TestSnapshot:
    def test_names_counts_and_indexes(self):
        db = GraphDB("s")
        db.query("UNWIND range(0, 2) AS i CREATE (:Person {name: 'p' + toString(i)})")
        db.query("CREATE (:City {name: 'x'})")
        db.query("MATCH (p:Person), (c:City) CREATE (p)-[:LIVES_IN]->(c)")
        db.query("CREATE INDEX ON :Person(name)")
        snap = db.graph.stats.snapshot()
        assert snap.label_counts == {"Person": 3, "City": 1}
        assert snap.node_count == 4
        rel = snap.rels["LIVES_IN"]
        assert (rel.edges, rel.entries, rel.out_nodes, rel.in_nodes) == (3, 3, 3, 1)
        assert snap.indexes[("Person", "name")] == (3, 3)  # size, NDV
        assert rel.max_degree(incoming=True) >= 3

    def test_snapshot_is_insulated_from_later_writes(self):
        db = GraphDB("s")
        db.query("CREATE (:A)")
        snap = db.graph.stats.snapshot()
        db.query("UNWIND range(0, 9) AS i CREATE (:A)")
        assert snap.label_counts == {"A": 1}
        assert db.graph.stats.snapshot().label_counts == {"A": 11}

    def test_epoch_stable_under_small_writes(self):
        """Plans compiled over a small graph are not thrashed: below the
        64-entity drift floor the epoch never moves."""
        db = GraphDB("s")
        before = db.graph.stats.epoch
        db.query("UNWIND range(0, 19) AS i CREATE (:A)-[:R]->(:B)")
        assert db.graph.stats.epoch == before

    def test_epoch_bumps_on_large_growth(self):
        db = GraphDB("s")
        before = db.graph.stats.epoch
        db.query("UNWIND range(0, 499) AS i CREATE (:A)")
        assert db.graph.stats.epoch > before


class TestPersistence:
    def _roundtrip(self, db: GraphDB) -> GraphDB:
        buf = io.BytesIO()
        db.save(buf)
        buf.seek(0)
        return GraphDB.load(buf)

    def test_snapshot_restore_rebuilds_stats(self):
        db = GraphDB("s")
        db.query("UNWIND range(0, 9) AS i CREATE (:P {i: i})")
        db.query("MATCH (a:P), (b:P) WHERE b.i = a.i + 1 CREATE (a)-[:N]->(b)")
        db.query("MATCH (n:P {i: 3}) DETACH DELETE n")
        db2 = self._roundtrip(db)
        assert db2.graph.stats.measure() == db.graph.stats.measure()
        assert_consistent(db2.graph)

    def test_bulk_loaded_matrix_stats_survive(self):
        db = GraphDB("s", GraphConfig(node_capacity=64))
        db.graph.bulk_load_nodes(10, label="V")
        db.graph.bulk_load_edges(np.array([0, 1, 2]), np.array([1, 2, 3]), "E")
        db2 = self._roundtrip(db)
        assert db2.graph.stats.measure() == db.graph.stats.measure()

    def test_restored_stats_keep_maintaining(self):
        db = self._roundtrip(GraphDB("s"))
        db.query("CREATE (:A)-[:R]->(:B)")
        assert_consistent(db.graph)


class TestWalRecovery:
    """Kill-and-restart: replayed writes must maintain the same counters
    the live graph had (snapshot rebuild + incremental tail replay)."""

    @pytest.mark.parametrize("save_midway", [False, True], ids=["log-only", "snapshot+tail"])
    def test_stats_identical_after_recovery(self, tmp_path, save_midway):
        import time

        from repro.rediskv.client import RedisClient
        from repro.rediskv.server import RedisLikeServer

        def start():
            srv = RedisLikeServer(
                port=0,
                config=GraphConfig(thread_count=2, node_capacity=64, wal_fsync="no"),
                data_dir=str(tmp_path),
            ).start()
            time.sleep(0.02)
            return srv

        srv = start()
        rng = random.Random(3)
        with RedisClient(port=srv.port) as c:
            for i in range(10):
                c.graph_query("g", f"CREATE (:{'A' if i % 2 else 'B'} {{i: {i}}})")
            for _ in range(15):
                c.graph_query(
                    "g",
                    "MATCH (a), (b) WHERE id(a) = $s AND id(b) = $d CREATE (a)-[:R]->(b)",
                    {"s": rng.randrange(10), "d": rng.randrange(10)},
                )
            if save_midway:
                assert c.graph_save("g") == "OK"
            token = c.graph_bulk_begin("g")
            c.graph_bulk_nodes("g", token, count=4, labels=["B"])
            c.graph_bulk_edges("g", token, "S", [0, 1], [2, 3])
            c.graph_bulk_commit("g", token)
            c.graph_query("g", "MATCH (x {i: 4}) DETACH DELETE x")
            expected = srv.keyspace.get_graph("g").graph.stats.measure()
        srv.stop()  # "crash": the tail is never snapshotted

        srv2 = start()
        recovered = srv2.keyspace.get_graph("g").graph
        assert recovered.stats.measure() == expected
        assert_consistent(recovered)
        srv2.stop()
