"""DeltaMatrix buffering semantics and flush correctness."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import DeltaMatrix


class TestBasics:
    def test_add_visible_before_flush(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        assert m.has(1, 2)
        assert m.dirty and m.pending == 1

    def test_flush_materializes(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.add(0, 3)
        mat = m.synced()
        assert not m.dirty
        assert mat[1, 2] is not None and mat[0, 3] is not None
        mat.check_invariants()

    def test_delete_pending_add(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.delete(1, 2)
        assert not m.has(1, 2)
        assert m.synced().nvals == 0

    def test_delete_flushed_entry(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.flush()
        m.delete(1, 2)
        assert not m.has(1, 2)
        assert m.synced().nvals == 0

    def test_re_add_after_delete(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.flush()
        m.delete(1, 2)
        m.add(1, 2)
        assert m.has(1, 2)
        assert m.synced().nvals == 1

    def test_auto_flush_at_threshold(self):
        m = DeltaMatrix(64, max_pending=5)
        for i in range(6):
            m.add(i, i)
        assert m.pending <= 5, "must have auto-flushed"

    def test_resize(self):
        m = DeltaMatrix(2)
        m.add(1, 1)
        m.resize(8)
        assert m.dim == 8 and m.has(1, 1)

    def test_nvals(self):
        m = DeltaMatrix(4)
        m.add(0, 1)
        m.add(0, 1)  # duplicate
        assert m.nvals() == 1


class TestTransposeCache:
    def test_transpose_correct(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        t = m.transposed()
        assert t[2, 1] is not None

    def test_transpose_memoized(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        t1 = m.transposed()
        t2 = m.transposed()
        assert t1 is t2

    def test_mutation_invalidates_transpose(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.transposed()
        m.add(0, 3)
        t = m.transposed()
        assert t[3, 0] is not None


class TestPropertyFuzz:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 7)),
            max_size=60,
        ),
        st.integers(1, 20),
    )
    def test_matches_reference_set(self, ops, max_pending):
        """Random add/delete interleavings agree with a Python set model,
        no matter where auto-flushes land."""
        m = DeltaMatrix(8, max_pending=max_pending)
        model = set()
        for is_add, i, j in ops:
            if is_add:
                m.add(i, j)
                model.add((i, j))
            else:
                m.delete(i, j)
                model.discard((i, j))
        for i, j in [(a, b) for a in range(8) for b in range(8)]:
            assert m.has(i, j) == ((i, j) in model)
        mat = m.synced()
        rows, cols, _ = mat.to_coo()
        assert set(zip(rows.tolist(), cols.tolist())) == model
        mat.check_invariants()
