"""DeltaMatrix buffering semantics and flush correctness."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import DeltaMatrix


class TestBasics:
    def test_add_visible_before_flush(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        assert m.has(1, 2)
        assert m.dirty and m.pending == 1

    def test_flush_materializes(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.add(0, 3)
        mat = m.synced()
        assert not m.dirty
        assert mat[1, 2] is not None and mat[0, 3] is not None
        mat.check_invariants()

    def test_delete_pending_add(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.delete(1, 2)
        assert not m.has(1, 2)
        assert m.synced().nvals == 0

    def test_delete_flushed_entry(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.flush()
        m.delete(1, 2)
        assert not m.has(1, 2)
        assert m.synced().nvals == 0

    def test_re_add_after_delete(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.flush()
        m.delete(1, 2)
        m.add(1, 2)
        assert m.has(1, 2)
        assert m.synced().nvals == 1

    def test_auto_flush_at_threshold(self):
        """The flush fires exactly *at* max_pending, as documented — not one
        change later."""
        m = DeltaMatrix(64, max_pending=5)
        for i in range(4):
            m.add(i, i)
        assert m.pending == 4, "below the threshold nothing flushes"
        m.add(4, 4)  # the 5th pending change hits max_pending
        assert m.pending == 0, "flush must fire at exactly max_pending"
        assert m.nvals() == 5

    def test_auto_flush_threshold_counts_deletes(self):
        m = DeltaMatrix(64, max_pending=3)
        m.add(0, 1)
        m.add(1, 2)
        assert m.pending == 2
        m.delete(5, 5)  # third pending change triggers the flush
        assert m.pending == 0
        assert m.nvals() == 2

    def test_resize(self):
        m = DeltaMatrix(2)
        m.add(1, 1)
        m.resize(8)
        assert m.dim == 8 and m.has(1, 1)

    def test_nvals(self):
        m = DeltaMatrix(4)
        m.add(0, 1)
        m.add(0, 1)  # duplicate
        assert m.nvals() == 1


class TestTransposeCache:
    def test_transpose_correct(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        t = m.transposed()
        assert t[2, 1] is not None

    def test_transpose_memoized(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        t1 = m.transposed()
        t2 = m.transposed()
        assert t1 is t2

    def test_mutation_invalidates_transpose(self):
        m = DeltaMatrix(4)
        m.add(1, 2)
        m.transposed()
        m.add(0, 3)
        t = m.transposed()
        assert t[3, 0] is not None

    def test_base_transpose_cached_across_writes(self):
        """Writes must not re-transpose the base CSR: only the (small)
        delta arrays are re-merged per write generation."""
        m = DeltaMatrix(64, max_pending=10)
        for i in range(30):  # several flushes: a real base CSR
            m.add(i, (i * 7) % 64)
        m.flush()
        m.transposed()
        base_t = m._base_T
        assert base_t is not None
        for i in range(5):  # pending writes, no flush
            m.add(40 + i, i)
            t = m.transposed()
            assert m._base_T is base_t  # base unchanged -> transpose reused
            assert t[i, 40 + i] is not None
        m.flush()  # base rebinds -> the cached transpose is recomputed
        m.transposed()
        assert m._base_T is not base_t

    def test_transposed_overlay_matches_materialized_transpose(self):
        rng = np.random.default_rng(7)
        m = DeltaMatrix(32, max_pending=20)
        for i, j in rng.integers(0, 32, size=(60, 2)):
            m.add(int(i), int(j))
        m.flush()
        for i, j in rng.integers(0, 32, size=(15, 2)):
            m.add(int(i), int(j))
        for i, j in rng.integers(0, 32, size=(10, 2)):
            m.delete(int(i), int(j))
        expected = m.overlay().materialize().transpose().to_dense()
        got = m.transposed().materialize().to_dense()
        assert np.array_equal(got, expected)
        assert m.transposed().nvals == m.nvals()

    def test_transposed_row_reads_without_materializing(self):
        m = DeltaMatrix(8)
        m.add(1, 5)
        m.add(2, 5)
        t = m.transposed()
        cols, _ = t.row(5)  # incoming edges of node 5
        assert cols.tolist() == [1, 2]


class TestFlushFreeReads:
    """Reads evaluate the (base ⊕ Δ+) ⊖ Δ− overlay and never flush."""

    def _dirty_matrix(self):
        m = DeltaMatrix(16, max_pending=10_000)
        m.add(0, 1)
        m.add(1, 2)
        m.flush()
        m.add(2, 3)      # pending add
        m.delete(0, 1)   # pending delete of a flushed entry
        return m

    def test_reads_leave_dirty_state_untouched(self):
        m = self._dirty_matrix()
        pending_before = m.pending
        view = m.overlay()
        assert m.nvals() == 2
        assert m.has(2, 3) and not m.has(0, 1)
        assert m.row_ids(1).tolist() == [2]
        assert view[2, 3] is not None and view[0, 1] is None
        assert view.row_degree().sum() == 2
        t = m.transposed()
        assert t[3, 2] is not None and t[1, 0] is None
        rows, cols, _ = view.to_coo()
        assert set(zip(rows.tolist(), cols.tolist())) == {(1, 2), (2, 3)}
        assert m.dirty, "reads must not flush"
        assert m.pending == pending_before

    def test_overlay_matches_flushed_result(self):
        m = self._dirty_matrix()
        overlay_coo = m.overlay().to_coo()[:2]
        m.flush()
        flushed = m.synced()
        flushed.check_invariants()
        rows, cols, _ = flushed.to_coo()
        assert (overlay_coo[0].tolist(), overlay_coo[1].tolist()) == (
            rows.tolist(),
            cols.tolist(),
        )

    def test_overlay_view_memoized_until_write(self):
        m = self._dirty_matrix()
        v1 = m.overlay()
        v2 = m.overlay()
        assert v1 is v2
        m.add(7, 7)
        assert m.overlay() is not v1

    def test_overlay_as_product_operand(self):
        """F·M over the overlay sees pending adds and hides pending dels."""
        from repro.grblas import Matrix, semiring

        m = self._dirty_matrix()
        F = Matrix.from_coo([0, 1], [0, 2], None, nrows=2, ncols=16)
        D = F.mxm(m.overlay(), semiring.any_pair)
        assert D[0, 1] is None, "pending delete must be invisible to mxm"
        assert D[1, 3] is not None, "pending add must be visible to mxm"
        assert m.dirty

    def test_overlay_vxm_frontier_expansion(self):
        from repro.grblas import Vector, semiring

        m = self._dirty_matrix()
        frontier = Vector.from_coo([1, 2], None, size=16)
        out = frontier.vxm(m.overlay(), semiring.any_pair)
        assert set(out.indices.tolist()) == {2, 3}
        assert m.dirty

    def test_add_then_delete_then_readd_no_flush(self):
        m = DeltaMatrix(8, max_pending=10_000)
        m.add(3, 4)
        m.delete(3, 4)
        assert not m.has(3, 4) and m.nvals() == 0
        m.add(3, 4)
        assert m.has(3, 4) and m.nvals() == 1
        assert m.dirty, "the whole sequence stayed in the delta buffers"

    def test_view_rejects_in_place_mutators(self):
        m = self._dirty_matrix()
        view = m.overlay()
        for mutator in ("set_element", "remove_element", "resize", "clear"):
            with pytest.raises(AttributeError, match="read-only"):
                getattr(view, mutator)

    def test_clean_view_snapshot_does_not_alias_base(self):
        m = DeltaMatrix(8)
        m.add(1, 2)
        m.flush()
        snapshot = m.overlay().materialize()
        assert snapshot is not m._base
        snapshot.set_element(3, 4, True)  # mutating the snapshot...
        assert not m.has(3, 4), "...must not leak into the delta matrix"
        m.flush()
        assert m.has(1, 2)

    def test_out_of_bounds_rejected(self):
        from repro.errors import IndexOutOfBounds

        m = DeltaMatrix(8)
        for i, j in [(8, 0), (0, 8), (-1, 0), (0, -1)]:
            with pytest.raises(IndexOutOfBounds):
                m.has(i, j)
            with pytest.raises(IndexOutOfBounds):
                m.add(i, j)
            with pytest.raises(IndexOutOfBounds):
                m.delete(i, j)

    def test_graph_read_query_does_not_flush(self):
        """End-to-end: a Cypher read on a dirty graph leaves deltas pending."""
        from repro.api import GraphDB

        db = GraphDB("flushfree")
        db.query("CREATE (:P {x: 1})-[:E]->(:P {x: 2})-[:E]->(:P {x: 3})")
        adj = db.graph._adj
        assert adj.dirty, "writes buffer into the delta layer"
        matrices = [adj] + db.graph._rel_matrices + db.graph._label_matrices
        before = [(dm.dirty, dm.pending, dm.generation) for dm in matrices]
        assert any(dirty for dirty, _, _ in before)
        result = db.query("MATCH (a:P)-[:E]->(b:P) RETURN a.x, b.x ORDER BY a.x")
        assert [list(row) for row in result] == [[1, 2], [2, 3]]
        after = [(dm.dirty, dm.pending, dm.generation) for dm in matrices]
        assert after == before, "a read query must not flush or mutate any delta matrix"


class TestPropertyFuzz:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 7)),
            max_size=60,
        ),
        st.integers(1, 20),
    )
    def test_matches_reference_set(self, ops, max_pending):
        """Random add/delete interleavings agree with a Python set model,
        no matter where auto-flushes land."""
        m = DeltaMatrix(8, max_pending=max_pending)
        model = set()
        for is_add, i, j in ops:
            if is_add:
                m.add(i, j)
                model.add((i, j))
            else:
                m.delete(i, j)
                model.discard((i, j))
        for i, j in [(a, b) for a in range(8) for b in range(8)]:
            assert m.has(i, j) == ((i, j) in model)
        mat = m.synced()
        rows, cols, _ = mat.to_coo()
        assert set(zip(rows.tolist(), cols.tolist())) == model
        mat.check_invariants()

    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "delete", "read"]), st.integers(0, 7), st.integers(0, 7)),
            max_size=80,
        ),
        st.integers(1, 200),
    )
    def test_overlay_matches_dense_reference(self, ops, max_pending):
        """Random add/delete/read interleavings: every overlay read primitive
        (has, nvals, row, row_degree, to_coo) agrees with a naive dense
        matrix, wherever flushes land — including add-then-delete and
        delete-then-re-add of one edge with no intervening flush."""
        m = DeltaMatrix(8, max_pending=max_pending)
        dense = np.zeros((8, 8), dtype=bool)
        for op, i, j in ops:
            if op == "add":
                m.add(i, j)
                dense[i, j] = True
            elif op == "delete":
                m.delete(i, j)
                dense[i, j] = False
            else:
                view = m.overlay()
                assert view[i, j] is (True if dense[i, j] else None)
                cols, _ = view.row(i)
                assert cols.tolist() == np.flatnonzero(dense[i]).tolist()
        view = m.overlay()
        assert view.nvals == int(dense.sum())
        assert m.nvals() == int(dense.sum())
        assert view.row_degree().tolist() == dense.sum(axis=1).tolist()
        rows, cols, _ = view.to_coo()
        ref_rows, ref_cols = np.nonzero(dense)
        assert rows.tolist() == ref_rows.tolist()
        assert cols.tolist() == ref_cols.tolist()
        snapshot = view.materialize()
        snapshot.check_invariants()
        assert np.array_equal(snapshot.to_dense(), dense)
