"""DataBlock slot storage, attribute registry, and schema tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EntityNotFound
from repro.graph import AttributeRegistry, DataBlock, Schema


class TestDataBlock:
    def test_alloc_get(self):
        db = DataBlock()
        i = db.alloc("a")
        j = db.alloc("b")
        assert db.get(i) == "a" and db.get(j) == "b"
        assert len(db) == 2

    def test_free_and_reuse(self):
        db = DataBlock()
        i = db.alloc("a")
        db.alloc("b")
        assert db.free(i) == "a"
        assert len(db) == 1
        k = db.alloc("c")
        assert k == i, "freed slot must be reused"
        assert db.get(k) == "c"

    def test_get_freed_raises(self):
        db = DataBlock()
        i = db.alloc("a")
        db.free(i)
        with pytest.raises(EntityNotFound):
            db.get(i)

    def test_get_never_allocated_raises(self):
        with pytest.raises(EntityNotFound):
            DataBlock().get(0)

    def test_exists(self):
        db = DataBlock()
        i = db.alloc("x")
        assert db.exists(i) and not db.exists(i + 1) and not db.exists(-1)

    def test_items_skips_tombstones(self):
        db = DataBlock()
        a = db.alloc("a")
        b = db.alloc("b")
        db.free(a)
        assert list(db.items()) == [(b, "b")]
        assert list(db.ids()) == [b]

    def test_capacity_counts_tombstones(self):
        db = DataBlock()
        a = db.alloc("a")
        db.alloc("b")
        db.free(a)
        assert db.capacity == 2 and len(db) == 1

    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=60))
    def test_alloc_free_invariants(self, actions):
        db = DataBlock()
        live = {}
        counter = 0
        for action in actions:
            if action == "alloc":
                val = f"v{counter}"
                counter += 1
                live[db.alloc(val)] = val
            elif live:
                some_id = next(iter(live))
                db.free(some_id)
                del live[some_id]
        assert len(db) == len(live)
        assert dict(db.items()) == live


class TestAttributeRegistry:
    def test_intern_stable(self):
        reg = AttributeRegistry()
        a = reg.intern("name")
        assert reg.intern("name") == a
        assert reg.intern("age") == a + 1

    def test_lookup_without_alloc(self):
        reg = AttributeRegistry()
        assert reg.lookup("missing") is None
        assert "missing" not in reg
        assert len(reg) == 0

    def test_name_of(self):
        reg = AttributeRegistry()
        i = reg.intern("x")
        assert reg.name_of(i) == "x"


class TestSchema:
    def test_labels(self):
        s = Schema()
        a = s.intern_label("Person")
        assert s.intern_label("Person") == a
        assert s.label_name(a) == "Person"
        assert s.label_id("Person") == a
        assert s.label_id("Nope") is None
        assert s.labels() == ["Person"]

    def test_reltypes_independent_namespace(self):
        s = Schema()
        s.intern_label("X")
        r = s.intern_reltype("X")
        assert r == 0, "labels and reltypes have separate id spaces"
        assert s.reltype_name(r) == "X"
        assert s.reltype_count == 1
