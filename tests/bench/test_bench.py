"""Benchmark harness tests: engine agreement, seed picking, reporting,
claim evaluation on synthetic measurements."""

import numpy as np
import pytest

from repro.bench.engines import (
    CSRBaselineEngine,
    MatrixEngine,
    PointerChasingEngine,
    RedisGraphEngine,
    make_engines,
)
from repro.bench.harness import BenchmarkSuite, DatasetSpec
from repro.bench.khop import KhopMeasurement, pick_seeds, run_khop
from repro.bench.paper import check_claims
from repro.bench.report import format_fig1_chart, format_table, to_csv
from repro.datasets import graph500_edges


@pytest.fixture(scope="module")
def small_graph():
    return graph500_edges(scale=8, edge_factor=8, seed=3)


class TestEngineAgreement:
    """All four engines must produce identical k-hop counts — the paper's
    benchmark is only meaningful if every system answers the same query."""

    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    def test_all_engines_agree(self, small_graph, k):
        src, dst, n = small_graph
        engines = make_engines()
        for e in engines:
            e.load(src, dst, n)
        seeds = pick_seeds(src, n, 5, seed=1)
        for s in seeds:
            counts = {e.name: e.khop(s, k) for e in engines}
            assert len(set(counts.values())) == 1, f"disagreement at seed {s}: {counts}"

    def test_engine_names_unique(self):
        names = [e.name for e in make_engines()]
        assert len(set(names)) == len(names)

    def test_make_engines_subset(self):
        engines = make_engines(["matrix", "csr-baseline"])
        assert [e.name for e in engines] == ["matrix", "csr-baseline"]


class TestSeedPicking:
    def test_seeds_have_outdegree(self, small_graph):
        src, dst, n = small_graph
        seeds = pick_seeds(src, n, 20, seed=5)
        out_deg = np.bincount(src, minlength=n)
        assert all(out_deg[s] > 0 for s in seeds)

    def test_deterministic(self, small_graph):
        src, dst, n = small_graph
        assert pick_seeds(src, n, 10, seed=3) == pick_seeds(src, n, 10, seed=3)

    def test_count_capped(self):
        src = np.array([0, 0, 1])
        seeds = pick_seeds(src, 10, 50, seed=1)
        assert len(seeds) == 2

    def test_empty_graph(self):
        assert pick_seeds(np.empty(0, dtype=np.int64), 5, 10) == []


class TestRunKhop:
    def test_measurement_fields(self, small_graph):
        src, dst, n = small_graph
        e = MatrixEngine()
        e.load(src, dst, n)
        seeds = pick_seeds(src, n, 4, seed=2)
        m = run_khop(e, "tiny", 2, seeds)
        assert m.engine == "matrix" and m.k == 2
        assert len(m.times_ms) == 4 and len(m.counts) == 4
        assert m.avg_ms > 0 and m.p95_ms >= m.p50_ms
        assert m.errors == 0

    def test_errors_counted(self):
        class Broken(MatrixEngine):
            def khop(self, seed, k):
                raise RuntimeError("boom")

        e = Broken()
        m = run_khop(e, "x", 1, [1, 2, 3], warmup=False)
        assert m.errors == 3 and m.times_ms == []


class TestSuiteAndReports:
    @pytest.fixture(scope="class")
    def measurements(self):
        src, dst, n = graph500_edges(scale=7, edge_factor=8, seed=2)
        suite = BenchmarkSuite(
            [DatasetSpec("tiny", src, dst, n)],
            make_engines(["matrix", "csr-baseline", "pointer-chasing", "redisgraph"]),
            hops=[1, 2],
            seed_fraction=0.02,
            log=lambda s: None,
        )
        return suite.run()

    def test_suite_covers_matrix(self, measurements):
        combos = {(m.engine, m.k) for m in measurements}
        assert ("matrix", 1) in combos and ("matrix", 2) in combos
        assert ("redisgraph", 2) in combos

    def test_counts_agree_across_engines(self, measurements):
        by_k = {}
        for m in measurements:
            by_k.setdefault(m.k, set()).add(tuple(m.counts))
        for k, variants in by_k.items():
            assert len(variants) == 1, f"count mismatch at k={k}"

    def test_format_table(self, measurements):
        text = format_table(measurements, title="T")
        assert "avg_ms" in text and "matrix" in text and text.startswith("T\n")

    def test_fig1_chart(self, measurements):
        chart = format_fig1_chart(measurements)
        assert "#" in chart and "[tiny]" in chart

    def test_csv(self, measurements):
        csv = to_csv(measurements)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("dataset,engine,k")
        assert len(lines) == len(measurements) + 1

    def test_claims_structure(self, measurements):
        checks = check_claims(measurements)
        assert [c.claim for c in checks] == ["C1", "C2", "C3", "C4"]
        c3 = checks[2]
        assert c3.holds  # no errors in this run
        for c in checks:
            assert "measured" in c.line() or c.measured


class TestClaimLogicSynthetic:
    def _m(self, engine, dataset, k, avg_ms, errors=0):
        return KhopMeasurement(engine, dataset, k, [0], [avg_ms], [1], errors)

    def test_c1_pass_and_fail(self):
        base = [
            self._m("matrix", "d", 6, 1.0),
            self._m("pointer-chasing", "d", 6, 50.0),
            self._m("csr-baseline", "d", 6, 0.5),
            self._m("redisgraph", "d", 6, 2.0),
        ]
        checks = {c.claim: c for c in check_claims(base)}
        assert checks["C1"].holds
        slow = [
            self._m("matrix", "d", 6, 50.0),
            self._m("pointer-chasing", "d", 6, 50.0),
        ]
        checks = {c.claim: c for c in check_claims(slow)}
        assert not checks["C1"].holds

    def test_c3_fails_on_errors(self):
        ms = [self._m("matrix", "d", 1, 1.0, errors=2), self._m("matrix", "d", 2, 1.0)]
        checks = {c.claim: c for c in check_claims(ms)}
        assert not checks["C3"].holds
