"""Semantic validation of parsed queries.

Catches, at compile time (mirroring RedisGraph's AST validations):

* use of unbound variables,
* clause-order violations (nothing after RETURN, queries that do nothing),
* aggregation misuse (aggregates in WHERE, nested aggregates),
* WITH/RETURN scoping (WITH starts a fresh scope containing only its
  projections),
* redeclarations that change a variable's kind (node vs relationship),
* unsupported corners called out explicitly (binding a variable-length
  relationship), and UNION column-name agreement.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import CypherSemanticError
from repro.cypher import ast_nodes as A
from repro.procedures import registry as proc_registry

__all__ = ["validate", "has_aggregate", "AGGREGATE_FUNCTIONS"]

AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max", "collect", "stdev"})


def has_aggregate(expr: A.Expr) -> bool:
    """Does the expression tree contain an aggregation call?"""
    found = False

    def visit(e: A.Expr) -> None:
        nonlocal found
        if isinstance(e, A.FunctionCall) and e.name in AGGREGATE_FUNCTIONS:
            found = True
        for child in _children(e):
            visit(child)

    visit(expr)
    return found


def _children(e: A.Expr) -> Iterable[A.Expr]:
    if isinstance(e, A.PropertyAccess):
        return (e.subject,)
    if isinstance(e, A.Subscript):
        return (e.subject, e.index)
    if isinstance(e, A.Slice):
        return tuple(x for x in (e.subject, e.start, e.stop) if x is not None)
    if isinstance(e, A.ListLiteral):
        return e.items
    if isinstance(e, A.MapLiteral):
        return tuple(v for _, v in e.items)
    if isinstance(e, A.Unary):
        return (e.operand,)
    if isinstance(e, (A.Binary, A.Comparison, A.BoolOp)):
        return (e.left, e.right)
    if isinstance(e, A.Not):
        return (e.operand,)
    if isinstance(e, A.IsNull):
        return (e.operand,)
    if isinstance(e, A.StringPredicate):
        return (e.left, e.right)
    if isinstance(e, A.InList):
        return (e.needle, e.haystack)
    if isinstance(e, A.FunctionCall):
        return e.args
    if isinstance(e, A.CaseExpr):
        out = []
        if e.subject is not None:
            out.append(e.subject)
        for w, t in e.whens:
            out.extend((w, t))
        if e.default is not None:
            out.append(e.default)
        return tuple(out)
    return ()


def _identifiers(e: A.Expr) -> Set[str]:
    out: Set[str] = set()

    def visit(x: A.Expr) -> None:
        if isinstance(x, A.Identifier):
            out.add(x.name)
        for child in _children(x):
            visit(child)

    visit(e)
    return out


class _Scope:
    def __init__(self) -> None:
        self.kinds: Dict[str, str] = {}  # name -> 'node' | 'rel' | 'value' | 'path'

    def bind(self, name: str, kind: str) -> None:
        existing = self.kinds.get(name)
        if existing is not None and existing != kind:
            raise CypherSemanticError(
                f"variable {name!r} already declared as {existing}, cannot rebind as {kind}"
            )
        self.kinds[name] = kind

    def require(self, name: str, context: str) -> None:
        if name not in self.kinds and name != "*":
            raise CypherSemanticError(f"{name!r} not defined in {context}")

    def reset(self, names: Dict[str, str]) -> None:
        self.kinds = dict(names)


def validate(query: A.Query) -> None:
    """Raise :class:`CypherSemanticError` on an invalid query."""
    column_names: Optional[Tuple[str, ...]] = None
    for part in query.parts:
        names = _validate_single(part)
        if column_names is not None and names is not None and names != column_names:
            raise CypherSemanticError(
                f"UNION parts must return the same columns ({column_names} vs {names})"
            )
        if names is not None:
            column_names = names
    if len(query.parts) > 1 and column_names is None:
        raise CypherSemanticError("UNION requires RETURN in every part")


def _check_expr(expr: A.Expr, scope: _Scope, context: str, *, allow_aggregate: bool) -> None:
    for name in _identifiers(expr):
        scope.require(name, context)
    if not allow_aggregate and has_aggregate(expr):
        raise CypherSemanticError(f"aggregation is not allowed in {context}")
    # nested aggregates: count(sum(x))
    def visit(e: A.Expr, inside: bool) -> None:
        is_agg = isinstance(e, A.FunctionCall) and e.name in AGGREGATE_FUNCTIONS
        if is_agg and inside:
            raise CypherSemanticError("nested aggregation is not allowed")
        for child in _children(e):
            visit(child, inside or is_agg)

    visit(expr, False)


def _bind_pattern(path: A.Path, scope: _Scope, *, inside_create: bool) -> None:
    if path.var is not None:
        scope.bind(path.var, "path")
    for node in path.nodes:
        if node.var is not None:
            scope.bind(node.var, "node")
        for _, expr in node.properties:
            _check_expr(expr, scope, "a property map", allow_aggregate=False)
    for rel in path.rels:
        if rel.var is not None:
            if rel.variable_length:
                raise CypherSemanticError(
                    "binding a variable-length relationship to a variable is not supported"
                )
            if inside_create and rel.var in scope.kinds:
                raise CypherSemanticError(f"relationship variable {rel.var!r} already bound")
            scope.bind(rel.var, "rel")
        if inside_create and len(rel.types) != 1:
            raise CypherSemanticError("CREATE requires exactly one relationship type")
        if inside_create and rel.variable_length:
            raise CypherSemanticError("CREATE cannot use variable-length relationships")
        if inside_create and rel.direction == "any":
            raise CypherSemanticError("CREATE requires a directed relationship")
        for _, expr in rel.properties:
            _check_expr(expr, scope, "a property map", allow_aggregate=False)


def _validate_single(part: A.SingleQuery) -> Optional[Tuple[str, ...]]:
    scope = _Scope()
    returned: Optional[Tuple[str, ...]] = None
    update_seen = False

    for clause in part.clauses:
        if returned is not None:
            raise CypherSemanticError("no clause may follow RETURN")

        if isinstance(clause, A.MatchClause):
            for path in clause.patterns:
                _bind_pattern(path, scope, inside_create=False)
            if clause.where is not None:
                _check_expr(clause.where, scope, "WHERE", allow_aggregate=False)

        elif isinstance(clause, A.CreateClause):
            update_seen = True
            for path in clause.patterns:
                _bind_pattern(path, scope, inside_create=True)

        elif isinstance(clause, A.MergeClause):
            update_seen = True
            _bind_pattern(clause.pattern, scope, inside_create=False)
            for rel in clause.pattern.rels:
                if len(rel.types) != 1:
                    raise CypherSemanticError("MERGE requires exactly one relationship type")
                if rel.variable_length:
                    raise CypherSemanticError("MERGE cannot use variable-length relationships")
            for action, items in (("ON CREATE SET", clause.on_create), ("ON MATCH SET", clause.on_match)):
                for item in items:
                    scope.require(item.target, action)
                    if item.value is not None:
                        _check_expr(item.value, scope, action, allow_aggregate=False)

        elif isinstance(clause, A.DeleteClause):
            update_seen = True
            for expr in clause.exprs:
                _check_expr(expr, scope, "DELETE", allow_aggregate=False)

        elif isinstance(clause, A.SetClause):
            update_seen = True
            for item in clause.items:
                scope.require(item.target, "SET")
                if item.value is not None:
                    _check_expr(item.value, scope, "SET", allow_aggregate=False)

        elif isinstance(clause, A.RemoveClause):
            update_seen = True
            for item in clause.items:
                scope.require(item.target, "REMOVE")

        elif isinstance(clause, A.UnwindClause):
            _check_expr(clause.expr, scope, "UNWIND", allow_aggregate=False)
            scope.bind(clause.alias, "value")

        elif isinstance(clause, A.WithClause):
            _validate_projections(clause.projections, scope, "WITH")
            new_scope: Dict[str, str] = {}
            for proj in clause.projections:
                if proj.star:
                    new_scope.update(scope.kinds)
                    continue
                name = proj.output_name()
                if isinstance(proj.expr, A.Identifier) and proj.expr.name in scope.kinds:
                    new_scope[name] = scope.kinds[proj.expr.name]
                else:
                    new_scope[name] = "value"
            for item in clause.order_by:
                _check_expr(item.expr, scope, "ORDER BY", allow_aggregate=True)
            scope.reset(new_scope)
            if clause.where is not None:
                _check_expr(clause.where, scope, "WHERE", allow_aggregate=False)

        elif isinstance(clause, A.ReturnClause):
            _validate_projections(clause.projections, scope, "RETURN")
            names = []
            for proj in clause.projections:
                if proj.star:
                    if not scope.kinds:
                        raise CypherSemanticError("RETURN * with no variables in scope")
                    names.extend(sorted(scope.kinds))
                else:
                    names.append(proj.output_name())
            if len(set(names)) != len(names):
                raise CypherSemanticError(f"duplicate column names in RETURN: {names}")
            post_scope = _Scope()
            for n in names:
                post_scope.bind(n, "value")
            for item in clause.order_by:
                for ident in _identifiers(item.expr):
                    if ident not in post_scope.kinds and ident not in scope.kinds:
                        raise CypherSemanticError(f"{ident!r} not defined in ORDER BY")
            returned = tuple(names)

        elif isinstance(clause, A.CallClause):
            proc = proc_registry.resolve(clause.procedure)
            proc.check_arity(len(clause.args))
            for arg in clause.args:
                _check_expr(arg, scope, "CALL arguments", allow_aggregate=False)
            is_last = clause is part.clauses[-1]
            yields = clause.yields
            if not yields:
                if not is_last:
                    raise CypherSemanticError(
                        "CALL must use YIELD when composing with later clauses"
                    )
                yields = tuple(A.YieldItem(c.name) for c in proc.yields)
            seen: Set[str] = set()
            for item in yields:
                col = proc.column(item.column)
                if col is None:
                    raise CypherSemanticError(
                        f"procedure {proc.name} does not yield column {item.column!r}"
                    )
                out = item.output_name()
                if out in seen:
                    raise CypherSemanticError(f"duplicate YIELD column name {out!r}")
                if out in scope.kinds:
                    raise CypherSemanticError(f"YIELD name {out!r} is already bound")
                seen.add(out)
                kind = {"node": "node", "path": "path"}.get(col.type, "value")
                scope.bind(out, kind)
            if clause.where is not None:
                _check_expr(clause.where, scope, "WHERE", allow_aggregate=False)
            if is_last:
                # a trailing CALL is itself a result-producing clause
                returned = tuple(item.output_name() for item in yields)

        elif isinstance(clause, (A.CreateIndexClause, A.DropIndexClause)):
            update_seen = True

        else:  # pragma: no cover - parser produces only the above
            raise CypherSemanticError(f"unknown clause {clause!r}")

    if returned is None and not update_seen:
        raise CypherSemanticError("query neither returns results nor updates the graph")
    return returned


def _validate_projections(projections, scope: _Scope, context: str) -> None:
    for proj in projections:
        if proj.star:
            continue
        _check_expr(proj.expr, scope, context, allow_aggregate=True)
