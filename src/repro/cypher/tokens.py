"""Token model for the Cypher lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    IDENT = auto()        # foo, `quoted ident`
    KEYWORD = auto()      # MATCH, RETURN, ... (normalized upper-case)
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    PARAMETER = auto()    # $name
    OPERATOR = auto()     # = <> < > <= >= + - * / % ^
    PUNCT = auto()        # ( ) [ ] { } , : ; | .
    RANGE = auto()        # ..
    ARROW_RIGHT = auto()  # ->
    ARROW_LEFT = auto()   # <-
    DASH = auto()         # -
    EOF = auto()


# Reserved words recognized case-insensitively.  Anything else is an IDENT.
KEYWORDS = frozenset(
    {
        "MATCH", "OPTIONAL", "WHERE", "RETURN", "CREATE", "DELETE", "DETACH",
        "SET", "REMOVE", "MERGE", "WITH", "UNWIND", "AS", "ORDER", "BY",
        "SKIP", "LIMIT", "ASC", "ASCENDING", "DESC", "DESCENDING",
        "DISTINCT", "AND", "OR", "XOR", "NOT", "IN", "STARTS", "ENDS",
        "CONTAINS", "IS", "NULL", "TRUE", "FALSE", "COUNT", "CASE", "WHEN",
        "THEN", "ELSE", "END", "EXISTS", "UNION", "ALL", "ON", "INDEX",
        "DROP", "FOR", "CALL", "YIELD",
    }
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r} @{self.line}:{self.column})"
