"""Recursive-descent parser for the Cypher subset.

Grammar coverage (sufficient for the paper's benchmark queries and the
bundled examples):

* ``MATCH`` / ``OPTIONAL MATCH`` with multiple comma-separated paths,
  labels, inline property maps, directed/undirected edges, relationship
  type alternation (``[:A|B]``) and variable-length paths (``[*1..3]``),
* ``WHERE``, ``CREATE``, ``MERGE`` with ``ON CREATE SET`` / ``ON MATCH
  SET`` action clauses, ``DELETE`` / ``DETACH DELETE``, ``SET``
  (property, ``+=`` map merge, labels), ``REMOVE``, ``WITH``,
  ``UNWIND``, ``RETURN`` with ``DISTINCT`` / ``ORDER BY`` / ``SKIP`` /
  ``LIMIT``, ``UNION [ALL]``,
* ``CALL proc.name(args...) [YIELD col [AS alias], ...] [WHERE ...]``,
  standalone (implicit star YIELD) or composing with later clauses,
* the full expression grammar with Cypher precedence: OR < XOR < AND <
  NOT < comparisons/predicates < additive < multiplicative < ``^`` <
  unary < postfix (property access, subscript, slice) < atoms (literals,
  parameters, lists, maps, functions, ``CASE``, ``count(*)``),
* ``CREATE INDEX ON :Label(prop)`` / ``DROP INDEX ON :Label(prop)``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import CypherSyntaxError
from repro.cypher import ast_nodes as A
from repro.cypher.lexer import tokenize
from repro.cypher.tokens import Token, TokenType

__all__ = ["parse"]


def parse(text: str) -> A.Query:
    """Parse query text into an AST (raises CypherSyntaxError)."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> CypherSyntaxError:
        tok = self._cur
        found = tok.value or "end of input"
        return CypherSyntaxError(f"{message} (found {found!r})", tok.line, tok.column)

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        tok = self._cur
        return tok.type is type_ and (value is None or tok.value == value)

    def _check_kw(self, *names: str) -> bool:
        return self._cur.type is TokenType.KEYWORD and self._cur.value in names

    def _accept(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _accept_kw(self, *names: str) -> Optional[Token]:
        if self._check_kw(*names):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Optional[str] = None, what: str = "") -> Token:
        tok = self._accept(type_, value)
        if tok is None:
            raise self._error(f"expected {what or value or type_.name}")
        return tok

    def _expect_kw(self, name: str) -> Token:
        tok = self._accept_kw(name)
        if tok is None:
            raise self._error(f"expected {name}")
        return tok

    def _ident(self, what: str = "identifier") -> str:
        # keywords that double as identifiers in practice (e.g. count)
        if self._cur.type is TokenType.IDENT:
            return self._advance().value
        raise self._error(f"expected {what}")

    # ------------------------------------------------------------------
    # Query / clause structure
    # ------------------------------------------------------------------
    def parse_query(self) -> A.Query:
        parts = [self._parse_single_query()]
        union_all = False
        while self._accept_kw("UNION"):
            union_all = bool(self._accept_kw("ALL"))
            parts.append(self._parse_single_query())
        self._expect(TokenType.EOF, what="end of query")
        return A.Query(tuple(parts), union_all=union_all)

    def _parse_single_query(self) -> A.SingleQuery:
        clauses: List[A.Clause] = []
        while not self._check(TokenType.EOF) and not self._check_kw("UNION"):
            clauses.append(self._parse_clause())
        if not clauses:
            raise self._error("empty query")
        return A.SingleQuery(tuple(clauses))

    def _parse_clause(self) -> A.Clause:
        if self._check_kw("OPTIONAL"):
            self._advance()
            self._expect_kw("MATCH")
            return self._parse_match(optional=True)
        if self._accept_kw("MATCH"):
            return self._parse_match(optional=False)
        if self._check_kw("CREATE"):
            if self._peek(1).is_keyword("INDEX") or (
                self._peek(1).type is TokenType.IDENT
                and self._peek(1).value.upper() == "VECTOR"
                and self._peek(2).is_keyword("INDEX")
            ):
                return self._parse_create_index()
            self._advance()
            return A.CreateClause(tuple(self._parse_pattern_list()))
        if self._accept_kw("MERGE"):
            return self._parse_merge()
        if self._accept_kw("CALL"):
            return self._parse_call()
        if self._check_kw("DROP"):
            return self._parse_drop_index()
        if self._accept_kw("DETACH"):
            self._expect_kw("DELETE")
            return self._parse_delete(detach=True)
        if self._accept_kw("DELETE"):
            return self._parse_delete(detach=False)
        if self._accept_kw("SET"):
            return self._parse_set()
        if self._accept_kw("REMOVE"):
            return self._parse_remove()
        if self._accept_kw("WITH"):
            return self._parse_with()
        if self._accept_kw("RETURN"):
            return self._parse_return()
        if self._accept_kw("UNWIND"):
            expr = self.parse_expression()
            self._expect_kw("AS")
            alias = self._ident("alias")
            return A.UnwindClause(expr, alias)
        raise self._error("expected a clause keyword (MATCH, CREATE, RETURN, ...)")

    def _parse_match(self, *, optional: bool) -> A.MatchClause:
        patterns = self._parse_pattern_list()
        where = None
        if self._accept_kw("WHERE"):
            where = self.parse_expression()
        return A.MatchClause(tuple(patterns), optional=optional, where=where)

    def _parse_merge(self) -> A.MergeClause:
        pattern = self._parse_path()
        on_create: Tuple[A.SetItem, ...] = ()
        on_match: Tuple[A.SetItem, ...] = ()
        while self._check_kw("ON"):
            self._advance()
            if self._accept_kw("CREATE"):
                branch_is_create = True
            elif self._accept_kw("MATCH"):
                branch_is_create = False
            else:
                raise self._error("expected CREATE or MATCH after ON")
            self._expect_kw("SET")
            items = self._parse_set().items
            if branch_is_create:
                on_create += items
            else:
                on_match += items
        return A.MergeClause(pattern, on_create, on_match)

    def _parse_call(self) -> A.CallClause:
        # dotted procedure name: IDENT ('.' IDENT)*
        parts = [self._ident("procedure name")]
        while self._accept(TokenType.PUNCT, "."):
            parts.append(self._ident("procedure name"))
        name = ".".join(parts)
        self._expect(TokenType.PUNCT, "(", "'('")
        args: List[A.Expr] = []
        if not self._check(TokenType.PUNCT, ")"):
            while True:
                args.append(self.parse_expression())
                if not self._accept(TokenType.PUNCT, ","):
                    break
        self._expect(TokenType.PUNCT, ")", "')'")
        yields: List[A.YieldItem] = []
        where = None
        if self._accept_kw("YIELD"):
            while True:
                column = self._ident("YIELD column")
                alias = self._ident("alias") if self._accept_kw("AS") else None
                yields.append(A.YieldItem(column, alias))
                if not self._accept(TokenType.PUNCT, ","):
                    break
            if self._accept_kw("WHERE"):
                where = self.parse_expression()
        return A.CallClause(name, tuple(args), tuple(yields), where)

    def _parse_delete(self, *, detach: bool) -> A.DeleteClause:
        exprs = [self.parse_expression()]
        while self._accept(TokenType.PUNCT, ","):
            exprs.append(self.parse_expression())
        return A.DeleteClause(tuple(exprs), detach=detach)

    def _parse_set(self) -> A.SetClause:
        items: List[A.SetItem] = []
        while True:
            target = self._ident("SET target")
            if self._accept(TokenType.PUNCT, "."):
                key = self._ident("property name")
                self._expect(TokenType.OPERATOR, "=", "'='")
                items.append(A.SetItem(target, key, self.parse_expression()))
            elif self._accept(TokenType.OPERATOR, "+="):
                items.append(A.SetItem(target, None, self.parse_expression(), merge_map=True))
            elif self._check(TokenType.PUNCT, ":"):
                labels = []
                while self._accept(TokenType.PUNCT, ":"):
                    labels.append(self._ident("label"))
                items.append(A.SetItem(target, None, None, labels=tuple(labels)))
            elif self._accept(TokenType.OPERATOR, "="):
                # SET n = {map}: full replacement, modeled as merge_map with
                # a clear marker via key="" sentinel
                items.append(A.SetItem(target, "", self.parse_expression(), merge_map=True))
            else:
                raise self._error("expected '.', '=', '+=' or ':' in SET")
            if not self._accept(TokenType.PUNCT, ","):
                break
        return A.SetClause(tuple(items))

    def _parse_remove(self) -> A.RemoveClause:
        items: List[A.RemoveItem] = []
        while True:
            target = self._ident("REMOVE target")
            if self._accept(TokenType.PUNCT, "."):
                items.append(A.RemoveItem(target, self._ident("property name")))
            elif self._check(TokenType.PUNCT, ":"):
                labels = []
                while self._accept(TokenType.PUNCT, ":"):
                    labels.append(self._ident("label"))
                items.append(A.RemoveItem(target, None, labels=tuple(labels)))
            else:
                raise self._error("expected '.' or ':' in REMOVE")
            if not self._accept(TokenType.PUNCT, ","):
                break
        return A.RemoveClause(tuple(items))

    def _parse_projection_block(self):
        distinct = bool(self._accept_kw("DISTINCT"))
        projections: List[A.Projection] = []
        if self._accept(TokenType.OPERATOR, "*"):
            projections.append(A.Projection(A.Identifier("*"), None, star=True))
        else:
            while True:
                expr = self.parse_expression()
                alias = None
                if self._accept_kw("AS"):
                    alias = self._ident("alias")
                projections.append(A.Projection(expr, alias))
                if not self._accept(TokenType.PUNCT, ","):
                    break
        order_by: List[A.OrderItem] = []
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self._accept_kw("DESC", "DESCENDING"):
                    ascending = False
                else:
                    self._accept_kw("ASC", "ASCENDING")
                order_by.append(A.OrderItem(expr, ascending))
                if not self._accept(TokenType.PUNCT, ","):
                    break
        skip = self.parse_expression() if self._accept_kw("SKIP") else None
        limit = self.parse_expression() if self._accept_kw("LIMIT") else None
        return distinct, tuple(projections), tuple(order_by), skip, limit

    def _parse_return(self) -> A.ReturnClause:
        distinct, projections, order_by, skip, limit = self._parse_projection_block()
        return A.ReturnClause(projections, distinct, order_by, skip, limit)

    def _parse_with(self) -> A.WithClause:
        distinct, projections, order_by, skip, limit = self._parse_projection_block()
        where = self.parse_expression() if self._accept_kw("WHERE") else None
        return A.WithClause(projections, distinct, where, order_by, skip, limit)

    # VECTOR and OPTIONS are contextual: they lex as plain identifiers
    # and only act as syntax in index DDL, so ``MATCH (vector:OPTIONS)``
    # keeps parsing as before.
    def _accept_ident(self, word: str) -> bool:
        if self._cur.type is TokenType.IDENT and self._cur.value.upper() == word:
            self._advance()
            return True
        return False

    def _parse_index_target(self) -> Tuple[str, Tuple[str, ...]]:
        self._expect_kw("ON")
        self._expect(TokenType.PUNCT, ":")
        label = self._ident("label")
        self._expect(TokenType.PUNCT, "(")
        attrs = [self._ident("property name")]
        while self._accept(TokenType.PUNCT, ","):
            attrs.append(self._ident("property name"))
        self._expect(TokenType.PUNCT, ")")
        return label, tuple(attrs)

    def _parse_index_options(self) -> Tuple[Tuple[str, Any], ...]:
        """``OPTIONS {name: literal, ...}`` — literal values only.  A
        signed numeric literal parses as Unary('-', Literal) and folds
        here, so ``{nlist: -5}`` reaches option *validation* (a clear
        "must be positive" error) instead of dying as a non-literal."""
        self._expect(TokenType.PUNCT, "{", "'{'")
        items = {}
        if not self._check(TokenType.PUNCT, "}"):
            while True:
                key = self._ident("option name")
                self._expect(TokenType.PUNCT, ":", "':'")
                expr = self.parse_expression()
                if (
                    isinstance(expr, A.Unary)
                    and expr.op in ("-", "+")
                    and isinstance(expr.operand, A.Literal)
                    and isinstance(expr.operand.value, (int, float))
                    and not isinstance(expr.operand.value, bool)
                ):
                    value = expr.operand.value
                    expr = A.Literal(-value if expr.op == "-" else value)
                if not isinstance(expr, A.Literal):
                    raise self._error("index OPTIONS values must be literals")
                items[key] = expr.value
                if not self._accept(TokenType.PUNCT, ","):
                    break
        self._expect(TokenType.PUNCT, "}", "'}'")
        return tuple(sorted(items.items()))

    def _parse_create_index(self) -> A.CreateIndexClause:
        self._expect_kw("CREATE")
        vector = self._accept_ident("VECTOR")
        self._expect_kw("INDEX")
        label, attrs = self._parse_index_target()
        if vector:
            if len(attrs) != 1:
                raise self._error("a vector index covers exactly one property")
            options = self._parse_index_options() if self._accept_ident("OPTIONS") else ()
            return A.CreateIndexClause(label, attrs, "vector", options)
        kind = "composite" if len(attrs) > 1 else "range"
        return A.CreateIndexClause(label, attrs, kind)

    def _parse_drop_index(self) -> A.DropIndexClause:
        self._expect_kw("DROP")
        vector = self._accept_ident("VECTOR")
        self._expect_kw("INDEX")
        label, attrs = self._parse_index_target()
        if vector:
            if len(attrs) != 1:
                raise self._error("a vector index covers exactly one property")
            return A.DropIndexClause(label, attrs, "vector")
        kind = "composite" if len(attrs) > 1 else "range"
        return A.DropIndexClause(label, attrs, kind)

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def _parse_pattern_list(self) -> List[A.Path]:
        paths = [self._parse_path()]
        while self._accept(TokenType.PUNCT, ","):
            paths.append(self._parse_path())
        return paths

    def _parse_path(self) -> A.Path:
        var = None
        if self._cur.type is TokenType.IDENT and self._peek(1).type is TokenType.OPERATOR and self._peek(1).value == "=":
            var = self._advance().value
            self._advance()  # '='
        nodes = [self._parse_node_pattern()]
        rels: List[A.RelPattern] = []
        while self._check(TokenType.DASH) or self._check(TokenType.ARROW_LEFT):
            rels.append(self._parse_rel_pattern())
            nodes.append(self._parse_node_pattern())
        return A.Path(var, tuple(nodes), tuple(rels))

    def _parse_node_pattern(self) -> A.NodePattern:
        self._expect(TokenType.PUNCT, "(", "'('")
        var = None
        if self._cur.type is TokenType.IDENT:
            var = self._advance().value
        labels: List[str] = []
        while self._accept(TokenType.PUNCT, ":"):
            labels.append(self._ident("label"))
        props: Tuple[Tuple[str, A.Expr], ...] = ()
        if self._check(TokenType.PUNCT, "{"):
            props = self._parse_property_map()
        self._expect(TokenType.PUNCT, ")", "')'")
        return A.NodePattern(var, tuple(labels), props)

    def _parse_rel_pattern(self) -> A.RelPattern:
        # direction prefix: '<-' means incoming; '-' leaves it open
        incoming = False
        if self._accept(TokenType.ARROW_LEFT):
            incoming = True
        else:
            self._expect(TokenType.DASH, what="'-'")

        var = None
        types: List[str] = []
        min_hops, max_hops = 1, 1
        props: Tuple[Tuple[str, A.Expr], ...] = ()
        if self._accept(TokenType.PUNCT, "["):
            if self._cur.type is TokenType.IDENT:
                var = self._advance().value
            if self._accept(TokenType.PUNCT, ":"):
                types.append(self._ident("relationship type"))
                while self._accept(TokenType.PUNCT, "|"):
                    self._accept(TokenType.PUNCT, ":")
                    types.append(self._ident("relationship type"))
            if self._accept(TokenType.OPERATOR, "*"):
                min_hops, max_hops = self._parse_hop_range()
            if self._check(TokenType.PUNCT, "{"):
                props = self._parse_property_map()
            self._expect(TokenType.PUNCT, "]", "']'")

        # direction suffix
        if incoming:
            self._expect(TokenType.DASH, what="'-'")
            direction = "in"
        elif self._accept(TokenType.ARROW_RIGHT):
            direction = "out"
        elif self._accept(TokenType.DASH):
            direction = "any"
        else:
            raise self._error("expected '->' or '-' to close relationship pattern")
        return A.RelPattern(var, tuple(types), direction, min_hops, max_hops, props)

    def _parse_hop_range(self) -> Tuple[int, int]:
        """After '*': ``*``, ``*n``, ``*n..m``, ``*..m``, ``*n..``."""
        min_hops: Optional[int] = None
        max_hops: Optional[int] = None
        if self._cur.type is TokenType.INTEGER:
            min_hops = int(self._advance().value)
        if self._accept(TokenType.RANGE):
            if self._cur.type is TokenType.INTEGER:
                max_hops = int(self._advance().value)
            else:
                max_hops = -1
        elif min_hops is not None:
            max_hops = min_hops  # *n means exactly n
        if min_hops is None and max_hops is None:
            return 1, -1  # bare '*'
        if min_hops is None:
            min_hops = 1
        if max_hops is None:
            max_hops = -1
        if max_hops != -1 and max_hops < min_hops:
            raise self._error(f"variable-length range *{min_hops}..{max_hops} is empty")
        return min_hops, max_hops

    def _parse_property_map(self) -> Tuple[Tuple[str, A.Expr], ...]:
        self._expect(TokenType.PUNCT, "{", "'{'")
        items: List[Tuple[str, A.Expr]] = []
        if not self._check(TokenType.PUNCT, "}"):
            while True:
                key = self._ident("property name")
                self._expect(TokenType.PUNCT, ":", "':'")
                items.append((key, self.parse_expression()))
                if not self._accept(TokenType.PUNCT, ","):
                    break
        self._expect(TokenType.PUNCT, "}", "'}'")
        return tuple(items)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_xor()
        while self._accept_kw("OR"):
            left = A.BoolOp("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> A.Expr:
        left = self._parse_and()
        while self._accept_kw("XOR"):
            left = A.BoolOp("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self._accept_kw("AND"):
            left = A.BoolOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> A.Expr:
        if self._accept_kw("NOT"):
            return A.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> A.Expr:
        left = self._parse_additive()
        result: Optional[A.Expr] = None
        prev = left
        while True:
            if self._cur.type is TokenType.OPERATOR and self._cur.value in ("=", "<>", "<", ">", "<=", ">="):
                op = self._advance().value
                right = self._parse_additive()
                cmp_node: A.Expr = A.Comparison(op, prev, right)
                prev = right
            elif self._accept_kw("IS"):
                negated = bool(self._accept_kw("NOT"))
                self._expect_kw("NULL")
                cmp_node = A.IsNull(prev, negated)
            elif self._accept_kw("IN"):
                cmp_node = A.InList(prev, self._parse_additive())
            elif self._accept_kw("STARTS"):
                self._expect_kw("WITH")
                cmp_node = A.StringPredicate("STARTS_WITH", prev, self._parse_additive())
            elif self._accept_kw("ENDS"):
                self._expect_kw("WITH")
                cmp_node = A.StringPredicate("ENDS_WITH", prev, self._parse_additive())
            elif self._accept_kw("CONTAINS"):
                cmp_node = A.StringPredicate("CONTAINS", prev, self._parse_additive())
            else:
                break
            result = cmp_node if result is None else A.BoolOp("AND", result, cmp_node)
        return result if result is not None else left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while True:
            if self._check(TokenType.OPERATOR, "+"):
                self._advance()
                left = A.Binary("+", left, self._parse_multiplicative())
            elif self._check(TokenType.DASH):
                self._advance()
                left = A.Binary("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_power()
        while self._cur.type is TokenType.OPERATOR and self._cur.value in ("*", "/", "%"):
            op = self._advance().value
            left = A.Binary(op, left, self._parse_power())
        return left

    def _parse_power(self) -> A.Expr:
        left = self._parse_unary()
        if self._accept(TokenType.OPERATOR, "^"):
            return A.Binary("^", left, self._parse_power())  # right-assoc
        return left

    def _parse_unary(self) -> A.Expr:
        if self._check(TokenType.DASH):
            self._advance()
            return A.Unary("-", self._parse_unary())
        if self._accept(TokenType.OPERATOR, "+"):
            return A.Unary("+", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_atom()
        while True:
            if self._accept(TokenType.PUNCT, "."):
                expr = A.PropertyAccess(expr, self._ident("property name"))
            elif self._accept(TokenType.PUNCT, "["):
                # subscript or slice
                start: Optional[A.Expr] = None
                if not self._check(TokenType.RANGE):
                    start = self.parse_expression()
                if self._accept(TokenType.RANGE):
                    stop = None
                    if not self._check(TokenType.PUNCT, "]"):
                        stop = self.parse_expression()
                    expr = A.Slice(expr, start, stop)
                else:
                    assert start is not None
                    expr = A.Subscript(expr, start)
                self._expect(TokenType.PUNCT, "]", "']'")
            else:
                return expr

    def _parse_atom(self) -> A.Expr:
        tok = self._cur
        if tok.type is TokenType.INTEGER:
            self._advance()
            return A.Literal(int(tok.value))
        if tok.type is TokenType.FLOAT:
            self._advance()
            return A.Literal(float(tok.value))
        if tok.type is TokenType.STRING:
            self._advance()
            return A.Literal(tok.value)
        if tok.type is TokenType.PARAMETER:
            self._advance()
            return A.Parameter(tok.value)
        if self._accept_kw("TRUE"):
            return A.Literal(True)
        if self._accept_kw("FALSE"):
            return A.Literal(False)
        if self._accept_kw("NULL"):
            return A.Literal(None)
        if self._check_kw("COUNT"):
            self._advance()
            self._expect(TokenType.PUNCT, "(", "'('")
            distinct = bool(self._accept_kw("DISTINCT"))
            if self._accept(TokenType.OPERATOR, "*"):
                args: Tuple[A.Expr, ...] = ()
            else:
                args = (self.parse_expression(),)
            self._expect(TokenType.PUNCT, ")", "')'")
            return A.FunctionCall("count", args, distinct=distinct)
        if self._check_kw("EXISTS"):
            self._advance()
            self._expect(TokenType.PUNCT, "(", "'('")
            inner = self.parse_expression()
            self._expect(TokenType.PUNCT, ")", "')'")
            return A.FunctionCall("exists", (inner,))
        if self._check_kw("CASE"):
            return self._parse_case()
        if tok.type is TokenType.PUNCT and tok.value == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect(TokenType.PUNCT, ")", "')'")
            return inner
        if tok.type is TokenType.PUNCT and tok.value == "[":
            self._advance()
            items: List[A.Expr] = []
            if not self._check(TokenType.PUNCT, "]"):
                while True:
                    items.append(self.parse_expression())
                    if not self._accept(TokenType.PUNCT, ","):
                        break
            self._expect(TokenType.PUNCT, "]", "']'")
            return A.ListLiteral(tuple(items))
        if tok.type is TokenType.PUNCT and tok.value == "{":
            return A.MapLiteral(self._parse_property_map())
        if tok.type is TokenType.IDENT:
            # function call or plain identifier
            if self._peek(1).type is TokenType.PUNCT and self._peek(1).value == "(":
                name = self._advance().value
                self._advance()  # '('
                distinct = bool(self._accept_kw("DISTINCT"))
                args: List[A.Expr] = []
                if not self._check(TokenType.PUNCT, ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self._accept(TokenType.PUNCT, ","):
                            break
                self._expect(TokenType.PUNCT, ")", "')'")
                return A.FunctionCall(name.lower(), tuple(args), distinct=distinct)
            self._advance()
            return A.Identifier(tok.value)
        raise self._error("expected an expression")

    def _parse_case(self) -> A.Expr:
        self._expect_kw("CASE")
        subject = None
        if not self._check_kw("WHEN"):
            subject = self.parse_expression()
        whens: List[Tuple[A.Expr, A.Expr]] = []
        while self._accept_kw("WHEN"):
            cond = self.parse_expression()
            self._expect_kw("THEN")
            whens.append((cond, self.parse_expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_kw("ELSE"):
            default = self.parse_expression()
        self._expect_kw("END")
        return A.CaseExpr(subject, tuple(whens), default)
