"""Scalar function library for runtime expression evaluation.

Functions follow Cypher null-propagation: a null argument yields null
unless the function is explicitly null-aware (``coalesce``, ``exists``).
Entity-aware functions (``id``, ``labels``, ``type``, ``properties``,
``startNode``/``endNode``, ``keys``) receive Node/Edge handles.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CypherTypeError
from repro.graph.entities import Edge, Node
from repro.graph.path import PathValue

__all__ = ["SCALAR_FUNCTIONS", "call_scalar", "set_clock"]

# ``timestamp()``'s clock, injectable so differential tests (and anyone
# else needing reproducible query output) can freeze time.
_clock: Callable[[], float] = time.time


def set_clock(clock: Optional[Callable[[], float]]) -> Callable[[], float]:
    """Replace ``timestamp()``'s wall clock (None restores the default).

    Returns the previously installed clock so callers can put it back."""
    global _clock
    previous = _clock
    _clock = time.time if clock is None else clock
    return previous


def _null_aware(name: str):
    """Functions where nulls are part of the contract."""
    return name in ("coalesce", "exists", "tostring", "tostringornull")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise CypherTypeError(msg)


# -- entity functions --------------------------------------------------------

def _fn_id(x):
    _require(isinstance(x, (Node, Edge)), "id() expects a node or relationship")
    return x.id


def _fn_labels(x):
    _require(isinstance(x, Node), "labels() expects a node")
    return list(x.labels)


def _fn_type(x):
    _require(isinstance(x, Edge), "type() expects a relationship")
    return x.type


def _fn_properties(x):
    if isinstance(x, (Node, Edge)):
        return dict(x.properties)
    if isinstance(x, dict):
        return dict(x)
    raise CypherTypeError("properties() expects a node, relationship or map")


def _fn_startnode(x):
    _require(isinstance(x, Edge), "startNode() expects a relationship")
    return x._graph.get_node(x.src)


def _fn_endnode(x):
    _require(isinstance(x, Edge), "endNode() expects a relationship")
    return x._graph.get_node(x.dst)


def _fn_keys(x):
    if isinstance(x, (Node, Edge)):
        return sorted(x.properties.keys())
    if isinstance(x, dict):
        return sorted(x.keys())
    raise CypherTypeError("keys() expects a node, relationship or map")


# -- list / string size ------------------------------------------------------

def _fn_size(x):
    if isinstance(x, (list, str)):
        return len(x)
    raise CypherTypeError("size() expects a list or string")


def _fn_length(x):
    if isinstance(x, PathValue):
        return x.length
    if isinstance(x, list):
        return len(x)
    raise CypherTypeError("length() expects a path (or list)")


def _fn_nodes(x):
    _require(isinstance(x, PathValue), "nodes() expects a path")
    return list(x.nodes)


def _fn_relationships(x):
    _require(isinstance(x, PathValue), "relationships() expects a path")
    return list(x.edges)


def _fn_head(x):
    _require(isinstance(x, list), "head() expects a list")
    return x[0] if x else None


def _fn_last(x):
    _require(isinstance(x, list), "last() expects a list")
    return x[-1] if x else None


def _fn_tail(x):
    _require(isinstance(x, list), "tail() expects a list")
    return x[1:]


def _fn_reverse(x):
    if isinstance(x, list):
        return x[::-1]
    if isinstance(x, str):
        return x[::-1]
    raise CypherTypeError("reverse() expects a list or string")


def _fn_range(*args):
    _require(1 < len(args) <= 3, "range() expects 2 or 3 arguments")
    start, stop = int(args[0]), int(args[1])
    step = int(args[2]) if len(args) == 3 else 1
    _require(step != 0, "range() step must not be zero")
    # Cypher range is end-inclusive
    return list(range(start, stop + (1 if step > 0 else -1), step))


# -- numeric ------------------------------------------------------------------

def _numeric(x, fname):
    _require(isinstance(x, (int, float)) and not isinstance(x, bool), f"{fname}() expects a number")
    return x


def _fn_abs(x):
    return abs(_numeric(x, "abs"))


def _fn_ceil(x):
    return float(math.ceil(_numeric(x, "ceil")))


def _fn_floor(x):
    return float(math.floor(_numeric(x, "floor")))


def _fn_round(x):
    v = _numeric(x, "round")
    return float(math.floor(v + 0.5))  # Cypher rounds half away from zero (positive)


def _fn_sign(x):
    v = _numeric(x, "sign")
    return 0 if v == 0 else (1 if v > 0 else -1)


def _fn_sqrt(x):
    v = _numeric(x, "sqrt")
    _require(v >= 0, "sqrt() of a negative number")
    return math.sqrt(v)


def _fn_pow(x, y):
    return float(_numeric(x, "pow") ** _numeric(y, "pow"))


# -- conversions ---------------------------------------------------------------

def _fn_tointeger(x):
    if isinstance(x, bool):
        raise CypherTypeError("toInteger() expects a number or string")
    if isinstance(x, int):
        return x
    if isinstance(x, float):
        return int(x)
    if isinstance(x, str):
        try:
            return int(float(x)) if ("." in x or "e" in x.lower()) else int(x)
        except ValueError:
            return None
    raise CypherTypeError("toInteger() expects a number or string")


def _fn_tofloat(x):
    if isinstance(x, bool):
        raise CypherTypeError("toFloat() expects a number or string")
    if isinstance(x, (int, float)):
        return float(x)
    if isinstance(x, str):
        try:
            return float(x)
        except ValueError:
            return None
    raise CypherTypeError("toFloat() expects a number or string")


def _fn_tostring(x):
    if x is None:
        return None
    if isinstance(x, bool):
        return "true" if x else "false"
    if isinstance(x, float) and x == int(x):
        return f"{x:.6f}"
    return str(x)


def _fn_toboolean(x):
    if isinstance(x, bool):
        return x
    if isinstance(x, str):
        low = x.lower()
        if low == "true":
            return True
        if low == "false":
            return False
        return None
    raise CypherTypeError("toBoolean() expects a boolean or string")


# -- strings --------------------------------------------------------------------

def _string(x, fname):
    _require(isinstance(x, str), f"{fname}() expects a string")
    return x


def _fn_toupper(x):
    return _string(x, "toUpper").upper()


def _fn_tolower(x):
    return _string(x, "toLower").lower()


def _fn_trim(x):
    return _string(x, "trim").strip()


def _fn_ltrim(x):
    return _string(x, "lTrim").lstrip()


def _fn_rtrim(x):
    return _string(x, "rTrim").rstrip()


def _fn_replace(s, search, repl):
    return _string(s, "replace").replace(_string(search, "replace"), _string(repl, "replace"))


def _fn_split(s, sep):
    return _string(s, "split").split(_string(sep, "split"))


def _fn_substring(s, start, *rest):
    s = _string(s, "substring")
    start = int(start)
    _require(start >= 0, "substring() start must be non-negative")
    if rest:
        ln = int(rest[0])
        _require(ln >= 0, "substring() length must be non-negative")
        return s[start : start + ln]
    return s[start:]


def _fn_left(s, n):
    _require(int(n) >= 0, "left() length must be non-negative")
    return _string(s, "left")[: int(n)]


def _fn_right(s, n):
    _require(int(n) >= 0, "right() length must be non-negative")
    s = _string(s, "right")
    n = int(n)
    return s[len(s) - n :] if n else ""


# -- null-aware ------------------------------------------------------------------

def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _fn_exists(x):
    return x is not None


# -- scalar misc -----------------------------------------------------------------

def _fn_timestamp():
    return int(_clock() * 1000)


def _fn_e():
    return math.e


def _fn_pi():
    return math.pi


def _fn_exp(x):
    return math.exp(_numeric(x, "exp"))


def _fn_log(x):
    v = _numeric(x, "log")
    _require(v > 0, "log() of a non-positive number")
    return math.log(v)


def _fn_log10(x):
    v = _numeric(x, "log10")
    _require(v > 0, "log10() of a non-positive number")
    return math.log10(v)


def _fn_sin(x):
    return math.sin(_numeric(x, "sin"))


def _fn_cos(x):
    return math.cos(_numeric(x, "cos"))


def _fn_tan(x):
    return math.tan(_numeric(x, "tan"))


def _fn_atan(x):
    return math.atan(_numeric(x, "atan"))


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "id": _fn_id,
    "labels": _fn_labels,
    "type": _fn_type,
    "properties": _fn_properties,
    "startnode": _fn_startnode,
    "endnode": _fn_endnode,
    "keys": _fn_keys,
    "size": _fn_size,
    "length": _fn_length,
    "head": _fn_head,
    "last": _fn_last,
    "tail": _fn_tail,
    "reverse": _fn_reverse,
    "range": _fn_range,
    "abs": _fn_abs,
    "ceil": _fn_ceil,
    "floor": _fn_floor,
    "round": _fn_round,
    "sign": _fn_sign,
    "sqrt": _fn_sqrt,
    "pow": _fn_pow,
    "tointeger": _fn_tointeger,
    "tofloat": _fn_tofloat,
    "tostring": _fn_tostring,
    "toboolean": _fn_toboolean,
    "toupper": _fn_toupper,
    "tolower": _fn_tolower,
    "trim": _fn_trim,
    "ltrim": _fn_ltrim,
    "rtrim": _fn_rtrim,
    "replace": _fn_replace,
    "split": _fn_split,
    "substring": _fn_substring,
    "left": _fn_left,
    "right": _fn_right,
    "coalesce": _fn_coalesce,
    "exists": _fn_exists,
    "nodes": _fn_nodes,
    "relationships": _fn_relationships,
    "timestamp": _fn_timestamp,
    "e": _fn_e,
    "pi": _fn_pi,
    "exp": _fn_exp,
    "log": _fn_log,
    "log10": _fn_log10,
    "sin": _fn_sin,
    "cos": _fn_cos,
    "tan": _fn_tan,
    "atan": _fn_atan,
}


def call_scalar(name: str, args: List[Any]) -> Any:
    """Invoke a scalar function with Cypher null propagation."""
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None:
        raise CypherTypeError(f"unknown function: {name}()")
    if not _null_aware(name) and any(a is None for a in args):
        return None
    return fn(*args)
