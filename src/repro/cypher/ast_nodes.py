"""Abstract syntax tree node definitions for the Cypher subset.

Plain frozen dataclasses; the parser builds them, the semantic checker
walks them, and :mod:`repro.execplan.planner` compiles them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "Query",
    "SingleQuery",
    "MatchClause",
    "CreateClause",
    "MergeClause",
    "DeleteClause",
    "SetClause",
    "SetItem",
    "RemoveClause",
    "RemoveItem",
    "WithClause",
    "ReturnClause",
    "UnwindClause",
    "CallClause",
    "YieldItem",
    "CreateIndexClause",
    "DropIndexClause",
    "Projection",
    "OrderItem",
    "Path",
    "NodePattern",
    "RelPattern",
    "Expr",
    "Literal",
    "Parameter",
    "Identifier",
    "PropertyAccess",
    "Subscript",
    "Slice",
    "ListLiteral",
    "MapLiteral",
    "Unary",
    "Binary",
    "Comparison",
    "BoolOp",
    "Not",
    "IsNull",
    "StringPredicate",
    "InList",
    "FunctionCall",
    "CaseExpr",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool, None


@dataclass(frozen=True)
class Parameter(Expr):
    name: str


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class PropertyAccess(Expr):
    subject: Expr
    key: str


@dataclass(frozen=True)
class Subscript(Expr):
    subject: Expr
    index: Expr


@dataclass(frozen=True)
class Slice(Expr):
    subject: Expr
    start: Optional[Expr]
    stop: Optional[Expr]


@dataclass(frozen=True)
class ListLiteral(Expr):
    items: Tuple[Expr, ...]


@dataclass(frozen=True)
class MapLiteral(Expr):
    items: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-' or '+'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * / % ^
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # = <> < > <= >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # AND OR XOR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool  # IS NOT NULL


@dataclass(frozen=True)
class StringPredicate(Expr):
    op: str  # STARTS_WITH / ENDS_WITH / CONTAINS
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InList(Expr):
    needle: Expr
    haystack: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # lower-cased
    args: Tuple[Expr, ...]
    distinct: bool = False  # count(DISTINCT x), collect(DISTINCT x), ...


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Both simple (``CASE x WHEN v THEN r``) and generic
    (``CASE WHEN pred THEN r``) forms; ``subject`` is None for generic."""

    subject: Optional[Expr]
    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    var: Optional[str]
    labels: Tuple[str, ...]
    properties: Tuple[Tuple[str, Expr], ...]  # {key: expr, ...}


@dataclass(frozen=True)
class RelPattern:
    var: Optional[str]
    types: Tuple[str, ...]
    direction: str  # 'out' (->), 'in' (<-), 'any' (undirected)
    min_hops: int = 1
    max_hops: int = 1  # -1 = unbounded (capped by the engine)
    properties: Tuple[Tuple[str, Expr], ...] = ()

    @property
    def variable_length(self) -> bool:
        return not (self.min_hops == 1 and self.max_hops == 1)


@dataclass(frozen=True)
class Path:
    """Alternating nodes and relationships: ``nodes[i] rels[i] nodes[i+1]``."""

    var: Optional[str]
    nodes: Tuple[NodePattern, ...]
    rels: Tuple[RelPattern, ...]

    def __post_init__(self) -> None:
        assert len(self.nodes) == len(self.rels) + 1


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchClause:
    patterns: Tuple[Path, ...]
    optional: bool = False
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateClause:
    patterns: Tuple[Path, ...]


@dataclass(frozen=True)
class MergeClause:
    pattern: Path
    on_create: Tuple["SetItem", ...] = ()
    on_match: Tuple["SetItem", ...] = ()


@dataclass(frozen=True)
class DeleteClause:
    exprs: Tuple[Expr, ...]
    detach: bool = False


@dataclass(frozen=True)
class SetItem:
    """``target.key = value`` or ``target += map`` or ``target:Label``."""

    target: str
    key: Optional[str]  # None for += map or label set
    value: Optional[Expr]
    labels: Tuple[str, ...] = ()
    merge_map: bool = False


@dataclass(frozen=True)
class SetClause:
    items: Tuple[SetItem, ...]


@dataclass(frozen=True)
class RemoveItem:
    target: str
    key: Optional[str]
    labels: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RemoveClause:
    items: Tuple[RemoveItem, ...]


@dataclass(frozen=True)
class Projection:
    expr: Expr
    alias: Optional[str]
    star: bool = False  # RETURN *

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return _expr_to_name(self.expr)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class ReturnClause:
    projections: Tuple[Projection, ...]
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[Expr] = None
    limit: Optional[Expr] = None


@dataclass(frozen=True)
class WithClause:
    projections: Tuple[Projection, ...]
    distinct: bool = False
    where: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[Expr] = None
    limit: Optional[Expr] = None


@dataclass(frozen=True)
class UnwindClause:
    expr: Expr
    alias: str


@dataclass(frozen=True)
class YieldItem:
    """One ``YIELD column [AS alias]`` item of a CALL clause."""

    column: str
    alias: Optional[str] = None

    def output_name(self) -> str:
        return self.alias or self.column


@dataclass(frozen=True)
class CallClause:
    """``CALL proc.name(args...) [YIELD col [AS alias], ...] [WHERE expr]``.

    ``yields == ()`` means the implicit star form (standalone CALL only):
    every declared output column is projected under its own name."""

    procedure: str
    args: Tuple[Expr, ...]
    yields: Tuple[YieldItem, ...] = ()
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateIndexClause:
    """``CREATE [VECTOR] INDEX ON :Label(attr[, attr...]) [OPTIONS {...}]``.

    ``kind`` is ``"range"`` (one attribute), ``"composite"`` (several) or
    ``"vector"``; ``options`` holds literal OPTIONS entries as sorted
    (name, value) pairs so the clause stays hashable for the plan cache.
    Vector indexes accept ``dimension``, ``similarity``, and the IVF
    knobs ``nlist`` (bucket count, auto ~sqrt(N) when omitted),
    ``nprobe`` (default probe width) and ``exact`` (true pins the
    brute-force path — the differential-testing hook).
    """

    label: str
    attributes: Tuple[str, ...]
    kind: str = "range"
    options: Tuple[Tuple[str, Any], ...] = ()

    @property
    def attribute(self) -> str:
        return self.attributes[0]


@dataclass(frozen=True)
class DropIndexClause:
    label: str
    attributes: Tuple[str, ...]
    kind: str = "range"

    @property
    def attribute(self) -> str:
        return self.attributes[0]


Clause = Union[
    MatchClause,
    CreateClause,
    MergeClause,
    DeleteClause,
    SetClause,
    RemoveClause,
    WithClause,
    ReturnClause,
    UnwindClause,
    CallClause,
    CreateIndexClause,
    DropIndexClause,
]


@dataclass(frozen=True)
class SingleQuery:
    clauses: Tuple[Clause, ...]


@dataclass(frozen=True)
class Query:
    """Top-level query (UNION of one or more single queries)."""

    parts: Tuple[SingleQuery, ...]
    union_all: bool = False

    @property
    def single(self) -> SingleQuery:
        assert len(self.parts) == 1
        return self.parts[0]


def _expr_to_name(expr: Expr) -> str:
    """Render an expression back to a short column name for un-aliased
    projections (``RETURN a.name`` → column ``a.name``)."""
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, PropertyAccess):
        return f"{_expr_to_name(expr.subject)}.{expr.key}"
    if isinstance(expr, FunctionCall):
        inner = ", ".join(_expr_to_name(a) for a in expr.args) if expr.args else "*"
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, Binary):
        return f"{_expr_to_name(expr.left)} {expr.op} {_expr_to_name(expr.right)}"
    return expr.__class__.__name__.lower()
