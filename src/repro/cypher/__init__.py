"""repro.cypher — an openCypher front end.

Pipeline: :func:`tokenize` → :func:`parse` (AST) → semantic validation.
The execution side (compiling the AST into a plan of algebraic traversals)
lives in :mod:`repro.execplan`.
"""

from repro.cypher.lexer import tokenize
from repro.cypher.parser import parse
from repro.cypher.semantic import validate

__all__ = ["tokenize", "parse", "validate"]
