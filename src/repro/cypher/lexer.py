"""The Cypher tokenizer.

Hand-rolled single-pass scanner producing :class:`Token` objects with
line/column positions (used in syntax-error messages).  Handles ``//`` and
``/* */`` comments, single/double-quoted strings with escapes, backquoted
identifiers, decimal integers/floats, ``$parameters`` and the operator set
of the Cypher subset implemented by the parser.
"""

from __future__ import annotations

from typing import List

from repro.errors import CypherSyntaxError
from repro.cypher.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_PUNCT = set("()[]{},:;|.")
_SIMPLE_OPS = set("+*/%^=")
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"', "`": "`"}


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def error(msg: str) -> CypherSyntaxError:
        return CypherSyntaxError(msg, line, col)

    while i < n:
        ch = text[i]

        # -- whitespace -------------------------------------------------
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue

        # -- comments ---------------------------------------------------
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in text[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue

        start_line, start_col = line, col

        # -- strings ------------------------------------------------------
        if ch in "'\"":
            quote = ch
            i += 1
            col += 1
            buf: List[str] = []
            while True:
                if i >= n:
                    raise error("unterminated string literal")
                c = text[i]
                if c == "\\":
                    if i + 1 >= n:
                        raise error("dangling escape in string")
                    esc = text[i + 1]
                    buf.append(_ESCAPES.get(esc, esc))
                    i += 2
                    col += 2
                    continue
                if c == quote:
                    i += 1
                    col += 1
                    break
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                buf.append(c)
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), start_line, start_col))
            continue

        # -- backquoted identifier ---------------------------------------
        if ch == "`":
            end = text.find("`", i + 1)
            if end < 0:
                raise error("unterminated backquoted identifier")
            name = text[i + 1 : end]
            col += end + 1 - i
            i = end + 1
            tokens.append(Token(TokenType.IDENT, name, start_line, start_col))
            continue

        # -- numbers -------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            # a '.' starts a float only when followed by a digit ("1..3" is
            # a range, "1.x" is invalid property access on an int)
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            value = text[i:j]
            col += j - i
            i = j
            tokens.append(
                Token(TokenType.FLOAT if is_float else TokenType.INTEGER, value, start_line, start_col)
            )
            continue

        # -- identifiers & keywords -----------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            col += j - i
            i = j
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_col))
            else:
                tokens.append(Token(TokenType.IDENT, word, start_line, start_col))
            continue

        # -- parameters ------------------------------------------------------
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise error("expected parameter name after '$'")
            name = text[i + 1 : j]
            col += j - i
            i = j
            tokens.append(Token(TokenType.PARAMETER, name, start_line, start_col))
            continue

        # -- multi-char operators ---------------------------------------------
        two = text[i : i + 2]
        if two == "..":
            tokens.append(Token(TokenType.RANGE, "..", start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "->":
            tokens.append(Token(TokenType.ARROW_RIGHT, "->", start_line, start_col))
            i += 2
            col += 2
            continue
        if two == "<-":
            tokens.append(Token(TokenType.ARROW_LEFT, "<-", start_line, start_col))
            i += 2
            col += 2
            continue
        if two in ("<>", "<=", ">=", "+="):
            tokens.append(Token(TokenType.OPERATOR, two, start_line, start_col))
            i += 2
            col += 2
            continue

        # -- single-char operators / punctuation -------------------------------
        if ch == "-":
            tokens.append(Token(TokenType.DASH, "-", start_line, start_col))
            i += 1
            col += 1
            continue
        if ch in "<>":
            tokens.append(Token(TokenType.OPERATOR, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch in _SIMPLE_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, start_line, start_col))
            i += 1
            col += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
