"""The algorithms suite as procedures — the paper's §II story as traffic.

Every proc runs on a snapshot-isolated overlay view: the adjacency
operand is ``graph.relation_matrix(reltype)``, a flush-free
``DeltaMatrixView`` that merges pending deltas per touched row at
evaluation time.  Nothing here mutates graph state, flushes CSR storage,
or takes more than the query's read lock — concurrent writers keep
appending deltas while an algorithm streams its YIELD columns.

Dense algorithm outputs (PageRank, WCC, core numbers) are computed over
the graph's capacity-sized matrix dimension, so they are filtered to the
live node-id set before leaving the proc; sparse outputs (BFS levels,
SSSP distances) only ever contain reachable — hence live — nodes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.algorithms import (
    bfs_levels,
    bfs_parents,
    connected_components,
    core_numbers,
    khop_frontiers,
    ktruss,
    pagerank,
    sssp_bellman_ford,
    triangle_count,
)
from repro.errors import CypherTypeError
from repro.graph.path import PathValue
from repro.procedures.registry import ProcArg, ProcCol, Procedure, registry

__all__ = ["register_algorithm_procedures"]


def _adjacency(graph, reltype: Optional[str]):
    """The overlay adjacency for one reltype (or all combined)."""
    return graph.relation_matrix(reltype)


def _require_node(graph, proc: str, name: str, node_id: int) -> int:
    if not graph.has_node(node_id):
        raise CypherTypeError(f"procedure {proc}: argument '{name}' is not a node id: {node_id}")
    return node_id


def _live_filter(graph, indices: np.ndarray, values: np.ndarray):
    """Restrict a capacity-dimension vector to live node ids."""
    live = np.zeros(graph.capacity, dtype=bool)
    ids = graph.all_node_ids()
    if len(ids):
        live[ids] = True
    keep = live[indices]
    return indices[keep], values[keep]


# ---------------------------------------------------------------------------
# Implementations
# ---------------------------------------------------------------------------


def _bfs(graph, source, max_level, reltype) -> Sequence[Sequence[Any]]:
    _require_node(graph, "algo.bfs", "source", source)
    if max_level is not None and max_level < 0:
        raise CypherTypeError("procedure algo.bfs: maxLevel must be >= 0")
    levels = bfs_levels(_adjacency(graph, reltype), source, max_level=max_level)
    ids, vals = levels.to_coo()
    return [ids, vals]


def _pagerank(graph, reltype, damping, tol, max_iter) -> Sequence[Sequence[Any]]:
    if not (0.0 <= damping < 1.0):
        raise CypherTypeError("procedure algo.pagerank: damping must be in [0, 1)")
    if max_iter <= 0:
        raise CypherTypeError("procedure algo.pagerank: maxIter must be positive")
    ranks = pagerank(_adjacency(graph, reltype), damping=damping, tol=tol, max_iter=max_iter)
    ids, vals = _live_filter(graph, *ranks.to_coo())
    return [ids, vals]


def _wcc(graph, reltype) -> Sequence[Sequence[Any]]:
    comps = connected_components(_adjacency(graph, reltype))
    ids, vals = _live_filter(graph, *comps.to_coo())
    return [ids, vals]


def _sssp(graph, source, reltype) -> Sequence[Sequence[Any]]:
    _require_node(graph, "algo.sssp", "source", source)
    dist = sssp_bellman_ford(_adjacency(graph, reltype), source)
    ids, vals = dist.to_coo()
    return [ids, np.asarray(vals, dtype=np.float64)]


def _kcore(graph, k, reltype) -> Sequence[Sequence[Any]]:
    if k < 0:
        raise CypherTypeError("procedure algo.kcore: k must be >= 0")
    cores = core_numbers(_adjacency(graph, reltype))
    ids, vals = _live_filter(graph, *cores.to_coo())
    keep = vals >= k
    return [ids[keep], vals[keep]]


def _ktruss(graph, k, reltype) -> Sequence[Sequence[Any]]:
    if k < 2:
        raise CypherTypeError("procedure algo.ktruss: k must be >= 2")
    truss = ktruss(_adjacency(graph, reltype), k)
    rows, cols, _ = truss.to_coo()
    return [rows, cols]


def _triangles(graph, reltype) -> Sequence[Sequence[Any]]:
    return [[int(triangle_count(_adjacency(graph, reltype)))]]


def _khop(graph, source, k, reltype) -> Sequence[Sequence[Any]]:
    _require_node(graph, "algo.khop", "source", source)
    if k < 1:
        raise CypherTypeError("procedure algo.khop: k must be >= 1")
    frontiers = khop_frontiers(_adjacency(graph, reltype), source, k)
    ids: List[np.ndarray] = []
    hops: List[np.ndarray] = []
    for level, frontier in enumerate(frontiers, start=1):
        idx, _ = frontier.to_coo()
        ids.append(idx)
        hops.append(np.full(len(idx), level, dtype=np.int64))
    if not ids:
        return [np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)]
    return [np.concatenate(ids), np.concatenate(hops)]


def _shortest_path(graph, source, target, reltype) -> Sequence[Sequence[Any]]:
    _require_node(graph, "algo.shortestPath", "source", source)
    _require_node(graph, "algo.shortestPath", "target", target)
    if source == target:
        path = PathValue([graph.get_node(source)], [])
        return [[path], [0]]
    parents = bfs_parents(_adjacency(graph, reltype), source)
    idx, vals = parents.to_coo()
    parent = dict(zip(idx.tolist(), vals.tolist()))
    if target not in parent:
        return [[], []]  # unreachable: zero rows
    chain = [target]
    while chain[-1] != source:
        chain.append(parent[int(chain[-1])])
    chain.reverse()
    nodes = [graph.get_node(int(v)) for v in chain]
    edges = []
    for u, v in zip(chain, chain[1:]):
        edge_ids = graph.edges_between(int(u), int(v), reltype)
        if not edge_ids:  # pragma: no cover - BFS found the arc, so it exists
            return [[], []]
        edges.append(graph.get_edge(min(edge_ids)))
    path = PathValue(nodes, edges)
    return [[path], [len(edges)]]


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

_RELTYPE = ProcArg("reltype", "string", None)


def register_algorithm_procedures() -> None:
    registry.register(
        Procedure(
            name="algo.bfs",
            args=(
                ProcArg("source", "node"),
                ProcArg("maxLevel", "integer", None),
                _RELTYPE,
            ),
            yields=(ProcCol("node", "node"), ProcCol("level", "integer")),
            fn=_bfs,
            cardinality="nodes",
            description="Hop distance from source to every reachable node.",
        )
    )
    registry.register(
        Procedure(
            name="algo.pagerank",
            args=(
                _RELTYPE,
                ProcArg("damping", "float", 0.85),
                ProcArg("tol", "float", 1e-8),
                ProcArg("maxIter", "integer", 100),
            ),
            yields=(ProcCol("node", "node"), ProcCol("score", "float")),
            fn=_pagerank,
            cardinality="nodes",
            description="PageRank over the (optionally typed) adjacency.",
        )
    )
    registry.register(
        Procedure(
            name="algo.wcc",
            args=(_RELTYPE,),
            yields=(ProcCol("node", "node"), ProcCol("componentId", "integer")),
            fn=_wcc,
            cardinality="nodes",
            description="Weakly connected components (componentId = min node id).",
        )
    )
    registry.register(
        Procedure(
            name="algo.sssp",
            args=(ProcArg("source", "node"), _RELTYPE),
            yields=(ProcCol("node", "node"), ProcCol("distance", "float")),
            fn=_sssp,
            cardinality="nodes",
            description="Bellman-Ford distances from source (unit weights).",
        )
    )
    registry.register(
        Procedure(
            name="algo.kcore",
            args=(ProcArg("k", "integer"), _RELTYPE),
            yields=(ProcCol("node", "node"), ProcCol("coreNumber", "integer")),
            fn=_kcore,
            cardinality="nodes",
            description="Nodes of the k-core with their core numbers.",
        )
    )
    registry.register(
        Procedure(
            name="algo.ktruss",
            args=(ProcArg("k", "integer"), _RELTYPE),
            yields=(ProcCol("src", "node"), ProcCol("dst", "node")),
            fn=_ktruss,
            cardinality="nodes",
            description="Edges surviving in the k-truss subgraph.",
        )
    )
    registry.register(
        Procedure(
            name="algo.triangleCount",
            args=(_RELTYPE,),
            yields=(ProcCol("triangles", "integer"),),
            fn=_triangles,
            cardinality=1.0,
            description="Global triangle count (L·U masked SpGEMM).",
        )
    )
    registry.register(
        Procedure(
            name="algo.khop",
            args=(ProcArg("source", "node"), ProcArg("k", "integer"), _RELTYPE),
            yields=(ProcCol("node", "node"), ProcCol("hop", "integer")),
            fn=_khop,
            cardinality="nodes",
            description="The k-hop neighborhood of source with hop distances.",
        )
    )
    registry.register(
        Procedure(
            name="algo.shortestPath",
            args=(ProcArg("source", "node"), ProcArg("target", "node"), _RELTYPE),
            yields=(ProcCol("path", "path"), ProcCol("length", "integer")),
            fn=_shortest_path,
            cardinality=1.0,
            description="One shortest path source→target via matmul BFS.",
        )
    )
