"""Introspection procedures: the ``db.*`` / ``dbms.*`` catalog surface.

These mirror the openCypher/Neo4j catalog procs every Cypher client
expects: enumerate labels, relationship types, property keys, indexes,
and the procedure registry itself.  All run against in-memory schema
registries — O(schema), no graph data touched.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import CypherTypeError
from repro.procedures.registry import ProcArg, ProcCol, Procedure, registry

__all__ = ["register_builtin_procedures"]


def _labels(graph) -> Sequence[Sequence[Any]]:
    return [sorted(graph.schema.labels())]


def _relationship_types(graph) -> Sequence[Sequence[Any]]:
    return [sorted(graph.schema.reltypes())]


def _property_keys(graph) -> Sequence[Sequence[Any]]:
    attrs = graph.attrs
    return [sorted(attrs.name_of(i) for i in range(len(attrs)))]


def _indexes(graph) -> Sequence[Sequence[Any]]:
    rows = sorted(
        graph.index_catalog(), key=lambda r: (r["label"], r["properties"], r["kind"])
    )
    return [
        [r["label"] for r in rows],
        [", ".join(r["properties"]) for r in rows],
        [r["kind"] for r in rows],
        [r["size"] for r in rows],
        [r["ndv"] for r in rows],
        [r.get("options") for r in rows],
    ]


def _vector_query(
    graph, label: str, attribute: str, query, k: int, nprobe: Any = None
) -> Sequence[Sequence[Any]]:
    index = graph.get_vector_index(label, attribute)
    if index is None:
        raise CypherTypeError(f"no vector index on :{label}({attribute})")
    if k <= 0:
        raise CypherTypeError(
            f"db.idx.vector.query: k must be a positive integer (got {k})"
        )
    if nprobe is not None and nprobe <= 0:
        raise CypherTypeError(
            f"db.idx.vector.query: nprobe must be a positive integer (got {nprobe})"
        )
    try:
        ids, scores = index.query(query, k, nprobe=nprobe)
    except ValueError as exc:
        raise CypherTypeError(f"db.idx.vector.query: {exc}") from None
    return [ids, scores]


def _procedures(graph) -> Sequence[Sequence[Any]]:
    procs = registry.all()
    names: List[str] = [p.name for p in procs]
    sigs: List[str] = [p.signature for p in procs]
    modes: List[str] = [p.mode.upper() for p in procs]
    return [names, sigs, modes]


def register_builtin_procedures() -> None:
    registry.register(
        Procedure(
            name="db.labels",
            args=(),
            yields=(ProcCol("label", "string"),),
            fn=_labels,
            cardinality="labels",
            description="Every node label in the graph schema.",
        )
    )
    registry.register(
        Procedure(
            name="db.relationshipTypes",
            args=(),
            yields=(ProcCol("relationshipType", "string"),),
            fn=_relationship_types,
            cardinality="reltypes",
            description="Every relationship type in the graph schema.",
        )
    )
    registry.register(
        Procedure(
            name="db.propertyKeys",
            args=(),
            yields=(ProcCol("propertyKey", "string"),),
            fn=_property_keys,
            cardinality="props",
            description="Every property key ever interned.",
        )
    )
    registry.register(
        Procedure(
            name="db.indexes",
            args=(),
            yields=(
                ProcCol("label", "string"),
                ProcCol("property", "string"),
                ProcCol("type", "string"),
                ProcCol("size", "integer"),
                ProcCol("ndv", "integer"),
                ProcCol("options", "any"),
            ),
            fn=_indexes,
            cardinality=4.0,
            description=(
                "Every secondary index as (label, property, type, size, ndv, "
                "options); type is the index kind (range, composite, vector) "
                "and options carries a vector index's creation options plus "
                "its IVF training state (nlist, nprobe, trained, retrains)."
            ),
        )
    )
    registry.register(
        Procedure(
            name="db.idx.vector.query",
            args=(
                ProcArg("label", "string"),
                ProcArg("attribute", "string"),
                ProcArg("query", "any"),
                ProcArg("k", "integer"),
                ProcArg("nprobe", "integer", default=None),
            ),
            yields=(ProcCol("node", "node"), ProcCol("score", "float")),
            fn=_vector_query,
            cardinality=16.0,
            description=(
                "Top-k cosine similarity over a vector index, streamed as "
                "(node, score) rows with score descending.  Trained IVF "
                "indexes probe nprobe buckets (defaulting per index/config); "
                "untrained or exact indexes scan brute-force."
            ),
        )
    )
    registry.register(
        Procedure(
            name="dbms.procedures",
            args=(),
            yields=(
                ProcCol("name", "string"),
                ProcCol("signature", "string"),
                ProcCol("mode", "string"),
            ),
            fn=_procedures,
            cardinality=16.0,
            description="Every registered procedure with its signature.",
        )
    )
