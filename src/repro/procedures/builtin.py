"""Introspection procedures: the ``db.*`` / ``dbms.*`` catalog surface.

These mirror the openCypher/Neo4j catalog procs every Cypher client
expects: enumerate labels, relationship types, property keys, indexes,
and the procedure registry itself.  All run against in-memory schema
registries — O(schema), no graph data touched.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.procedures.registry import ProcCol, Procedure, registry

__all__ = ["register_builtin_procedures"]


def _labels(graph) -> Sequence[Sequence[Any]]:
    return [sorted(graph.schema.labels())]


def _relationship_types(graph) -> Sequence[Sequence[Any]]:
    return [sorted(graph.schema.reltypes())]


def _property_keys(graph) -> Sequence[Sequence[Any]]:
    attrs = graph.attrs
    return [sorted(attrs.name_of(i) for i in range(len(attrs)))]


def _indexes(graph) -> Sequence[Sequence[Any]]:
    specs = sorted(graph.index_specs())
    return [
        [label for label, _ in specs],
        [prop for _, prop in specs],
        ["exact-match"] * len(specs),
    ]


def _procedures(graph) -> Sequence[Sequence[Any]]:
    procs = registry.all()
    names: List[str] = [p.name for p in procs]
    sigs: List[str] = [p.signature for p in procs]
    modes: List[str] = [p.mode.upper() for p in procs]
    return [names, sigs, modes]


def register_builtin_procedures() -> None:
    registry.register(
        Procedure(
            name="db.labels",
            args=(),
            yields=(ProcCol("label", "string"),),
            fn=_labels,
            cardinality="labels",
            description="Every node label in the graph schema.",
        )
    )
    registry.register(
        Procedure(
            name="db.relationshipTypes",
            args=(),
            yields=(ProcCol("relationshipType", "string"),),
            fn=_relationship_types,
            cardinality="reltypes",
            description="Every relationship type in the graph schema.",
        )
    )
    registry.register(
        Procedure(
            name="db.propertyKeys",
            args=(),
            yields=(ProcCol("propertyKey", "string"),),
            fn=_property_keys,
            cardinality="props",
            description="Every property key ever interned.",
        )
    )
    registry.register(
        Procedure(
            name="db.indexes",
            args=(),
            yields=(
                ProcCol("label", "string"),
                ProcCol("property", "string"),
                ProcCol("type", "string"),
            ),
            fn=_indexes,
            cardinality=4.0,
            description="Every secondary index as (label, property, type).",
        )
    )
    registry.register(
        Procedure(
            name="dbms.procedures",
            args=(),
            yields=(
                ProcCol("name", "string"),
                ProcCol("signature", "string"),
                ProcCol("mode", "string"),
            ),
            fn=_procedures,
            cardinality=16.0,
            description="Every registered procedure with its signature.",
        )
    )
