"""Procedure framework: the registry behind ``CALL proc(...) YIELD ...``.

Importing this package registers the built-in catalog (``db.*`` /
``dbms.*``) and algorithm (``algo.*``) procedures into the module-level
:data:`registry` that the semantic pass, planner, and ``ProcedureCall``
plan op all resolve against.
"""

from repro.procedures.registry import (
    ProcArg,
    ProcCol,
    Procedure,
    ProcedureRegistry,
    registry,
)
from repro.procedures.builtin import register_builtin_procedures
from repro.procedures.algos import register_algorithm_procedures

__all__ = [
    "ProcArg",
    "ProcCol",
    "Procedure",
    "ProcedureRegistry",
    "registry",
    "register_builtin_procedures",
    "register_algorithm_procedures",
]

register_builtin_procedures()
register_algorithm_procedures()
