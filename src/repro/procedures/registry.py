"""The procedure registry behind ``CALL proc(...) YIELD ...``.

RedisGraph ships its GraphBLAS algorithm suite behind the openCypher
procedure surface; this module is the registry that makes a Python
callable servable traffic.  Each :class:`Procedure` carries enough
signature metadata for the whole stack to stay declarative:

* the parser produces a ``CallClause`` with a dotted name,
* the semantic pass resolves it here, validates arity, and learns the
  *kind* of every YIELD column (``node``/``path`` columns bind as graph
  entities so downstream ``MATCH`` can anchor on them),
* the planner compiles argument expressions and selects output columns,
* the ``ProcedureCall`` plan op invokes :attr:`Procedure.fn` under the
  query's read lock and streams the columnar result through the
  vectorized pipeline,
* the cost model prices the op with :attr:`Procedure.cardinality`.

Implementations receive ``(graph, *args)`` and return one *column set*:
a list with one entry per declared YIELD column, each a list/ndarray of
equal length.  Columns typed ``node`` hold integer node ids — the plan
op wraps them as lazy ``EntityColumn`` handles, so a proc never
materializes per-row Python objects for entity output.

Procedures run under the query read lock and must treat the graph as
read-only: adjacency access goes through overlay views
(``graph.relation_matrix()`` + ``as_read_matrix``), never a flush.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CypherTypeError

__all__ = [
    "ProcArg",
    "ProcCol",
    "Procedure",
    "ProcedureRegistry",
    "registry",
]

# Argument / column type tags.  ``node`` columns carry int64 node ids;
# everything else is a plain value column.
_ARG_TYPES = frozenset({"integer", "float", "number", "string", "bool", "node", "any"})
_COL_TYPES = frozenset({"node", "integer", "float", "string", "bool", "path", "list", "any"})

_NO_DEFAULT = object()


@dataclass(frozen=True)
class ProcArg:
    """One declared argument: ``name :: type`` with an optional default."""

    name: str
    type: str = "any"
    default: Any = _NO_DEFAULT

    def __post_init__(self) -> None:
        assert self.type in _ARG_TYPES, self.type

    @property
    def required(self) -> bool:
        return self.default is _NO_DEFAULT


@dataclass(frozen=True)
class ProcCol:
    """One declared YIELD output column: ``name :: type``."""

    name: str
    type: str = "any"

    def __post_init__(self) -> None:
        assert self.type in _COL_TYPES, self.type


@dataclass(frozen=True)
class Procedure:
    """Signature metadata plus the implementation callable.

    ``cardinality`` is the cost model's default output-row estimate:
    ``"nodes"`` (one row per live node), ``"labels"``/``"reltypes"``/
    ``"props"`` (schema-sized), or a float constant.
    """

    name: str
    args: Tuple[ProcArg, ...]
    yields: Tuple[ProcCol, ...]
    fn: Callable[..., Sequence[Sequence[Any]]]
    mode: str = "read"
    cardinality: Any = 1.0
    description: str = ""

    @property
    def signature(self) -> str:
        parts = []
        for a in self.args:
            rendered = f"{a.name} :: {a.type}"
            if not a.required:
                rendered += f" = {a.default!r}"
            parts.append(rendered)
        outs = ", ".join(f"{c.name} :: {c.type}" for c in self.yields)
        return f"{self.name}({', '.join(parts)}) :: ({outs})"

    def column(self, name: str) -> Optional[ProcCol]:
        for col in self.yields:
            if col.name == name:
                return col
        return None

    # ------------------------------------------------------------------
    def check_arity(self, count: int) -> None:
        """Static (plan-time) arity validation."""
        required = sum(1 for a in self.args if a.required)
        if count < required or count > len(self.args):
            expected = (
                f"{required}" if required == len(self.args) else f"{required}..{len(self.args)}"
            )
            raise CypherTypeError(
                f"procedure {self.name} expects {expected} argument(s), got {count}"
            )

    def coerce_args(self, values: Sequence[Any]) -> List[Any]:
        """Runtime validation/coercion of evaluated argument values.

        Fills declared defaults for trailing omitted arguments and
        type-checks what the caller supplied; ``None`` is accepted
        anywhere an optional argument expects its default."""
        self.check_arity(len(values))
        out: List[Any] = []
        for i, spec in enumerate(self.args):
            provided = i < len(values) and values[i] is not None
            if not provided:
                if spec.required:
                    raise CypherTypeError(
                        f"procedure {self.name}: argument '{spec.name}' must not be null"
                    )
                out.append(spec.default)
                continue
            out.append(_coerce(self.name, spec, values[i]))
        return out


def _coerce(proc: str, spec: ProcArg, value: Any) -> Any:
    kind = spec.type
    if kind == "any":
        return value
    if kind == "node":
        # accept a bound node handle or a bare id
        node_id = getattr(value, "id", value)
        if isinstance(node_id, bool) or not isinstance(node_id, int):
            raise CypherTypeError(
                f"procedure {proc}: argument '{spec.name}' expects a node or node id, "
                f"got {type(value).__name__}"
            )
        return int(node_id)
    if kind == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            raise CypherTypeError(
                f"procedure {proc}: argument '{spec.name}' expects an integer, "
                f"got {type(value).__name__}"
            )
        return int(value)
    if kind in ("float", "number"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CypherTypeError(
                f"procedure {proc}: argument '{spec.name}' expects a number, "
                f"got {type(value).__name__}"
            )
        return float(value) if kind == "float" else value
    if kind == "string":
        if not isinstance(value, str):
            raise CypherTypeError(
                f"procedure {proc}: argument '{spec.name}' expects a string, "
                f"got {type(value).__name__}"
            )
        return value
    if kind == "bool":
        if not isinstance(value, bool):
            raise CypherTypeError(
                f"procedure {proc}: argument '{spec.name}' expects a boolean, "
                f"got {type(value).__name__}"
            )
        return value
    raise CypherTypeError(f"procedure {proc}: unsupported argument type {kind}")


class ProcedureRegistry:
    """Name → :class:`Procedure`, looked up case-insensitively.

    ``version`` bumps on every (re-)registration; compiled plans record
    the version they resolved against so the plan cache can drop entries
    that outlived a registry change — the same lazy-staleness contract
    the cache already applies to schema and statistics epochs.
    """

    def __init__(self) -> None:
        self._procs: Dict[str, Procedure] = {}
        self._lock = threading.Lock()
        self.version = 0

    def register(self, proc: Procedure) -> Procedure:
        with self._lock:
            self._procs[proc.name.lower()] = proc
            self.version += 1
        return proc

    def get(self, name: str) -> Optional[Procedure]:
        return self._procs.get(name.lower())

    def resolve(self, name: str) -> Procedure:
        proc = self.get(name)
        if proc is None:
            from repro.errors import CypherSemanticError

            raise CypherSemanticError(f"unknown procedure: {name}")
        return proc

    def names(self) -> List[str]:
        return sorted(self._procs)

    def all(self) -> List[Procedure]:
        return [self._procs[k] for k in sorted(self._procs)]

    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._procs


#: The process-wide registry every layer resolves against.
registry = ProcedureRegistry()
