"""k-truss decomposition (GraphChallenge kernel, paper reference [16]).

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least ``k-2`` triangles.  Iterate::

    C⟨S⟩ = S PLUS.PAIR S          # per-edge triangle support
    S    = edges of C with support >= k-2

until the edge set stops shrinking.
"""

from __future__ import annotations

from repro.errors import InvalidValue
from repro.grblas import Mask, Matrix, binary, semiring

from repro.algorithms._view import as_read_matrix

__all__ = ["ktruss"]


def ktruss(A: Matrix, k: int, *, symmetrize: bool = True, max_iter: int = 1000) -> Matrix:
    """Boolean adjacency of the k-truss subgraph of ``A``.

    The graph is treated as undirected (pattern symmetrized, self-loops
    dropped).  ``k >= 2``; the 2-truss is the graph itself minus isolated
    edges' constraint (support >= 0), so it returns the input pattern.
    """
    A = as_read_matrix(A)
    if k < 2:
        raise InvalidValue("k-truss requires k >= 2")
    S = A.pattern().select("offdiag")
    if symmetrize:
        S = S.ewise_add(S.transpose(), binary.lor)
    support_needed = k - 2
    if support_needed == 0:
        # every edge trivially has support >= 0; the masked product would
        # drop support-0 edges (no stored entry), so return S directly
        return S
    for _ in range(max_iter):
        C = S.mxm(S, semiring.plus_pair, mask=Mask(S, structure=True))
        keep = C.select("valuege", support_needed)
        if keep.nvals == S.nvals:
            return keep.pattern()
        if keep.nvals == 0:
            return keep.pattern()
        S = keep.pattern()
    raise InvalidValue("k-truss did not converge")  # pragma: no cover
