"""Graph algorithms in the language of linear algebra (LAGraph-style).

Each algorithm is expressed purely through :mod:`repro.grblas` operations —
the same way RedisGraph's traversal engine and the paper's cited
GraphChallenge kernels (triangle counting, k-truss) are built.
"""

from repro.algorithms.bfs import bfs_levels, bfs_parents
from repro.algorithms.khop import khop_counts, khop_frontiers
from repro.algorithms.sssp import sssp_bellman_ford
from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangle import triangle_count
from repro.algorithms.ktruss import ktruss
from repro.algorithms.components import connected_components
from repro.algorithms.kcore import clustering_coefficient, core_numbers, kcore

__all__ = [
    "kcore",
    "core_numbers",
    "clustering_coefficient",
    "bfs_levels",
    "bfs_parents",
    "khop_counts",
    "khop_frontiers",
    "sssp_bellman_ford",
    "pagerank",
    "triangle_count",
    "ktruss",
    "connected_components",
]
