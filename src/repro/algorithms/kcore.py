"""k-core decomposition: the maximal subgraph where every vertex has
degree ≥ k (undirected).  Peel iteratively: drop sub-k vertices, recompute
degrees on the induced subgraph, repeat to fixpoint — each round is one
reduce + one structural select on the adjacency matrix."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidValue
from repro.grblas import Matrix, Vector, binary, monoid

from repro.algorithms._view import as_read_matrix

__all__ = ["kcore", "core_numbers"]


def _symmetrize(A: Matrix) -> Matrix:
    P = A.pattern().select("offdiag")
    return P.ewise_add(P.transpose(), binary.lor)


def kcore(A: Matrix, k: int) -> Matrix:
    """Boolean adjacency of the k-core of ``A`` (treated as undirected)."""
    A = as_read_matrix(A)
    if k < 0:
        raise InvalidValue("k-core requires k >= 0")
    S = _symmetrize(A)
    n = S.nrows
    rows, cols, _ = S.to_coo()
    while True:
        degree = np.bincount(rows, minlength=n)
        bad = (degree > 0) & (degree < k)
        if not bad.any():
            return Matrix.from_edges(rows, cols, nrows=n)
        keep = ~(bad[rows] | bad[cols])
        rows, cols = rows[keep], cols[keep]


def core_numbers(A: Matrix) -> Vector:
    """Core number of every vertex: the largest k whose k-core contains it.

    Standard peeling: repeatedly remove the minimum-degree vertex class.
    Returns a dense INT64 vector (isolated vertices have core 0).
    """
    A = as_read_matrix(A)
    S = _symmetrize(A)
    n = S.nrows
    core = np.zeros(n, dtype=np.int64)
    alive_rows, alive_cols, _ = S.to_coo()
    degree = np.bincount(alive_rows, minlength=n)
    alive = degree > 0
    k = 0
    while alive.any():
        min_deg = degree[alive].min()
        k = max(k, int(min_deg))
        peel = np.flatnonzero(alive & (degree <= k))
        if len(peel) == 0:  # pragma: no cover - loop invariant
            break
        core[peel] = k
        alive[peel] = False
        # drop the peeled vertices' edges and recompute degrees exactly
        peel_set = np.zeros(n, dtype=bool)
        peel_set[peel] = True
        keep = ~(peel_set[alive_rows] | peel_set[alive_cols])
        alive_rows, alive_cols = alive_rows[keep], alive_cols[keep]
        degree = np.bincount(alive_rows, minlength=n)
    return Vector(n, "INT64", indices=np.arange(n, dtype=np.int64), values=core)


def clustering_coefficient(A: Matrix) -> Vector:
    """Local clustering coefficient per vertex of the undirected graph:
    triangles_through(v) / (deg(v) choose 2).  Vertices with degree < 2
    get coefficient 0.

    Uses the symmetric masked product ``T⟨S⟩ = S PLUS.PAIR S``: for every
    edge (i,j), ``T[i,j]`` counts the common neighbors of i and j, so the
    row sum counts each of i's triangles exactly twice (once per incident
    triangle edge).
    """
    A = as_read_matrix(A)
    from repro.grblas import Mask, semiring

    S = _symmetrize(A)
    n = S.nrows
    rows, _, _ = S.to_coo()
    deg = np.bincount(rows, minlength=n)
    T = S.mxm(S, semiring.plus_pair, mask=Mask(S, structure=True))
    tri = np.zeros(n, dtype=np.float64)
    t_rows, _, t_vals = T.to_coo()
    np.add.at(tri, t_rows, t_vals.astype(np.float64))
    tri /= 2.0
    possible = deg.astype(np.float64) * (deg - 1) / 2.0
    coeff = np.where(possible > 0, tri / np.maximum(possible, 1), 0.0)
    return Vector(n, "FP64", indices=np.arange(n, dtype=np.int64), values=coeff)
