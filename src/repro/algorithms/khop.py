"""The k-hop neighborhood-count kernel — the paper's benchmark query.

The TigerGraph benchmark (paper §III) asks, for a seed vertex ``s`` and a
hop count ``k``: *how many distinct vertices are reachable from ``s`` in at
most k hops (excluding s itself)?*  In linear algebra this is k rounds of

    frontier⟨¬visited, replace⟩ = frontier ANY.PAIR A
    visited                     = visited ∪ frontier

and the answer is ``nvals(visited) - 1``.  RedisGraph executes the Cypher
form ``MATCH (s)-[:E*1..k]->(n) RETURN count(DISTINCT n)`` through exactly
this loop; the direct form here is the engine-level fast path used by the
``matrix`` benchmark engine.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grblas import Mask, Matrix, Vector, semiring
from repro.grblas.descriptor import Descriptor

from repro.algorithms._view import as_read_matrix

__all__ = ["khop_counts", "khop_frontiers"]

_REPLACE = Descriptor(replace=True)


def khop_frontiers(A: Matrix, seed: int, k: int) -> List[Vector]:
    """The per-level frontiers ``[F1 .. Fk]`` of a k-hop expansion from
    ``seed`` (level 0 — the seed itself — is not included).  Expansion
    stops early when a frontier empties."""
    A = as_read_matrix(A)
    n = A.nrows
    visited = Vector.from_coo([seed], None, size=n)
    frontier = visited.dup()
    out: List[Vector] = []
    for _ in range(k):
        frontier = frontier.vxm(
            A,
            semiring.any_pair,
            mask=Mask(visited, complement=True, structure=True),
            desc=_REPLACE,
        )
        if frontier.nvals == 0:
            break
        out.append(frontier)
        visited = visited.ewise_add(frontier, _lor())
    return out

def khop_counts(A: Matrix, seed: int, k: int, *, mode: str = "within") -> int:
    """Number of distinct vertices in the k-hop neighborhood of ``seed``.

    ``mode="within"`` counts vertices at hop distance 1..k (the TigerGraph
    benchmark's metric); ``mode="exact"`` counts only those at distance
    exactly k.
    """
    A = as_read_matrix(A)
    frontiers = khop_frontiers(A, seed, k)
    if mode == "exact":
        return frontiers[-1].nvals if len(frontiers) == k else 0
    return int(sum(f.nvals for f in frontiers))


def _lor():
    from repro.grblas import binary

    return binary.lor
