"""Single-source shortest paths over the MIN.PLUS (tropical) semiring.

Bellman–Ford as repeated ``d⟨accum=min⟩ = d MIN.PLUS A`` until the distance
vector reaches a fixpoint (at most |V|-1 relaxations; negative cycles raise).
"""

from __future__ import annotations

from repro.errors import InvalidValue
from repro.grblas import Matrix, Vector, binary, semiring
from repro.grblas.types import FP64

from repro.algorithms._view import as_read_matrix

__all__ = ["sssp_bellman_ford"]


def sssp_bellman_ford(A: Matrix, source: int) -> Vector:
    """Distances from ``source`` over edge weights in ``A`` (FP64);
    unreachable nodes stay implicit."""
    A = as_read_matrix(A)
    n = A.nrows
    dist = Vector(n, FP64)
    dist.set_element(source, 0.0)
    for _ in range(n):
        relaxed = dist.vxm(A, semiring.min_plus)
        new_dist = dist.ewise_add(relaxed, binary.min)
        if new_dist == dist:
            return dist
        dist = new_dist
    # one extra successful relaxation after n-1 rounds => negative cycle
    raise InvalidValue("negative-weight cycle reachable from source")
