"""Triangle counting via the masked Sandia method (Davis, HPEC'18 —
reference [5] of the paper).

For an undirected graph with strictly-lower-triangular part ``L``::

    C⟨L⟩ = L PLUS.PAIR L ;  triangles = reduce(C, PLUS)

Each stored ``C[i,j]`` counts the common neighbors of the edge (i,j) that
close a triangle below it, so the masked reduce counts every triangle
exactly once.
"""

from __future__ import annotations

from repro.grblas import Mask, Matrix, binary, monoid, semiring

from repro.algorithms._view import as_read_matrix

__all__ = ["triangle_count", "triangles_per_edge"]


def _symmetrized_pattern(A: Matrix) -> Matrix:
    """Boolean undirected structure of A (drop weights and self-loops)."""
    P = A.pattern().select("offdiag")
    return P.ewise_add(P.transpose(), binary.lor)


def triangles_per_edge(A: Matrix, *, symmetrize: bool = True) -> Matrix:
    """Support matrix: entry (i,j) = number of triangles through edge (i,j)
    with i > j (lower-triangular edges only)."""
    A = as_read_matrix(A)
    S = _symmetrized_pattern(A) if symmetrize else A
    L = S.select("tril", -1)
    return L.mxm(L, semiring.plus_pair, mask=Mask(L, structure=True))


def triangle_count(A: Matrix, *, symmetrize: bool = True) -> int:
    """Total number of undirected triangles in the graph."""
    A = as_read_matrix(A)
    C = triangles_per_edge(A, symmetrize=symmetrize)
    s = C.reduce_scalar(monoid.plus)
    return int(s.get(0))
