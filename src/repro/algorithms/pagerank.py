"""PageRank by power iteration over PLUS.SECOND products.

Each iteration computes ``r' = (1-d)/n + d·(Aᵀ (r/outdeg)) + d·(dangling
mass)/n``.  The contribution gather is ``vxm`` over the PLUS.FIRST
semiring: the rank/outdegree value of the *source* end of each edge is
summed into the target — edge values never matter, matching RedisGraph's
unweighted adjacency matrices.
"""

from __future__ import annotations

import numpy as np

from repro.grblas import Matrix, Vector, monoid, semiring
from repro.grblas.types import FP64

from repro.algorithms._view import as_read_matrix

__all__ = ["pagerank"]


def pagerank(
    A: Matrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> Vector:
    """Rank of every node of the directed graph ``A`` (pattern only).

    Returns a dense FP64 vector summing to 1.  Converges when the L1 change
    drops below ``tol``.
    """
    A = as_read_matrix(A)
    n = A.nrows
    if n == 0:
        return Vector(n, FP64)
    outdeg = A.row_degree().astype(np.float64)
    dangling = np.flatnonzero(outdeg == 0)
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        scaled = rank / np.where(outdeg > 0, outdeg, 1.0)
        v = Vector(n, FP64, indices=np.arange(n, dtype=np.int64), values=scaled)
        contrib = v.vxm(A, semiring.plus_first)
        new_rank = np.full(n, teleport)
        new_rank[contrib.indices] += damping * contrib.values
        if len(dangling):
            new_rank += damping * rank[dangling].sum() / n
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return Vector(n, FP64, indices=np.arange(n, dtype=np.int64), values=rank)
