"""Weakly connected components by label propagation.

Every node starts labelled with its own id; each round propagates the
minimum label across edges (MIN.SECOND products against the symmetrized
adjacency) until no label changes.  Converges in O(diameter) rounds.
"""

from __future__ import annotations

import numpy as np

from repro.grblas import Matrix, Vector, binary, semiring
from repro.grblas.types import INT64

from repro.algorithms._view import as_read_matrix

__all__ = ["connected_components"]


def connected_components(A: Matrix) -> Vector:
    """Dense INT64 vector mapping every node to its component id (the
    smallest node id in the component)."""
    A = as_read_matrix(A)
    n = A.nrows
    S = A.pattern().ewise_add(A.pattern().transpose(), binary.lor)
    labels = Vector(n, INT64, indices=np.arange(n, dtype=np.int64), values=np.arange(n, dtype=np.int64))
    while True:
        # incoming minimum neighbour label: (S l)[i] = min_{j: S[i,j]} l[j]
        neighbour_min = S.mxv(labels, semiring.min_second)
        new_labels = labels.ewise_add(neighbour_min, binary.min)
        if new_labels == labels:
            return labels
        labels = new_labels
