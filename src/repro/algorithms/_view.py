"""Operand coercion for algorithm entry points.

Algorithms read their adjacency operand; they never mutate it.  Callers may
hand in a plain :class:`repro.grblas.Matrix`, a
:class:`repro.graph.delta_matrix.DeltaMatrixView` overlay (what
``Graph.relation_matrix`` returns), or a raw
:class:`repro.graph.delta_matrix.DeltaMatrix`.  The last case is resolved
to its flush-free overlay here so no algorithm ever forces a CSR rebuild.
"""

from __future__ import annotations

__all__ = ["as_read_matrix"]


def as_read_matrix(A):
    """Resolve ``A`` to a Matrix-like read operand without flushing."""
    overlay = getattr(A, "overlay", None)
    if callable(overlay):
        return overlay()
    return A
