"""Breadth-first search as iterated masked vector-matrix products.

The level loop is the canonical GraphBLAS BFS:

    frontier⟨¬visited, replace⟩ = frontier ANY.PAIR A

Push vs pull: expanding the frontier row-wise (``vxm`` over A) touches
out-edges of frontier nodes — cheap for small frontiers.  When the frontier
covers a large fraction of the graph it is cheaper to *pull*: scan each
unvisited vertex's in-edges for any visited predecessor (``mxv`` over A, a
gather per row).  ``direction_optimized=True`` switches between the two on
the standard |frontier| heuristic (Beamer's direction-optimizing BFS).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.grblas import Mask, Matrix, Vector, semiring
from repro.grblas.descriptor import Descriptor
from repro.grblas.types import INT64

from repro.algorithms._view import as_read_matrix

__all__ = ["bfs_levels", "bfs_parents"]

_REPLACE_COMP_STRUCT = Descriptor(replace=True, mask_complement=True, mask_structural=True)


def bfs_levels(
    A: Matrix,
    source: int,
    *,
    direction_optimized: bool = False,
    max_level: Optional[int] = None,
) -> Vector:
    """Hop distance from ``source`` to every reachable node.

    Returns an INT64 vector with ``levels[source] == 0``; unreachable nodes
    stay implicit.
    """
    A = as_read_matrix(A)
    n = A.nrows
    levels = Vector(n, INT64)
    levels.set_element(source, 0)
    frontier = Vector.from_coo([source], None, size=n)
    AT: Optional[Matrix] = None
    level = 0
    while frontier.nvals and (max_level is None or level < max_level):
        level += 1
        if direction_optimized and frontier.nvals > n // 16:
            if AT is None:
                AT = A.transpose()
            # pull: for each unvisited v, is any in-neighbour in the frontier?
            frontier = AT.mxv(
                frontier,
                semiring.any_pair,
                mask=Mask(levels, complement=True, structure=True),
                desc=Descriptor(replace=True),
            )
        else:
            frontier = frontier.vxm(
                A,
                semiring.any_pair,
                mask=Mask(levels, complement=True, structure=True),
                desc=Descriptor(replace=True),
            )
        if frontier.nvals == 0:
            break
        new_levels = Vector(n, INT64, indices=frontier.indices.copy(),
                            values=np.full(frontier.nvals, level, dtype=np.int64))
        levels = levels.ewise_add(new_levels, _first_wins())
    return levels


def bfs_parents(A: Matrix, source: int) -> Vector:
    """BFS tree: ``parents[v]`` is the id of v's BFS predecessor
    (``parents[source] == source``).  Propagates node ids along frontier
    edges with the MIN.FIRST semiring, so ties resolve to the smallest
    parent id deterministically."""
    A = as_read_matrix(A)
    n = A.nrows
    parents = Vector(n, INT64)
    parents.set_element(source, source)
    # frontier carries the *id of the frontier node itself* as its value
    frontier = Vector.from_coo([source], [source], size=n, dtype=INT64)
    while frontier.nvals:
        nxt = frontier.vxm(
            A,
            semiring.min_first,
            mask=Mask(parents, complement=True, structure=True),
            desc=Descriptor(replace=True),
        )
        if nxt.nvals == 0:
            break
        parents = parents.ewise_add(nxt, _first_wins())
        # new frontier: the just-discovered nodes, carrying their own ids
        frontier = Vector(n, INT64, indices=nxt.indices.copy(), values=nxt.indices.copy())
    return parents


def _first_wins():
    from repro.grblas import binary

    return binary.first
