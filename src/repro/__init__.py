"""repro — reproduction of *RedisGraph: GraphBLAS Enabled Graph Database*.

The package implements, from scratch and in pure Python/NumPy:

* :mod:`repro.grblas` — a GraphBLAS-style sparse linear algebra engine
  (typed CSR matrices/vectors, semirings, masks, ``mxm``/``mxv``/``vxm``).
* :mod:`repro.algorithms` — graph algorithms written against the GraphBLAS
  layer (BFS, PageRank, triangle counting, k-truss, components, SSSP).
* :mod:`repro.graph` — the property-graph layer: labels, relationship types,
  attribute storage, adjacency matrices with buffered (delta) updates.
* :mod:`repro.cypher` — an openCypher lexer/parser/AST.
* :mod:`repro.execplan` — the execution engine that compiles Cypher into a
  plan whose traversals are algebraic (matrix-product) expressions.
* :mod:`repro.rediskv` — a Redis-like single-threaded server with a module
  thread pool and the ``GRAPH.*`` command family, plus a RESP client.
* :mod:`repro.datasets` — Graph500/RMAT, Twitter-like, and LDBC-lite
  generators.
* :mod:`repro.bench` — the TigerGraph k-hop benchmark harness reproducing
  the paper's figure and tables.

Quickstart (embedded, no server)::

    from repro import GraphDB
    db = GraphDB("social")
    db.query("CREATE (:Person {name:'Ann'})-[:KNOWS]->(:Person {name:'Bo'})")
    result = db.query("MATCH (a:Person)-[:KNOWS]->(b) RETURN a.name, b.name")
    print(result.rows)
"""

from repro._version import __version__

__all__ = ["GraphDB", "__version__"]


def __getattr__(name: str):
    # GraphDB pulls in the whole query stack; import it on first use so that
    # `import repro.grblas` stays lightweight.
    if name == "GraphDB":
        from repro.api import GraphDB

        return GraphDB
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
