"""Exception hierarchy shared by every repro subsystem.

The hierarchy mirrors the error classes a RedisGraph deployment surfaces:
GraphBLAS API misuse (dimension/domain errors), Cypher compile-time errors
(syntax and semantic), runtime query errors (type errors inside expression
evaluation), and server/protocol errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# GraphBLAS layer
# ---------------------------------------------------------------------------


class GraphBLASError(ReproError):
    """Base class for GraphBLAS API errors."""


class DimensionMismatch(GraphBLASError):
    """Operand shapes are incompatible for the requested operation."""


class DomainMismatch(GraphBLASError):
    """Operand dtypes cannot be used with the requested operator."""


class IndexOutOfBounds(GraphBLASError):
    """A row/column index is outside the matrix/vector shape."""


class EmptyObject(GraphBLASError):
    """An operation required a stored value that is not present."""


class InvalidValue(GraphBLASError):
    """A parameter value is not valid for the requested operation."""


# ---------------------------------------------------------------------------
# Cypher front end
# ---------------------------------------------------------------------------


class CypherError(ReproError):
    """Base class for query-language errors."""


class CypherSyntaxError(CypherError):
    """The query text failed to lex or parse.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    clients can point at the error position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CypherSemanticError(CypherError):
    """The query parsed but is not semantically valid (unbound variable,
    aggregation misuse, redeclared identifier, ...)."""


class CypherTypeError(CypherError):
    """A runtime expression was applied to values of the wrong type."""


# ---------------------------------------------------------------------------
# Graph / storage layer
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for property-graph storage errors."""


class EntityNotFound(GraphError):
    """A node or edge id does not exist (or was deleted)."""


class ConstraintViolation(GraphError):
    """A storage-level constraint was violated (e.g. duplicate index key
    under a unique constraint)."""


# ---------------------------------------------------------------------------
# Server / protocol layer
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for server-side errors."""


class ProtocolError(ServerError):
    """Malformed RESP input."""


class WrongTypeError(ServerError):
    """Operation against a key holding the wrong kind of value (Redis
    ``WRONGTYPE``)."""

    def __init__(self, message: str = "Operation against a key holding the wrong kind of value") -> None:
        super().__init__(message)


class ResponseError(ServerError):
    """An ``-ERR ...`` reply received by the client."""
