"""The GraphBLAS sparse vector (GrB_Vector): sorted indices + values.

Invariants: ``indices`` strictly increasing within ``[0, size)``;
``len(values) == len(indices)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

import numpy as np

from repro.errors import DimensionMismatch, IndexOutOfBounds, InvalidValue
from repro.grblas import _kernels as K
from repro.grblas.types import BOOL, GrBType, lookup_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.grblas.matrix import Matrix
    from repro.grblas.monoid import Monoid
    from repro.grblas.ops import BinaryOp, UnaryOp
    from repro.grblas.semiring import Semiring

__all__ = ["Vector"]

_I64 = np.int64


class Vector:
    """A sparse vector of length ``size`` over a GraphBLAS domain."""

    __slots__ = ("size", "dtype", "indices", "values")

    def __init__(
        self,
        size: int,
        dtype: "GrBType | str | np.dtype | type" = BOOL,
        *,
        indices: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ) -> None:
        if size < 0:
            raise InvalidValue("vector size must be non-negative")
        self.size = int(size)
        self.dtype = lookup_type(dtype)
        if indices is None:
            self.indices = np.empty(0, dtype=_I64)
            self.values = np.empty(0, dtype=self.dtype.np_dtype)
        else:
            self.indices = np.asarray(indices, dtype=_I64)
            if values is None:
                values = np.ones(len(self.indices), dtype=self.dtype.np_dtype)
            self.values = np.asarray(values, dtype=self.dtype.np_dtype)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def new(cls, dtype, size: int) -> "Vector":
        return cls(size, dtype)

    @classmethod
    def from_coo(
        cls,
        indices: Iterable[int],
        values=None,
        *,
        size: int,
        dtype=None,
        dup: "Optional[Monoid]" = None,
    ) -> "Vector":
        """Build from (index, value) pairs; duplicates combine via ``dup``
        (last-wins when omitted)."""
        idx = np.asarray(indices, dtype=_I64)
        if len(idx) and (idx.min() < 0 or idx.max() >= size):
            raise IndexOutOfBounds(f"index out of range for size={size}")
        if values is None:
            dtype = lookup_type(dtype) if dtype is not None else BOOL
            vals = np.ones(len(idx), dtype=dtype.np_dtype)
        elif np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            dtype = lookup_type(dtype) if dtype is not None else lookup_type(np.asarray(values).dtype)
            vals = np.full(len(idx), values, dtype=dtype.np_dtype)
        else:
            vals = np.asarray(values)
            if len(vals) != len(idx):
                raise DimensionMismatch("values length must match indices")
            dtype = lookup_type(dtype) if dtype is not None else lookup_type(vals.dtype)
            vals = vals.astype(dtype.np_dtype, copy=False)
        # reuse the COO canonicalizer with a single row
        indptr, cols, out_vals = K.coo_to_csr(np.zeros(len(idx), dtype=_I64), idx, vals, 1, size, dup)
        return cls(size, dtype, indices=cols, values=out_vals)

    @classmethod
    def from_dense(cls, array, *, keep_zeros: bool = False) -> "Vector":
        arr = np.asarray(array)
        if arr.ndim != 1:
            raise DimensionMismatch("from_dense expects a 1-D array")
        idx = np.arange(len(arr), dtype=_I64) if keep_zeros else np.flatnonzero(arr)
        return cls(len(arr), lookup_type(arr.dtype), indices=idx, values=arr[idx])

    @classmethod
    def full(cls, size: int, value, dtype=None) -> "Vector":
        """A vector with every position stored (dense-in-sparse)."""
        dtype = lookup_type(dtype) if dtype is not None else lookup_type(np.asarray(value).dtype)
        return cls(
            size,
            dtype,
            indices=np.arange(size, dtype=_I64),
            values=np.full(size, value, dtype=dtype.np_dtype),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        return len(self.indices)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.indices.copy(), self.values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        out_dtype = np.promote_types(self.dtype.np_dtype, np.asarray(fill).dtype) if fill != 0 else self.dtype.np_dtype
        out = np.full(self.size, fill, dtype=out_dtype)
        out[self.indices] = self.values
        return out

    def __getitem__(self, i: int):
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        pos = np.searchsorted(self.indices, i)
        if pos < len(self.indices) and self.indices[pos] == i:
            return self.values[pos].item()
        return None

    def __contains__(self, i: int) -> bool:
        return self[i] is not None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return self.isequal(other)

    def __hash__(self):  # pragma: no cover
        return id(self)

    def isequal(self, other: "Vector") -> bool:
        return (
            self.size == other.size
            and np.array_equal(self.indices, other.indices)
            and bool(np.all(self.values == other.values))
        )

    def check_invariants(self) -> None:
        assert len(self.values) == len(self.indices)
        if len(self.indices):
            assert self.indices.min() >= 0 and self.indices.max() < self.size
            assert np.all(np.diff(self.indices) > 0)

    def __repr__(self) -> str:
        return f"<Vector size={self.size} {self.dtype.name} nvals={self.nvals}>"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def dup(self) -> "Vector":
        return Vector(self.size, self.dtype, indices=self.indices.copy(), values=self.values.copy())

    def clear(self) -> None:
        self.indices = np.empty(0, dtype=_I64)
        self.values = np.empty(0, dtype=self.dtype.np_dtype)

    def set_element(self, i: int, value) -> None:
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range [0, {self.size})")
        pos = int(np.searchsorted(self.indices, i))
        if pos < len(self.indices) and self.indices[pos] == i:
            self.values[pos] = value
            return
        self.indices = np.insert(self.indices, pos, i)
        self.values = np.insert(self.values, pos, np.asarray(value, dtype=self.dtype.np_dtype))

    def remove_element(self, i: int) -> bool:
        pos = int(np.searchsorted(self.indices, i))
        if pos >= len(self.indices) or self.indices[pos] != i:
            return False
        self.indices = np.delete(self.indices, pos)
        self.values = np.delete(self.values, pos)
        return True

    def resize(self, size: int) -> None:
        keep = self.indices < size
        self.indices = self.indices[keep]
        self.values = self.values[keep]
        self.size = int(size)

    # ------------------------------------------------------------------
    # Operation façade
    # ------------------------------------------------------------------
    def vxm(self, A: "Matrix", ring: "Semiring", *, mask=None, accum=None, desc=None, out=None) -> "Vector":
        from repro.grblas import matmul

        return matmul.vxm(self, A, ring, mask=mask, accum=accum, desc=desc, out=out)

    def ewise_add(self, other: "Vector", op: "BinaryOp", *, mask=None, accum=None, desc=None) -> "Vector":
        from repro.grblas import ewise

        return ewise.ewise_add_vector(self, other, op, mask=mask, accum=accum, desc=desc)

    def ewise_mult(self, other: "Vector", op: "BinaryOp", *, mask=None, accum=None, desc=None) -> "Vector":
        from repro.grblas import ewise

        return ewise.ewise_mult_vector(self, other, op, mask=mask, accum=accum, desc=desc)

    def apply(self, op: "UnaryOp", *, mask=None, accum=None, desc=None) -> "Vector":
        from repro.grblas import apply as _apply

        return _apply.apply_vector(self, op, mask=mask, accum=accum, desc=desc)

    def apply_bind(self, op: "BinaryOp", scalar, *, right: bool = True) -> "Vector":
        from repro.grblas import apply as _apply

        return _apply.apply_bind_vector(self, op, scalar, right=right)

    def select(self, predicate, value=None) -> "Vector":
        from repro.grblas import select as _select

        return _select.select_vector(self, predicate, value)

    def reduce(self, mon: "Monoid"):
        from repro.grblas import reduce as _reduce

        return _reduce.reduce_vector_scalar(self, mon)

    def extract(self, indices) -> "Vector":
        from repro.grblas import extract as _extract

        return _extract.extract_subvector(self, indices)

    def assign_scalar(self, value, indices=None) -> "Vector":
        from repro.grblas import assign as _assign

        return _assign.assign_vector_scalar(self, value, indices)

    def cast(self, dtype) -> "Vector":
        dtype = lookup_type(dtype)
        return Vector(self.size, dtype, indices=self.indices.copy(), values=self.values.astype(dtype.np_dtype))

    def pattern(self) -> "Vector":
        return Vector(self.size, BOOL, indices=self.indices.copy(), values=np.ones(self.nvals, dtype=np.bool_))
