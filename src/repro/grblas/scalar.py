"""GrB_Scalar: a 0-or-1 entry container used by reductions and extracts."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EmptyObject
from repro.grblas.types import GrBType, lookup_type

__all__ = ["Scalar"]


class Scalar:
    """A typed scalar that may be *empty* (no stored value)."""

    __slots__ = ("dtype", "_value")

    def __init__(self, dtype: "GrBType | str | np.dtype | type", value=None) -> None:
        self.dtype = lookup_type(dtype)
        self._value: Optional[np.generic] = None
        if value is not None:
            self.set(value)

    @property
    def is_empty(self) -> bool:
        return self._value is None

    @property
    def nvals(self) -> int:
        return 0 if self._value is None else 1

    def set(self, value) -> None:
        self._value = self.dtype.np_dtype.type(value)

    def clear(self) -> None:
        self._value = None

    def get(self, default=None):
        """The stored value as a Python scalar, or ``default`` when empty."""
        return default if self._value is None else self._value.item()

    def value(self):
        """The stored value; raises :class:`EmptyObject` when empty."""
        if self._value is None:
            raise EmptyObject("scalar holds no value")
        return self._value.item()

    def __bool__(self) -> bool:
        return self._value is not None and bool(self._value)

    def __eq__(self, other) -> bool:
        if isinstance(other, Scalar):
            return self._value == other._value
        if self._value is None:
            return other is None
        return self._value.item() == other

    def __hash__(self):  # pragma: no cover
        return hash((self.dtype.name, None if self._value is None else self._value.item()))

    def __repr__(self) -> str:
        return f"<Scalar {self.dtype.name} {'empty' if self.is_empty else self._value.item()}>"
