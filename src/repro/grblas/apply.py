"""``GrB_apply``: map a unary operator over stored values, or bind one
argument of a binary operator to a scalar (``GxB_Matrix_apply_BinaryOp``)."""

from __future__ import annotations

import numpy as np

from repro.grblas._write import finalize_matrix, finalize_vector, masked_accum_write
from repro.grblas.matrix import Matrix
from repro.grblas.ops import BinaryOp, UnaryOp
from repro.grblas.types import from_numpy_dtype
from repro.grblas.vector import Vector

__all__ = ["apply_matrix", "apply_vector", "apply_bind_matrix", "apply_bind_vector"]


def _mapped(values: np.ndarray, fn) -> np.ndarray:
    out = np.asarray(fn(values))
    return out


def apply_matrix(A: Matrix, op: UnaryOp, *, mask=None, accum=None, desc=None) -> Matrix:
    new_vals = _mapped(A.values, op)
    out_dtype = op.result_type if op.result_type is not None else from_numpy_dtype(new_vals.dtype)
    out = Matrix(A.nrows, A.ncols, out_dtype)
    ka, _ = A.to_linear()
    keys, vals = masked_accum_write(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=out_dtype.np_dtype),
        ka,
        new_vals.astype(out_dtype.np_dtype, copy=False),
        out_dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=A.shape,
    )
    return finalize_matrix(out, keys, vals)


def apply_vector(u: Vector, op: UnaryOp, *, mask=None, accum=None, desc=None) -> Vector:
    new_vals = _mapped(u.values, op)
    out_dtype = op.result_type if op.result_type is not None else from_numpy_dtype(new_vals.dtype)
    out = Vector(u.size, out_dtype)
    keys, vals = masked_accum_write(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=out_dtype.np_dtype),
        u.indices,
        new_vals.astype(out_dtype.np_dtype, copy=False),
        out_dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=(u.size,),
    )
    return finalize_vector(out, keys, vals)


def apply_bind_matrix(A: Matrix, op: BinaryOp, scalar, *, right: bool = True) -> Matrix:
    """``C = A op s`` (right=True) or ``C = s op A`` — one bound argument."""
    s = np.asarray(scalar)
    new_vals = np.asarray(op(A.values, s) if right else op(s, A.values))
    out_dtype = op.result_type if op.result_type is not None else from_numpy_dtype(new_vals.dtype)
    return Matrix(
        A.nrows,
        A.ncols,
        out_dtype,
        indptr=A.indptr.copy(),
        indices=A.indices.copy(),
        values=new_vals.astype(out_dtype.np_dtype, copy=False),
    )


def apply_bind_vector(u: Vector, op: BinaryOp, scalar, *, right: bool = True) -> Vector:
    s = np.asarray(scalar)
    new_vals = np.asarray(op(u.values, s) if right else op(s, u.values))
    out_dtype = op.result_type if op.result_type is not None else from_numpy_dtype(new_vals.dtype)
    return Vector(
        u.size,
        out_dtype,
        indices=u.indices.copy(),
        values=new_vals.astype(out_dtype.np_dtype, copy=False),
    )
