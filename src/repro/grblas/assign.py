"""``GrB_assign``: write a matrix/vector/scalar into a region of a larger
container.  The graph layer uses these to clear rows/columns when nodes are
deleted and to stamp label diagonals."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch
from repro.grblas import _kernels as K
from repro.grblas.extract import IndexSpec, normalize_indices
from repro.grblas.matrix import Matrix
from repro.grblas.ops import BinaryOp
from repro.grblas.vector import Vector

__all__ = ["assign_submatrix", "assign_matrix_scalar", "assign_vector_scalar", "delete_rows_cols"]

_I64 = np.int64


def assign_submatrix(C: Matrix, A: Matrix, rows: IndexSpec, cols: IndexSpec, *, accum: Optional[BinaryOp] = None) -> Matrix:
    """``C[rows, cols] = A`` (returns a new matrix; C is not mutated).

    Without an accumulator the region is overwritten: existing C entries in
    the region that A leaves implicit are deleted, per the GraphBLAS spec.
    """
    r = normalize_indices(rows, C.nrows)
    c = normalize_indices(cols, C.ncols)
    r = np.arange(C.nrows, dtype=_I64) if r is None else r
    c = np.arange(C.ncols, dtype=_I64) if c is None else c
    if A.shape != (len(r), len(c)):
        raise DimensionMismatch(f"assign: A shape {A.shape} != region shape {(len(r), len(c))}")

    a_rows, a_cols, a_vals = A.to_coo()
    new_rows = r[a_rows]
    new_cols = c[a_cols]
    t_keys = K.linear_keys(new_rows, new_cols, C.ncols)
    t_order = np.argsort(t_keys, kind="stable")
    t_keys = t_keys[t_order]
    t_vals = a_vals[t_order].astype(C.dtype.np_dtype, copy=False)

    c_keys, c_vals = C.to_linear()
    if accum is None:
        # drop every existing entry inside the region, then splice in A
        c_rows_all, c_cols_all = K.split_keys(c_keys, C.ncols)
        in_r = np.isin(c_rows_all, r)
        in_c = np.isin(c_cols_all, c)
        outside = ~(in_r & in_c)
        keys, vals = K.merge_union(c_keys[outside], c_vals[outside], t_keys, t_vals, None, C.dtype.np_dtype)
    else:
        keys, vals = K.merge_union(c_keys, c_vals, t_keys, t_vals, accum, C.dtype.np_dtype)

    out = Matrix(C.nrows, C.ncols, C.dtype)
    rows_out, cols_out = K.split_keys(keys, C.ncols)
    out.indptr = K.rows_to_indptr(rows_out, C.nrows)
    out.indices = cols_out
    out.values = vals
    return out


def assign_matrix_scalar(C: Matrix, value, rows: IndexSpec, cols: IndexSpec, *, accum: Optional[BinaryOp] = None) -> Matrix:
    """``C[rows, cols] = s`` — dense fill of the region with one value."""
    r = normalize_indices(rows, C.nrows)
    c = normalize_indices(cols, C.ncols)
    r = np.arange(C.nrows, dtype=_I64) if r is None else r
    c = np.arange(C.ncols, dtype=_I64) if c is None else c
    rr = np.repeat(r, len(c))
    cc = np.tile(c, len(r))
    block = Matrix.from_coo(
        np.arange(len(r), dtype=_I64).repeat(len(c)),
        np.tile(np.arange(len(c), dtype=_I64), len(r)),
        value,
        nrows=len(r),
        ncols=len(c),
        dtype=C.dtype,
    )
    return assign_submatrix(C, block, r, c, accum=accum)


def assign_vector_scalar(u: Vector, value, indices: IndexSpec = None) -> Vector:
    """``u[indices] = s`` (returns a new vector)."""
    idx = normalize_indices(indices, u.size)
    idx = np.arange(u.size, dtype=_I64) if idx is None else np.unique(idx)
    fill = np.full(len(idx), value, dtype=u.dtype.np_dtype)
    keys, vals = K.merge_union(u.indices, u.values, idx, fill, None, u.dtype.np_dtype)
    return Vector(u.size, u.dtype, indices=keys, values=vals)


def delete_rows_cols(C: Matrix, rows: Optional[np.ndarray] = None, cols: Optional[np.ndarray] = None) -> Matrix:
    """Remove every entry in the given rows and/or columns (node deletion:
    clearing row *and* column ``i`` of each adjacency matrix)."""
    c_rows, c_cols, c_vals = C.to_coo()
    keep = np.ones(len(c_rows), dtype=bool)
    if rows is not None and len(rows):
        keep &= ~np.isin(c_rows, rows)
    if cols is not None and len(cols):
        keep &= ~np.isin(c_cols, cols)
    indptr = K.rows_to_indptr(c_rows[keep], C.nrows)
    return Matrix(C.nrows, C.ncols, C.dtype, indptr=indptr, indices=c_cols[keep], values=c_vals[keep])
