"""Operation descriptors (GrB_Descriptor).

A descriptor modifies how an operation treats its inputs, mask and output:

* ``transpose_a`` / ``transpose_b`` — use the transpose of input 0 / 1
  (``GrB_INP0``/``GrB_INP1`` with ``GrB_TRAN``).
* ``mask_complement`` — compute where the mask is *absent/false*
  (``GrB_COMP``).
* ``mask_structural`` — mask by structure (presence) rather than value
  (``GrB_STRUCTURE``).
* ``replace`` — clear the output's untouched entries (``GrB_REPLACE``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

__all__ = ["Descriptor", "NULL", "T0", "T1", "T0T1", "R", "C", "S", "RC", "CS", "RSC"]


@dataclass(frozen=True)
class Descriptor:
    transpose_a: bool = False
    transpose_b: bool = False
    mask_complement: bool = False
    mask_structural: bool = False
    replace: bool = False

    def with_(self, **kwargs) -> "Descriptor":
        """Return a copy with the given flags overridden."""
        return _dc_replace(self, **kwargs)

    def __repr__(self) -> str:
        flags = [
            name
            for name, on in [
                ("T0", self.transpose_a),
                ("T1", self.transpose_b),
                ("COMP", self.mask_complement),
                ("STRUCT", self.mask_structural),
                ("REPLACE", self.replace),
            ]
            if on
        ]
        return f"Descriptor({'+'.join(flags) or 'NULL'})"


# Common pre-built descriptors, named after the SuiteSparse shorthands.
NULL = Descriptor()
T0 = Descriptor(transpose_a=True)
T1 = Descriptor(transpose_b=True)
T0T1 = Descriptor(transpose_a=True, transpose_b=True)
R = Descriptor(replace=True)
C = Descriptor(mask_complement=True)
S = Descriptor(mask_structural=True)
RC = Descriptor(replace=True, mask_complement=True)
CS = Descriptor(mask_complement=True, mask_structural=True)
RSC = Descriptor(replace=True, mask_complement=True, mask_structural=True)
