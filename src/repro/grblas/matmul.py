"""Masked, accumulated matrix products: ``mxm``, ``mxv``, ``vxm``.

These are the operations RedisGraph's traversal engine is built from: a
`MATCH (a)-[:R]->(b)` pattern compiles to ``F.mxm(R, any_pair)`` where
``F`` selects the frontier rows, and BFS layers are ``q.vxm(A)`` with a
complemented visited mask — exactly the calls implemented here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch
from repro.grblas import _kernels as K
from repro.grblas._write import finalize_matrix, finalize_vector, masked_accum_write
from repro.grblas.matrix import Matrix
from repro.grblas.ops import BinaryOp
from repro.grblas.semiring import Semiring
from repro.grblas.types import BOOL, promote
from repro.grblas.vector import Vector

__all__ = ["mxm", "mxv", "vxm"]


def _output_dtype(ring: Semiring, a_dtype, b_dtype):
    """Result domain of ``a ⊕.⊗ b``: the multiply's fixed type, the picked
    operand's type for positional multiplies, else the promoted type."""
    if ring.add.op.result_type is not None:
        return ring.add.op.result_type
    if ring.mult.result_type is not None:
        return ring.mult.result_type
    if ring.mult.positional == "first":
        return a_dtype
    if ring.mult.positional == "second":
        return b_dtype
    if ring.mult.positional == "one":
        return promote(a_dtype, b_dtype)
    return promote(a_dtype, b_dtype)


def _gather_operand(B, needed_rows):
    """CSR arrays of the right operand, restricted to the rows a product
    will actually gather.  Delta-overlay views expose ``rows_csr`` and merge
    only those rows (the flush-free traversal fast path); plain matrices
    hand back their arrays unchanged."""
    rows_csr = getattr(B, "rows_csr", None)
    if rows_csr is None:
        return B.indptr, B.indices, B.values
    rows = np.unique(np.asarray(needed_rows, dtype=np.int64))
    return rows_csr(rows)


def mxm(
    A: Matrix,
    B: Matrix,
    ring: Semiring,
    *,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc=None,
    out: Optional[Matrix] = None,
) -> Matrix:
    """``C⟨M⟩ accum= A ⊕.⊗ B`` (with optional input transposes via desc)."""
    if desc is not None and desc.transpose_a:
        A = A.transpose()
    if desc is not None and desc.transpose_b:
        B = B.transpose()
    if A.ncols != B.nrows:
        raise DimensionMismatch(f"mxm: inner dimensions differ ({A.shape} x {B.shape})")
    out_dtype = _output_dtype(ring, A.dtype, B.dtype)
    structural = ring.is_structural

    b_indptr, b_indices, b_values = _gather_operand(B, A.indices)
    rows, cols, vals = K.esc_spgemm(
        A.nrows,
        A.indptr,
        A.indices,
        None if structural else A.values,
        b_indptr,
        b_indices,
        None if structural else b_values,
        B.ncols,
        ring,
        out_dtype.np_dtype,
    )
    t_keys = K.linear_keys(rows, cols, B.ncols)
    if vals is None:
        vals = np.ones(len(t_keys), dtype=out_dtype.np_dtype)

    if out is None:
        out = Matrix(A.nrows, B.ncols, out_dtype)
        c_keys = np.empty(0, dtype=np.int64)
        c_vals = np.empty(0, dtype=out.dtype.np_dtype)
    else:
        if out.shape != (A.nrows, B.ncols):
            raise DimensionMismatch(f"mxm: output shape {out.shape} != {(A.nrows, B.ncols)}")
        c_keys, c_vals = out.to_linear()
    keys, final_vals = masked_accum_write(
        c_keys,
        c_vals,
        t_keys,
        vals,
        out.dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=out.shape,
    )
    return finalize_matrix(out, keys, final_vals)


def mxv(
    A: Matrix,
    v: Vector,
    ring: Semiring,
    *,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc=None,
    out: Optional[Vector] = None,
) -> Vector:
    """``w⟨m⟩ accum= A ⊕.⊗ v``."""
    if desc is not None and desc.transpose_a:
        A = A.transpose()
    if A.ncols != v.size:
        raise DimensionMismatch(f"mxv: A.ncols={A.ncols} != v.size={v.size}")
    out_dtype = _output_dtype(ring, A.dtype, v.dtype)
    structural = ring.is_structural
    idx, vals = K.mxv_kernel(
        A.nrows,
        A.indptr,
        A.indices,
        None if structural else A.values,
        v.indices,
        None if structural else v.values,
        ring,
        out_dtype.np_dtype,
    )
    if vals is None:
        vals = np.ones(len(idx), dtype=out_dtype.np_dtype)
    if out is None:
        out = Vector(A.nrows, out_dtype)
        c_keys = np.empty(0, dtype=np.int64)
        c_vals = np.empty(0, dtype=out.dtype.np_dtype)
    else:
        if out.size != A.nrows:
            raise DimensionMismatch(f"mxv: output size {out.size} != {A.nrows}")
        c_keys, c_vals = out.indices, out.values
    keys, final_vals = masked_accum_write(
        c_keys,
        c_vals,
        idx,
        vals,
        out.dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=(out.size,),
    )
    return finalize_vector(out, keys, final_vals)


def vxm(
    v: Vector,
    B: Matrix,
    ring: Semiring,
    *,
    mask=None,
    accum: Optional[BinaryOp] = None,
    desc=None,
    out: Optional[Vector] = None,
) -> Vector:
    """``w⟨m⟩ accum= v ⊕.⊗ B`` — the BFS frontier-expansion call."""
    if desc is not None and desc.transpose_b:
        B = B.transpose()
    if v.size != B.nrows:
        raise DimensionMismatch(f"vxm: v.size={v.size} != B.nrows={B.nrows}")
    out_dtype = _output_dtype(ring, v.dtype, B.dtype)
    structural = ring.is_structural

    # masked-kernel pushdown: a complemented structural mask with no
    # accumulator and an empty output (the BFS layer call) filters inside
    # the kernel instead of after it
    drop_dense = None
    if structural and accum is None and (out is None or out.nvals == 0):
        from repro.grblas.mask import resolve_mask

        resolved = resolve_mask(mask, desc)
        if resolved is not None:
            true_keys, complement = resolved
            if complement:
                drop_dense = np.zeros(B.ncols, dtype=bool)
                drop_dense[true_keys] = True
                mask = None
                if desc is not None:
                    desc = desc.with_(mask_complement=False, mask_structural=False)

    b_indptr, b_indices, b_values = _gather_operand(B, v.indices)
    idx, vals = K.vxm_kernel(
        v.indices,
        None if structural else v.values,
        b_indptr,
        b_indices,
        None if structural else b_values,
        ring,
        out_dtype.np_dtype,
        drop_dense=drop_dense,
    )
    if vals is None:
        vals = np.ones(len(idx), dtype=out_dtype.np_dtype)
    if out is None:
        out = Vector(B.ncols, out_dtype)
        c_keys = np.empty(0, dtype=np.int64)
        c_vals = np.empty(0, dtype=out.dtype.np_dtype)
    else:
        if out.size != B.ncols:
            raise DimensionMismatch(f"vxm: output size {out.size} != {B.ncols}")
        c_keys, c_vals = out.indices, out.values
    keys, final_vals = masked_accum_write(
        c_keys,
        c_vals,
        idx,
        vals,
        out.dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=(out.size,),
    )
    return finalize_vector(out, keys, final_vals)
