"""``GrB_extract``: submatrix / subvector / row / column extraction.

Row extraction is a pure gather over CSR ranges (``concat_ranges``); column
renumbering is a sorted-membership lookup.  ``rows``/``cols`` accept
``None`` (GrB_ALL), a slice, or an integer array whose *order defines the
output numbering* (GraphBLAS semantics — this is what lets the traversal
engine pick an arbitrary batch of frontier nodes as matrix rows).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import IndexOutOfBounds, InvalidValue
from repro.grblas import _kernels as K
from repro.grblas.matrix import Matrix
from repro.grblas.vector import Vector

__all__ = ["extract_submatrix", "extract_row", "extract_col", "extract_subvector", "normalize_indices"]

_I64 = np.int64
IndexSpec = Union[None, slice, Sequence[int], np.ndarray]


def normalize_indices(spec: IndexSpec, dim: int) -> Optional[np.ndarray]:
    """Resolve an index spec against a dimension; None means ALL."""
    if spec is None:
        return None
    if isinstance(spec, slice):
        return np.arange(*spec.indices(dim), dtype=_I64)
    idx = np.asarray(spec, dtype=_I64)
    if idx.ndim != 1:
        raise InvalidValue("index arrays must be 1-D")
    if len(idx) and (idx.min() < 0 or idx.max() >= dim):
        raise IndexOutOfBounds(f"index out of range for dimension {dim}")
    return idx


def _gather_rows(A: Matrix, rows: np.ndarray):
    """Return COO of the selected rows, renumbered 0..len(rows)-1."""
    lens = np.diff(A.indptr)[rows]
    gather = K.concat_ranges(A.indptr[rows], lens)
    out_rows = np.repeat(np.arange(len(rows), dtype=_I64), lens)
    return out_rows, A.indices[gather], A.values[gather]


def extract_submatrix(A: Matrix, rows: IndexSpec, cols: IndexSpec) -> Matrix:
    """``C = A[rows, cols]`` with output axes ordered as given."""
    r = normalize_indices(rows, A.nrows)
    c = normalize_indices(cols, A.ncols)

    if r is None:
        out_rows = np.repeat(np.arange(A.nrows, dtype=_I64), np.diff(A.indptr))
        out_cols = A.indices
        out_vals = A.values
        nrows = A.nrows
    else:
        out_rows, out_cols, out_vals = _gather_rows(A, r)
        nrows = len(r)

    if c is None:
        ncols = A.ncols
        indptr = K.rows_to_indptr(out_rows, nrows)
        return Matrix(nrows, ncols, A.dtype, indptr=indptr, indices=out_cols.copy(), values=out_vals.copy())

    # column filter + renumber (c may be in arbitrary order; must be unique)
    order = np.argsort(c, kind="stable")
    sorted_c = c[order]
    if len(sorted_c) > 1 and np.any(np.diff(sorted_c) == 0):
        raise InvalidValue("duplicate column indices in extract are not supported")
    present, pos = K.membership(sorted_c, out_cols)
    keep = np.flatnonzero(present)
    new_cols = order[pos[keep]]
    rows_k = out_rows[keep]
    vals_k = out_vals[keep]
    # renumbering can break intra-row sortedness when c is unordered
    indptr, indices, values = K.coo_to_csr(rows_k, new_cols, vals_k, nrows, len(c), None)
    return Matrix(nrows, len(c), A.dtype, indptr=indptr, indices=indices, values=values)


def extract_row(A: Matrix, i: int) -> Vector:
    """Row ``i`` as a vector of length ncols."""
    cols, vals = A.row(int(i))
    return Vector(A.ncols, A.dtype, indices=cols.copy(), values=vals.copy())


def extract_col(A: Matrix, j: int) -> Vector:
    """Column ``j`` as a vector of length nrows (O(nnz) scan)."""
    if not 0 <= j < A.ncols:
        raise IndexOutOfBounds(f"column {j} out of range [0, {A.ncols})")
    hit = A.indices == j
    rows = np.repeat(np.arange(A.nrows, dtype=_I64), np.diff(A.indptr))[hit]
    return Vector(A.nrows, A.dtype, indices=rows, values=A.values[hit].copy())


def extract_subvector(u: Vector, indices: IndexSpec) -> Vector:
    """``w = u[indices]``, output ordered as the index spec."""
    idx = normalize_indices(indices, u.size)
    if idx is None:
        return u.dup()
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    present, pos = K.membership(u.indices, sorted_idx)
    keep = np.flatnonzero(present)
    new_idx = order[keep]
    vals = u.values[pos[keep]]
    reorder = np.argsort(new_idx, kind="stable")
    return Vector(len(idx), u.dtype, indices=new_idx[reorder], values=vals[reorder])
