"""GraphBLAS output-write semantics: ``C⟨M⟩ accum= T`` on linear keys.

Every operation computes its raw result ``T`` as (sorted linear keys,
values), then funnels through :func:`masked_accum_write`, which implements
the spec's four-step write:

1. ``Z = T`` when no accumulator, else the union-merge ``Z = C ⊙ T``
   (accum applied where both hold an entry).
2. Resolve the mask to the set of *writable* keys.
3. Inside the writable region the output takes ``Z``; outside it the output
   keeps old ``C`` entries — unless ``replace`` is set, which clears them.
4. Values cast into the output domain.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.grblas import _kernels as K
from repro.grblas.mask import check_mask_shape, resolve_mask
from repro.grblas.ops import BinaryOp

__all__ = ["masked_accum_write", "finalize_matrix", "finalize_vector"]

_I64 = np.int64


def masked_accum_write(
    c_keys: np.ndarray,
    c_vals: np.ndarray,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    out_np_dtype: np.dtype,
    *,
    accum: Optional[BinaryOp],
    mask,
    desc,
    shape,
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine existing output ``C`` with computed ``T`` under mask/accum.

    All key arrays are sorted unique linear keys; returns the same form.
    """
    check_mask_shape(mask, shape)
    t_vals = np.asarray(t_vals).astype(out_np_dtype, copy=False)
    c_vals = np.asarray(c_vals).astype(out_np_dtype, copy=False)

    # Step 1: accumulate into Z
    if accum is None or len(c_keys) == 0:
        z_keys, z_vals = t_keys, t_vals
    else:
        z_keys, z_vals = K.merge_union(c_keys, c_vals, t_keys, t_vals, accum, out_np_dtype)

    resolved = resolve_mask(mask, desc)
    replace = bool(desc is not None and desc.replace)
    if resolved is None:
        if accum is None and not replace and len(c_keys):
            # No mask, no accum: the spec says C is *overwritten* by T.
            return z_keys, z_vals
        return z_keys, z_vals

    true_keys, complement = resolved

    # Step 3: writable region takes Z; the rest keeps C (unless replace)
    if complement:
        zk = K.setdiff_sorted(z_keys, true_keys)
        z_in_keys, z_in_vals = z_keys[zk], z_vals[zk]
        if replace or len(c_keys) == 0:
            c_out_keys = np.empty(0, dtype=_I64)
            c_out_vals = np.empty(0, dtype=out_np_dtype)
        else:
            ia, _ = K.intersect_sorted(c_keys, true_keys)
            c_out_keys, c_out_vals = c_keys[ia], c_vals[ia]
    else:
        ia, _ = K.intersect_sorted(z_keys, true_keys)
        z_in_keys, z_in_vals = z_keys[ia], z_vals[ia]
        if replace or len(c_keys) == 0:
            c_out_keys = np.empty(0, dtype=_I64)
            c_out_vals = np.empty(0, dtype=out_np_dtype)
        else:
            kk = K.setdiff_sorted(c_keys, true_keys)
            c_out_keys, c_out_vals = c_keys[kk], c_vals[kk]

    if len(c_out_keys) == 0:
        return z_in_keys, z_in_vals
    if len(z_in_keys) == 0:
        return c_out_keys, c_out_vals
    # regions are disjoint by construction; a merge keeps keys sorted
    keys = np.concatenate([z_in_keys, c_out_keys])
    vals = np.concatenate([z_in_vals, c_out_vals])
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def finalize_matrix(out, keys: np.ndarray, vals: np.ndarray):
    """Install sorted linear (keys, vals) into a Matrix object."""
    rows, cols = K.split_keys(keys, out.ncols)
    out.indptr = K.rows_to_indptr(rows, out.nrows)
    out.indices = cols
    out.values = np.asarray(vals, dtype=out.dtype.np_dtype)
    return out


def finalize_vector(out, keys: np.ndarray, vals: np.ndarray):
    """Install sorted (indices, vals) into a Vector object."""
    out.indices = np.asarray(keys, dtype=_I64)
    out.values = np.asarray(vals, dtype=out.dtype.np_dtype)
    return out
