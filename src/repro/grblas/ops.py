"""Unary and binary operators of the GraphBLAS operator algebra.

Every operator is a small object wrapping a *vectorized* callable over NumPy
arrays.  Binary operators additionally remember the backing NumPy ufunc when
one exists, because :meth:`numpy.ufunc.reduceat` is what makes segmented
(monoid) reductions fast in the Expand-Sort-Compress SpGEMM kernel.

Operators whose result domain differs from the input domain (comparisons)
declare ``result_type``; positional operators (``first``, ``second``,
``pair``) declare which argument carries the result so kernels can skip
value arithmetic entirely — the trick behind structural semirings such as
``any_pair`` used for BFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import DomainMismatch
from repro.grblas.types import BOOL, INT64, GrBType

__all__ = ["UnaryOp", "BinaryOp", "unary", "binary"]


@dataclass(frozen=True)
class UnaryOp:
    """A vectorized elementwise operator of one argument."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray] = field(compare=False)
    result_type: Optional[GrBType] = field(default=None, compare=False)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def __repr__(self) -> str:
        return f"UnaryOp({self.name})"


@dataclass(frozen=True)
class BinaryOp:
    """A vectorized elementwise operator of two arguments.

    Attributes
    ----------
    ufunc:
        The NumPy ufunc implementing the op when one exists (enables
        ``reduceat``-based segmented reduction for the derived monoid).
    result_type:
        Fixed output domain (e.g. BOOL for comparisons); ``None`` means the
        promoted input domain.
    positional:
        ``"first"``/``"second"``/``"one"`` when the result is simply one of
        the inputs (or the constant 1) — lets kernels avoid touching values.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(compare=False)
    ufunc: Optional[np.ufunc] = field(default=None, compare=False)
    result_type: Optional[GrBType] = field(default=None, compare=False)
    positional: Optional[str] = field(default=None, compare=False)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fn(x, y)

    def __repr__(self) -> str:
        return f"BinaryOp({self.name})"


class _Namespace:
    """Attribute/value registry for operator objects (``binary.plus`` etc.)."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._ops: dict[str, object] = {}

    def _register(self, op) -> None:
        self._ops[op.name] = op
        setattr(self, op.name, op)

    def __getitem__(self, name: str):
        try:
            return self._ops[name]
        except KeyError:
            raise DomainMismatch(f"unknown {self._kind} operator: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> list[str]:
        return sorted(self._ops)


unary = _Namespace("unary")
binary = _Namespace("binary")


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

def _safe_minv(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.integer):
        # GraphBLAS defines integer MINV via integer division; avoid the
        # divide-by-zero hardware trap by mapping 0 -> 0 (SuiteSparse extension).
        out = np.zeros_like(x)
        nz = x != 0
        out[nz] = 1 // x[nz] if x.ndim == 0 else np.floor_divide(1, x[nz])
        return out
    with np.errstate(divide="ignore"):
        return np.reciprocal(x.astype(np.float64) if x.dtype == np.bool_ else x)


for _op in [
    UnaryOp("identity", lambda x: np.asarray(x).copy()),
    UnaryOp("ainv", lambda x: -np.asarray(x)),
    UnaryOp("minv", _safe_minv),
    UnaryOp("lnot", lambda x: ~np.asarray(x, dtype=bool), result_type=BOOL),
    UnaryOp("abs", lambda x: np.abs(x)),
    UnaryOp("one", lambda x: np.ones_like(np.asarray(x))),
    UnaryOp("sqrt", lambda x: np.sqrt(np.asarray(x, dtype=np.float64))),
    UnaryOp("exp", lambda x: np.exp(np.asarray(x, dtype=np.float64))),
    UnaryOp("log", lambda x: np.log(np.asarray(x, dtype=np.float64))),
]:
    unary._register(_op)


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

def _first(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.asarray(x).copy()


def _second(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.asarray(y).copy()


def _pair(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(np.asarray(x))


def _any(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # ANY may return either argument; we deterministically pick the first.
    return np.asarray(x).copy()


def _safe_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    y = np.asarray(y)
    if np.issubdtype(np.promote_types(x.dtype, y.dtype), np.integer):
        out = np.zeros(np.broadcast(x, y).shape, dtype=np.promote_types(x.dtype, y.dtype))
        nz = y != 0
        np.floor_divide(x, y, out=out, where=nz)
        return out
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.true_divide(x, y)


def _as_bool(fn):
    def wrapped(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return fn(np.asarray(x, dtype=bool), np.asarray(y, dtype=bool))

    return wrapped


for _op in [
    BinaryOp("plus", np.add, ufunc=np.add),
    BinaryOp("minus", np.subtract, ufunc=np.subtract),
    BinaryOp("times", np.multiply, ufunc=np.multiply),
    BinaryOp("div", _safe_div),
    BinaryOp("min", np.minimum, ufunc=np.minimum),
    BinaryOp("max", np.maximum, ufunc=np.maximum),
    BinaryOp("first", _first, positional="first"),
    BinaryOp("second", _second, positional="second"),
    # PAIR produces the typed constant 1; INT64 so that counting semirings
    # (plus_pair — triangle counting, intersection sizes) count in integers
    # even over Boolean structures.
    BinaryOp("pair", _pair, positional="one", result_type=INT64),
    BinaryOp("any", _any, positional="first"),
    BinaryOp("eq", np.equal, ufunc=np.equal, result_type=BOOL),
    BinaryOp("ne", np.not_equal, ufunc=np.not_equal, result_type=BOOL),
    BinaryOp("lt", np.less, ufunc=np.less, result_type=BOOL),
    BinaryOp("gt", np.greater, ufunc=np.greater, result_type=BOOL),
    BinaryOp("le", np.less_equal, ufunc=np.less_equal, result_type=BOOL),
    BinaryOp("ge", np.greater_equal, ufunc=np.greater_equal, result_type=BOOL),
    BinaryOp("lor", _as_bool(np.logical_or), ufunc=np.logical_or, result_type=BOOL),
    BinaryOp("land", _as_bool(np.logical_and), ufunc=np.logical_and, result_type=BOOL),
    BinaryOp("lxor", _as_bool(np.logical_xor), ufunc=np.logical_xor, result_type=BOOL),
]:
    binary._register(_op)
