"""GraphBLAS domain (type) objects.

A :class:`GrBType` wraps a NumPy dtype and carries the GraphBLAS-style name
(``BOOL``, ``INT64``, ``FP64``, ...).  All stored values in matrices and
vectors are kept in contiguous NumPy arrays of the wrapped dtype; type
promotion between operands follows NumPy's promotion rules, which agree
with the GraphBLAS spec for the types implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DomainMismatch

__all__ = [
    "GrBType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "lookup_type",
    "promote",
    "from_numpy_dtype",
]


@dataclass(frozen=True)
class GrBType:
    """A GraphBLAS scalar domain.

    Attributes
    ----------
    name:
        GraphBLAS-style type name, e.g. ``"FP64"``.
    np_dtype:
        The NumPy dtype values of this domain are stored in.
    """

    name: str
    np_dtype: np.dtype = field(compare=False)

    def __post_init__(self) -> None:  # normalize to a true np.dtype instance
        object.__setattr__(self, "np_dtype", np.dtype(self.np_dtype))

    # -- predicates ---------------------------------------------------------
    @property
    def is_bool(self) -> bool:
        return self.np_dtype == np.bool_

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.np_dtype, np.integer)

    @property
    def is_signed(self) -> bool:
        return np.issubdtype(self.np_dtype, np.signedinteger)

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.np_dtype, np.floating)

    def coerce(self, values: np.ndarray) -> np.ndarray:
        """Cast ``values`` into this domain (no copy when already right)."""
        return np.asarray(values, dtype=self.np_dtype)

    def __repr__(self) -> str:
        return f"GrBType({self.name})"


BOOL = GrBType("BOOL", np.bool_)
INT8 = GrBType("INT8", np.int8)
INT16 = GrBType("INT16", np.int16)
INT32 = GrBType("INT32", np.int32)
INT64 = GrBType("INT64", np.int64)
UINT8 = GrBType("UINT8", np.uint8)
UINT16 = GrBType("UINT16", np.uint16)
UINT32 = GrBType("UINT32", np.uint32)
UINT64 = GrBType("UINT64", np.uint64)
FP32 = GrBType("FP32", np.float32)
FP64 = GrBType("FP64", np.float64)

_ALL_TYPES = [
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
]

_BY_NAME = {t.name: t for t in _ALL_TYPES}
_BY_DTYPE = {t.np_dtype: t for t in _ALL_TYPES}


def lookup_type(spec: "GrBType | str | np.dtype | type") -> GrBType:
    """Resolve a type spec (name, NumPy dtype, Python type) to a GrBType.

    >>> lookup_type("FP64") is FP64
    True
    >>> lookup_type(bool) is BOOL
    True
    """
    if isinstance(spec, GrBType):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec.upper()]
        except KeyError:
            raise DomainMismatch(f"unknown GraphBLAS type name: {spec!r}") from None
    try:
        dt = np.dtype(spec)
    except TypeError:
        raise DomainMismatch(f"cannot interpret {spec!r} as a GraphBLAS type") from None
    return from_numpy_dtype(dt)


def from_numpy_dtype(dt: np.dtype) -> GrBType:
    """Map a NumPy dtype onto the corresponding GraphBLAS domain."""
    try:
        return _BY_DTYPE[np.dtype(dt)]
    except KeyError:
        raise DomainMismatch(f"unsupported dtype for GraphBLAS: {dt!r}") from None


def promote(a: GrBType, b: GrBType) -> GrBType:
    """Result domain of combining values from domains ``a`` and ``b``."""
    return from_numpy_dtype(np.promote_types(a.np_dtype, b.np_dtype))


def type_of_scalar(value: object) -> GrBType:
    """Infer the GraphBLAS domain of a Python/NumPy scalar."""
    if isinstance(value, (bool, np.bool_)):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT64
    if isinstance(value, (float, np.floating)):
        return FP64
    raise DomainMismatch(f"cannot infer GraphBLAS type of {value!r}")
