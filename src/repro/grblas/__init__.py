"""repro.grblas — a GraphBLAS-style sparse linear-algebra engine.

This package reimplements the subset of the GraphBLAS C API that RedisGraph
builds on (SuiteSparse:GraphBLAS in the original system), in pure
Python/NumPy with fully vectorized kernels:

* typed sparse :class:`Matrix` (CSR) and :class:`Vector` (sorted COO),
* an operator algebra of :class:`UnaryOp`, :class:`BinaryOp`,
  :class:`Monoid` and :class:`Semiring` objects,
* masked, accumulated ``mxm`` / ``mxv`` / ``vxm`` where the multiplication
  kernel is an Expand-Sort-Compress SpGEMM,
* element-wise union/intersection (``ewise_add`` / ``ewise_mult``),
  ``extract``, ``assign``, ``apply``, ``select``, ``reduce``,
  ``transpose`` and ``kronecker``,
* Matrix-Market style text I/O.

Naming follows the GraphBLAS spec loosely (``mxm``, ``vxm``, descriptors,
masks) so that algorithms written against SuiteSparse translate line by
line.
"""

from repro.grblas.types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    GrBType,
    lookup_type,
)
from repro.grblas.ops import BinaryOp, UnaryOp, binary, unary
from repro.grblas.monoid import Monoid, monoid
from repro.grblas.semiring import Semiring, semiring
from repro.grblas.descriptor import Descriptor
from repro.grblas.mask import Mask
from repro.grblas.matrix import Matrix
from repro.grblas.vector import Vector
from repro.grblas.scalar import Scalar
from repro.grblas.io import mm_read, mm_write

__all__ = [
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "GrBType",
    "lookup_type",
    "UnaryOp",
    "BinaryOp",
    "unary",
    "binary",
    "Monoid",
    "monoid",
    "Semiring",
    "semiring",
    "Descriptor",
    "Mask",
    "Matrix",
    "Vector",
    "Scalar",
    "mm_read",
    "mm_write",
]
