"""``GrB_kronecker``: the Kronecker product, the generator primitive behind
Graph500/RMAT graphs (a Kronecker power of a small seed matrix)."""

from __future__ import annotations

import numpy as np

from repro.grblas import _kernels as K
from repro.grblas.matrix import Matrix
from repro.grblas.ops import BinaryOp
from repro.grblas.types import promote

__all__ = ["kronecker"]

_I64 = np.int64


def kronecker(A: Matrix, B: Matrix, op: BinaryOp) -> Matrix:
    """``C[ia*Bn + ib, ja*Bm + jb] = op(A[ia,ja], B[ib,jb])`` over stored
    entries; output shape ``(A.nrows*B.nrows, A.ncols*B.ncols)``."""
    a_rows, a_cols, a_vals = A.to_coo()
    b_rows, b_cols, b_vals = B.to_coo()
    na, nb = len(a_rows), len(b_rows)
    out_dtype = op.result_type if op.result_type is not None else promote(A.dtype, B.dtype)
    nrows = A.nrows * B.nrows
    ncols = A.ncols * B.ncols
    if na == 0 or nb == 0:
        return Matrix(nrows, ncols, out_dtype)
    rows = np.repeat(a_rows, nb) * _I64(B.nrows) + np.tile(b_rows, na)
    cols = np.repeat(a_cols, nb) * _I64(B.ncols) + np.tile(b_cols, na)
    if op.positional == "first":
        vals = np.repeat(a_vals, nb)
    elif op.positional == "second":
        vals = np.tile(b_vals, na)
    elif op.positional == "one":
        vals = np.ones(na * nb, dtype=out_dtype.np_dtype)
    else:
        vals = np.asarray(op(np.repeat(a_vals, nb), np.tile(b_vals, na)))
    indptr, indices, values = K.coo_to_csr(rows, cols, vals.astype(out_dtype.np_dtype, copy=False), nrows, ncols, None)
    return Matrix(nrows, ncols, out_dtype, indptr=indptr, indices=indices, values=values)
