"""Monoids: associative binary operators with an identity element.

The performance-critical entry point is :meth:`Monoid.segment_reduce`,
which reduces contiguous runs of a value array in one vectorized call —
the "compress" step of the Expand-Sort-Compress SpGEMM and the engine
behind ``reduce`` (matrix → vector / scalar).

A monoid may also carry a *terminal* value (e.g. ``True`` for LOR): once
seen, the reduction result is known.  Kernels use it to short-circuit
structural reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import DomainMismatch
from repro.grblas.ops import BinaryOp, _Namespace, binary
from repro.grblas.types import GrBType

__all__ = ["Monoid", "monoid"]


@dataclass(frozen=True)
class Monoid:
    """An associative, commutative binary operator with identity.

    ``identity`` may be a concrete value or one of the sentinels
    ``"min"``/``"max"`` meaning the domain's +inf/-inf respectively
    (resolved per dtype at reduction time).
    """

    name: str
    op: BinaryOp = field(compare=False)
    identity: object = field(compare=False)
    terminal: Optional[object] = field(default=None, compare=False)

    # -- identity handling --------------------------------------------------
    def identity_for(self, dtype: np.dtype) -> object:
        """Concrete identity value for a given NumPy dtype."""
        dtype = np.dtype(dtype)
        if self.identity == "min_ident":  # identity of MAX monoid
            if np.issubdtype(dtype, np.floating):
                return -np.inf
            if dtype == np.bool_:
                return False
            return np.iinfo(dtype).min
        if self.identity == "max_ident":  # identity of MIN monoid
            if np.issubdtype(dtype, np.floating):
                return np.inf
            if dtype == np.bool_:
                return True
            return np.iinfo(dtype).max
        return self.identity

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.op(x, y)

    # -- vectorized segmented reduction -------------------------------------
    def segment_reduce(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Reduce ``values`` over segments ``[starts[i], starts[i+1])``.

        ``starts`` must be strictly increasing (no empty segments) and
        ``starts[0] == 0``; the final segment extends to ``len(values)``.
        """
        values = np.asarray(values)
        starts = np.asarray(starts, dtype=np.int64)
        if len(values) == 0:
            return values.copy()
        if self.op.positional in ("first", "one"):
            out = values[starts]
            if self.op.positional == "one":
                out = np.ones_like(out)
            return out
        if self.op.positional == "second":
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:]
            ends[-1] = len(values)
            return values[ends - 1]
        if self.op.ufunc is not None:
            out = self.op.ufunc.reduceat(values, starts)
            # logical ufuncs return bool; arithmetic keeps values.dtype
            return out
        # generic fallback: per-segment Python reduction (rare; only for
        # operators without a backing ufunc, none of which form hot paths)
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = len(values)
        out = np.empty(len(starts), dtype=values.dtype)
        for i, (s, e) in enumerate(zip(starts, ends)):
            acc = values[s]
            for j in range(s + 1, e):
                acc = self.op(np.asarray(acc), np.asarray(values[j]))
            out[i] = acc
        return out

    def reduce_all(self, values: np.ndarray, dtype: Optional[np.dtype] = None) -> object:
        """Reduce a whole array to one scalar (identity when empty)."""
        values = np.asarray(values)
        if dtype is None:
            dtype = values.dtype
        if len(values) == 0:
            return np.dtype(dtype).type(self.identity_for(dtype))
        if self.op.positional in ("first", "any"):
            return values[0]
        if self.op.positional == "second":
            return values[-1]
        if self.op.positional == "one":
            return np.dtype(dtype).type(1)
        if self.op.ufunc is not None:
            return self.op.ufunc.reduce(values)
        acc = values[0]
        for v in values[1:]:
            acc = self.op(np.asarray(acc), np.asarray(v))
        return acc

    def __repr__(self) -> str:
        return f"Monoid({self.name})"


monoid = _Namespace("monoid")

for _m in [
    Monoid("plus", binary.plus, identity=0),
    Monoid("times", binary.times, identity=1),
    Monoid("min", binary.min, identity="max_ident", terminal=None),
    Monoid("max", binary.max, identity="min_ident", terminal=None),
    Monoid("lor", binary.lor, identity=False, terminal=True),
    Monoid("land", binary.land, identity=True, terminal=False),
    Monoid("lxor", binary.lxor, identity=False),
    Monoid("any", binary.any, identity=0),
    Monoid("first", binary.first, identity=0),
    Monoid("second", binary.second, identity=0),
]:
    monoid._register(_m)


def monoid_from_op(op: BinaryOp) -> Monoid:
    """Find the registered monoid built on ``op`` (for accumulators)."""
    for name in monoid.names():
        m = monoid[name]
        if m.op is op:
            return m
    raise DomainMismatch(f"no monoid registered for operator {op.name!r}")
