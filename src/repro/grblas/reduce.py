"""``GrB_reduce``: fold a matrix into a vector (per row/column) or a
matrix/vector into a scalar, using a monoid.

Row reduction exploits CSR adjacency: stored entries of one row are already
contiguous, so a single ``reduceat`` over the non-empty rows' start offsets
folds everything without any sort.
"""

from __future__ import annotations

import numpy as np

from repro.grblas.matrix import Matrix
from repro.grblas.monoid import Monoid
from repro.grblas.scalar import Scalar
from repro.grblas.vector import Vector

__all__ = ["reduce_rows", "reduce_cols", "reduce_matrix_scalar", "reduce_vector_scalar"]


def reduce_rows(A: Matrix, mon: Monoid) -> Vector:
    """``w[i] = ⊕_j A[i,j]`` over stored entries; empty rows stay empty."""
    rowlen = np.diff(A.indptr)
    nonempty = np.flatnonzero(rowlen > 0)
    if len(nonempty) == 0:
        return Vector(A.nrows, A.dtype)
    starts = A.indptr[nonempty]
    reduced = mon.segment_reduce(A.values, starts)
    return Vector(A.nrows, A.dtype, indices=nonempty, values=np.asarray(reduced, dtype=A.dtype.np_dtype))


def reduce_cols(A: Matrix, mon: Monoid) -> Vector:
    """``w[j] = ⊕_i A[i,j]``; implemented as a row-reduce of the transpose."""
    return reduce_rows(A.transpose(), mon)


def reduce_matrix_scalar(A: Matrix, mon: Monoid) -> Scalar:
    out = Scalar(A.dtype)
    if A.nvals:
        out.set(mon.reduce_all(A.values))
    return out


def reduce_vector_scalar(u: Vector, mon: Monoid) -> Scalar:
    out = Scalar(u.dtype)
    if u.nvals:
        out.set(mon.reduce_all(u.values))
    return out
