"""Element-wise operations: union (``eWiseAdd``) and intersection
(``eWiseMult``) of sparse structures, for matrices and vectors."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionMismatch
from repro.grblas import _kernels as K
from repro.grblas._write import finalize_matrix, finalize_vector, masked_accum_write
from repro.grblas.matrix import Matrix
from repro.grblas.ops import BinaryOp
from repro.grblas.types import promote
from repro.grblas.vector import Vector

__all__ = ["ewise_add", "ewise_mult", "ewise_add_vector", "ewise_mult_vector"]


def _result_dtype(op: BinaryOp, a_dtype, b_dtype):
    if op.result_type is not None:
        return op.result_type
    if op.positional == "first":
        return a_dtype
    if op.positional == "second":
        return b_dtype
    return promote(a_dtype, b_dtype)


def _union(ka, va, kb, vb, op: BinaryOp, out_np):
    """Union merge where single-side entries pass through unchanged."""
    keys = np.union1d(ka, kb)
    out = np.empty(len(keys), dtype=out_np)
    in_a, pa = K.membership(ka, keys)
    in_b, pb = K.membership(kb, keys)
    both = in_a & in_b
    only_a = in_a & ~both
    only_b = in_b & ~both
    out[only_a] = va[pa[only_a]]
    out[only_b] = vb[pb[only_b]]
    if both.any():
        out[both] = np.asarray(op(va[pa[both]], vb[pb[both]])).astype(out_np, copy=False)
    return keys, out


def _intersection(ka, va, kb, vb, op: BinaryOp, out_np):
    ia, ib = K.intersect_sorted(ka, kb)
    keys = ka[ia]
    vals = np.asarray(op(va[ia], vb[ib])).astype(out_np, copy=False)
    return keys, vals


def _ewise_matrix(A: Matrix, B: Matrix, op: BinaryOp, combine, *, mask, accum, desc) -> Matrix:
    if desc is not None and desc.transpose_a:
        A = A.transpose()
    if desc is not None and desc.transpose_b:
        B = B.transpose()
    if A.shape != B.shape:
        raise DimensionMismatch(f"ewise: shapes differ {A.shape} vs {B.shape}")
    out_dtype = _result_dtype(op, A.dtype, B.dtype)
    ka, va = A.to_linear()
    kb, vb = B.to_linear()
    t_keys, t_vals = combine(ka, va, kb, vb, op, out_dtype.np_dtype)
    out = Matrix(A.nrows, A.ncols, out_dtype)
    keys, vals = masked_accum_write(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=out_dtype.np_dtype),
        t_keys,
        t_vals,
        out_dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=A.shape,
    )
    return finalize_matrix(out, keys, vals)


def ewise_add(A: Matrix, B: Matrix, op: BinaryOp, *, mask=None, accum=None, desc=None) -> Matrix:
    """``C = A ∪ B`` with ``op`` where both are present (set union)."""
    return _ewise_matrix(A, B, op, _union, mask=mask, accum=accum, desc=desc)


def ewise_mult(A: Matrix, B: Matrix, op: BinaryOp, *, mask=None, accum=None, desc=None) -> Matrix:
    """``C = A ∩ B`` with ``op`` applied pairwise (set intersection)."""
    return _ewise_matrix(A, B, op, _intersection, mask=mask, accum=accum, desc=desc)


def _ewise_vector(u: Vector, v: Vector, op: BinaryOp, combine, *, mask, accum, desc) -> Vector:
    if u.size != v.size:
        raise DimensionMismatch(f"ewise: sizes differ {u.size} vs {v.size}")
    out_dtype = _result_dtype(op, u.dtype, v.dtype)
    t_keys, t_vals = combine(u.indices, u.values, v.indices, v.values, op, out_dtype.np_dtype)
    out = Vector(u.size, out_dtype)
    keys, vals = masked_accum_write(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=out_dtype.np_dtype),
        t_keys,
        t_vals,
        out_dtype.np_dtype,
        accum=accum,
        mask=mask,
        desc=desc,
        shape=(u.size,),
    )
    return finalize_vector(out, keys, vals)


def ewise_add_vector(u: Vector, v: Vector, op: BinaryOp, *, mask=None, accum=None, desc=None) -> Vector:
    return _ewise_vector(u, v, op, _union, mask=mask, accum=accum, desc=desc)


def ewise_mult_vector(u: Vector, v: Vector, op: BinaryOp, *, mask=None, accum=None, desc=None) -> Vector:
    return _ewise_vector(u, v, op, _intersection, mask=mask, accum=accum, desc=desc)
