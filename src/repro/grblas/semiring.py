"""Semirings: (add monoid, multiply operator) pairs driving ``mxm``.

The registry covers the semirings RedisGraph and classic GraphBLAS
algorithms use:

* ``lor_land`` / ``any_pair`` — Boolean reachability (graph traversal);
  ``any_pair`` is the *structural* semiring: kernels never touch values.
* ``plus_times`` — conventional arithmetic (PageRank, counting walks).
* ``plus_pair`` — counting set intersections (triangle counting).
* ``min_plus`` / ``min_first`` / ``min_second`` — shortest paths / BFS parent.
* ``plus_first`` / ``plus_second`` — weighted aggregation along one side.
* ``max_second`` / ``any_second`` — label/value propagation (components).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grblas.monoid import Monoid, monoid
from repro.grblas.ops import BinaryOp, _Namespace, binary

__all__ = ["Semiring", "semiring"]


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring ``(⊕ monoid, ⊗ binary op)``.

    ``C = A ⊕.⊗ B`` computes ``C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]`` over the
    stored (structurally present) entries only.
    """

    name: str
    add: Monoid = field(compare=False)
    mult: BinaryOp = field(compare=False)

    @property
    def is_structural(self) -> bool:
        """True when every output value is the constant one/True regardless
        of operand values: the multiply produces a constant 1 and the add
        monoid of all-ones is 1.  Kernels then skip value arithmetic and
        only deduplicate output coordinates (the BFS fast path).

        ``plus_pair`` is *not* structural: its outputs count intersections.
        """
        return self.mult.positional == "one" and self.add.name not in ("plus", "lxor")

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


semiring = _Namespace("semiring")


def _make(add_name: str, mult_name: str) -> Semiring:
    s = Semiring(f"{add_name}_{mult_name}", monoid[add_name], binary[mult_name])
    semiring._register(s)
    return s


# Boolean / structural
_make("lor", "land")
_make("any", "pair")
_make("lor", "pair")
_make("land", "lor")
# Arithmetic
_make("plus", "times")
_make("plus", "pair")
_make("plus", "first")
_make("plus", "second")
_make("plus", "min")
_make("times", "times")
# Tropical (shortest path)
_make("min", "plus")
_make("min", "times")
_make("min", "first")
_make("min", "second")
_make("min", "max")
_make("max", "plus")
_make("max", "second")
_make("max", "first")
_make("max", "times")
# Selection / propagation
_make("any", "second")
_make("any", "first")
_make("min", "pair")
