"""The GraphBLAS sparse matrix (GrB_Matrix), stored as canonical CSR.

Invariants (checked by :meth:`Matrix.check_invariants`, exercised heavily by
the property-based tests):

* ``indptr`` has length ``nrows + 1``, is non-decreasing, ``indptr[0] == 0``
  and ``indptr[-1] == nvals``;
* within every row, column indices are strictly increasing (sorted, no
  duplicates);
* ``values`` has exactly ``nvals`` entries of ``dtype``'s NumPy dtype.

The matrix is *logically immutable* through the operation API (operations
return new matrices); the few in-place mutators (``set_element``,
``remove_element``, ``resize``, ``clear``) rebuild the arrays and are meant
for graph-mutation paths, which batch their updates through the delta-matrix
layer in :mod:`repro.graph` instead of calling these per edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

import numpy as np

from repro.errors import DimensionMismatch, IndexOutOfBounds, InvalidValue
from repro.grblas import _kernels as K
from repro.grblas.types import BOOL, GrBType, lookup_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.grblas.descriptor import Descriptor
    from repro.grblas.monoid import Monoid
    from repro.grblas.ops import BinaryOp, UnaryOp
    from repro.grblas.semiring import Semiring
    from repro.grblas.vector import Vector

__all__ = ["Matrix"]

_I64 = np.int64


class Matrix:
    """A sparse ``nrows × ncols`` matrix over a GraphBLAS domain."""

    __slots__ = ("nrows", "ncols", "dtype", "indptr", "indices", "values")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        dtype: "GrBType | str | np.dtype | type" = BOOL,
        *,
        indptr: Optional[np.ndarray] = None,
        indices: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
    ) -> None:
        if nrows < 0 or ncols < 0:
            raise InvalidValue("matrix dimensions must be non-negative")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.dtype = lookup_type(dtype)
        if indptr is None:
            self.indptr = np.zeros(self.nrows + 1, dtype=_I64)
            self.indices = np.empty(0, dtype=_I64)
            self.values = np.empty(0, dtype=self.dtype.np_dtype)
        else:
            self.indptr = np.asarray(indptr, dtype=_I64)
            self.indices = np.asarray(indices, dtype=_I64)
            if values is None:
                values = np.ones(len(self.indices), dtype=self.dtype.np_dtype)
            self.values = np.asarray(values, dtype=self.dtype.np_dtype)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def new(cls, dtype, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_new`` — an empty matrix of the given shape/domain."""
        return cls(nrows, ncols, dtype)

    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values=None,
        *,
        nrows: int,
        ncols: int,
        dtype=None,
        dup: "Optional[Monoid]" = None,
    ) -> "Matrix":
        """Build from COO triples (``GrB_Matrix_build``).

        ``values`` may be a scalar (broadcast), an array, or ``None`` for an
        all-True Boolean structure.  Duplicates combine via ``dup``
        (last-wins when omitted).
        """
        rows = np.asarray(rows, dtype=_I64)
        cols = np.asarray(cols, dtype=_I64)
        if len(rows) != len(cols):
            raise DimensionMismatch("rows and cols must have equal length")
        if len(rows) and (rows.min() < 0 or rows.max() >= nrows):
            raise IndexOutOfBounds(f"row index out of range for nrows={nrows}")
        if len(cols) and (cols.min() < 0 or cols.max() >= ncols):
            raise IndexOutOfBounds(f"col index out of range for ncols={ncols}")
        if values is None:
            dtype = lookup_type(dtype) if dtype is not None else BOOL
            vals = np.ones(len(rows), dtype=dtype.np_dtype)
        elif np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            dtype = lookup_type(dtype) if dtype is not None else lookup_type(np.asarray(values).dtype)
            vals = np.full(len(rows), values, dtype=dtype.np_dtype)
        else:
            vals = np.asarray(values)
            if len(vals) != len(rows):
                raise DimensionMismatch("values length must match rows/cols")
            dtype = lookup_type(dtype) if dtype is not None else lookup_type(vals.dtype)
            vals = vals.astype(dtype.np_dtype, copy=False)
        indptr, indices, out_vals = K.coo_to_csr(rows, cols, vals, nrows, ncols, dup)
        return cls(nrows, ncols, dtype, indptr=indptr, indices=indices, values=out_vals)

    @classmethod
    def from_edges(cls, src, dst, *, nrows: int, ncols: Optional[int] = None) -> "Matrix":
        """Boolean adjacency matrix from an edge list (duplicates collapse)."""
        return cls.from_coo(src, dst, None, nrows=nrows, ncols=ncols if ncols is not None else nrows, dtype=BOOL)

    @classmethod
    def from_linear(cls, keys: np.ndarray, *, nrows: int, ncols: int) -> "Matrix":
        """Boolean matrix from sorted-unique linear keys (``i * ncols + j``).

        The inverse of :meth:`to_linear` for Boolean structures — the
        delta-matrix flush/bulk-splice fast path, which works in linear-key
        space and should not round-trip through COO building/sorting."""
        keys = np.asarray(keys, dtype=_I64)
        if len(keys) and (keys[0] < 0 or keys[-1] >= nrows * ncols):
            raise IndexOutOfBounds(f"linear key out of range for {nrows}x{ncols}")
        rows, cols = K.split_keys(keys, ncols)
        return cls(
            nrows,
            ncols,
            BOOL,
            indptr=K.rows_to_indptr(rows, nrows),
            indices=cols,
            values=np.ones(len(cols), dtype=np.bool_),
        )

    @classmethod
    def from_dense(cls, array, *, keep_zeros: bool = False) -> "Matrix":
        """Build from a dense 2-D array; zeros become implicit (unless
        ``keep_zeros``)."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise DimensionMismatch("from_dense expects a 2-D array")
        dtype = lookup_type(arr.dtype)
        if keep_zeros:
            rows, cols = np.indices(arr.shape)
            rows, cols = rows.ravel(), cols.ravel()
        else:
            rows, cols = np.nonzero(arr)
        return cls.from_coo(rows, cols, arr[rows, cols], nrows=arr.shape[0], ncols=arr.shape[1], dtype=dtype)

    @classmethod
    def identity(cls, n: int, dtype=BOOL, value=True) -> "Matrix":
        """Diagonal matrix with a constant value (label matrices use this)."""
        idx = np.arange(n, dtype=_I64)
        return cls.from_coo(idx, idx, value, nrows=n, ncols=n, dtype=dtype)

    @classmethod
    def diag(cls, vector: "Vector") -> "Matrix":
        """``GxB_Matrix_diag`` — place a vector on the main diagonal."""
        idx, vals = vector.to_coo()
        return cls.from_coo(idx, idx, vals, nrows=vector.size, ncols=vector.size, dtype=vector.dtype)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nvals(self) -> int:
        """Number of stored entries (``GrB_Matrix_nvals``)."""
        return len(self.indices)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract (rows, cols, values), sorted by (row, col)."""
        rows = np.repeat(np.arange(self.nrows, dtype=_I64), np.diff(self.indptr))
        return rows, self.indices.copy(), self.values.copy()

    def to_linear(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted linear keys, values) — the kernel-facing view."""
        rows = np.repeat(np.arange(self.nrows, dtype=_I64), np.diff(self.indptr))
        return K.linear_keys(rows, self.indices, self.ncols), self.values

    def to_dense(self, fill=0) -> np.ndarray:
        """Materialize as a dense array with ``fill`` at implicit entries."""
        out_dtype = np.promote_types(self.dtype.np_dtype, np.asarray(fill).dtype) if fill != 0 else self.dtype.np_dtype
        out = np.full((self.nrows, self.ncols), fill, dtype=out_dtype)
        rows = np.repeat(np.arange(self.nrows, dtype=_I64), np.diff(self.indptr))
        out[rows, self.indices] = self.values
        return out

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy view of row ``i``'s (column indices, values)."""
        if not 0 <= i < self.nrows:
            raise IndexOutOfBounds(f"row {i} out of range [0, {self.nrows})")
        s, e = self.indptr[i], self.indptr[i + 1]
        return self.indices[s:e], self.values[s:e]

    def row_degree(self) -> np.ndarray:
        """Number of stored entries in every row (out-degree vector)."""
        return np.diff(self.indptr)

    def __getitem__(self, key):
        """Scalar extract: ``A[i, j]`` → value or None when absent."""
        i, j = key
        cols, vals = self.row(int(i))
        pos = np.searchsorted(cols, j)
        if pos < len(cols) and cols[pos] == j:
            return vals[pos].item()
        return None

    def __contains__(self, key) -> bool:
        return self[key] is not None

    def __eq__(self, other) -> bool:  # structural + value equality
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.isequal(other)

    def __hash__(self):  # pragma: no cover - identity hashing for containers
        return id(self)

    def isequal(self, other: "Matrix") -> bool:
        """Same shape, same pattern, same values (dtype-insensitive compare)."""
        if self.shape != other.shape or self.nvals != other.nvals:
            return False
        if not np.array_equal(self.indptr, other.indptr):
            return False
        if not np.array_equal(self.indices, other.indices):
            return False
        return bool(np.all(self.values == other.values))

    def check_invariants(self) -> None:
        """Raise AssertionError when the canonical-CSR invariants are broken."""
        assert len(self.indptr) == self.nrows + 1
        assert self.indptr[0] == 0 and self.indptr[-1] == len(self.indices)
        assert np.all(np.diff(self.indptr) >= 0)
        assert len(self.values) == len(self.indices)
        if len(self.indices):
            assert self.indices.min() >= 0 and self.indices.max() < self.ncols
        for i in range(self.nrows):
            s, e = self.indptr[i], self.indptr[i + 1]
            if e - s > 1:
                assert np.all(np.diff(self.indices[s:e]) > 0), f"row {i} not strictly sorted"

    def __repr__(self) -> str:
        return f"<Matrix {self.nrows}x{self.ncols} {self.dtype.name} nvals={self.nvals}>"

    # ------------------------------------------------------------------
    # Mutation (single-element; bulk updates go through repro.graph deltas)
    # ------------------------------------------------------------------
    def dup(self) -> "Matrix":
        """Deep copy (``GrB_Matrix_dup``)."""
        return Matrix(
            self.nrows,
            self.ncols,
            self.dtype,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            values=self.values.copy(),
        )

    def clear(self) -> None:
        """Remove all entries, keeping shape and domain."""
        self.indptr = np.zeros(self.nrows + 1, dtype=_I64)
        self.indices = np.empty(0, dtype=_I64)
        self.values = np.empty(0, dtype=self.dtype.np_dtype)

    def set_element(self, i: int, j: int, value) -> None:
        """Insert or overwrite one entry (``GrB_Matrix_setElement``)."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) outside {self.shape}")
        s, e = self.indptr[i], self.indptr[i + 1]
        pos = s + np.searchsorted(self.indices[s:e], j)
        if pos < e and self.indices[pos] == j:
            self.values[pos] = value
            return
        self.indices = np.insert(self.indices, pos, j)
        self.values = np.insert(self.values, pos, np.asarray(value, dtype=self.dtype.np_dtype))
        self.indptr[i + 1 :] += 1

    def remove_element(self, i: int, j: int) -> bool:
        """Delete one entry; returns whether it existed."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) outside {self.shape}")
        s, e = self.indptr[i], self.indptr[i + 1]
        pos = s + np.searchsorted(self.indices[s:e], j)
        if pos >= e or self.indices[pos] != j:
            return False
        self.indices = np.delete(self.indices, pos)
        self.values = np.delete(self.values, pos)
        self.indptr[i + 1 :] -= 1
        return True

    def resize(self, nrows: int, ncols: int) -> None:
        """Grow or shrink in place; entries outside the new shape drop
        (``GrB_Matrix_resize``).  RedisGraph grows adjacency matrices this
        way as nodes are created."""
        if nrows < 0 or ncols < 0:
            raise InvalidValue("matrix dimensions must be non-negative")
        rows, cols, vals = self.to_coo()
        keep = (rows < nrows) & (cols < ncols)
        indptr, indices, values = K.coo_to_csr(rows[keep], cols[keep], vals[keep], nrows, ncols, None)
        self.nrows, self.ncols = int(nrows), int(ncols)
        self.indptr, self.indices, self.values = indptr, indices, values

    # ------------------------------------------------------------------
    # Operation façade (lazy imports avoid module cycles)
    # ------------------------------------------------------------------
    def mxm(self, other: "Matrix", ring: "Semiring", *, mask=None, accum=None, desc=None, out=None) -> "Matrix":
        from repro.grblas import matmul

        return matmul.mxm(self, other, ring, mask=mask, accum=accum, desc=desc, out=out)

    def mxv(self, v: "Vector", ring: "Semiring", *, mask=None, accum=None, desc=None, out=None) -> "Vector":
        from repro.grblas import matmul

        return matmul.mxv(self, v, ring, mask=mask, accum=accum, desc=desc, out=out)

    def ewise_add(self, other: "Matrix", op: "BinaryOp", *, mask=None, accum=None, desc=None) -> "Matrix":
        from repro.grblas import ewise

        return ewise.ewise_add(self, other, op, mask=mask, accum=accum, desc=desc)

    def ewise_mult(self, other: "Matrix", op: "BinaryOp", *, mask=None, accum=None, desc=None) -> "Matrix":
        from repro.grblas import ewise

        return ewise.ewise_mult(self, other, op, mask=mask, accum=accum, desc=desc)

    def apply(self, op: "UnaryOp", *, mask=None, accum=None, desc=None) -> "Matrix":
        from repro.grblas import apply as _apply

        return _apply.apply_matrix(self, op, mask=mask, accum=accum, desc=desc)

    def apply_bind(self, op: "BinaryOp", scalar, *, right: bool = True) -> "Matrix":
        from repro.grblas import apply as _apply

        return _apply.apply_bind_matrix(self, op, scalar, right=right)

    def select(self, predicate, value=None) -> "Matrix":
        from repro.grblas import select as _select

        return _select.select_matrix(self, predicate, value)

    def reduce_rows(self, mon: "Monoid") -> "Vector":
        from repro.grblas import reduce as _reduce

        return _reduce.reduce_rows(self, mon)

    def reduce_cols(self, mon: "Monoid") -> "Vector":
        from repro.grblas import reduce as _reduce

        return _reduce.reduce_cols(self, mon)

    def reduce_scalar(self, mon: "Monoid"):
        from repro.grblas import reduce as _reduce

        return _reduce.reduce_matrix_scalar(self, mon)

    def extract(self, rows, cols) -> "Matrix":
        from repro.grblas import extract as _extract

        return _extract.extract_submatrix(self, rows, cols)

    def extract_row(self, i: int) -> "Vector":
        from repro.grblas import extract as _extract

        return _extract.extract_row(self, i)

    def extract_col(self, j: int) -> "Vector":
        from repro.grblas import extract as _extract

        return _extract.extract_col(self, j)

    def assign(self, other, rows, cols, *, accum=None) -> "Matrix":
        from repro.grblas import assign as _assign

        return _assign.assign_submatrix(self, other, rows, cols, accum=accum)

    def transpose(self) -> "Matrix":
        t_indptr, t_indices, t_values = K.csr_transpose(self.nrows, self.ncols, self.indptr, self.indices, self.values)
        return Matrix(self.ncols, self.nrows, self.dtype, indptr=t_indptr, indices=t_indices, values=t_values)

    @property
    def T(self) -> "Matrix":
        return self.transpose()

    def kronecker(self, other: "Matrix", op: "BinaryOp") -> "Matrix":
        from repro.grblas import kron as _kron

        return _kron.kronecker(self, other, op)

    def cast(self, dtype) -> "Matrix":
        """Return a copy re-typed into another domain."""
        dtype = lookup_type(dtype)
        return Matrix(
            self.nrows,
            self.ncols,
            dtype,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            values=self.values.astype(dtype.np_dtype),
        )

    def pattern(self) -> "Matrix":
        """The Boolean structure of this matrix (values → True)."""
        return Matrix(
            self.nrows,
            self.ncols,
            BOOL,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            values=np.ones(self.nvals, dtype=np.bool_),
        )
