"""Vectorized sparse kernels shared by the GraphBLAS operations.

Everything in this module operates on plain NumPy arrays — no Python-level
loop ever runs per nonzero.  The central kernel is :func:`esc_spgemm`, an
Expand-Sort-Compress sparse matrix-matrix multiply:

1. **Expand** — for every stored entry ``A[i,k]`` gather the whole row
   ``B[k,:]`` using ``repeat``/``cumsum`` index arithmetic, producing the
   multiset of partial products as a COO triple list.
2. **Sort** — order the triples by ``(i, j)`` using a single stable sort on
   linearized ``i*ncols + j`` keys.
3. **Compress** — reduce runs of equal keys with the semiring's add monoid
   via ``ufunc.reduceat``.

The expansion is tiled over row blocks so the intermediate never exceeds a
configurable budget — the same discipline GPU SpGEMM implementations use.
Structural semirings (``any_pair`` and friends) skip value arithmetic
entirely and reduce to a ``np.unique`` over keys, which is the BFS/k-hop
fast path that the paper's traversal engine lives on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.grblas.monoid import Monoid
from repro.grblas.ops import BinaryOp
from repro.grblas.semiring import Semiring

__all__ = [
    "concat_ranges",
    "coo_to_csr",
    "csr_transpose",
    "esc_spgemm",
    "gather_rows_linear",
    "intersect_sorted",
    "linear_keys",
    "membership",
    "merge_sorted_unique",
    "merge_union",
    "mxv_kernel",
    "overlay_merge_rows",
    "range_slices_sorted",
    "rows_to_indptr",
    "run_starts",
    "setdiff_sorted",
    "split_keys",
    "vxm_kernel",
]

_I64 = np.int64
_EMPTY_I64 = np.empty(0, dtype=_I64)

# Default cap on the size of one expanded tile (number of partial products).
# 2^23 triples of (int64 key + float64 value) is ~128 MiB transient.
DEFAULT_TILE_BUDGET = 1 << 23


# ---------------------------------------------------------------------------
# Index arithmetic helpers
# ---------------------------------------------------------------------------

def concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+lens[i])`` for all ``i``.

    This is the gather-index generator of the Expand step: with ``starts``
    pointing at B-row beginnings and ``lens`` the B-row lengths, the result
    indexes every partial product's B entry.  Fully vectorized.
    """
    starts = np.asarray(starts, dtype=_I64)
    lens = np.asarray(lens, dtype=_I64)
    total = int(lens.sum())
    if total == 0:
        return _EMPTY_I64
    cum = np.cumsum(lens)
    # position of each output element within its own segment
    seg_offsets = np.arange(total, dtype=_I64) - np.repeat(cum - lens, lens)
    return np.repeat(starts, lens) + seg_offsets


def run_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where a new run of equal values begins in a sorted array."""
    n = len(sorted_keys)
    if n == 0:
        return _EMPTY_I64
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
    return np.flatnonzero(first)


def rows_to_indptr(sorted_rows: np.ndarray, nrows: int) -> np.ndarray:
    """Build a CSR ``indptr`` from row indices sorted ascending."""
    indptr = np.zeros(nrows + 1, dtype=_I64)
    if len(sorted_rows):
        counts = np.bincount(sorted_rows, minlength=nrows)
        np.cumsum(counts, out=indptr[1:])
    return indptr


def linear_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Linearize ``(row, col)`` to a single sortable int64 key."""
    return np.asarray(rows, dtype=_I64) * _I64(ncols) + np.asarray(cols, dtype=_I64)


def split_keys(keys: np.ndarray, ncols: int) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`linear_keys`."""
    keys = np.asarray(keys, dtype=_I64)
    return keys // _I64(ncols), keys % _I64(ncols)


# ---------------------------------------------------------------------------
# Sorted-set operations (masks, eWise)
# ---------------------------------------------------------------------------

def membership(sorted_ref: np.ndarray, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """For each query key return (present?, position-in-ref).

    ``sorted_ref`` must be sorted and unique.  Positions are only meaningful
    where ``present`` is True.
    """
    queries = np.asarray(queries)
    if len(sorted_ref) == 0 or len(queries) == 0:
        return np.zeros(len(queries), dtype=bool), np.zeros(len(queries), dtype=_I64)
    pos = np.searchsorted(sorted_ref, queries)
    pos_c = np.minimum(pos, len(sorted_ref) - 1)
    present = sorted_ref[pos_c] == queries
    return present, pos_c


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Positions ``(ia, ib)`` such that ``a[ia] == b[ib]`` for sorted-unique
    arrays ``a`` and ``b``."""
    in_b, pos_b = membership(b, a)
    ia = np.flatnonzero(in_b)
    return ia, pos_b[ia]


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Positions of elements of sorted-unique ``a`` that are *not* in ``b``."""
    in_b, _ = membership(b, a)
    return np.flatnonzero(~in_b)


def merge_union(
    ka: np.ndarray,
    va: Optional[np.ndarray],
    kb: np.ndarray,
    vb: Optional[np.ndarray],
    op: Optional[BinaryOp],
    out_dtype: np.dtype,
) -> Tuple[np.ndarray, np.ndarray]:
    """Union-merge two sorted-unique keyed value sets.

    Where a key exists in only one input, its value is copied; where it
    exists in both, ``op(va, vb)`` is applied (GraphBLAS eWiseAdd / accum
    semantics).  Returns ``(keys, values)``, keys sorted unique.
    """
    ka = np.asarray(ka, dtype=_I64)
    kb = np.asarray(kb, dtype=_I64)
    keys = np.union1d(ka, kb)
    out = np.empty(len(keys), dtype=out_dtype)
    in_a, pa = membership(ka, keys)
    in_b, pb = membership(kb, keys)
    both = in_a & in_b
    only_a = in_a & ~both
    only_b = in_b & ~both
    if va is not None:
        out[only_a] = va[pa[only_a]]
        out[only_b] = vb[pb[only_b]]
        if op is None:
            # no accumulator: B (the new result) wins on collisions
            out[both] = vb[pb[both]]
        else:
            out[both] = op(va[pa[both]], vb[pb[both]]).astype(out_dtype, copy=False)
    return keys, out


def merge_sorted_unique(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two sorted-unique int64 key arrays."""
    if len(a) == 0:
        return np.asarray(b, dtype=_I64)
    if len(b) == 0:
        return np.asarray(a, dtype=_I64)
    merged = np.concatenate([a, b])
    merged.sort(kind="stable")
    return merged[np.concatenate([[True], merged[1:] != merged[:-1]])]


# ---------------------------------------------------------------------------
# Delta-overlay merges (the flush-free read path of repro.graph.DeltaMatrix)
# ---------------------------------------------------------------------------

def range_slices_sorted(sorted_keys: np.ndarray, rows: np.ndarray, ncols: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row (start, stop) slice bounds of ``sorted_keys`` for each row in
    ``rows`` — i.e. the keys falling in ``[row*ncols, (row+1)*ncols)``."""
    rows = np.asarray(rows, dtype=_I64)
    lo = np.searchsorted(sorted_keys, rows * _I64(ncols), side="left")
    hi = np.searchsorted(sorted_keys, (rows + 1) * _I64(ncols), side="left")
    return lo, hi


def gather_rows_linear(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray, ncols: int
) -> np.ndarray:
    """Linear keys of the CSR entries in the given rows, sorted ascending
    (requires ``rows`` sorted unique)."""
    rows = np.asarray(rows, dtype=_I64)
    starts = indptr[rows]
    lens = indptr[rows + 1] - starts
    cols = indices[concat_ranges(starts, lens)]
    return np.repeat(rows, lens) * _I64(ncols) + cols


def overlay_merge_rows(
    rows: np.ndarray,
    ncols: int,
    base_indptr: np.ndarray,
    base_indices: np.ndarray,
    add_keys: np.ndarray,
    del_keys: np.ndarray,
) -> np.ndarray:
    """Merged linear keys of ``(base ⊕ Δ+) ⊖ Δ−`` restricted to a row set.

    ``rows`` must be sorted unique; ``add_keys``/``del_keys`` are sorted
    unique linear keys.  Cost is proportional to the stored entries of the
    *requested* rows plus the deltas touching them — never the whole matrix.
    This is the per-row-range kernel behind flush-free DeltaMatrix reads.
    """
    rows = np.asarray(rows, dtype=_I64)
    base_lin = gather_rows_linear(base_indptr, base_indices, rows, ncols)
    if len(add_keys):
        lo, hi = range_slices_sorted(add_keys, rows, ncols)
        add_sel = add_keys[concat_ranges(lo, hi - lo)]
        merged = merge_sorted_unique(base_lin, add_sel)
    else:
        merged = base_lin
    if len(del_keys) and len(merged):
        merged = merged[setdiff_sorted(merged, del_keys)]
    return merged


# ---------------------------------------------------------------------------
# COO -> CSR canonicalization and transpose
# ---------------------------------------------------------------------------

def coo_to_csr(
    rows: np.ndarray,
    cols: np.ndarray,
    values: Optional[np.ndarray],
    nrows: int,
    ncols: int,
    dup: Optional[Monoid] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Canonicalize COO triples into sorted, duplicate-free CSR arrays.

    Duplicate coordinates are combined with the ``dup`` monoid (last-wins
    when ``dup`` is None, matching ``GrB_Matrix_build``'s SECOND behaviour).
    """
    rows = np.asarray(rows, dtype=_I64)
    cols = np.asarray(cols, dtype=_I64)
    if len(rows) == 0:
        empty_vals = None if values is None else np.asarray(values)[:0].copy()
        return np.zeros(nrows + 1, dtype=_I64), _EMPTY_I64.copy(), empty_vals
    keys = linear_keys(rows, cols, ncols)
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    starts = run_starts(skeys)
    ukeys = skeys[starts]
    out_vals: Optional[np.ndarray] = None
    if values is not None:
        values = np.asarray(values)
        svals = values[order]
        if len(ukeys) == len(skeys):
            out_vals = svals
        elif dup is None:
            # last occurrence wins
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:]
            ends[-1] = len(skeys)
            out_vals = svals[ends - 1]
        else:
            out_vals = dup.segment_reduce(svals, starts)
    urows, ucols = split_keys(ukeys, ncols)
    return rows_to_indptr(urows, nrows), ucols, out_vals


def csr_transpose(
    nrows: int,
    ncols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    values: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Transpose a CSR matrix, returning CSR arrays of the transpose.

    A stable counting argsort over column indices keeps rows sorted inside
    each output row, preserving the canonical-form invariant.
    """
    nnz = len(indices)
    if nnz == 0:
        empty_vals = None if values is None else values[:0].copy()
        return np.zeros(ncols + 1, dtype=_I64), _EMPTY_I64.copy(), empty_vals
    rows = np.repeat(np.arange(nrows, dtype=_I64), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    t_indices = rows[order]
    t_indptr = rows_to_indptr(indices[order], ncols)
    t_values = None if values is None else values[order]
    return t_indptr, t_indices, t_values


# ---------------------------------------------------------------------------
# ESC SpGEMM
# ---------------------------------------------------------------------------

def _row_blocks(expansion_per_row: np.ndarray, budget: int) -> list[tuple[int, int]]:
    """Partition rows into contiguous blocks whose total expansion stays
    under ``budget`` (single oversized rows become singleton blocks)."""
    nrows = len(expansion_per_row)
    if nrows == 0:
        return []
    cum = np.cumsum(expansion_per_row, dtype=_I64)
    blocks: list[tuple[int, int]] = []
    start = 0
    base = 0
    while start < nrows:
        # furthest row such that cumulative expansion from `start` <= budget
        end = int(np.searchsorted(cum, base + budget, side="right"))
        if end <= start:
            end = start + 1  # oversized single row: process alone
        blocks.append((start, end))
        base = int(cum[end - 1])
        start = end
    return blocks


def esc_spgemm(
    a_nrows: int,
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_values: Optional[np.ndarray],
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
    b_values: Optional[np.ndarray],
    b_ncols: int,
    ring: Semiring,
    out_dtype: np.dtype,
    tile_budget: int = DEFAULT_TILE_BUDGET,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Sparse ``C = A ⊕.⊗ B`` via Expand-Sort-Compress, tiled by row blocks.

    Returns canonical COO ``(rows, cols, values)`` sorted by (row, col);
    ``values`` is None for structural semirings (all-implicit-one output).
    """
    structural = ring.is_structural
    mult = ring.mult
    add = ring.add
    b_rowlen = np.diff(b_indptr)

    a_rowlen = np.diff(a_indptr)
    # expansion cost of each A row = sum of B-row lengths over its columns
    lens_all = b_rowlen[a_indices]
    cum_lens = np.zeros(len(lens_all) + 1, dtype=_I64)
    np.cumsum(lens_all, out=cum_lens[1:])
    row_expansion = cum_lens[a_indptr[1:]] - cum_lens[a_indptr[:-1]]

    out_rows_parts: list[np.ndarray] = []
    out_cols_parts: list[np.ndarray] = []
    out_vals_parts: list[np.ndarray] = []

    for r0, r1 in _row_blocks(row_expansion, tile_budget):
        p0, p1 = int(a_indptr[r0]), int(a_indptr[r1])
        if p0 == p1:
            continue
        a_cols_blk = a_indices[p0:p1]
        lens = b_rowlen[a_cols_blk]
        total = int(lens.sum())
        if total == 0:
            continue
        arows_blk = np.repeat(np.arange(r0, r1, dtype=_I64), a_rowlen[r0:r1])
        out_rows = np.repeat(arows_blk, lens)
        gather = concat_ranges(b_indptr[a_cols_blk], lens)
        out_cols = b_indices[gather]
        keys = linear_keys(out_rows, out_cols, b_ncols)

        if structural:
            ukeys = np.unique(keys)
            urows, ucols = split_keys(ukeys, b_ncols)
            out_rows_parts.append(urows)
            out_cols_parts.append(ucols)
            continue

        # value path: compute partial products then segment-reduce
        if mult.positional == "first":
            prods = np.repeat(a_values[p0:p1], lens)
        elif mult.positional == "second":
            prods = b_values[gather]
        elif mult.positional == "one":
            prods = np.ones(total, dtype=out_dtype)
        else:
            av = np.repeat(a_values[p0:p1], lens)
            prods = mult(av, b_values[gather])
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        sprods = np.asarray(prods)[order]
        starts = run_starts(skeys)
        reduced = add.segment_reduce(sprods, starts)
        urows, ucols = split_keys(skeys[starts], b_ncols)
        out_rows_parts.append(urows)
        out_cols_parts.append(ucols)
        out_vals_parts.append(np.asarray(reduced, dtype=out_dtype))

    if not out_rows_parts:
        vals = None if structural else np.empty(0, dtype=out_dtype)
        return _EMPTY_I64.copy(), _EMPTY_I64.copy(), vals
    rows = np.concatenate(out_rows_parts)
    cols = np.concatenate(out_cols_parts)
    vals = None if structural else np.concatenate(out_vals_parts)
    return rows, cols, vals


# ---------------------------------------------------------------------------
# Matrix-vector kernels
# ---------------------------------------------------------------------------

def mxv_kernel(
    a_nrows: int,
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_values: Optional[np.ndarray],
    v_indices: np.ndarray,
    v_values: Optional[np.ndarray],
    ring: Semiring,
    out_dtype: np.dtype,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """``w = A ⊕.⊗ v``: for each stored A entry whose column is present in
    ``v``, form the product and reduce within each row (rows are already
    contiguous in CSR order, so no sort is needed)."""
    if len(a_indices) == 0 or len(v_indices) == 0:
        return _EMPTY_I64.copy(), (None if ring.is_structural else np.empty(0, dtype=out_dtype))
    present, pos = membership(v_indices, a_indices)
    hit = np.flatnonzero(present)
    if len(hit) == 0:
        return _EMPTY_I64.copy(), (None if ring.is_structural else np.empty(0, dtype=out_dtype))
    rows_of_nz = np.repeat(np.arange(a_nrows, dtype=_I64), np.diff(a_indptr))
    hit_rows = rows_of_nz[hit]
    starts = run_starts(hit_rows)
    out_idx = hit_rows[starts]
    if ring.is_structural:
        return out_idx, None
    mult = ring.mult
    if mult.positional == "first":
        prods = a_values[hit]
    elif mult.positional == "second":
        prods = v_values[pos[hit]]
    elif mult.positional == "one":
        prods = np.ones(len(hit), dtype=out_dtype)
    else:
        prods = mult(a_values[hit], v_values[pos[hit]])
    reduced = ring.add.segment_reduce(np.asarray(prods), starts)
    return out_idx, np.asarray(reduced, dtype=out_dtype)


def vxm_kernel(
    v_indices: np.ndarray,
    v_values: Optional[np.ndarray],
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
    b_values: Optional[np.ndarray],
    ring: Semiring,
    out_dtype: np.dtype,
    drop_dense: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """``w = v ⊕.⊗ B``: gather the B rows selected by ``v``'s pattern (the
    frontier-expansion step of BFS), then sort-reduce by column.

    ``drop_dense`` is a dense Boolean array marking columns to discard
    *before* the sort/unique — the complemented-mask pushdown SuiteSparse
    applies inside its masked kernels.  Filtering the expanded multiset
    first shrinks the sort from |touched edges| to |fresh entries|, which
    is where masked BFS spends its time.
    """
    if len(v_indices) == 0 or len(b_indices) == 0:
        return _EMPTY_I64.copy(), (None if ring.is_structural else np.empty(0, dtype=out_dtype))
    lens = np.diff(b_indptr)[v_indices]
    total = int(lens.sum())
    if total == 0:
        return _EMPTY_I64.copy(), (None if ring.is_structural else np.empty(0, dtype=out_dtype))
    gather = concat_ranges(b_indptr[v_indices], lens)
    cols = b_indices[gather]
    if drop_dense is not None and ring.is_structural:
        cols = cols[~drop_dense[cols]]
        if len(cols) == 0:
            return _EMPTY_I64.copy(), None
        return np.unique(cols), None
    if ring.is_structural:
        return np.unique(cols), None
    mult = ring.mult
    if mult.positional == "first":
        prods = np.repeat(v_values, lens)
    elif mult.positional == "second":
        prods = b_values[gather]
    elif mult.positional == "one":
        prods = np.ones(total, dtype=out_dtype)
    else:
        prods = mult(np.repeat(v_values, lens), b_values[gather])
    order = np.argsort(cols, kind="stable")
    scols = cols[order]
    sprods = np.asarray(prods)[order]
    starts = run_starts(scols)
    reduced = ring.add.segment_reduce(sprods, starts)
    return scols[starts], np.asarray(reduced, dtype=out_dtype)
