"""Write masks.

A mask restricts which output locations an operation may write.  It wraps a
Matrix or Vector plus the two mask-interpretation flags; descriptor flags OR
into these at operation time.  ``Mask.true_keys`` resolves the mask to the
sorted set of writable linear keys (value masks drop falsy entries;
structural masks keep every stored entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import DimensionMismatch

__all__ = ["Mask", "resolve_mask"]


@dataclass(frozen=True)
class Mask:
    """A mask object: ``Mask(M)``, ``Mask(M, complement=True)``, ...

    ``structure=True`` masks by presence; otherwise by truthiness of the
    stored values.  ``complement=True`` inverts the writable region.
    """

    obj: object  # Matrix or Vector (duck-typed to avoid an import cycle)
    complement: bool = False
    structure: bool = False

    def __invert__(self) -> "Mask":
        return Mask(self.obj, complement=not self.complement, structure=self.structure)


def resolve_mask(mask, desc) -> "tuple[np.ndarray, bool] | None":
    """Normalize a mask argument to ``(sorted true-keys, complement?)``.

    ``mask`` may be None, a Mask, or a bare Matrix/Vector (treated as a
    value mask).  Descriptor complement/structural flags are OR-ed in.
    Returns None when no mask restricts the write.
    """
    if mask is None:
        if desc is not None and desc.mask_complement:
            # complement of "no mask" = write nowhere
            return np.empty(0, dtype=np.int64), True
        return None
    if isinstance(mask, Mask):
        obj = mask.obj
        complement = mask.complement
        structure = mask.structure
    else:
        obj = mask
        complement = False
        structure = False
    if desc is not None:
        complement = complement or desc.mask_complement
        structure = structure or desc.mask_structural
    keys, values = obj.to_linear() if hasattr(obj, "to_linear") else (obj.indices, obj.values)
    if structure:
        true_keys = np.asarray(keys, dtype=np.int64)
    else:
        truthy = np.asarray(values, dtype=bool)
        true_keys = np.asarray(keys, dtype=np.int64)[truthy]
    return true_keys, complement


def check_mask_shape(mask, shape) -> None:
    """Validate that a mask's container matches the output shape."""
    if mask is None:
        return
    obj = mask.obj if isinstance(mask, Mask) else mask
    obj_shape = getattr(obj, "shape", None)
    if obj_shape is None:
        obj_shape = (getattr(obj, "size"),)
    if tuple(obj_shape) != tuple(shape):
        raise DimensionMismatch(f"mask shape {obj_shape} does not match output shape {shape}")
