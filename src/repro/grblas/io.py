"""Matrix-Market (coordinate) text I/O for matrices.

Supports ``real``, ``integer`` and ``pattern`` fields with the ``general``
symmetry, which covers every dataset the benchmark harness materializes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import InvalidValue
from repro.grblas.matrix import Matrix
from repro.grblas.types import BOOL, FP64, INT64

__all__ = ["mm_read", "mm_write"]


def mm_write(target: Union[str, Path, TextIO], A: Matrix, comment: str = "") -> None:
    """Write ``A`` in MatrixMarket coordinate format (1-based indices)."""
    own = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w") if own else target
    try:
        if A.dtype.is_bool:
            field = "pattern"
        elif A.dtype.is_integer:
            field = "integer"
        else:
            field = "real"
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        rows, cols, vals = A.to_coo()
        fh.write(f"{A.nrows} {A.ncols} {A.nvals}\n")
        if field == "pattern":
            for r, c in zip(rows, cols):
                fh.write(f"{r + 1} {c + 1}\n")
        elif field == "integer":
            for r, c, v in zip(rows, cols, vals):
                fh.write(f"{r + 1} {c + 1} {int(v)}\n")
        else:
            for r, c, v in zip(rows, cols, vals):
                fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if own:
            fh.close()


def mm_read(source: Union[str, Path, TextIO]) -> Matrix:
    """Read a MatrixMarket coordinate file into a Matrix."""
    own = isinstance(source, (str, Path))
    fh: TextIO = open(source) if own else source
    try:
        header = fh.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise InvalidValue("not a MatrixMarket file")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise InvalidValue(f"unsupported MatrixMarket format: {fmt}")
        if symmetry not in ("general", "symmetric"):
            raise InvalidValue(f"unsupported symmetry: {symmetry}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        data = fh.read().split()
    finally:
        if own:
            fh.close()

    if field == "pattern":
        arr = np.array(data, dtype=np.int64).reshape(nnz, 2) if nnz else np.empty((0, 2), dtype=np.int64)
        rows, cols = arr[:, 0] - 1, arr[:, 1] - 1
        vals = None
        dtype = BOOL
    else:
        raw = np.array(data, dtype=np.float64).reshape(nnz, 3) if nnz else np.empty((0, 3), dtype=np.float64)
        rows = raw[:, 0].astype(np.int64) - 1
        cols = raw[:, 1].astype(np.int64) - 1
        if field == "integer":
            vals = raw[:, 2].astype(np.int64)
            dtype = INT64
        else:
            vals = raw[:, 2]
            dtype = FP64

    if symmetry == "symmetric":
        off = rows != cols
        rows, cols = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
        )
        if vals is not None:
            vals = np.concatenate([vals, vals[off]])
    return Matrix.from_coo(rows, cols, vals, nrows=nrows, ncols=ncols, dtype=dtype)
