"""``GrB_select``: keep the entries satisfying a predicate.

Named predicates follow SuiteSparse: positional (``tril``, ``triu``,
``diag``, ``offdiag``) and value comparisons (``valueeq`` .. ``valuegt``).
A callable predicate receives ``(rows, cols, values)`` arrays and returns a
Boolean keep-mask, enabling arbitrary structural filters.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import InvalidValue
from repro.grblas import _kernels as K
from repro.grblas.matrix import Matrix
from repro.grblas.vector import Vector

__all__ = ["select_matrix", "select_vector"]

Predicate = Union[str, Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]]

_VALUE_PREDICATES = {
    "valueeq": lambda v, t: v == t,
    "valuene": lambda v, t: v != t,
    "valuelt": lambda v, t: v < t,
    "valuele": lambda v, t: v <= t,
    "valuegt": lambda v, t: v > t,
    "valuege": lambda v, t: v >= t,
    "nonzero": lambda v, t: v != 0,
}

_POSITIONAL_PREDICATES = {
    "tril": lambda r, c, t: c <= r + t,
    "triu": lambda r, c, t: c >= r + t,
    "diag": lambda r, c, t: c == r + t,
    "offdiag": lambda r, c, t: c != r + t,
}


def _keep_mask(rows, cols, vals, predicate: Predicate, value) -> np.ndarray:
    if callable(predicate):
        return np.asarray(predicate(rows, cols, vals), dtype=bool)
    name = predicate.lower()
    if name in _VALUE_PREDICATES:
        thunk = 0 if value is None else value
        return np.asarray(_VALUE_PREDICATES[name](vals, thunk), dtype=bool)
    if name in _POSITIONAL_PREDICATES:
        thunk = 0 if value is None else int(value)
        return np.asarray(_POSITIONAL_PREDICATES[name](rows, cols, thunk), dtype=bool)
    raise InvalidValue(f"unknown select predicate: {predicate!r}")


def select_matrix(A: Matrix, predicate: Predicate, value=None) -> Matrix:
    rows, cols, vals = A.to_coo()
    keep = _keep_mask(rows, cols, vals, predicate, value)
    indptr = K.rows_to_indptr(rows[keep], A.nrows)
    return Matrix(A.nrows, A.ncols, A.dtype, indptr=indptr, indices=cols[keep], values=vals[keep])


def select_vector(u: Vector, predicate: Predicate, value=None) -> Vector:
    zeros = np.zeros(u.nvals, dtype=np.int64)
    keep = _keep_mask(zeros, u.indices, u.values, predicate, value)
    return Vector(u.size, u.dtype, indices=u.indices[keep], values=u.values[keep])
