"""Morsel-driven intra-query parallelism (ISSUE 6).

A read-only plan is split into *morsels* — slices of a leaf scan's id
range, carried through the stateless stretch of operators sitting on top
of it — and the morsels run concurrently on a process-wide worker pool.
The coordinator (the thread executing the query) consumes results in
partition order, so the merged stream is byte-for-byte the serial
stream: partition order equals serial emission order, and every
per-partition operator chain is a pure map over its slice.

Scheduling is cooperative: up to ``workers + 2`` morsels are in flight;
when the coordinator reaches the head morsel before any worker picked it
up, it cancels the queued job and runs the morsel inline instead of
idling.  Morsel thunks never submit work themselves (stateful operators
are never inside a partition chain), so the pool cannot deadlock on
nested waits.  Safety: the coordinator holds the graph read lock for the
whole query, which excludes writers, so morsel workers read the graph
lock-free (reads have been non-mutating since the delta-flush redesign).

``parallel_workers=1`` disables the driver entirely and reproduces the
serial engine exactly — the differential-testing hook, mirroring what
``exec_batch_size=1`` does for vectorization.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle via repro.rediskv package
    from repro.rediskv.threadpool import ThreadPool

__all__ = ["MorselDriver", "shared_pool", "shutdown_shared_pool"]

# One pool for all queries' morsels, grown to the largest worker count
# requested.  Separate from the server's query pool on purpose: a query
# coordinator waiting on its morsels must never occupy the same pool its
# morsels are queued behind.
_pool: Optional["ThreadPool"] = None
_pool_lock = threading.Lock()

# Bounded queue: queries racing to submit past this depth run morsels
# inline on their own coordinator instead of piling up memory.
_MAX_QUEUED_MORSELS = 256


def shared_pool(workers: int) -> "ThreadPool":
    """The process-wide morsel pool, grown to at least ``workers``."""
    # imported lazily: repro.rediskv's package __init__ pulls in the server
    # stack, which imports execplan back — a cycle at module-import time
    from repro.rediskv.threadpool import ThreadPool

    global _pool
    with _pool_lock:
        if _pool is None or _pool._shutdown:
            _pool = ThreadPool(workers, name="morsel-worker", max_queue=_MAX_QUEUED_MORSELS)
        elif _pool.size < workers:
            _pool.grow(workers)
        return _pool


def shutdown_shared_pool() -> None:
    """Drain and stop the shared pool (tests; a later query recreates it)."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(cancel_pending=True)
            _pool = None


class MorselDriver:
    """Schedules one query's pipeline fragments across the shared pool.

    Attached to the run's :class:`~repro.execplan.expressions.
    ExecContext` by the executor for read-only plans when
    ``parallel_workers > 1``; operators reach it through
    ``PlanOp.child_stream`` / ``PlanOp.partitions``.
    """

    __slots__ = ("workers", "morsel_size", "morsels")

    def __init__(self, workers: int, morsel_size: int) -> None:
        self.workers = workers
        self.morsel_size = morsel_size
        self.morsels = 0  # total morsels dispatched by this run

    def stream(self, op, ctx) -> Optional[Iterator]:
        """``op``'s batch stream evaluated morsel-parallel, or None when
        the operator (or its slice of the plan) cannot partition."""
        parts = op.partitions(ctx)
        if parts is None or len(parts) < 2:
            return None
        self.morsels += len(parts)
        return self._merged(parts)

    def _merged(self, parts: List[Callable[[], Iterator]]) -> Iterator:
        # each worker materializes its partition's batches; the
        # coordinator re-yields them in partition order
        thunks = [(lambda t=t: list(t())) for t in parts]
        for batches in self.run_ordered(thunks):
            yield from batches

    def run_ordered(self, thunks: List[Callable[[], object]]) -> Iterator:
        """Run thunks on the pool, yielding results in submission order.

        Keeps a bounded in-flight window; the head thunk is stolen back
        (cancel + run inline) whenever no worker has started it, so the
        coordinator thread is itself a worker rather than a waiter.
        """
        pool = shared_pool(self.workers)
        it = iter(thunks)
        window: deque = deque()
        limit = self.workers + 2

        def fill() -> None:
            while len(window) < limit:
                try:
                    t = next(it)
                except StopIteration:
                    return
                window.append((t, pool.try_submit(t)))

        try:
            fill()
            while window:
                t, job = window.popleft()
                fill()
                if job is None or job.cancel():
                    yield t()  # queue full, or stolen back before a worker got it
                else:
                    yield job.result()
        finally:
            while window:
                _, job = window.popleft()
                if job is not None:
                    job.cancel()
