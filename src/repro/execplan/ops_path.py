"""The ``ProjectPath`` operation — materialize named path variables.

``MATCH p = (a)-[r:T]->(b)-[:U*1..2]->(c)`` plans its pattern chain
exactly as before (the planner is free to reorder/reverse traversals);
this op sits on top and assembles, per record, the
:class:`~repro.graph.path.PathValue` in *pattern* order from the bound
endpoints.  Fixed-length segments read their (possibly anonymous, then
planner-named) edge variable straight from the record.  Variable-length
segments carry no per-hop bindings — ``CondVarLenTraverse`` emits each
destination at its first-reach hop count — so the op reconstructs one
shortest realization between the bound endpoints with a parent-tracking
BFS over the same collapsed expression matrix the traversal used, which
by construction has the same length the traversal admitted the row for.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import GraphError
from repro.algorithms import bfs_parents
from repro.execplan.algebraic import AlgebraicExpression
from repro.execplan.expressions import ExecContext
from repro.execplan.ops_base import PlanOp
from repro.execplan.ops_traverse import _edge_candidates
from repro.execplan.record import Record
from repro.graph.entities import Edge, Node
from repro.graph.path import PathValue

__all__ = ["PathSegment", "ProjectPath"]


class PathSegment:
    """Compile-time spec of one relationship hop of a named path."""

    __slots__ = ("edge_slot", "types", "direction", "expression", "variable_length")

    def __init__(
        self,
        edge_slot: Optional[int],
        types: Tuple[str, ...],
        direction: str,
        expression: Optional[AlgebraicExpression],
        variable_length: bool,
    ) -> None:
        self.edge_slot = edge_slot
        self.types = types
        self.direction = direction
        self.expression = expression
        self.variable_length = variable_length


def _pick_edge(graph, src: int, dst: int, types: Tuple[str, ...], direction: str) -> Edge:
    candidates = _edge_candidates(graph, src, dst, types, direction)
    if not candidates:  # pragma: no cover - the traversal proved the hop exists
        raise GraphError(f"no edge realizes path hop {src}->{dst}")
    return Edge(graph, min(eid for eid, _ in candidates))


class ProjectPath(PlanOp):
    """Extend each record with the assembled path value."""

    name = "ProjectPath"

    def __init__(
        self,
        child: PlanOp,
        path_var: str,
        node_slots: List[int],
        segments: List[PathSegment],
    ) -> None:
        out_layout = child.out_layout.extend(path_var)
        super().__init__([child], out_layout)
        self._path_var = path_var
        self._path_slot = out_layout.slot(path_var)
        self._node_slots = node_slots
        self._segments = segments

    def describe(self) -> str:
        return f"ProjectPath | {self._path_var} ({len(self._segments)} hops)"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        width = len(self.out_layout)
        for record in self.children[0].produce(ctx):
            out = list(record) + [None] * (width - len(record))
            out[self._path_slot] = self._assemble(ctx, record)
            yield out

    # ------------------------------------------------------------------
    def _assemble(self, ctx: ExecContext, record: Record) -> Optional[PathValue]:
        graph = ctx.graph
        endpoints = [record[slot] for slot in self._node_slots]
        if any(e is None for e in endpoints):
            return None  # OPTIONAL MATCH hole: the path is null too
        nodes: List[Node] = [endpoints[0]]
        edges: List[Edge] = []
        for i, seg in enumerate(self._segments):
            src, dst = endpoints[i], endpoints[i + 1]
            if not seg.variable_length:
                edge = record[seg.edge_slot]
                if edge is None:
                    return None
                edges.append(edge)
                nodes.append(dst)
                continue
            if src.id == dst.id:
                # zero-hop realization of a *0..n segment
                nodes[-1] = dst
                continue
            for u, v in self._chain(ctx, seg, src.id, dst.id):
                edges.append(_pick_edge(graph, u, v, seg.types, seg.direction))
                nodes.append(Node(graph, v))
        return PathValue(nodes, edges)

    def _chain(self, ctx: ExecContext, seg: PathSegment, src: int, dst: int) -> List[Tuple[int, int]]:
        """(u, v) hops of one shortest src→dst walk over the segment's
        collapsed expression matrix."""
        A = seg.expression.single_matrix(ctx)
        parents = bfs_parents(A, src)
        idx, vals = parents.to_coo()
        parent = dict(zip(idx.tolist(), vals.tolist()))
        if dst not in parent:  # pragma: no cover - traversal admitted the row
            raise GraphError(f"path endpoint {dst} unreachable during reconstruction")
        chain = [dst]
        while chain[-1] != src:
            chain.append(parent[int(chain[-1])])
        chain.reverse()
        return list(zip(chain, chain[1:]))
