"""Traversal operations — where Cypher meets GraphBLAS.

``ConditionalTraverse`` consumes incoming record *batches*, builds a
frontier extraction matrix, and fires one sparse matrix-product chain per
batch (paper §II: "graph traversals … translated into linear algebraic
operations on sparse matrices").  The product's COO output stays columnar
— ``(src_row, dst_id, edge_id)`` arrays become the next batch via one
``take`` gather instead of exploding into per-row Python lists.
``ExpandInto`` closes cycles whose both endpoints are already bound;
``CondVarLenTraverse`` runs the masked-BFS loop for ``[*min..max]``
patterns.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.execplan.algebraic import AlgebraicExpression, frontier_matrix
from repro.execplan.batch import EntityColumn, RecordBatch, as_entity_ids
from repro.execplan.expressions import ExecContext
from repro.execplan.ops_base import PlanOp
from repro.execplan.record import Layout, Record
from repro.graph.entities import Edge, Node
from repro.grblas import Mask, Vector, semiring
from repro.grblas.descriptor import Descriptor

__all__ = ["ConditionalTraverse", "ExpandInto", "CondVarLenTraverse"]

_REPLACE = Descriptor(replace=True)
_I64 = np.int64


def _src_ids(batch: RecordBatch, slot: int) -> np.ndarray:
    """Source-node id vector of a batch column (handles either column
    form; traversal sources are never null, as in the row engine)."""
    entity = as_entity_ids(batch.columns[slot])
    if entity is not None:
        return entity[1]
    values = batch.columns[slot].to_objects()
    return np.fromiter((v.id for v in values), dtype=_I64, count=batch.length)


def _rechunk(source: Iterator[RecordBatch], size: int) -> Iterator[RecordBatch]:
    """Split oversized batches (an upstream Unwind may overshoot) so one
    frontier matrix never exceeds the configured granularity."""
    for batch in source:
        yield from batch.chunks(size)


def _edge_candidates(graph, src: int, dst: int, types: Tuple[str, ...], direction: str) -> List[Tuple[int, bool]]:
    """Edge ids realizing one (src, dst) hop; bool marks a reversed match
    (for undirected patterns).  Requires materialized edges."""
    out: List[Tuple[int, bool]] = []
    type_list = list(types) if types else [None]
    for t in type_list:
        if direction in ("out", "any"):
            out.extend((eid, False) for eid in graph.edges_between(src, dst, t))
        if direction in ("in", "any"):
            out.extend((eid, True) for eid in graph.edges_between(dst, src, t))
    return out


class ConditionalTraverse(PlanOp):
    """One relationship hop: ``(src)-[:T]->(dst)`` with ``src`` bound.

    Each incoming record batch (``config.exec_batch_size`` granularity)
    becomes one frontier matrix multiplied through the algebraic
    expression; the product's COO stays columnar all the way into the
    output batch.  Destination labels ride inside the expression as
    diagonal matrices.
    """

    name = "ConditionalTraverse"

    def __init__(
        self,
        child: PlanOp,
        src_var: str,
        dst_var: str,
        expression: AlgebraicExpression,
        *,
        edge_var: Optional[str] = None,
        types: Tuple[str, ...] = (),
        direction: str = "out",
    ) -> None:
        out_layout = child.out_layout.extend(dst_var, *( [edge_var] if edge_var else [] ))
        super().__init__([child], out_layout)
        self._src_slot = child.out_layout.slot(src_var)
        self._dst_slot = out_layout.slot(dst_var)
        self._edge_slot = out_layout.slot(edge_var) if edge_var else None
        self._edge_var = edge_var
        self._expr = expression
        self._types = types
        self._direction = direction
        self._src_var = src_var
        self._dst_var = dst_var

    def describe(self) -> str:
        return (
            f"ConditionalTraverse | ({self._src_var})->({self._dst_var}) "
            f"expr=[{self._expr.describe()}]"
        )

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        for batch in _rechunk(self.children[0].produce_batches(ctx), ctx.batch_size):
            out = self._expand(ctx, batch)
            if out is not None and out.length:
                yield out

    def _partitions(self, ctx: ExecContext):
        """The traversal is a pure per-batch map (one frontier matmul per
        batch), so it rides its child's partitions: each morsel expands
        its own slice of source rows."""
        parts = self.children[0].partitions(ctx)
        if parts is None:
            return None

        def expand_part(t):
            def batches() -> Iterator[RecordBatch]:
                for batch in _rechunk(t(), ctx.batch_size):
                    out = self._expand(ctx, batch)
                    if out is not None and out.length:
                        yield out

            return batches

        return [expand_part(t) for t in parts]

    def _expand(self, ctx: ExecContext, batch: RecordBatch) -> Optional[RecordBatch]:
        graph = ctx.graph
        src_ids = _src_ids(batch, self._src_slot)
        if batch.length == 1:
            # point-read fast path: one source row, no frontier matrix
            dst_ids = np.asarray(
                self._expr.evaluate_single(ctx, int(src_ids[0])), dtype=_I64
            )
            rec_idx = np.zeros(len(dst_ids), dtype=_I64)
        else:
            F = frontier_matrix(src_ids, graph.capacity)
            D = self._expr.evaluate(ctx, F)
            rec_idx, dst_ids, _ = D.to_coo()
        if not len(dst_ids):
            return None
        if self._edge_slot is None:
            return batch.take(rec_idx).extend(
                self.out_layout, [EntityColumn("node", dst_ids, graph)]
            )
        # edge variable: fan each (src, dst) hop out into its edge records,
        # in the same (record, dst, edge) order the row engine emitted
        # (matrix probed once per batch: nvals on the flush-free overlay
        # view never rewrites matrix state)
        matrix_nonempty = bool(
            graph.relation_matrix(self._types[0] if self._types else None).nvals
        )
        out_idx: List[int] = []
        out_dst: List[int] = []
        out_eid: List[int] = []
        for r, dst in zip(rec_idx.tolist(), dst_ids.tolist()):
            src = int(src_ids[r])
            candidates = _edge_candidates(graph, src, dst, self._types, self._direction)
            if not candidates and matrix_nonempty:
                # connected per the matrix but no edge records: the graph
                # was bulk-loaded without materialized edges
                raise GraphError(
                    "edge variables require materialized edges; this graph was bulk-loaded "
                    "(re-load with per-edge creation to bind edge variables)"
                )
            for eid, _reversed in candidates:
                out_idx.append(r)
                out_dst.append(dst)
                out_eid.append(eid)
        if not out_idx:
            return None
        return batch.take(np.asarray(out_idx, dtype=_I64)).extend(
            self.out_layout,
            [
                EntityColumn("node", np.asarray(out_dst, dtype=_I64), graph),
                EntityColumn("edge", np.asarray(out_eid, dtype=_I64), graph),
            ],
        )


class ExpandInto(PlanOp):
    """Close a pattern whose endpoints are both bound: emit the record only
    when the (src, dst) hop exists.  A batched structural matrix probe."""

    name = "ExpandInto"

    def __init__(
        self,
        child: PlanOp,
        src_var: str,
        dst_var: str,
        expression: AlgebraicExpression,
        *,
        edge_var: Optional[str] = None,
        types: Tuple[str, ...] = (),
        direction: str = "out",
    ) -> None:
        out_layout = child.out_layout.extend(*([edge_var] if edge_var else []))
        super().__init__([child], out_layout)
        self._src_slot = child.out_layout.slot(src_var)
        self._dst_slot = child.out_layout.slot(dst_var)
        self._edge_slot = out_layout.slot(edge_var) if edge_var else None
        self._expr = expression
        self._types = types
        self._direction = direction
        self._src_var = src_var
        self._dst_var = dst_var

    def describe(self) -> str:
        return f"ExpandInto | ({self._src_var})->({self._dst_var}) expr=[{self._expr.describe()}]"

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        for batch in _rechunk(self.children[0].produce_batches(ctx), ctx.batch_size):
            out = self._probe(ctx, batch)
            if out is not None and out.length:
                yield out

    def _partitions(self, ctx: ExecContext):
        """A pure per-batch structural probe — rides its child's
        partitions like ConditionalTraverse."""
        parts = self.children[0].partitions(ctx)
        if parts is None:
            return None

        def probe_part(t):
            def batches() -> Iterator[RecordBatch]:
                for batch in _rechunk(t(), ctx.batch_size):
                    out = self._probe(ctx, batch)
                    if out is not None and out.length:
                        yield out

            return batches

        return [probe_part(t) for t in parts]

    def _probe(self, ctx: ExecContext, batch: RecordBatch) -> Optional[RecordBatch]:
        graph = ctx.graph
        src_ids = _src_ids(batch, self._src_slot)
        dst_ids = _src_ids(batch, self._dst_slot)
        if batch.length == 1:
            reach = self._expr.evaluate_single(ctx, int(src_ids[0]))
            hit = np.asarray([bool(np.any(reach == dst_ids[0]))])
        else:
            F = frontier_matrix(src_ids, graph.capacity)
            D = self._expr.evaluate(ctx, F)
            hit = np.fromiter(
                (D[r, int(dst_ids[r])] is not None for r in range(batch.length)),
                dtype=np.bool_,
                count=batch.length,
            )
        if not hit.any():
            return None
        if self._edge_slot is None:
            return batch.compress(hit)
        out_idx: List[int] = []
        out_eid: List[int] = []
        for r in np.flatnonzero(hit).tolist():
            for eid, _rev in _edge_candidates(
                graph, int(src_ids[r]), int(dst_ids[r]), self._types, self._direction
            ):
                out_idx.append(r)
                out_eid.append(eid)
        if not out_idx:
            return None
        return batch.take(np.asarray(out_idx, dtype=_I64)).extend(
            self.out_layout, [EntityColumn("edge", np.asarray(out_eid, dtype=_I64), graph)]
        )


class CondVarLenTraverse(PlanOp):
    """Variable-length traversal ``(src)-[:T*min..max]->(dst)``.

    Per source node, runs the masked BFS loop (frontier ``vxm`` under a
    complemented visited mask) over the expression's combined relation
    matrix, emitting each node first reached at hop distance in
    ``[min, max]``.  When ``dst`` is already bound it degrades to a
    reachability test.
    """

    name = "CondVarLenTraverse"

    def __init__(
        self,
        child: PlanOp,
        src_var: str,
        dst_var: str,
        expression: AlgebraicExpression,
        min_hops: int,
        max_hops: int,  # -1 = unbounded
        *,
        dst_bound: bool = False,
        max_cap: int = 30,
    ) -> None:
        out_layout = child.out_layout if dst_bound else child.out_layout.extend(dst_var)
        super().__init__([child], out_layout)
        self._src_slot = child.out_layout.slot(src_var)
        self._dst_bound = dst_bound
        self._dst_slot = out_layout.slot(dst_var)
        self._expr = expression
        self._min = min_hops
        self._max = max_hops if max_hops >= 0 else max_cap
        self._src_var = src_var
        self._dst_var = dst_var

    def describe(self) -> str:
        return (
            f"CondVarLenTraverse | ({self._src_var})-[*{self._min}..{self._max}]->"
            f"({self._dst_var}) expr=[{self._expr.describe()}]"
        )

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        graph = ctx.graph
        A = self._expr.single_matrix(ctx)
        width = len(self.out_layout)
        for record in self.children[0].produce(ctx):
            src = record[self._src_slot].id
            reachable = self._reachable(A, src, graph.capacity)
            if self._dst_bound:
                dst = record[self._dst_slot].id
                if dst in reachable:
                    yield list(record)
            else:
                for dst in reachable:
                    out = record + [None] * (width - len(record))
                    out[self._dst_slot] = Node(graph, int(dst))
                    yield out

    def _reachable(self, A, src: int, dim: int) -> set:
        """Nodes whose first-reach hop count lies within [min, max]."""
        visited = Vector.from_coo([src], None, size=dim)
        frontier = visited.dup()
        out: set = set()
        if self._min == 0:
            out.add(src)
        for hop in range(1, self._max + 1):
            frontier = frontier.vxm(
                A,
                semiring.any_pair,
                mask=Mask(visited, complement=True, structure=True),
                desc=_REPLACE,
            )
            if frontier.nvals == 0:
                break
            if hop >= self._min:
                out.update(frontier.indices.tolist())
            visited = visited.ewise_add(frontier, _lor())
        return out


def _lor():
    from repro.grblas import binary

    return binary.lor
