"""Plan-operation base class and trivial leaves.

Operations form a tree evaluated Volcano-style at *batch* granularity:
``produce_batches(ctx)`` returns a fresh generator of
:class:`~repro.execplan.batch.RecordBatch` columnar batches, and
``produce(ctx)`` the equivalent row stream.  Both must be re-invocable
(Apply-style operators re-run their subtree once per outer record) **and
re-entrant across threads**: compiled plans are cached and shared (see
:mod:`repro.execplan.plan_cache`), so an operation object may be executed
by many concurrent readers at once.  Subclasses therefore implement
``_produce_batches`` (batch-native operators) or ``_produce``
(row-oriented operators — updates, Apply subplans) with all state in
generator locals or in the per-run :class:`~repro.execplan.expressions.
ExecContext` — never on the operation object; the base class derives the
missing form automatically (rows are chunked into ``ctx.batch_size``
batches, batches explode into rows), so batch-native and row operators
compose freely in one tree.  The public ``produce``/``produce_batches``
wrappers are also where per-run PROFILE metering attaches
(``ctx.profile``), so profiling never mutates a cached plan.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Optional

from repro.execplan.batch import RecordBatch
from repro.execplan.expressions import ExecContext
from repro.execplan.record import Layout, Record

__all__ = ["PlanOp", "Unit", "Argument"]

_argument_ids = itertools.count()


class PlanOp:
    """Base plan operation."""

    name: str = "Op"

    def __init__(self, children: List["PlanOp"], out_layout: Layout) -> None:
        self.children = children
        self.out_layout = out_layout

    def produce(self, ctx: ExecContext) -> Iterator[Record]:
        """The operation's record stream for one execution (metered when
        the run profiles).  Final: subclasses implement ``_produce`` or
        ``_produce_batches``."""
        gen = self._produce(ctx)
        if ctx.profile is not None:
            return ctx.profile.wrap(self, gen)
        return gen

    def produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        """The operation's columnar batch stream for one execution
        (metered when the run profiles)."""
        gen = self._produce_batches(ctx)
        if ctx.profile is not None:
            return ctx.profile.wrap_batches(self, gen)
        return gen

    # Exactly one of the following is overridden by each concrete
    # operation; the other derives from it.  The derivations call the
    # *private* sibling so a pull is metered once, at the public entry
    # the parent actually used.
    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        for batch in self._produce_batches(ctx):
            yield from batch.iter_rows()

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        size = ctx.batch_size
        layout = self.out_layout
        rows: List[Record] = []
        for record in self._produce(ctx):
            rows.append(record)
            if len(rows) >= size:
                yield RecordBatch.from_rows(layout, rows)
                rows = []
        if rows:
            yield RecordBatch.from_rows(layout, rows)

    # -- morsel parallelism ----------------------------------------------
    def partitions(self, ctx: ExecContext) -> Optional[List[Callable[[], Iterator[RecordBatch]]]]:
        """Split this operation's batch stream into independent morsel
        thunks, each a zero-argument callable returning the batches of
        one disjoint slice — concatenated in list order they must equal
        the serial ``produce_batches`` stream exactly.  Returns None when
        the operation (or the subtree below it) cannot partition; the
        caller then falls back to the serial stream.  Final: subclasses
        implement ``_partitions``."""
        if ctx.driver is None:
            return None
        parts = self._partitions(ctx)
        if parts is None:
            return None
        if ctx.profile is not None:
            profile = ctx.profile
            parts = [
                (lambda t=t: profile.wrap_partition(self, t())) for t in parts
            ]
        return parts

    def _partitions(self, ctx: ExecContext) -> Optional[List[Callable[[], Iterator[RecordBatch]]]]:
        return None

    def child_stream(self, ctx: ExecContext, index: int = 0) -> Iterator[RecordBatch]:
        """The child's batch stream, evaluated morsel-parallel when the
        run has a driver and the child can partition — the entry point
        stateful operators (Aggregate, Sort, Results, ...) use instead of
        calling ``produce_batches`` directly."""
        child = self.children[index]
        if ctx.driver is not None:
            stream = ctx.driver.stream(child, ctx)
            if stream is not None:
                return stream
        return child.produce_batches(ctx)

    # -- plan rendering --------------------------------------------------
    def describe(self) -> str:
        """One-line description used by EXPLAIN/PROFILE."""
        return self.name

    def tree_lines(self, indent: int = 0, *, profile=None) -> List[str]:
        """The indented plan tree; ``profile`` is the run's ProfileRun
        (or None for a bare EXPLAIN)."""
        line = "    " * indent + self.describe()
        est = getattr(self, "est_rows", None)
        if est is not None:
            # cost-based planning: the estimate the plan was priced with;
            # under PROFILE it sits next to the actual Records produced
            line += f" | est_rows: {int(round(est))}"
        if profile is not None:
            line += profile.suffix(self)
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1, profile=profile))
        return lines


class Unit(PlanOp):
    """Produces exactly one empty record — the leaf under a bare CREATE."""

    name = "Unit"

    def __init__(self) -> None:
        super().__init__([], Layout())

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        yield self.out_layout.new_record()


class Argument(PlanOp):
    """Leaf that replays a seeded record — the entry point of Apply-style
    subplans (OPTIONAL MATCH / MERGE match arms), as in RedisGraph.

    The seed lives in ``ctx.args`` keyed by this Argument's compile-time
    id, NOT on the operation: concurrent executions of one cached plan
    each seed their own context.
    """

    name = "Argument"

    def __init__(self, layout: Layout) -> None:
        super().__init__([], layout)
        self._arg_id = next(_argument_ids)

    def seed(self, ctx: ExecContext, record: Record) -> None:
        ctx.args[self._arg_id] = record

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        record: Optional[Record] = ctx.args.get(self._arg_id)
        assert record is not None, "Argument not seeded"
        yield list(record)
