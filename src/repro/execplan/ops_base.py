"""Plan-operation base class and trivial leaves.

Operations form a tree evaluated Volcano-style: ``produce(ctx)`` returns a
fresh generator of records.  ``produce`` must be re-invocable (Apply-style
operators re-run their subtree once per outer record) **and re-entrant
across threads**: compiled plans are cached and shared (see
:mod:`repro.execplan.plan_cache`), so an operation object may be executed
by many concurrent readers at once.  Subclasses therefore implement
``_produce`` with all state in generator locals or in the per-run
:class:`~repro.execplan.expressions.ExecContext` — never on the operation
object.  The base ``produce`` wrapper is also where per-run PROFILE
metering attaches (``ctx.profile``), so profiling never mutates a cached
plan.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from repro.execplan.expressions import ExecContext
from repro.execplan.record import Layout, Record

__all__ = ["PlanOp", "Unit", "Argument"]

_argument_ids = itertools.count()


class PlanOp:
    """Base plan operation."""

    name: str = "Op"

    def __init__(self, children: List["PlanOp"], out_layout: Layout) -> None:
        self.children = children
        self.out_layout = out_layout

    def produce(self, ctx: ExecContext) -> Iterator[Record]:
        """The operation's record stream for one execution (metered when
        the run profiles).  Final: subclasses implement ``_produce``."""
        gen = self._produce(ctx)
        if ctx.profile is not None:
            return ctx.profile.wrap(self, gen)
        return gen

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:  # pragma: no cover
        raise NotImplementedError

    # -- plan rendering --------------------------------------------------
    def describe(self) -> str:
        """One-line description used by EXPLAIN/PROFILE."""
        return self.name

    def tree_lines(self, indent: int = 0, *, profile=None) -> List[str]:
        """The indented plan tree; ``profile`` is the run's ProfileRun
        (or None for a bare EXPLAIN)."""
        line = "    " * indent + self.describe()
        if profile is not None:
            line += profile.suffix(self)
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1, profile=profile))
        return lines


class Unit(PlanOp):
    """Produces exactly one empty record — the leaf under a bare CREATE."""

    name = "Unit"

    def __init__(self) -> None:
        super().__init__([], Layout())

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        yield self.out_layout.new_record()


class Argument(PlanOp):
    """Leaf that replays a seeded record — the entry point of Apply-style
    subplans (OPTIONAL MATCH / MERGE match arms), as in RedisGraph.

    The seed lives in ``ctx.args`` keyed by this Argument's compile-time
    id, NOT on the operation: concurrent executions of one cached plan
    each seed their own context.
    """

    name = "Argument"

    def __init__(self, layout: Layout) -> None:
        super().__init__([], layout)
        self._arg_id = next(_argument_ids)

    def seed(self, ctx: ExecContext, record: Record) -> None:
        ctx.args[self._arg_id] = record

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        record: Optional[Record] = ctx.args.get(self._arg_id)
        assert record is not None, "Argument not seeded"
        yield list(record)
