"""Plan-operation base class and trivial leaves.

Operations form a tree evaluated Volcano-style: ``produce(ctx)`` returns a
fresh generator of records.  ``produce`` must be re-invocable (Apply-style
operators re-run their subtree once per outer record), which is why state
lives in locals of the generator, never on the operator object.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.execplan.expressions import ExecContext
from repro.execplan.record import Layout, Record

__all__ = ["PlanOp", "Unit", "Argument"]


class PlanOp:
    """Base plan operation."""

    name: str = "Op"

    def __init__(self, children: List["PlanOp"], out_layout: Layout) -> None:
        self.children = children
        self.out_layout = out_layout
        # PROFILE counters (filled when executed through a profiling run)
        self.profile_rows: int = 0
        self.profile_ms: float = 0.0

    def produce(self, ctx: ExecContext) -> Iterator[Record]:  # pragma: no cover
        raise NotImplementedError

    # -- plan rendering --------------------------------------------------
    def describe(self) -> str:
        """One-line description used by EXPLAIN/PROFILE."""
        return self.name

    def tree_lines(self, indent: int = 0, *, profile: bool = False) -> List[str]:
        line = "    " * indent + self.describe()
        if profile:
            line += f" | Records produced: {self.profile_rows}, Execution time: {self.profile_ms:.6f} ms"
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1, profile=profile))
        return lines


class Unit(PlanOp):
    """Produces exactly one empty record — the leaf under a bare CREATE."""

    name = "Unit"

    def __init__(self) -> None:
        super().__init__([], Layout())

    def produce(self, ctx: ExecContext) -> Iterator[Record]:
        yield self.out_layout.new_record()


class Argument(PlanOp):
    """Leaf that replays a seeded record — the entry point of Apply-style
    subplans (OPTIONAL MATCH / MERGE match arms), as in RedisGraph."""

    name = "Argument"

    def __init__(self, layout: Layout) -> None:
        super().__init__([], layout)
        self._record: Optional[Record] = None

    def seed(self, record: Record) -> None:
        self._record = record

    def produce(self, ctx: ExecContext) -> Iterator[Record]:
        assert self._record is not None, "Argument not seeded"
        yield list(self._record)
