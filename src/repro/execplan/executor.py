"""Query engine: compile once, execute many.

The pipeline is split in two (RedisGraph's query-cache architecture):

* **compile** — lex → parse → validate → plan → optimize, producing a
  graph-independent :class:`~repro.execplan.compiled.CompiledQuery`.
  Compilation happens at most once per distinct query text: artifacts
  live in a thread-safe LRU :class:`~repro.execplan.plan_cache.PlanCache`
  keyed on the canonical text and invalidated when
  ``Graph.schema_version`` moves (new label/reltype, index created or
  dropped, config change).
* **bind + execute** — each run gets a fresh
  :class:`~repro.execplan.expressions.ExecContext` holding ALL per-run
  state (parameters, statistics, Argument seeds, PROFILE counters, and
  the operand bindings that resolve the plan's label/reltype/index names
  against the live graph).  Plan operations are stateless, so any number
  of readers may execute one cached artifact concurrently.

Concurrency follows the paper: the engine itself runs each query on a
single thread; read queries take the graph's read lock (many concurrent
readers), update queries take the write lock.  The server layer feeds
queries to a pool; embedded callers just call :meth:`QueryEngine.query`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CypherSemanticError, GraphError
from repro.execplan.compiled import CompiledQuery, PlanSchema, compile_query
from repro.execplan.expressions import ExecContext
from repro.execplan.morsel import MorselDriver
from repro.execplan.plan_cache import PlanCache
from repro.execplan.profiling import ProfileRun
from repro.execplan.resultset import QueryResult, QueryStatistics, ResultSet
from repro.graph.graph import Graph

__all__ = ["QueryEngine"]


class QueryEngine:
    """Compiles and runs Cypher queries against one :class:`Graph`."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.plan_cache = PlanCache(graph.config.plan_cache_size)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, text: str) -> CompiledQuery:
        """Compile ``text`` against the graph's current schema snapshot
        (cache-oblivious; see :meth:`get_plan` for the cached path)."""
        return compile_query(text, PlanSchema.snapshot(self.graph))

    def get_plan(self, text: str) -> Tuple[CompiledQuery, bool]:
        """The compiled plan for ``text`` plus whether it came from the
        cache.  One compilation is shared by QUERY / RO_QUERY / EXPLAIN /
        PROFILE and by every subsequent request with the same text."""
        stats_epoch = (
            self.graph.stats.epoch if self.graph.config.cost_based_planner else None
        )
        from repro.procedures import registry as proc_registry

        compiled = self.plan_cache.get(
            text, self.graph.schema_version, stats_epoch, proc_registry.version
        )
        if compiled is not None:
            return compiled, True
        compiled = self.compile(text)
        self.plan_cache.put(compiled)
        return compiled, False

    def set_plan_cache_size(self, capacity: int) -> None:
        """Resize (0 = disable) THIS engine's plan cache — the
        GRAPH.CONFIG-style runtime knob.  Counts as a config change:
        bumps the graph's schema version so artifacts compiled before the
        change are not reused.  Deliberately does not write through to
        ``graph.config`` — the GraphModule shares one GraphConfig across
        every graph key, and module-wide settings belong to
        ``GRAPH.CONFIG SET`` (which updates the config and then calls
        this per engine)."""
        if capacity < 0:
            raise ValueError("plan_cache_size must be >= 0")
        self.graph.bump_schema_version()
        self.plan_cache.resize(capacity)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        compiled: CompiledQuery,
        params: Optional[Dict[str, Any]] = None,
        *,
        cached: bool = False,
        profile_run: Optional[ProfileRun] = None,
        on_commit: Optional[Callable[[], None]] = None,
    ) -> ResultSet:
        """Bind a compiled artifact to the live graph and run it once.

        ``on_commit`` (write queries only) runs after a successful
        execution while the write lock is still held — the durability
        layer's hook: appending to the write log inside the lock keeps
        log order identical to the order writers actually committed in."""
        stats = QueryStatistics(cached_execution=cached)
        ctx = ExecContext(
            self.graph,
            params,
            stats,
            profile=profile_run,
            # read-only runs may memoize resolved matrix operands for the
            # duration of the run: matrices cannot change under the read
            # lock.  Writers re-resolve so later clauses see earlier writes.
            cache_operands=not compiled.writes,
        )
        # Intra-query morsel parallelism: read plans only (writers hold
        # the write lock and mutate — they stay strictly serial), gated
        # on the parallel_workers knob.  parallel_workers=1 leaves the
        # driver off and reproduces the serial engine exactly.
        workers = self.graph.config.parallel_workers
        if workers > 1 and not compiled.writes:
            # morsel pre-sizing from the cost model: a plan whose largest
            # estimated operator output fits inside one morsel can't split
            # into 2+ partitions — skip the driver (and its pool handshake)
            est = compiled.est_max_rows
            if est is None or est >= self.graph.config.morsel_size:
                ctx.driver = MorselDriver(workers, self.graph.config.morsel_size)
        started = time.perf_counter()
        lock = self.graph.lock.write() if compiled.writes else self.graph.lock.read()
        with lock:
            result = self._run(compiled, ctx, stats)
            if on_commit is not None and compiled.writes:
                on_commit()
        stats.execution_time_ms = (time.perf_counter() - started) * 1e3
        if ctx.driver is not None and ctx.driver.morsels:
            stats.parallel_workers = ctx.driver.workers
            stats.morsels = ctx.driver.morsels
        return result

    def query(
        self,
        text: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        on_commit: Optional[Callable[[], None]] = None,
    ) -> QueryResult:
        """Execute a query and return its :class:`QueryResult`."""
        compiled, hit = self.get_plan(text)
        result = self.execute(compiled, params, cached=hit, on_commit=on_commit)
        return QueryResult.wrap(result, compiled=compiled)

    def ro_query(self, text: str, params: Optional[Dict[str, Any]] = None) -> QueryResult:
        """Execute a query after asserting it is read-only (GRAPH.RO_QUERY)."""
        compiled, hit = self.get_plan(text)
        if compiled.writes:
            raise GraphError(
                "graph.RO_QUERY is to be executed only on read-only queries"
            )
        result = self.execute(compiled, params, cached=hit)
        return QueryResult.wrap(result, compiled=compiled)

    def _run(self, compiled: CompiledQuery, ctx: ExecContext, stats) -> ResultSet:
        """Execute every plan part; read results serialize column-wise
        straight from the operator pipeline's RecordBatches."""
        columns: List[str] = []
        column_data: List[List[Any]] = []
        for planned in compiled.plans:
            if planned.columns is not None:
                columns = planned.columns
                if not column_data:
                    column_data = [[] for _ in columns]
                for batch in planned.root.produce_batches(ctx):
                    if not batch.length:
                        continue
                    for out, col in zip(column_data, batch.columns):
                        out.extend(col.to_objects().tolist())
            else:
                for _ in planned.root.produce(ctx):
                    pass  # update-only: drain for side effects
        if len(compiled.plans) > 1 and not compiled.union_all:
            from repro.execplan.ops_stream import _hashable

            rows = list(zip(*column_data)) if column_data and column_data[0] else []
            seen = set()
            deduped: List[tuple] = []
            for row in rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            return ResultSet(columns, deduped, stats)
        return ResultSet.from_columns(columns, column_data, stats)

    # ------------------------------------------------------------------
    # EXPLAIN / PROFILE
    # ------------------------------------------------------------------
    def explain(self, text: str, params: Optional[Dict[str, Any]] = None) -> str:
        """The execution plan as an indented tree (GRAPH.EXPLAIN).

        ``params`` are accepted (the ``CYPHER k=v`` prefix threads through
        here) and checked against the parameters the query references, so
        an EXPLAIN fails fast on a binding the real run would reject."""
        compiled, _ = self.get_plan(text)
        if params:
            missing = sorted(compiled.param_names - set(params))
            if missing:
                raise CypherSemanticError(
                    f"missing query parameter ${missing[0]}"
                )
        return compiled.explain()

    def profile(
        self,
        text: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        on_commit: Optional[Callable[[], None]] = None,
    ) -> QueryResult:
        """Execute with per-operation record counts and timings
        (GRAPH.PROFILE); the report is the result's ``.profile``.
        Metering lives in the run's ProfileRun, so profiling a cached
        plan neither mutates it nor races concurrent executions of the
        same artifact.  ``on_commit`` behaves as in :meth:`execute` — a
        PROFILE of a write query is still a write."""
        compiled, hit = self.get_plan(text)
        run = ProfileRun()
        result = self.execute(compiled, params, cached=hit, profile_run=run, on_commit=on_commit)
        report = compiled.explain(profile=run)
        return QueryResult.wrap(result, compiled=compiled, profile_report=report)
