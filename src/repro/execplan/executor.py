"""Query engine: parse → validate → plan → optimize → execute.

Concurrency follows the paper: the engine itself runs each query on a
single thread; read queries take the graph's read lock (many concurrent
readers), update queries take the write lock.  The server layer feeds
queries to a pool; embedded callers just call :meth:`QueryEngine.query`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.cypher.parser import parse
from repro.cypher.semantic import validate
from repro.execplan.expressions import ExecContext
from repro.execplan.ops_base import PlanOp
from repro.execplan.optimizer import optimize
from repro.execplan.planner import PlannedQuery, plan_single_query
from repro.execplan.resultset import QueryStatistics, ResultSet
from repro.graph.graph import Graph

__all__ = ["QueryEngine"]


class QueryEngine:
    """Compiles and runs Cypher queries against one :class:`Graph`."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    def compile(self, text: str) -> Tuple[List[PlannedQuery], bool, bool]:
        """Parse/validate/plan; returns (plans, writes, union_all)."""
        ast = parse(text)
        validate(ast)
        plans = [plan_single_query(part, self.graph) for part in ast.parts]
        for planned in plans:
            planned.root = optimize(planned.root)
        writes = any(p.writes for p in plans)
        return plans, writes, ast.union_all

    def query(self, text: str, params: Optional[Dict[str, Any]] = None) -> ResultSet:
        """Execute a query and return its ResultSet."""
        plans, writes, union_all = self.compile(text)
        stats = QueryStatistics()
        ctx = ExecContext(self.graph, params, stats)
        started = time.perf_counter()
        lock = self.graph.lock.write() if writes else self.graph.lock.read()
        with lock:
            columns, rows = self._run(plans, ctx, union_all)
        stats.execution_time_ms = (time.perf_counter() - started) * 1e3
        return ResultSet(columns, rows, stats)

    def _run(self, plans: List[PlannedQuery], ctx: ExecContext, union_all: bool):
        columns: List[str] = []
        rows: List[tuple] = []
        for planned in plans:
            if planned.columns is not None:
                columns = planned.columns
                rows.extend(tuple(rec) for rec in planned.root.produce(ctx))
            else:
                for _ in planned.root.produce(ctx):
                    pass  # update-only: drain for side effects
        if len(plans) > 1 and not union_all:
            from repro.execplan.ops_stream import _hashable

            seen = set()
            deduped = []
            for row in rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        return columns, rows

    # ------------------------------------------------------------------
    def explain(self, text: str) -> str:
        """The execution plan as an indented tree (GRAPH.EXPLAIN)."""
        plans, _, _ = self.compile(text)
        return "\n\n".join(p.explain() for p in plans)

    def profile(self, text: str, params: Optional[Dict[str, Any]] = None) -> Tuple[ResultSet, str]:
        """Execute with per-operation record counts and timings
        (GRAPH.PROFILE)."""
        plans, writes, union_all = self.compile(text)
        for planned in plans:
            _instrument(planned.root)
        stats = QueryStatistics()
        ctx = ExecContext(self.graph, params, stats)
        started = time.perf_counter()
        lock = self.graph.lock.write() if writes else self.graph.lock.read()
        with lock:
            columns, rows = self._run(plans, ctx, union_all)
        stats.execution_time_ms = (time.perf_counter() - started) * 1e3
        report = "\n\n".join(p.explain(profile=True) for p in plans)
        return ResultSet(columns, rows, stats), report


def _instrument(op: PlanOp) -> None:
    """Wrap every produce() in the tree with row/time counters."""
    for child in op.children:
        _instrument(child)
    original = op.produce

    def profiled(ctx, _original=original, _op=op):
        start = time.perf_counter()
        for record in _original(ctx):
            _op.profile_rows += 1
            _op.profile_ms += (time.perf_counter() - start) * 1e3
            yield record
            start = time.perf_counter()
        _op.profile_ms += (time.perf_counter() - start) * 1e3

    op.produce = profiled  # type: ignore[method-assign]
