"""Compilation of AST expressions into runtime closures (RedisGraph's
AR_Exp arithmetic expression trees).

``compile_expr(expr, layout)`` returns ``fn(record, ctx) -> value``.  The
compiler resolves identifier slots at compile time; evaluation is pure
closure calls with no AST walking.

Cypher's SQL-style three-valued logic is implemented throughout: ``null``
propagates through arithmetic, comparisons and string predicates; AND/OR/
XOR/NOT follow Kleene logic; ``WHERE`` keeps only rows whose predicate is
exactly ``true``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from repro.errors import CypherSemanticError, CypherTypeError
from repro.cypher import ast_nodes as A
from repro.cypher.functions import call_scalar
from repro.cypher.semantic import AGGREGATE_FUNCTIONS
from repro.execplan.record import Layout, Record
from repro.graph.entities import Edge, Node

__all__ = ["compile_expr", "ExecContext", "CompiledExpr"]

CompiledExpr = Callable[[Record, "ExecContext"], Any]


class ExecContext:
    """Per-execution runtime context passed to every plan operation and
    compiled expression.

    Since plans are compiled once and cached (see
    :mod:`repro.execplan.plan_cache`), ALL mutable per-run state lives
    here rather than on the plan operations themselves:

    * ``args`` — records seeded into :class:`~repro.execplan.ops_base.
      Argument` leaves by Apply-style operators (OPTIONAL MATCH / MERGE),
      keyed by the Argument's compile-time id,
    * ``profile`` — the run's :class:`~repro.execplan.profiling.
      ProfileRun` (None outside GRAPH.PROFILE),
    * a bind-time operand cache: for read-only executions each algebraic
      operand (relation matrix, label diagonal) is resolved against the
      live graph once at first use and reused for the rest of the run —
      safe under the read lock, where matrices cannot change.  Write
      queries must re-resolve every time (``cache_operands=False``) so
      later clauses observe their own earlier writes.
    """

    __slots__ = (
        "graph",
        "params",
        "stats",
        "args",
        "profile",
        "cache_operands",
        "_operands",
        "batch_size",
        "driver",
        "morsel_size",
    )

    def __init__(self, graph, params=None, stats=None, profile=None, *, cache_operands=False) -> None:
        self.graph = graph
        self.params = params or {}
        self.stats = stats
        self.args = {}
        self.profile = profile
        self.cache_operands = cache_operands
        self._operands = {}
        # record-batch granularity for this run; 1 = row-at-a-time
        self.batch_size = graph.config.exec_batch_size if graph is not None else 1
        # intra-query parallelism: the executor attaches a MorselDriver to
        # read-only runs when parallel_workers > 1; None means serial
        self.driver = None
        self.morsel_size = graph.config.morsel_size if graph is not None else 2048

    def operand(self, key, resolve):
        """Bind one algebraic operand against the live graph (memoized for
        the rest of this execution when ``cache_operands`` is set)."""
        if not self.cache_operands:
            return resolve(self.graph)
        matrix = self._operands.get(key)
        if matrix is None:
            matrix = resolve(self.graph)
            self._operands[key] = matrix
        return matrix


# ---------------------------------------------------------------------------
# Value helpers
# ---------------------------------------------------------------------------


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _property_of(subject, key: str):
    if subject is None:
        return None
    if isinstance(subject, (Node, Edge)):
        return subject.properties.get(key)
    if isinstance(subject, dict):
        return subject.get(key)
    raise CypherTypeError(f"cannot access property {key!r} on {type(subject).__name__}")


def _arith(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "+":
        if isinstance(a, str) and isinstance(b, str):
            return a + b
        if isinstance(a, list) and isinstance(b, list):
            return a + b
        if isinstance(a, list):
            return a + [b]
        if isinstance(b, list):
            return [a] + b
        if isinstance(a, str) or isinstance(b, str):
            # Cypher allows string + number concatenation
            return f"{a}{b}"
        if _is_number(a) and _is_number(b):
            return a + b
        raise CypherTypeError(f"cannot add {type(a).__name__} and {type(b).__name__}")
    if not (_is_number(a) and _is_number(b)):
        raise CypherTypeError(f"operator {op} expects numbers")
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            if isinstance(a, int) and isinstance(b, int):
                raise CypherTypeError("division by zero")
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        if isinstance(a, int) and isinstance(b, int):
            return int(a / b)  # Cypher integer division truncates toward zero
        return a / b
    if op == "%":
        if b == 0:
            raise CypherTypeError("modulo by zero")
        return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else int(math.fmod(a, b))
    if op == "^":
        return float(a) ** float(b)
    raise CypherTypeError(f"unknown operator {op}")  # pragma: no cover


_TYPE_ORDER = {"map": 0, "node": 1, "edge": 2, "list": 3, "str": 4, "bool": 5, "num": 6, "null": 7}


def _type_class(v) -> str:
    if v is None:
        return "null"
    if isinstance(v, bool):
        return "bool"
    if _is_number(v):
        return "num"
    if isinstance(v, str):
        return "str"
    if isinstance(v, list):
        return "list"
    if isinstance(v, Node):
        return "node"
    if isinstance(v, Edge):
        return "edge"
    if isinstance(v, dict):
        return "map"
    return "other"


def _equal(a, b):
    """Cypher equality: null-propagating; cross-type numerics compare
    numerically, otherwise differing types are simply not equal."""
    if a is None or b is None:
        return None
    if _is_number(a) and _is_number(b):
        return a == b
    if type(a) is bool or type(b) is bool:
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        acc: Optional[bool] = True
        for x, y in zip(a, b):
            e = _equal(x, y)
            if e is None:
                acc = None
            elif not e:
                return False
        return acc
    if type(a) is not type(b) and not (isinstance(a, (Node, Edge)) and isinstance(b, (Node, Edge))):
        return False
    return a == b


def _compare(op: str, a, b):
    if op == "=":
        return _equal(a, b)
    if op == "<>":
        eq = _equal(a, b)
        return None if eq is None else not eq
    if a is None or b is None:
        return None
    if _is_number(a) and _is_number(b):
        pass
    elif isinstance(a, str) and isinstance(b, str):
        pass
    elif isinstance(a, bool) and isinstance(b, bool):
        pass
    elif isinstance(a, list) and isinstance(b, list):
        pass
    else:
        return None  # incomparable types order as null
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    raise CypherTypeError(f"unknown comparison {op}")  # pragma: no cover


def sort_key(value):
    """Total order over mixed-type values for ORDER BY: group by type class,
    then compare within the class; nulls sort last ascending."""
    cls = _type_class(value)
    rank = _TYPE_ORDER.get(cls, 8)
    if cls == "null":
        return (rank, 0)
    if cls == "num":
        return (rank, value)
    if cls == "bool":
        return (rank, int(value))
    if cls == "str":
        return (rank, value)
    if cls == "list":
        return (rank, tuple(sort_key(v) for v in value))
    if cls in ("node", "edge"):
        return (rank, value.id)
    if cls == "map":
        return (rank, tuple(sorted((k, sort_key(v)) for k, v in value.items())))
    return (rank, str(value))


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


def compile_expr(expr: A.Expr, layout: Layout) -> CompiledExpr:
    """Compile an expression against a record layout.

    The returned closure is tagged with the source ``ast`` and ``layout``
    so the batch compiler (:func:`repro.execplan.batch_expr.vectorize`)
    can build the vectorized twin of the same expression; closures built
    by hand (no tag) automatically get the per-row fallback wrapper."""
    fn = _compile_expr(expr, layout)
    try:
        fn.ast = expr
        fn.layout = layout
    except AttributeError:  # pragma: no cover - plain functions always accept
        pass
    return fn


def _compile_expr(expr: A.Expr, layout: Layout) -> CompiledExpr:
    if isinstance(expr, A.Literal):
        value = expr.value
        return lambda r, c: value

    if isinstance(expr, A.Parameter):
        name = expr.name

        def param(r, c):
            if name not in c.params:
                raise CypherSemanticError(f"missing query parameter ${name}")
            return c.params[name]

        return param

    if isinstance(expr, A.Identifier):
        slot = layout.get(expr.name)
        if slot is None:
            raise CypherSemanticError(f"variable {expr.name!r} not in scope")
        return lambda r, c: r[slot]

    if isinstance(expr, A.PropertyAccess):
        subject = compile_expr(expr.subject, layout)
        key = expr.key
        return lambda r, c: _property_of(subject(r, c), key)

    if isinstance(expr, A.Subscript):
        subject = compile_expr(expr.subject, layout)
        index = compile_expr(expr.index, layout)

        def subscript(r, c):
            s = subject(r, c)
            i = index(r, c)
            if s is None or i is None:
                return None
            if isinstance(s, list):
                if not isinstance(i, int) or isinstance(i, bool):
                    raise CypherTypeError("list index must be an integer")
                return s[i] if -len(s) <= i < len(s) else None
            if isinstance(s, dict):
                return s.get(i)
            raise CypherTypeError(f"cannot subscript {type(s).__name__}")

        return subscript

    if isinstance(expr, A.Slice):
        subject = compile_expr(expr.subject, layout)
        start = compile_expr(expr.start, layout) if expr.start is not None else None
        stop = compile_expr(expr.stop, layout) if expr.stop is not None else None

        def slice_(r, c):
            s = subject(r, c)
            if s is None:
                return None
            if not isinstance(s, list):
                raise CypherTypeError("slicing expects a list")
            lo = start(r, c) if start else 0
            hi = stop(r, c) if stop else len(s)
            if lo is None or hi is None:
                return None
            return s[lo:hi]

        return slice_

    if isinstance(expr, A.ListLiteral):
        items = [compile_expr(e, layout) for e in expr.items]
        return lambda r, c: [f(r, c) for f in items]

    if isinstance(expr, A.MapLiteral):
        pairs = [(k, compile_expr(v, layout)) for k, v in expr.items]
        return lambda r, c: {k: f(r, c) for k, f in pairs}

    if isinstance(expr, A.Unary):
        operand = compile_expr(expr.operand, layout)
        if expr.op == "-":
            def neg(r, c):
                v = operand(r, c)
                if v is None:
                    return None
                if not _is_number(v):
                    raise CypherTypeError("unary minus expects a number")
                return -v

            return neg
        return operand  # unary plus

    if isinstance(expr, A.Binary):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        op = expr.op
        return lambda r, c: _arith(op, left(r, c), right(r, c))

    if isinstance(expr, A.Comparison):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        op = expr.op
        return lambda r, c: _compare(op, left(r, c), right(r, c))

    if isinstance(expr, A.BoolOp):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        if expr.op == "AND":
            def and_(r, c):
                a = _truth(left(r, c))
                if a is False:
                    return False
                b = _truth(right(r, c))
                if b is False:
                    return False
                return None if a is None or b is None else True

            return and_
        if expr.op == "OR":
            def or_(r, c):
                a = _truth(left(r, c))
                if a is True:
                    return True
                b = _truth(right(r, c))
                if b is True:
                    return True
                return None if a is None or b is None else False

            return or_

        def xor(r, c):
            a = _truth(left(r, c))
            b = _truth(right(r, c))
            if a is None or b is None:
                return None
            return a != b

        return xor

    if isinstance(expr, A.Not):
        operand = compile_expr(expr.operand, layout)

        def not_(r, c):
            v = _truth(operand(r, c))
            return None if v is None else not v

        return not_

    if isinstance(expr, A.IsNull):
        operand = compile_expr(expr.operand, layout)
        if expr.negated:
            return lambda r, c: operand(r, c) is not None
        return lambda r, c: operand(r, c) is None

    if isinstance(expr, A.StringPredicate):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        op = expr.op

        def strpred(r, c):
            a = left(r, c)
            b = right(r, c)
            if a is None or b is None:
                return None
            if not isinstance(a, str) or not isinstance(b, str):
                return None
            if op == "STARTS_WITH":
                return a.startswith(b)
            if op == "ENDS_WITH":
                return a.endswith(b)
            return b in a  # CONTAINS

        return strpred

    if isinstance(expr, A.InList):
        needle = compile_expr(expr.needle, layout)
        haystack = compile_expr(expr.haystack, layout)

        def in_list(r, c):
            hay = haystack(r, c)
            if hay is None:
                return None
            if not isinstance(hay, list):
                raise CypherTypeError("IN expects a list on the right")
            item = needle(r, c)
            saw_null = item is None
            for h in hay:
                eq = _equal(item, h)
                if eq is True:
                    return True
                if eq is None:
                    saw_null = True
            return None if saw_null else False

        return in_list

    if isinstance(expr, A.FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            raise CypherSemanticError(
                f"aggregate {expr.name}() cannot be evaluated as a scalar here"
            )
        args = [compile_expr(a, layout) for a in expr.args]
        name = expr.name
        return lambda r, c: call_scalar(name, [f(r, c) for f in args])

    if isinstance(expr, A.CaseExpr):
        subject = compile_expr(expr.subject, layout) if expr.subject is not None else None
        whens = [(compile_expr(w, layout), compile_expr(t, layout)) for w, t in expr.whens]
        default = compile_expr(expr.default, layout) if expr.default is not None else None

        def case(r, c):
            if subject is not None:
                subj = subject(r, c)
                for w, t in whens:
                    if _equal(subj, w(r, c)) is True:
                        return t(r, c)
            else:
                for w, t in whens:
                    if _truth(w(r, c)) is True:
                        return t(r, c)
            return default(r, c) if default is not None else None

        return case

    raise CypherSemanticError(f"cannot compile expression {expr!r}")  # pragma: no cover


def _truth(v) -> Optional[bool]:
    """Cypher boolean coercion: booleans pass through, null is unknown."""
    if v is None:
        return None
    if isinstance(v, bool):
        return v
    raise CypherTypeError(f"expected a boolean, got {type(v).__name__}")
