"""A thread-safe, schema-versioned LRU cache of compiled query plans.

RedisGraph caches execution plans per query string for the same reason:
on small working sets the fixed per-request cost (lex/parse/validate/
plan) dominates the algebra, so hot parameterized queries must skip
straight to execution.

Keying and invalidation:

* the key is the canonical query text (whitespace-trimmed, with any
  ``CYPHER k=v`` parameter prefix already stripped by the caller) —
  parameterized queries that differ only in ``$param`` *values* share one
  entry,
* each entry remembers the ``Graph.schema_version`` it was compiled at;
  a lookup that finds a stale entry drops it and reports a miss, so
  label/reltype/index/config changes invalidate lazily without a sweep.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.execplan.compiled import CompiledQuery

__all__ = ["PlanCache"]


class PlanCache:
    """LRU cache of :class:`CompiledQuery` artifacts.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    ``put`` is a no-op) — the ``plan_cache_size`` config knob's off switch.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[str, CompiledQuery]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def canonical(text: str) -> str:
        return text.strip()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(
        self,
        text: str,
        schema_version: int,
        stats_epoch: Optional[int] = None,
        proc_version: Optional[int] = None,
    ) -> Optional[CompiledQuery]:
        """The cached plan for ``text`` if present *and* compiled at
        ``schema_version``; stale entries are evicted on sight.

        ``stats_epoch`` (cost-based planning only) adds a second freshness
        axis: an entry priced at an older statistics epoch is stale even
        though the schema hasn't moved — the graph's size drifted enough
        that its estimates may pick a different plan.  Rule-compiled
        entries (``stats_epoch is None`` on the entry) never expire this
        way, and callers with the knob off pass None and skip the check.

        ``proc_version`` is a third axis for ``CALL`` plans: the procedure
        registry's version at compile time.  A (re-)registration bumps the
        registry version, so entries that resolved procedures against the
        old catalog are dropped the same lazy way."""
        key = self.canonical(text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if (
                entry.schema_version != schema_version
                or (
                    stats_epoch is not None
                    and entry.stats_epoch is not None
                    and entry.stats_epoch != stats_epoch
                )
                or (proc_version is not None and entry.proc_version != proc_version)
            ):
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, compiled: CompiledQuery) -> None:
        if self._capacity <= 0:
            return
        key = self.canonical(compiled.text)
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def resize(self, capacity: int) -> None:
        with self._lock:
            self._capacity = capacity
            if capacity <= 0:
                self._entries.clear()
            else:
                while len(self._entries) > capacity:
                    self._entries.popitem(last=False)

    def info(self) -> dict:
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
