"""Compilation artifacts: the graph-independent half of the query pipeline.

``compile_query`` runs lex → parse → validate → plan → optimize exactly
once and freezes the result into a :class:`CompiledQuery` — a plan tree
plus metadata (writes, output columns, referenced parameter names).  The
artifact holds **no references to a live graph**: the planner consults
only a :class:`PlanSchema` snapshot (which indexes exist, the schema
version it was taken at), and every label / relationship-type / index
named by the plan is re-resolved against the live graph at *bind time* —
the start of each execution, through :class:`~repro.execplan.expressions.
ExecContext` — so one artifact can be executed concurrently by many
readers and stays valid while the graph's data (not its schema) changes.

This split is what makes the :class:`~repro.execplan.plan_cache.PlanCache`
sound: a cached artifact is reusable iff its ``schema_version`` still
matches ``Graph.schema_version``; data writes never invalidate it.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Tuple

from repro.cypher import ast_nodes as A
from repro.cypher.parser import parse
from repro.cypher.semantic import validate
from repro.execplan.optimizer import optimize
from repro.execplan.planner import PlannedQuery, plan_single_query

__all__ = ["PlanSchema", "CompiledQuery", "compile_query", "collect_param_names"]


class PlanSchema:
    """What the planner is allowed to know about a graph: which exact-match
    indexes exist, frozen at one schema version.

    Planning against this snapshot (instead of the live graph) keeps the
    resulting plan graph-independent — matrix and index *contents* are
    looked up by name at execution time.
    """

    __slots__ = ("indexes", "composites", "version", "stats")

    def __init__(
        self,
        indexes: FrozenSet[Tuple[str, str]] = frozenset(),
        version: int = 0,
        stats=None,
        composites: FrozenSet[Tuple[str, Tuple[str, ...]]] = frozenset(),
    ) -> None:
        self.indexes = frozenset(indexes)
        self.composites = frozenset(composites)
        self.version = version
        # GraphStatistics snapshot, or None when cost_based_planner=0 —
        # its absence is what switches the planner back to pure rules
        self.stats = stats

    @classmethod
    def snapshot(cls, graph) -> "PlanSchema":
        # Compilation runs outside the graph lock, so a writer may change
        # the schema mid-snapshot.  Reading the version FIRST keeps that
        # race harmless: if the index set changes after the read, the
        # artifact is stamped with the older version, fails the next
        # cache-freshness check, and is recompiled — a plan is never
        # marked fresher than the schema it actually saw.  The statistics
        # snapshot races the same way, at worst carrying an older epoch.
        version = graph.schema_version
        stats = graph.stats.snapshot() if graph.config.cost_based_planner else None
        return cls(
            frozenset(graph.index_specs()),
            version,
            stats,
            frozenset(graph.composite_index_specs()),
        )

    def has_index(self, label: str, attribute: str) -> bool:
        return (label, attribute) in self.indexes

    def composite_indexes(self, label: str) -> Tuple[Tuple[str, ...], ...]:
        """Attribute tuples of the label's composite indexes, sorted for
        deterministic candidate ordering."""
        return tuple(sorted(attrs for lbl, attrs in self.composites if lbl == label))


class CompiledQuery:
    """A reusable compilation artifact for one query text.

    Immutable after construction; safe to execute from many threads at
    once because plan operations are stateless — all per-run state
    (Argument seeds, profile counters, bound matrix operands) lives in the
    execution's :class:`~repro.execplan.expressions.ExecContext`.
    """

    __slots__ = (
        "text",
        "plans",
        "writes",
        "union_all",
        "param_names",
        "schema_version",
        "stats_epoch",
        "est_max_rows",
        "proc_version",
    )

    def __init__(
        self,
        text: str,
        plans: List[PlannedQuery],
        writes: bool,
        union_all: bool,
        param_names: FrozenSet[str],
        schema_version: int,
        stats_epoch: Optional[int] = None,
        est_max_rows: Optional[float] = None,
        proc_version: int = 0,
    ) -> None:
        self.text = text
        self.plans = plans
        self.writes = writes
        self.union_all = union_all
        self.param_names = param_names
        self.schema_version = schema_version
        # statistics epoch the estimates were priced at (None = rule-based)
        self.stats_epoch = stats_epoch
        # largest per-op estimate in the tree (morsel pre-sizing signal)
        self.est_max_rows = est_max_rows
        # procedure-registry version the plan resolved CALLs against
        self.proc_version = proc_version

    @property
    def columns(self) -> Optional[List[str]]:
        for planned in self.plans:
            if planned.columns is not None:
                return planned.columns
        return None

    def explain(self, *, profile=None) -> str:
        return "\n\n".join(p.explain(profile=profile) for p in self.plans)

    def __repr__(self) -> str:
        return (
            f"<CompiledQuery {self.text[:40]!r} writes={self.writes} "
            f"schema_version={self.schema_version}>"
        )


def collect_param_names(node) -> FrozenSet[str]:
    """Every ``$name`` parameter referenced anywhere in an AST."""
    out = set()

    def visit(obj) -> None:
        if isinstance(obj, A.Parameter):
            out.add(obj.name)
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for field in dataclasses.fields(obj):
                visit(getattr(obj, field.name))
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                visit(item)

    visit(node)
    return frozenset(out)


def compile_query(text: str, schema: PlanSchema) -> CompiledQuery:
    """Parse, validate, plan and optimize ``text`` against a schema
    snapshot.  Pure with respect to the graph: no live references leak
    into the artifact."""
    ast = parse(text)
    validate(ast)
    plans = [plan_single_query(part, schema) for part in ast.parts]
    for planned in plans:
        planned.root = optimize(planned.root)
    est_max: Optional[float] = None
    if schema.stats is not None:
        from repro.execplan.cost import CostModel, annotate_estimates

        model = CostModel(schema.stats)
        est_max = 0.0
        for planned in plans:
            est_max = max(est_max, annotate_estimates(planned.root, model))
    writes = any(p.writes for p in plans)
    from repro.procedures import registry as proc_registry

    return CompiledQuery(
        text=text,
        plans=plans,
        writes=writes,
        union_all=ast.union_all,
        param_names=collect_param_names(ast),
        schema_version=schema.version,
        stats_epoch=schema.stats.epoch if schema.stats is not None else None,
        est_max_rows=est_max,
        proc_version=proc_registry.version,
    )
