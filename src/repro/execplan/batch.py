"""Columnar record batches — the unit of flow of the vectorized engine.

A :class:`RecordBatch` is the column-major counterpart of a run of
:data:`~repro.execplan.record.Record` rows: one column per layout slot,
all columns the same length.  Two column kinds exist:

* :class:`EntityColumn` — node/edge variables held as a bare ``int64`` id
  array (``-1`` marks a null hole from OPTIONAL MATCH).  Entity *handles*
  (:class:`~repro.graph.entities.Node` / ``Edge`` objects) are
  materialized lazily, only when the column escapes to the user or into
  an opaque (non-vectorized) expression — filters, traversals, group-bys
  and distincts all operate on the raw ids, which is where the paper's
  "stay in linear algebra" design pays off at the runtime layer.
* :class:`ValueColumn` — everything else.  ``values`` is either an
  ``object`` array of pure-Python values (``None`` = null) or a typed
  array (``bool_``/``int64``/``float64``) with a separate ``nulls`` mask;
  typed form is produced by vectorized kernels and converted back to
  Python values only on escape.

Invariant: object arrays hold *Python* scalars (never numpy scalars), so
values escaping a batch are indistinguishable from row-engine values.

Column ops used by the operators: :meth:`RecordBatch.take` (row gather),
:meth:`RecordBatch.compress` (boolean-mask filter), :meth:`RecordBatch.
slice`, :meth:`RecordBatch.concat`, and :meth:`RecordBatch.from_rows` /
:meth:`RecordBatch.iter_rows` — the bridges that let row-oriented
operators (updates, Apply subtrees) interoperate with batch-native ones.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.execplan.record import Layout, Record
from repro.graph.entities import Edge, Node

__all__ = [
    "EntityColumn",
    "ValueColumn",
    "Column",
    "RecordBatch",
    "object_column",
    "null_column",
    "as_entity_ids",
]

_I64 = np.int64
_FLOAT_EXACT_MAX = 2**53  # largest int float64 represents contiguously


def float64_exact(values) -> bool:
    """Whether converting these (numeric) values to float64 keeps their
    identity and ordering: no int outside ±2**53.  Mixed int/float
    columns must pass this before any float-keyed fast path — the scalar
    engine compares/group-keys such values exactly."""
    return not any(
        type(v) is int and (v > _FLOAT_EXACT_MAX or v < -_FLOAT_EXACT_MAX)
        for v in values
    )


def object_column(values: Sequence) -> np.ndarray:
    """Build a 1-D object array without numpy's sequence-flattening
    heuristics (a list element must stay one cell, not become a row)."""
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


class EntityColumn:
    """A node/edge variable as an id vector; handles materialize lazily."""

    __slots__ = ("kind", "ids", "graph", "_objects", "_props")

    def __init__(self, kind: str, ids: np.ndarray, graph) -> None:
        assert kind in ("node", "edge")
        self.kind = kind
        self.ids = np.asarray(ids, dtype=_I64)
        self.graph = graph
        self._objects: Optional[np.ndarray] = None
        self._props: Optional[dict] = None

    def property_column(self, key: str) -> "ValueColumn":
        """Bulk property gather, memoized per key: ``b.age > 30 AND
        b.age < 70`` touches the DataBlock once, not twice.  Returning one
        shared ValueColumn also lets kernels cache derived views (the
        numeric conversion) across expressions."""
        if self._props is None:
            self._props = {}
        col = self._props.get(key)
        if col is None:
            gather = (
                self.graph.node_property_column
                if self.kind == "node"
                else self.graph.edge_property_column
            )
            col = ValueColumn(gather(self.ids, key))
            self._props[key] = col
        return col

    def property_values(self, key: str) -> np.ndarray:
        return self.property_column(key).values

    def __len__(self) -> int:
        return len(self.ids)

    def to_objects(self) -> np.ndarray:
        """Materialize entity handles (cached: a column escaping twice
        pays the handle construction once)."""
        if self._objects is None:
            graph = self.graph
            ctor = Node if self.kind == "node" else Edge
            out = np.empty(len(self.ids), dtype=object)
            for i, eid in enumerate(self.ids.tolist()):
                if eid >= 0:
                    out[i] = ctor(graph, eid)
            self._objects = out
        return self._objects

    def take(self, indices: np.ndarray) -> "EntityColumn":
        col = EntityColumn(self.kind, self.ids[indices], self.graph)
        if self._objects is not None:
            col._objects = self._objects[indices]
        if self._props:
            # gathered properties follow the rows: a filter's gather is
            # reused by the projection on the compressed batch
            col._props = {k: v.take(indices) for k, v in self._props.items()}
        return col

    def slice(self, start: int, stop: int) -> "EntityColumn":
        col = EntityColumn(self.kind, self.ids[start:stop], self.graph)
        if self._objects is not None:
            col._objects = self._objects[start:stop]
        if self._props:
            col._props = {k: v.slice(start, stop) for k, v in self._props.items()}
        return col

    def null_mask(self) -> np.ndarray:
        return self.ids < 0

    def hash_keys(self) -> list:
        """Per-row hashable grouping/dedup keys, handle-free: the same
        ``("node", id)`` tuples :func:`~repro.execplan.ops_stream.
        _hashable` derives from a materialized handle."""
        kind = self.kind
        return [None if i < 0 else (kind, i) for i in self.ids.tolist()]


class ValueColumn:
    """A scalar column: object values, or a typed array + null mask.

    ``numeric_view`` is a kernel-side memo (see ``batch_expr.
    _numeric_parts``): ``None`` = not computed, ``False`` = not numeric,
    else the ``(array, nulls)`` pair.  It rides through take/slice so a
    column compared twice converts once.
    """

    __slots__ = ("values", "nulls", "numeric_view")

    def __init__(self, values: np.ndarray, nulls: Optional[np.ndarray] = None) -> None:
        self.values = values
        self.nulls = nulls
        self.numeric_view = None

    def __len__(self) -> int:
        return len(self.values)

    def to_objects(self) -> np.ndarray:
        if self.values.dtype == object:
            return self.values
        # typed → Python scalars via tolist (C-speed), nulls punched back in
        out = object_column(self.values.tolist())
        if self.nulls is not None and self.nulls.any():
            out[self.nulls] = None
        return out

    def take(self, indices: np.ndarray) -> "ValueColumn":
        col = ValueColumn(
            self.values[indices],
            self.nulls[indices] if self.nulls is not None else None,
        )
        if self.numeric_view is False:
            col.numeric_view = False
        elif self.numeric_view is not None:
            arr, nulls = self.numeric_view
            col.numeric_view = (arr[indices], nulls[indices] if nulls is not None else None)
        return col

    def slice(self, start: int, stop: int) -> "ValueColumn":
        col = ValueColumn(
            self.values[start:stop],
            self.nulls[start:stop] if self.nulls is not None else None,
        )
        if self.numeric_view is False:
            col.numeric_view = False
        elif self.numeric_view is not None:
            arr, nulls = self.numeric_view
            col.numeric_view = (
                arr[start:stop],
                nulls[start:stop] if nulls is not None else None,
            )
        return col

    def null_mask(self) -> np.ndarray:
        if self.nulls is not None:
            return self.nulls
        if self.values.dtype == object:
            return np.fromiter(
                (v is None for v in self.values), dtype=np.bool_, count=len(self.values)
            )
        return np.zeros(len(self.values), dtype=np.bool_)

    def hash_keys(self) -> list:
        from repro.execplan.ops_stream import _hashable

        if self.values.dtype != object:
            vals = self.to_objects()
        else:
            vals = self.values
        return [_hashable(v) for v in vals]


Column = Union[EntityColumn, ValueColumn]


def null_column(n: int) -> ValueColumn:
    return ValueColumn(np.empty(n, dtype=object))


def as_entity_ids(col: Column) -> Optional[Tuple[str, np.ndarray]]:
    """``(kind, ids)`` when ``col`` is entity-shaped: a real EntityColumn,
    or an object column of homogeneous Node/Edge handles (with None holes)
    as produced by the row bridges.  None when the column holds anything
    else — callers then fall back to per-row evaluation."""
    if isinstance(col, EntityColumn):
        return col.kind, col.ids
    if isinstance(col, ValueColumn) and col.values.dtype == object:
        kinds = set(map(type, col.values.tolist()))
        kinds.discard(type(None))
        if kinds == {Node}:
            return "node", np.fromiter(
                (-1 if v is None else v.id for v in col.values), dtype=_I64, count=len(col)
            )
        if kinds == {Edge}:
            return "edge", np.fromiter(
                (-1 if v is None else v.id for v in col.values), dtype=_I64, count=len(col)
            )
    return None


class RecordBatch:
    """``len(layout)`` same-length columns — a run of records, columnar."""

    __slots__ = ("layout", "columns", "length", "_rows")

    def __init__(self, layout: Layout, columns: List[Column], length: Optional[int] = None) -> None:
        # invariant (not asserted on this hot path): len(columns) == len(layout)
        self.layout = layout
        self.columns = columns
        # zero-column batches (a Unit stream) still carry a row count
        self.length = len(columns[0]) if columns else (length or 0)
        self._rows: Optional[list] = None

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    # Row bridges
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, layout: Layout, rows: Sequence[Record], width: Optional[int] = None) -> "RecordBatch":
        """Wrap row records (possibly narrower than the layout — operators
        extend records lazily) into a columnar batch."""
        width = len(layout) if width is None else width
        columns: List[Column] = []
        for slot in range(width):
            columns.append(
                ValueColumn(
                    object_column([row[slot] if slot < len(row) else None for row in rows])
                )
            )
        return cls(layout, columns, length=len(rows))

    def materialize_rows(self) -> list:
        """The batch as row records (entity handles materialized); cached
        so multiple per-row fallbacks over one batch share the cost."""
        if self._rows is None:
            if not self.columns:
                self._rows = [[] for _ in range(self.length)]
            else:
                cols = [c.to_objects() for c in self.columns]
                self._rows = [list(row) for row in zip(*cols)]
        return self._rows

    def iter_rows(self) -> Iterator[Record]:
        return iter(self.materialize_rows())

    # ------------------------------------------------------------------
    # Column ops
    # ------------------------------------------------------------------
    def column(self, slot: int) -> Column:
        return self.columns[slot]

    def take(self, indices: np.ndarray) -> "RecordBatch":
        return RecordBatch(
            self.layout, [c.take(indices) for c in self.columns], length=len(indices)
        )

    def compress(self, mask: np.ndarray) -> "RecordBatch":
        if mask.all():
            return self
        return self.take(np.flatnonzero(mask))

    def slice(self, start: int, stop: int) -> "RecordBatch":
        stop = min(stop, self.length)
        return RecordBatch(
            self.layout,
            [c.slice(start, stop) for c in self.columns],
            length=max(0, stop - start),
        )

    def chunks(self, size: int) -> Iterator["RecordBatch"]:
        """The batch re-sliced to at most ``size`` rows per piece (the
        whole batch, zero-copy, when it already fits)."""
        if self.length <= size:
            if self.length:
                yield self
            return
        for start in range(0, self.length, size):
            yield self.slice(start, start + size)

    def extend(self, layout: Layout, new_columns: List[Column]) -> "RecordBatch":
        """A wider batch: existing columns keep their slots (layouts only
        ever extend to the right), new trailing slots from ``new_columns``
        padded with null columns if short."""
        n = len(self)
        cols = list(self.columns) + list(new_columns)
        while len(cols) < len(layout):
            cols.append(null_column(n))
        return RecordBatch(layout, cols)

    @classmethod
    def concat(cls, layout: Layout, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        if len(batches) == 1:
            return batches[0]
        if not batches:
            return cls(layout, [null_column(0) for _ in range(len(layout))])
        if not len(layout):
            return cls(layout, [], length=sum(len(b) for b in batches))
        columns: List[Column] = []
        for slot in range(len(layout)):
            cols = [b.columns[slot] for b in batches]
            if all(isinstance(c, EntityColumn) for c in cols) and len({c.kind for c in cols}) == 1:
                columns.append(
                    EntityColumn(cols[0].kind, np.concatenate([c.ids for c in cols]), cols[0].graph)
                )
            else:
                columns.append(
                    ValueColumn(np.concatenate([c.to_objects() for c in cols]))
                )
        return cls(layout, columns)

    def __repr__(self) -> str:
        return f"<RecordBatch {self.layout!r} rows={len(self)}>"
