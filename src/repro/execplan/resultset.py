"""Query results and side-effect statistics (RedisGraph's ResultSet).

Since the vectorized-engine refactor, read results arrive as columnar
batches: :meth:`ResultSet.from_columns` keeps the column arrays and
materializes row tuples lazily on first ``rows`` access, so columnar
consumers (``column()``, ``scalar()``) never pay the transpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["QueryStatistics", "ResultSet", "QueryResult"]


@dataclass
class QueryStatistics:
    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0
    indices_created: int = 0
    indices_deleted: int = 0
    execution_time_ms: float = 0.0
    cached_execution: bool = False
    # intra-query parallelism (0/0 on serial runs and write queries)
    parallel_workers: int = 0
    morsels: int = 0

    def summary(self) -> List[str]:
        """Human-readable non-zero counters, RedisGraph reply style."""
        parts = []
        for attr, label in [
            ("labels_added", "Labels added"),
            ("nodes_created", "Nodes created"),
            ("properties_set", "Properties set"),
            ("relationships_created", "Relationships created"),
            ("nodes_deleted", "Nodes deleted"),
            ("relationships_deleted", "Relationships deleted"),
            ("indices_created", "Indices created"),
            ("indices_deleted", "Indices deleted"),
        ]:
            value = getattr(self, attr)
            if value:
                parts.append(f"{label}: {value}")
        if self.morsels:
            parts.append(
                f"Parallel execution: {self.parallel_workers} workers, "
                f"{self.morsels} morsels"
            )
        # always reported, like RedisGraph: 1 = the plan came from the cache
        parts.append(f"Cached execution: {1 if self.cached_execution else 0}")
        parts.append(f"Query internal execution time: {self.execution_time_ms:.6f} milliseconds")
        return parts


class ResultSet:
    """Column names + row tuples + statistics."""

    def __init__(self, columns: Sequence[str], rows: List[Tuple[Any, ...]], stats: QueryStatistics) -> None:
        self.columns = list(columns)
        self._rows = rows
        self._column_data: Optional[List[List[Any]]] = None
        self.stats = stats

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        column_data: List[List[Any]],
        stats: QueryStatistics,
    ) -> "ResultSet":
        """Build from column-major data (one list per column, equal
        lengths); row tuples materialize lazily on first access."""
        rs = cls(columns, None, stats)  # type: ignore[arg-type]
        rs._column_data = column_data
        return rs

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        if self._rows is None:
            data = self._column_data or []
            if data:
                self._rows = list(zip(*data))
            else:
                self._rows = []
        return self._rows

    @rows.setter
    def rows(self, value: List[Tuple[Any, ...]]) -> None:
        self._rows = value
        self._column_data = None

    def __len__(self) -> int:
        if self._rows is None and self._column_data is not None:
            return len(self._column_data[0]) if self._column_data else 0
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """The single value of a 1x1 result (e.g. RETURN count(*))."""
        if self._rows is None and self._column_data is not None:
            assert len(self._column_data) == 1 and len(self._column_data[0]) == 1, "result is not 1x1"
            return self._column_data[0][0]
        assert len(self.rows) == 1 and len(self.rows[0]) == 1, "result is not 1x1"
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        if self._rows is None and self._column_data is not None:
            return list(self._column_data[idx])
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"<ResultSet {self.columns} rows={len(self.rows)}>"


class QueryResult(ResultSet):
    """The unified result of ``query`` / ``ro_query`` / ``profile``.

    One shape for every entry point: ``.rows``, ``.columns``, ``.stats``,
    plus ``.plan`` (the EXPLAIN tree of the compiled artifact that ran)
    and ``.profile`` (the per-operation PROFILE report, None unless the
    run profiled).  It *is* a :class:`ResultSet` — iteration, ``len``,
    ``scalar()``, ``column()`` and ``to_dicts()`` all keep working — so
    pre-redesign callers continue unchanged (the deprecation shim).
    """

    @classmethod
    def wrap(
        cls,
        result: ResultSet,
        *,
        compiled=None,
        profile_report: Optional[str] = None,
    ) -> "QueryResult":
        qr = cls.__new__(cls)
        qr.columns = result.columns
        qr._rows = result._rows
        qr._column_data = result._column_data
        qr.stats = result.stats
        qr._compiled = compiled
        qr._profile_report = profile_report
        return qr

    @property
    def plan(self) -> Optional[str]:
        """The executed plan as an indented EXPLAIN tree (lazy)."""
        return self._compiled.explain() if self._compiled is not None else None

    @property
    def profile(self) -> Optional[str]:
        """The per-operation PROFILE report; None outside profile runs."""
        return self._profile_report

    def __repr__(self) -> str:
        return f"<QueryResult {self.columns} rows={len(self.rows)}>"
