"""Query results and side-effect statistics (RedisGraph's ResultSet)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

__all__ = ["QueryStatistics", "ResultSet"]


@dataclass
class QueryStatistics:
    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0
    indices_created: int = 0
    indices_deleted: int = 0
    execution_time_ms: float = 0.0
    cached_execution: bool = False

    def summary(self) -> List[str]:
        """Human-readable non-zero counters, RedisGraph reply style."""
        parts = []
        for attr, label in [
            ("labels_added", "Labels added"),
            ("nodes_created", "Nodes created"),
            ("properties_set", "Properties set"),
            ("relationships_created", "Relationships created"),
            ("nodes_deleted", "Nodes deleted"),
            ("relationships_deleted", "Relationships deleted"),
            ("indices_created", "Indices created"),
            ("indices_deleted", "Indices deleted"),
        ]:
            value = getattr(self, attr)
            if value:
                parts.append(f"{label}: {value}")
        # always reported, like RedisGraph: 1 = the plan came from the cache
        parts.append(f"Cached execution: {1 if self.cached_execution else 0}")
        parts.append(f"Query internal execution time: {self.execution_time_ms:.6f} milliseconds")
        return parts


class ResultSet:
    """Column names + row tuples + statistics."""

    def __init__(self, columns: Sequence[str], rows: List[Tuple[Any, ...]], stats: QueryStatistics) -> None:
        self.columns = list(columns)
        self.rows = rows
        self.stats = stats

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        """The single value of a 1x1 result (e.g. RETURN count(*))."""
        assert len(self.rows) == 1 and len(self.rows[0]) == 1, "result is not 1x1"
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"<ResultSet {self.columns} rows={len(self.rows)}>"
