"""Plan rewrites applied after construction.

The planner already performs the big structural choices RedisGraph makes
(index-scan selection, folding labels into algebraic expressions, using
ExpandInto for closed patterns).  This pass adds stream-level rewrites:

* **top-k sort**: ``Limit(Sort(x))`` annotates the sort with the limit so
  it keeps a bounded heap instead of materializing + sorting everything,
* **filter fusion**: adjacent Filters merge into one (fewer generator
  hops per record).

Rewrites run exactly once, at compile time, before the plan is frozen
into a cached :class:`~repro.execplan.compiled.CompiledQuery` — they may
restructure the tree and set compile-time annotations (``Sort.top``), but
must never install run-scoped state: the optimized tree is executed
concurrently by every request that hits the cache.
"""

from __future__ import annotations

from repro.execplan.ops_base import PlanOp
from repro.execplan.ops_stream import Filter, Limit, Sort

__all__ = ["optimize"]


def optimize(root: PlanOp) -> PlanOp:
    root = _rewrite(root)
    return root


def _literal_count(limit: Limit) -> int:
    """The LIMIT's count when it is a literal (no record/params needed);
    -1 when it is dynamic and only knowable per execution.

    Only the errors a dynamic count raises when probed without a record
    or parameters are treated as "dynamic" — anything else is a planner
    bug and must propagate instead of silently degrading the top-k sort."""
    try:
        value = limit._count([], None)
    except (AttributeError, IndexError, KeyError, TypeError):
        return -1
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        return -1  # execution raises the proper type error for these
    return value


def _rewrite(op: PlanOp) -> PlanOp:
    op.children = [_rewrite(c) for c in op.children]

    # Limit(Sort(x)) -> Sort with top-k bound (keep the Limit: Skip needs it)
    if isinstance(op, Limit) and op.children and isinstance(op.children[0], Sort):
        sort = op.children[0]
        n = _literal_count(op)
        if n >= 0:
            sort.top = n

    # Filter(Filter(x)) -> one Filter holding both predicate lists (the
    # inner predicates compress each batch before the outer ones run, so
    # fusion keeps the row engine's short-circuit order)
    if isinstance(op, Filter) and op.children and isinstance(op.children[0], Filter):
        inner = op.children[0]
        fused_op = Filter(
            inner.children[0],
            inner._predicates + op._predicates,
            f"{inner._label} AND {op._label}".strip(" AND "),
        )
        return fused_op
    return op
