"""Scan operations: the leaves that put nodes into the record stream."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.execplan.expressions import CompiledExpr, ExecContext
from repro.execplan.ops_base import PlanOp
from repro.execplan.record import Layout, Record
from repro.graph.entities import Node

__all__ = ["AllNodeScan", "NodeByLabelScan", "NodeByIndexScan", "NodeByIdSeek"]


class NodeByIdSeek(PlanOp):
    """O(1) node lookup from a ``WHERE id(n) = <expr>`` predicate — the
    access path the k-hop benchmark's seed queries rely on."""

    name = "NodeByIdSeek"

    def __init__(self, var: str, id_expr: "CompiledExpr", child: Optional["PlanOp"] = None) -> None:
        base = child.out_layout if child is not None else Layout()
        super().__init__([child] if child else [], base.extend(var))
        self._var_slot = self.out_layout.slot(var)
        self._var = var
        self._id_expr = id_expr

    def describe(self) -> str:
        return f"NodeByIdSeek | ({self._var})"

    def _emit(self, ctx: ExecContext, record: Record):
        node_id = self._id_expr(record, ctx)
        if node_id is None or not isinstance(node_id, int) or not ctx.graph.has_node(node_id):
            return
        out = record + [None] * (len(self.out_layout) - len(record))
        out[self._var_slot] = Node(ctx.graph, node_id)
        yield out

    def _produce(self, ctx: ExecContext) -> "Iterator[Record]":
        if self.children:
            for record in self.children[0].produce(ctx):
                yield from self._emit(ctx, record)
        else:
            yield from self._emit(ctx, Layout().new_record())


class AllNodeScan(PlanOp):
    """Emit every live node bound to ``var`` (optionally extending a child
    stream as a nested-loop cross product)."""

    name = "AllNodeScan"

    def __init__(self, var: str, child: Optional[PlanOp] = None) -> None:
        base = child.out_layout if child is not None else Layout()
        super().__init__([child] if child else [], base.extend(var))
        self._var_slot = self.out_layout.slot(var)
        self._var = var

    def describe(self) -> str:
        return f"AllNodeScan | ({self._var})"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        node_ids = ctx.graph.all_node_ids()
        if self.children:
            for record in self.children[0].produce(ctx):
                for nid in node_ids:
                    out = record + [None] * (len(self.out_layout) - len(record))
                    out[self._var_slot] = Node(ctx.graph, int(nid))
                    yield out
        else:
            for nid in node_ids:
                out = self.out_layout.new_record()
                out[self._var_slot] = Node(ctx.graph, int(nid))
                yield out


class NodeByLabelScan(PlanOp):
    """Emit nodes carrying a label — reads the label matrix diagonal."""

    name = "NodeByLabelScan"

    def __init__(self, var: str, label: str, child: Optional[PlanOp] = None) -> None:
        base = child.out_layout if child is not None else Layout()
        super().__init__([child] if child else [], base.extend(var))
        self._var_slot = self.out_layout.slot(var)
        self._var = var
        self._label = label

    def describe(self) -> str:
        return f"NodeByLabelScan | ({self._var}:{self._label})"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        node_ids = ctx.graph.nodes_with_label(self._label)
        if self.children:
            for record in self.children[0].produce(ctx):
                for nid in node_ids:
                    out = record + [None] * (len(self.out_layout) - len(record))
                    out[self._var_slot] = Node(ctx.graph, int(nid))
                    yield out
        else:
            for nid in node_ids:
                out = self.out_layout.new_record()
                out[self._var_slot] = Node(ctx.graph, int(nid))
                yield out


class NodeByIndexScan(PlanOp):
    """Probe an exact-match index: ``MATCH (n:L {attr: value})`` where an
    index exists on (L, attr)."""

    name = "NodeByIndexScan"

    def __init__(
        self,
        var: str,
        label: str,
        attribute: str,
        value: CompiledExpr,
        child: Optional[PlanOp] = None,
    ) -> None:
        base = child.out_layout if child is not None else Layout()
        super().__init__([child] if child else [], base.extend(var))
        self._var_slot = self.out_layout.slot(var)
        self._var = var
        self._label = label
        self._attribute = attribute
        self._value = value

    def describe(self) -> str:
        return f"NodeByIndexScan | ({self._var}:{self._label} {{{self._attribute}}})"

    def _ids(self, ctx: ExecContext, record: Record):
        index = ctx.graph.get_index(self._label, self._attribute)
        value = self._value(record, ctx)
        if index is None:
            # the index vanished between plan lookup and execution (the
            # schema-version bump invalidates the cached plan for the NEXT
            # request); degrade to a filtered label scan rather than fail
            return [
                int(nid)
                for nid in ctx.graph.nodes_with_label(self._label)
                if ctx.graph.node_property(int(nid), self._attribute) == value
            ]
        return sorted(index.lookup(value))

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        if self.children:
            for record in self.children[0].produce(ctx):
                for nid in self._ids(ctx, record):
                    out = record + [None] * (len(self.out_layout) - len(record))
                    out[self._var_slot] = Node(ctx.graph, int(nid))
                    yield out
        else:
            empty = Layout().new_record()
            for nid in self._ids(ctx, empty):
                out = self.out_layout.new_record()
                out[self._var_slot] = Node(ctx.graph, int(nid))
                yield out
