"""Scan operations: the leaves that put nodes into the record stream.

Batch-native: a childless scan slices its id vector (label-matrix
diagonal, DataBlock slot array, index postings) straight into
:class:`~repro.execplan.batch.EntityColumn` batches — no per-row record
lists, no per-row ``Node`` handle construction.  Scans extending a child
stream (correlated / cross-product forms) repeat the child batch
columnarly (``np.repeat`` × ``np.tile``) in the same record-major order
the row engine produced.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import CypherTypeError
from repro.execplan.batch import EntityColumn, RecordBatch
from repro.execplan.expressions import CompiledExpr, ExecContext, _compare, _equal, sort_key
from repro.execplan.ops_base import PlanOp
from repro.execplan.record import Layout, Record
from repro.graph.index import _family_of

__all__ = [
    "AllNodeScan",
    "NodeByLabelScan",
    "NodeByIndexScan",
    "NodeByIdSeek",
    "IndexRangeScan",
    "IndexOrderScan",
    "SeekSpec",
]

_I64 = np.int64


def _chunks(n: int, size: int) -> Iterator[slice]:
    for start in range(0, n, size):
        yield slice(start, min(start + size, n))


class _NodeEmitScan(PlanOp):
    """Shared machinery: emit an id vector under ``var``, optionally as a
    nested-loop extension of a child stream."""

    def __init__(self, var: str, child: Optional[PlanOp]) -> None:
        base = child.out_layout if child is not None else Layout()
        super().__init__([child] if child else [], base.extend(var))
        self._var_slot = self.out_layout.slot(var)
        self._var = var

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        """The ids this scan emits; ``record`` is the child row for
        correlated scans (None for the childless form)."""
        raise NotImplementedError  # pragma: no cover

    def _record_dependent(self) -> bool:
        """Whether _node_ids varies per child record (index probes with
        correlated value expressions)."""
        return False

    def _partitions(self, ctx: ExecContext):
        """Childless scans split their id vector into morsel-sized slices;
        each morsel emits its slice in ``ctx.batch_size`` chunks, so the
        concatenation equals the serial stream row-for-row.  Scans that
        extend a child stream do not partition (the parallel split, if
        any, happens below them)."""
        if self.children:
            return None
        ids = np.asarray(self._node_ids(ctx, None), dtype=_I64)
        morsel = max(1, ctx.morsel_size)
        if len(ids) <= morsel:
            return None
        graph = ctx.graph
        layout = self.out_layout
        size = ctx.batch_size

        def emit(part: np.ndarray):
            def batches() -> Iterator[RecordBatch]:
                for sl in _chunks(len(part), size):
                    yield RecordBatch(layout, [EntityColumn("node", part[sl], graph)])

            return batches

        return [emit(ids[sl]) for sl in _chunks(len(ids), morsel)]

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        size = ctx.batch_size
        graph = ctx.graph
        layout = self.out_layout
        if not self.children:
            ids = np.asarray(self._node_ids(ctx, None), dtype=_I64)
            for sl in _chunks(len(ids), size):
                col = EntityColumn("node", ids[sl], graph)
                yield RecordBatch(layout, [col])
            return
        if not self._record_dependent():
            ids = np.asarray(self._node_ids(ctx, None), dtype=_I64)
            k = len(ids)
            for batch in self.children[0].produce_batches(ctx):
                if k == 0 or batch.length == 0:
                    continue
                # cross-product indices generated one output chunk at a
                # time — never the full batch×k arrays (O(size) memory)
                total = batch.length * k
                for sl in _chunks(total, size):
                    flat = np.arange(sl.start, sl.stop, dtype=_I64)
                    out = batch.take(flat // k).extend(
                        layout, [EntityColumn("node", ids[flat % k], graph)]
                    )
                    yield out
            return
        # correlated probe: the id set depends on each child record
        for batch in self.children[0].produce_batches(ctx):
            rows = batch.materialize_rows()
            idx_parts: List[np.ndarray] = []
            dst_parts: List[np.ndarray] = []
            for i, record in enumerate(rows):
                ids = np.asarray(self._node_ids(ctx, record), dtype=_I64)
                if len(ids):
                    idx_parts.append(np.full(len(ids), i, dtype=_I64))
                    dst_parts.append(ids)
            if not idx_parts:
                continue
            idx = np.concatenate(idx_parts)
            dst = np.concatenate(dst_parts)
            for sl in _chunks(len(idx), size):
                yield batch.take(idx[sl]).extend(
                    layout, [EntityColumn("node", dst[sl], graph)]
                )


class NodeByIdSeek(_NodeEmitScan):
    """O(1) node lookup from a ``WHERE id(n) = <expr>`` predicate — the
    access path the k-hop benchmark's seed queries rely on."""

    name = "NodeByIdSeek"

    def __init__(self, var: str, id_expr: "CompiledExpr", child: Optional["PlanOp"] = None) -> None:
        super().__init__(var, child)
        self._id_expr = id_expr

    def describe(self) -> str:
        return f"NodeByIdSeek | ({self._var})"

    def _record_dependent(self) -> bool:
        return True

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        node_id = self._id_expr(record if record is not None else [], ctx)
        # bools are not ids (id(n) = true must match nothing, like the
        # residual filter's _equal(1, true) used to guarantee)
        if type(node_id) is not int or not ctx.graph.has_node(node_id):
            return np.empty(0, dtype=_I64)
        return np.asarray([node_id], dtype=_I64)


class AllNodeScan(_NodeEmitScan):
    """Emit every live node bound to ``var`` (optionally extending a child
    stream as a nested-loop cross product)."""

    name = "AllNodeScan"

    def describe(self) -> str:
        return f"AllNodeScan | ({self._var})"

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        return ctx.graph.all_node_ids()


class NodeByLabelScan(_NodeEmitScan):
    """Emit nodes carrying a label — reads the label matrix diagonal."""

    name = "NodeByLabelScan"

    def __init__(self, var: str, label: str, child: Optional[PlanOp] = None) -> None:
        super().__init__(var, child)
        self._label = label

    def describe(self) -> str:
        return f"NodeByLabelScan | ({self._var}:{self._label})"

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        return ctx.graph.nodes_with_label(self._label)


class NodeByIndexScan(_NodeEmitScan):
    """Probe an exact-match index: ``MATCH (n:L {attr: value})`` where an
    index exists on (L, attr)."""

    name = "NodeByIndexScan"

    def __init__(
        self,
        var: str,
        label: str,
        attribute: str,
        value: CompiledExpr,
        child: Optional[PlanOp] = None,
    ) -> None:
        super().__init__(var, child)
        self._label = label
        self._attribute = attribute
        self._value = value

    def describe(self) -> str:
        return f"NodeByIndexScan | ({self._var}:{self._label} {{{self._attribute}}})"

    def _record_dependent(self) -> bool:
        return True

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        index = ctx.graph.get_index(self._label, self._attribute)
        value = self._value(record if record is not None else [], ctx)
        if index is None:
            # the index vanished between plan lookup and execution (the
            # schema-version bump invalidates the cached plan for the NEXT
            # request); degrade to a filtered label scan rather than fail
            return np.asarray(
                [
                    int(nid)
                    for nid in ctx.graph.nodes_with_label(self._label)
                    if ctx.graph.node_property(int(nid), self._attribute) == value
                ],
                dtype=_I64,
            )
        return np.asarray(sorted(index.lookup(value)), dtype=_I64)


class IndexOrderScan(_NodeEmitScan):
    """Stream one label's nodes in ``ORDER BY n.attr`` order straight off
    the range index's sorted arrays — the planner installs this in place
    of ``NodeByLabelScan + Sort`` when the sort key is a single indexed
    attribute and no residual filter sits between scan and projection,
    so ``ORDER BY ... LIMIT k`` stops after streaming k rows instead of
    sorting the whole label.

    Order contract (must match ``Sort`` over an ascending-id label scan
    exactly): values rank by Cypher's type classes, equal values break
    toward the lower node id, and nodes the index skips are spliced back
    around the indexed block — non-null unindexable values (lists, maps)
    rank *before* the indexed families, nulls after; ``NaN`` (numeric but
    unindexable) lands adjacent to the numeric family.  Descending
    reverses the blocks and each ordering, keeping the ascending-id
    tie-break.  An index dropped between planning and execution degrades
    to the label scan + stable sort this op replaced."""

    name = "IndexOrderScan"

    def __init__(
        self,
        var: str,
        label: str,
        attribute: str,
        ascending: bool,
        child: Optional[PlanOp] = None,
    ) -> None:
        super().__init__(var, child)
        self._label = label
        self._attribute = attribute
        self._ascending = ascending

    def describe(self) -> str:
        direction = "ASC" if self._ascending else "DESC"
        return f"IndexOrderScan | ({self._var}:{self._label}) [{self._attribute} {direction}]"

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        graph = ctx.graph
        members = np.asarray(graph.nodes_with_label(self._label), dtype=_I64)
        index = graph.get_index(self._label, self._attribute)
        if index is None:
            return self._sorted_fallback(graph, members)
        ordered = index.ordered_ids(self._ascending)
        if len(ordered) == len(members):
            return ordered
        leftover = np.setdiff1d(members, ordered, assume_unique=True)
        before: List[tuple] = []  # non-null unindexable: map/node/edge/list
        nans: List[int] = []  # numeric class, but the index never holds NaN
        after: List[tuple] = []  # null (and unknown classes)
        for nid in leftover.tolist():
            value = graph.node_property(int(nid), self._attribute)
            key = sort_key(value)
            if key[0] <= 3:
                before.append((key, nid))
            elif key[0] == 6:
                nans.append(nid)
            else:
                after.append((key[0], nid))
        reverse = not self._ascending
        before.sort(key=lambda t: t[0], reverse=reverse)
        after.sort(key=lambda t: t[0], reverse=reverse)
        blocks = [
            np.asarray([nid for _k, nid in before], dtype=_I64),
            ordered,
            np.asarray(nans, dtype=_I64),
            np.asarray([nid for _k, nid in after], dtype=_I64),
        ]
        if reverse:
            blocks.reverse()
        return np.concatenate([b for b in blocks if len(b)] or [np.empty(0, dtype=_I64)])

    def _sorted_fallback(self, graph, members: np.ndarray) -> np.ndarray:
        ids = [int(n) for n in members]
        ids.sort(
            key=lambda nid: sort_key(graph.node_property(nid, self._attribute)),
            reverse=not self._ascending,
        )
        return np.asarray(ids, dtype=_I64)


#: SeekSpec.literal when the predicate's value is not a plan-time literal
NOT_LITERAL = object()


class SeekSpec:
    """One WHERE conjunct a secondary-index seek consumes: ``attribute op
    <value_fn>``.  ``literal`` carries the plan-time constant (or
    :data:`NOT_LITERAL`) so the cost model can rank range bounds against
    the index's numeric sample without executing anything."""

    __slots__ = ("attribute", "op", "value_fn", "display", "literal")

    def __init__(
        self,
        attribute: str,
        op: str,
        value_fn: CompiledExpr,
        display: str,
        literal=NOT_LITERAL,
    ) -> None:
        self.attribute = attribute
        self.op = op  # '=', '<', '<=', '>', '>=', 'STARTS WITH', 'IN'
        self.value_fn = value_fn
        self.display = display
        self.literal = literal


def _spec_true(op: str, prop, value) -> bool:
    """The scan-side predicate one spec stands for — exactly the residual
    filter's semantics (``_equal`` / ``_compare`` / STARTS WITH), so the
    fallback path and the seek path agree row-for-row."""
    if op == "=":
        return _equal(prop, value) is True
    if op == "STARTS WITH":
        return isinstance(prop, str) and isinstance(value, str) and prop.startswith(value)
    if op == "IN":
        if not isinstance(value, list):
            return False  # null haystack matches nothing
        return any(_equal(prop, item) is True for item in value)
    return _compare(op, prop, value) is True


class IndexRangeScan(_NodeEmitScan):
    """Batch-native seek over a range or composite secondary index.

    Emits exactly the nodes every consumed conjunct holds True for, so
    the planner can drop those conjuncts from the residual WHERE filter.
    Range kind: one index on (label, attr), each spec's seek intersected.
    Composite kind: eq specs covering a leading prefix of the index's
    attribute tuple, answered as one sorted-slice seek.

    Values that could match non-indexed property types (lists, maps — a
    list-valued property is never indexed but ``_equal`` can still match
    it) route to a filtered label scan with identical semantics; the same
    fallback covers an index dropped between planning and execution.
    """

    name = "IndexRangeScan"

    def __init__(
        self,
        var: str,
        label: str,
        kind: str,
        attributes: Sequence[str],
        specs: Sequence[SeekSpec],
        child: Optional[PlanOp] = None,
    ) -> None:
        super().__init__(var, child)
        self._label = label
        self._kind = kind  # 'range' | 'composite'
        self._attributes = tuple(attributes)
        self._specs = list(specs)

    def describe(self) -> str:
        preds = ", ".join(spec.display for spec in self._specs)
        return f"IndexRangeScan | ({self._var}:{self._label}) [{self._kind}: {preds}]"

    def _record_dependent(self) -> bool:
        return True

    def _node_ids(self, ctx: ExecContext, record: Optional[Record]) -> np.ndarray:
        rec = record if record is not None else []
        graph = ctx.graph
        values = [spec.value_fn(rec, ctx) for spec in self._specs]
        # the filter this scan replaced would raise on a non-list haystack
        for spec, value in zip(self._specs, values):
            if spec.op == "IN" and value is not None and not isinstance(value, list):
                raise CypherTypeError("IN expects a list on the right")
        if self._kind == "composite":
            index = graph.get_composite_index(self._label, self._attributes)
        else:
            index = graph.get_index(self._label, self._attributes[0])
        if index is None or self._needs_fallback(values):
            return self._scan_fallback(ctx, values)
        if self._kind == "composite":
            return index.seek_prefix_eq(values)
        result: Optional[np.ndarray] = None
        for spec, value in zip(self._specs, values):
            ids = self._seek_one(index, spec.op, value)
            result = ids if result is None else np.intersect1d(result, ids, assume_unique=True)
            if len(result) == 0:
                break
        return result if result is not None else np.empty(0, dtype=_I64)

    @staticmethod
    def _seek_one(index, op: str, value) -> np.ndarray:
        if op == "=":
            return index.seek_eq(value)
        if op == "STARTS WITH":
            return index.seek_prefix(value) if isinstance(value, str) else np.empty(0, dtype=_I64)
        if op == "IN":
            return index.seek_in(value if isinstance(value, list) else ())
        return index.seek_cmp(op, value)

    def _needs_fallback(self, values) -> bool:
        """A comparison value only an *unindexed* property type could
        match (list/map) makes the seek lossy — scan instead."""
        for spec, value in zip(self._specs, values):
            if spec.op == "IN":
                items = value if isinstance(value, list) else ()
                if any(_family_of(v) is None and v is not None for v in items):
                    return True
            elif spec.op != "STARTS WITH":
                if _family_of(value) is None and value is not None:
                    return True
        return False

    def _scan_fallback(self, ctx: ExecContext, values) -> np.ndarray:
        out: List[int] = []
        for nid in ctx.graph.nodes_with_label(self._label):
            nid = int(nid)
            if all(
                _spec_true(spec.op, ctx.graph.node_property(nid, spec.attribute), value)
                for spec, value in zip(self._specs, values)
            ):
                out.append(nid)
        return np.asarray(out, dtype=_I64)
