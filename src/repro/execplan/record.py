"""Records and record layouts.

A Record is a flat Python list of runtime values (Node/Edge handles,
scalars, lists, maps, None).  The mapping from variable names to slots is
fixed per plan operation at *compile* time (a :class:`Layout`), so runtime
access is a plain list index — no per-row dict lookups.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Layout", "Record"]

Record = list  # runtime record: just a list, indexed via Layout


class Layout:
    """Immutable name → slot mapping."""

    __slots__ = ("_slots", "_names")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: Tuple[str, ...] = tuple(names)
        self._slots: Dict[str, int] = {n: i for i, n in enumerate(self._names)}
        assert len(self._slots) == len(self._names), "duplicate names in layout"

    def slot(self, name: str) -> int:
        return self._slots[name]

    def get(self, name: str) -> Optional[int]:
        return self._slots.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def extend(self, *names: str) -> "Layout":
        """A new layout with extra trailing slots (existing slots keep
        their indices, so parent records can be extended in place)."""
        new_names: List[str] = []
        for n in names:
            if n not in self._slots and n not in new_names:
                new_names.append(n)
        return Layout(self._names + tuple(new_names))

    def new_record(self) -> Record:
        return [None] * len(self._names)

    def project_from(self, record: Record, source: "Layout") -> Record:
        """Build a record of this layout by copying same-named slots."""
        out = self.new_record()
        for i, name in enumerate(self._names):
            j = source.get(name)
            if j is not None:
                out[i] = record[j]
        return out

    def __repr__(self) -> str:
        return f"Layout({', '.join(self._names)})"
