"""repro.execplan — the query execution engine.

Compiles a validated Cypher AST into a tree of plan operations (Volcano
iterator model, like RedisGraph's ExecutionPlan).  The load-bearing design
point — the paper's contribution — is that ``MATCH`` traversals compile to
*algebraic expressions*: chains of sparse Boolean matrix products evaluated
by :mod:`repro.grblas` in node batches, instead of per-edge pointer
chasing.
"""

from repro.execplan.executor import QueryEngine
from repro.execplan.resultset import QueryResult, ResultSet, QueryStatistics

__all__ = ["QueryEngine", "QueryResult", "ResultSet", "QueryStatistics"]
