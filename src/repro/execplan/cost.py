"""Cardinality estimation — the planner's price list.

The model turns a :class:`~repro.graph.statistics.GraphStatistics`
snapshot into per-operation row estimates using the textbook
System-R-style rules (the query-optimization layer Besta et al. name as
what separates production graph engines from toys):

* **scan cardinality** from per-label node counts (an AllNodeScan costs
  ``N``, a label scan the label's count, an index probe the index's
  average posting size ``size / NDV``),
* **expansion fan-out** from per-type degree statistics: a traversal
  multiplies the frontier by the type's mean entries-per-node, a
  variable-length hop by the clamped geometric series of that fan,
* **filter selectivity** from NDV where an index provides it, with the
  standard defaults elsewhere (0.1 per equality conjunct, 0.25 per
  opaque predicate).

Estimates are *relative* prices for comparing alternatives — anchor
choice, join order, index-vs-scan — not promises about result sizes;
:func:`annotate_estimates` also stamps every op with ``est_rows`` so
EXPLAIN shows the numbers the plan was chosen by and PROFILE exposes
estimated-vs-actual drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.execplan.ops_base import Argument, PlanOp, Unit
import numpy as np

from repro.execplan.ops_scan import (
    AllNodeScan,
    IndexOrderScan,
    IndexRangeScan,
    NodeByIdSeek,
    NodeByIndexScan,
    NodeByLabelScan,
)
from repro.execplan.ops_stream import (
    Aggregate,
    ApplyOptional,
    CartesianProduct,
    Filter,
    Limit,
    Unwind,
)
from repro.execplan.ops_call import ProcedureCall
from repro.execplan.ops_traverse import CondVarLenTraverse, ConditionalTraverse, ExpandInto
from repro.execplan.planner import _LabelCheckPredicate, _PropertyCheckPredicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.statistics import GraphStatistics

__all__ = ["CostModel", "annotate_estimates", "DEFAULT_EQ_SELECTIVITY", "DEFAULT_FILTER_SELECTIVITY"]

#: selectivity of one equality conjunct with no index NDV to price it
DEFAULT_EQ_SELECTIVITY = 0.1
#: selectivity of an opaque predicate (WHERE expressions we don't model)
DEFAULT_FILTER_SELECTIVITY = 0.25
#: average list length assumed for UNWIND of a non-literal expression
UNWIND_FANOUT = 10.0
#: selectivity of one half-open range bound with no sample to rank against
SEEK_RANGE_SELECTIVITY = 1.0 / 3.0
#: selectivity of one STARTS WITH prefix seek
SEEK_PREFIX_SELECTIVITY = 0.05
#: assumed element count of a non-literal IN list
SEEK_IN_DEFAULT_ITEMS = 4.0


def _parse_rel_operand(label: str) -> Tuple[Tuple[str, ...], str]:
    """Invert :func:`~repro.execplan.algebraic.build_traverse_expression`'s
    relation-operand display label back into (types, direction)."""
    direction = "out"
    if label.startswith("T(") and label.endswith(")"):
        direction, label = "in", label[2:-1]
    elif label.startswith("(") and label.endswith("+T)"):
        direction, label = "any", label[1:-3]
    types = () if label == "ADJ" else tuple(label.split("|"))
    return types, direction


def _diag_labels(expr) -> Tuple[str, ...]:
    """Destination labels folded into an algebraic expression."""
    return tuple(
        lbl[5:-1] for lbl in expr.labels if lbl.startswith("diag(") and lbl.endswith(")")
    )


class CostModel:
    """Prices access paths and traversal steps from one statistics snapshot."""

    def __init__(self, stats: "GraphStatistics") -> None:
        self.stats = stats
        self.node_count = max(1, stats.node_count)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def label_count(self, label: str) -> float:
        return float(self.stats.label_counts.get(label, 0))

    def label_selectivity(self, label: str) -> float:
        return min(1.0, self.label_count(label) / self.node_count)

    def index_estimate(self, label: str, attribute: str) -> float:
        """Expected postings of one equality probe: size / NDV (falls back
        to the default equality selectivity of the label's count when the
        index isn't in the snapshot yet)."""
        entry = self.stats.indexes.get((label, attribute))
        if entry is None:
            return self.label_count(label) * DEFAULT_EQ_SELECTIVITY
        size, ndv = entry
        return size / max(1, ndv)

    def seek_estimate(self, label, attributes, kind, specs) -> float:
        """Expected rows of one IndexRangeScan: the index's size times the
        product of per-conjunct selectivities.  ``specs`` is a sequence of
        (op, plan-time literal or NOT_LITERAL); a numeric literal range
        bound is ranked against the index's sorted numeric sample (a
        searchsorted rank query — the columnar twin of a histogram),
        everything else takes the op's default."""
        details = getattr(self.stats, "index_details", None) or {}
        detail = details.get((label, tuple(attributes), kind))
        if detail is None:
            size = self.label_count(label)
            ndv = max(1.0, size * DEFAULT_EQ_SELECTIVITY)
            sample = None
        else:
            size = float(detail["size"])
            ndv = float(max(1, detail["ndv"]))
            sample = detail.get("sample")
        if kind == "composite":
            # eq specs over a leading prefix: full coverage is one posting
            # run (size/NDV); shorter prefixes interpolate geometrically
            width, total = len(specs), max(1, len(attributes))
            return size * (1.0 / ndv) ** (width / total)
        sel = 1.0
        for op, literal in specs:
            sel *= self._seek_selectivity(op, literal, ndv, sample)
        return size * sel

    def _seek_selectivity(self, op, literal, ndv: float, sample) -> float:
        if op == "=":
            return 1.0 / ndv
        if op == "STARTS WITH":
            return SEEK_PREFIX_SELECTIVITY
        if op == "IN":
            items = float(len(literal)) if isinstance(literal, list) else SEEK_IN_DEFAULT_ITEMS
            return min(1.0, items / ndv)
        is_num = isinstance(literal, (int, float)) and not isinstance(literal, bool)
        if sample is not None and len(sample) and is_num:
            keys = np.asarray(sample, dtype=np.float64)
            side = "left" if op in ("<", ">=") else "right"
            frac = float(np.searchsorted(keys, float(literal), side=side)) / len(keys)
            if op in (">", ">="):
                frac = 1.0 - frac
            return min(1.0, max(frac, 1.0 / ndv))
        return SEEK_RANGE_SELECTIVITY

    def entries(self, types: Sequence[str], direction: str) -> float:
        """Distinct matrix entries the step's relation operand holds."""
        if types:
            total = sum(
                self.stats.rels[t].entries for t in types if t in self.stats.rels
            )
        else:
            total = sum(rel.entries for rel in self.stats.rels.values())
        return float(total * 2 if direction == "any" else total)

    def fan(self, types: Sequence[str], direction: str) -> float:
        """Mean per-frontier-row fan-out of one hop (uniform model)."""
        return self.entries(types, direction) / self.node_count

    def source_nodes(self, types: Sequence[str], direction: str) -> int:
        """Distinct nodes with at least one step-source-side entry — the
        in/out asymmetry signal.  Walking ``-[:R]->`` forward reads R and
        fans out of ``out_nodes`` sources; walking it backwards reads the
        cached transpose and fans out of ``in_nodes``.  Fewer distinct
        sources means a sparser frontier matrix for the same entry count."""
        total = 0
        rels = (
            [self.stats.rels[t] for t in types if t in self.stats.rels]
            if types
            else list(self.stats.rels.values())
        )
        for rel in rels:
            if direction == "out":
                total += rel.out_nodes
            elif direction == "in":
                total += rel.in_nodes
            else:
                total += max(rel.out_nodes, rel.in_nodes)
        return total

    def proc_cardinality(self, proc) -> float:
        """Estimated output rows of one procedure invocation.  Declared as
        ``"nodes"`` (result per live node), a schema-sized tag, or a float."""
        card = proc.cardinality
        if card == "nodes":
            return float(self.node_count)
        if card == "labels":
            return float(max(1, len(self.stats.label_counts)))
        if card == "reltypes":
            return float(max(1, len(self.stats.rels)))
        if card == "props":
            return 8.0
        return float(card)

    # ------------------------------------------------------------------
    # Composite prices (what the planner compares)
    # ------------------------------------------------------------------
    def access_estimate(
        self,
        labels: Sequence[str],
        prop_keys: Sequence[str],
        schema,
        *,
        id_seek: bool = False,
    ) -> Tuple[float, float, int]:
        """(estimated rows, work, rule score) of scanning one node pattern.

        ``work`` is what the access op itself materializes — the rows any
        residual property/label Filter must then examine — while the first
        value is the post-filter cardinality carried into the next step.
        Pricing anchors by work (not output) is what stops a cheap-looking
        filter from hiding an expensive scan behind it.  The rule score
        mirrors ``_best_scan_anchor``'s syntactic ranking (id-seek 3 >
        indexed 2 > label 1 > bare 0) and tie-breaks equal estimates, so
        empty or uniform statistics reproduce the rule-based choice
        exactly."""
        if id_seek:
            return 1.0, 1.0, 3
        if labels:
            extra = 1.0
            for lbl in labels[1:]:
                extra *= self.label_selectivity(lbl)
            indexed = [k for k in prop_keys if schema.has_index(labels[0], k)]
            if indexed:
                best = min(self.index_estimate(labels[0], k) for k in indexed)
                residual = DEFAULT_EQ_SELECTIVITY ** (len(prop_keys) - 1)
                return best * residual * extra, best, 2
            count = self.label_count(labels[0])
            sel = DEFAULT_EQ_SELECTIVITY ** len(prop_keys)
            return count * sel * extra, count, 1
        n = float(self.node_count)
        return n * DEFAULT_EQ_SELECTIVITY ** len(prop_keys), n, 0

    def step_estimate(
        self,
        src_est: float,
        types: Sequence[str],
        direction: str,
        dst_labels: Sequence[str],
        dst_prop_count: int,
        *,
        variable_length: bool = False,
        min_hops: int = 1,
        max_hops: int = 1,
        dst_bound: bool = False,
    ) -> Tuple[float, float, float]:
        """(rows after the step, work, source-side distinct fraction).

        ``work`` is what the traversal materializes before any
        destination *property* Filter runs (labels are free — they fold
        into the algebraic expression as a diagonal operand, so wrong-label
        rows never exist); the first value applies the property
        selectivity on top and is the frontier carried into the next
        step.  The last value is the direction-asymmetry tie-break: when
        two extensions price identically, the one whose source side
        touches fewer distinct nodes wins (its frontier matrix is
        sparser)."""
        n = self.node_count
        src_frac = min(1.0, self.source_nodes(types, direction) / n)
        label_sel = 1.0
        for lbl in dst_labels:
            label_sel *= self.label_selectivity(lbl)
        prop_sel = DEFAULT_EQ_SELECTIVITY ** dst_prop_count
        fan = self.fan(types, direction)
        if dst_bound:
            # both endpoints fixed: P(entry exists) per row
            est = src_est * min(1.0, fan / n)
            return est, est, src_frac
        if variable_length:
            lo = max(1, min_hops)
            hi = max(lo, max_hops)
            total = 1.0 if min_hops == 0 else 0.0
            power = fan ** lo
            for _ in range(lo, hi + 1):
                total += min(float(n), power)
                power *= fan
                if total >= n:  # per-source reach cannot exceed N
                    total = float(n)
                    break
            work = src_est * total * label_sel
            return work * prop_sel, work, src_frac
        work = src_est * fan * label_sel
        return work * prop_sel, work, src_frac


# ---------------------------------------------------------------------------
# Plan annotation (EXPLAIN est_rows / PROFILE estimated-vs-actual)
# ---------------------------------------------------------------------------


def _predicate_selectivity(model: CostModel, predicate) -> float:
    if isinstance(predicate, _LabelCheckPredicate):
        sel = 1.0
        for lbl in predicate._wanted:
            sel *= model.label_selectivity(lbl)
        return sel
    if isinstance(predicate, _PropertyCheckPredicate):
        return DEFAULT_EQ_SELECTIVITY ** len(predicate._checks)
    return DEFAULT_FILTER_SELECTIVITY


def _literal_limit(limit: Limit) -> Optional[int]:
    try:
        value = limit._count([], None)
    except (AttributeError, IndexError, KeyError, TypeError):
        return None  # dynamic: parameter or upstream-column reference
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        return None
    return value


def _proc_arg_literal(op: ProcedureCall, index: int):
    """Plan-time constant of one procedure argument, or None when the
    argument is dynamic (parameter / upstream column reference)."""
    if index >= len(op._arg_fns):
        return None
    try:
        return op._arg_fns[index]([], None)
    except (AttributeError, IndexError, KeyError, TypeError):
        return None


def _vector_seek_estimate(op: ProcedureCall, model: CostModel) -> Optional[float]:
    """Rows of one ``db.idx.vector.query`` call, priced from the snapshot's
    IVF detail: a trained index examines roughly ``nprobe · size / nlist``
    candidates (the probed buckets), an untrained or exact one the whole
    index — top-k can't return more rows than that pool, nor more than a
    literal ``k``."""
    label = _proc_arg_literal(op, 0)
    attribute = _proc_arg_literal(op, 1)
    if not isinstance(label, str) or not isinstance(attribute, str):
        return None
    detail = model.stats.index_details.get((label, (attribute,), "vector"))
    if detail is None:
        return None
    size = float(detail["size"])
    nlist = detail.get("nlist")
    nprobe = detail.get("nprobe")
    if detail.get("trained") and nlist:
        pool = min(size, float(nprobe or 1) * size / float(nlist))
    else:
        pool = size
    k = _proc_arg_literal(op, 3)
    if isinstance(k, int) and not isinstance(k, bool) and k > 0:
        pool = min(pool, float(k))
    return max(1.0, pool)


def annotate_estimates(root: PlanOp, model: CostModel) -> float:
    """Post-order pass stamping ``op.est_rows`` on every operation.

    Returns the largest estimate in the tree (the executor's
    morsel-worthiness signal).  Estimates are heuristic row counts, never
    used for correctness — operators ignore the attribute at runtime."""
    peak = 0.0

    def visit(op: PlanOp) -> float:
        nonlocal peak
        for child in op.children:
            visit(child)
        est = _estimate(op, model)
        op.est_rows = est
        peak = max(peak, est)
        return est

    visit(root)
    return peak


def _child_est(op: PlanOp, index: int = 0) -> float:
    if index < len(op.children):
        return getattr(op.children[index], "est_rows", 1.0)
    return 1.0


def _estimate(op: PlanOp, model: CostModel) -> float:
    n = float(model.node_count)
    if isinstance(op, (Unit, Argument)):
        return 1.0
    if isinstance(op, NodeByIdSeek):
        return _child_est(op) if op.children else 1.0
    if isinstance(op, AllNodeScan):
        return (_child_est(op) if op.children else 1.0) * n
    if isinstance(op, NodeByIndexScan):
        base = model.index_estimate(op._label, op._attribute)
        return (_child_est(op) if op.children else 1.0) * base
    if isinstance(op, IndexRangeScan):
        base = model.seek_estimate(
            op._label, op._attributes, op._kind, [(s.op, s.literal) for s in op._specs]
        )
        return (_child_est(op) if op.children else 1.0) * base
    if isinstance(op, IndexOrderScan):
        # streams the whole label in index order — label-scan cardinality,
        # but a following literal LIMIT caps what actually materializes
        return (_child_est(op) if op.children else 1.0) * model.label_count(op._label)
    if isinstance(op, NodeByLabelScan):
        return (_child_est(op) if op.children else 1.0) * model.label_count(op._label)
    if isinstance(op, ConditionalTraverse):
        est, _, _ = model.step_estimate(
            _child_est(op), op._types, op._direction, _diag_labels(op._expr), 0
        )
        return est
    if isinstance(op, ExpandInto):
        est, _, _ = model.step_estimate(
            _child_est(op), op._types, op._direction, (), 0, dst_bound=True
        )
        return est
    if isinstance(op, CondVarLenTraverse):
        types, direction = _parse_rel_operand(op._expr.labels[0]) if op._expr.labels else ((), "out")
        est, _, _ = model.step_estimate(
            _child_est(op),
            types,
            direction,
            (),
            0,
            variable_length=True,
            min_hops=op._min,
            max_hops=op._max,
        )
        return est
    if isinstance(op, ProcedureCall):
        # Apply-style: one invocation per input record (leaf form = 1)
        base = model.proc_cardinality(op._proc)
        if op._proc.name == "db.idx.vector.query":
            priced = _vector_seek_estimate(op, model)
            if priced is not None:
                base = priced
        return (_child_est(op) if op.children else 1.0) * base
    if isinstance(op, Filter):
        sel = 1.0
        for predicate in op._predicates:
            sel *= _predicate_selectivity(model, predicate)
        return _child_est(op) * sel
    if isinstance(op, Limit):
        literal = _literal_limit(op)
        child = _child_est(op)
        return child if literal is None else min(child, float(literal))
    if isinstance(op, Aggregate):
        child = _child_est(op)
        return max(1.0, child ** 0.5) if op._group else 1.0
    if isinstance(op, Unwind):
        return _child_est(op) * UNWIND_FANOUT
    if isinstance(op, CartesianProduct):
        return _child_est(op, 0) * _child_est(op, 1)
    if isinstance(op, ApplyOptional):
        # right subtree was annotated per outer row (its Argument is 1);
        # empty matches still emit one null-extended row
        return _child_est(op, 0) * max(1.0, _child_est(op, 1))
    # Project / Sort / Skip / Distinct / Results / updates: passthrough
    return _child_est(op) if op.children else 1.0
