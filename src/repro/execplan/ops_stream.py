"""Record-stream operations: filter, project, aggregate, sort, distinct,
skip/limit, unwind, cartesian product, optional (apply) and results."""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CypherTypeError
from repro.execplan.expressions import CompiledExpr, ExecContext, sort_key
from repro.execplan.ops_base import Argument, PlanOp
from repro.execplan.record import Layout, Record
from repro.graph.entities import Edge, Node

__all__ = [
    "Filter",
    "Project",
    "Aggregate",
    "AggSpec",
    "Sort",
    "Distinct",
    "Skip",
    "Limit",
    "Unwind",
    "CartesianProduct",
    "ApplyOptional",
    "Results",
]


def _hashable(value) -> Any:
    """Turn any runtime value into a hashable grouping/dedup key."""
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Edge):
        return ("edge", value.id)
    if isinstance(value, list):
        return ("list", tuple(_hashable(v) for v in value))
    if isinstance(value, dict):
        return ("map", tuple(sorted((k, _hashable(v)) for k, v in value.items())))
    return value


class Filter(PlanOp):
    """Keep records whose predicate evaluates to exactly true."""

    name = "Filter"

    def __init__(self, child: PlanOp, predicate: CompiledExpr, label: str = "") -> None:
        super().__init__([child], child.out_layout)
        self._predicate = predicate
        self._label = label

    def describe(self) -> str:
        return f"Filter | {self._label}" if self._label else "Filter"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        pred = self._predicate
        for record in self.children[0].produce(ctx):
            if pred(record, ctx) is True:
                yield record


class Project(PlanOp):
    """Evaluate projections into a fresh, narrower record."""

    name = "Project"

    def __init__(self, child: PlanOp, items: Sequence[Tuple[str, CompiledExpr]]) -> None:
        super().__init__([child], Layout([name for name, _ in items]))
        self._items = list(items)

    def describe(self) -> str:
        return f"Project | {', '.join(n for n, _ in self._items)}"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        fns = [fn for _, fn in self._items]
        for record in self.children[0].produce(ctx):
            yield [fn(record, ctx) for fn in fns]


class AggSpec:
    """One aggregation: kind, argument expression, DISTINCT flag."""

    __slots__ = ("kind", "expr", "distinct")

    def __init__(self, kind: str, expr: Optional[CompiledExpr], distinct: bool) -> None:
        self.kind = kind  # count/sum/avg/min/max/collect; expr None = count(*)
        self.expr = expr
        self.distinct = distinct


class _AggState:
    __slots__ = ("count", "total", "values", "best", "seen")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.values: List[Any] = []
        self.best: Any = None
        self.seen: set = set()


class Aggregate(PlanOp):
    """Hash aggregation: group keys + aggregate columns.

    With no group keys, exactly one output row is emitted even on empty
    input (``count(*)`` over nothing is 0, ``sum`` is 0, others null).
    """

    name = "Aggregate"

    def __init__(
        self,
        child: PlanOp,
        group_items: Sequence[Tuple[str, CompiledExpr]],
        agg_items: Sequence[Tuple[str, AggSpec]],
    ) -> None:
        names = [n for n, _ in group_items] + [n for n, _ in agg_items]
        super().__init__([child], Layout(names))
        self._group = list(group_items)
        self._aggs = list(agg_items)

    def describe(self) -> str:
        return (
            f"Aggregate | keys=[{', '.join(n for n, _ in self._group)}] "
            f"aggs=[{', '.join(n for n, _ in self._aggs)}]"
        )

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        groups: dict = {}
        group_fns = [fn for _, fn in self._group]
        specs = [spec for _, spec in self._aggs]
        for record in self.children[0].produce(ctx):
            key_values = [fn(record, ctx) for fn in group_fns]
            key = tuple(_hashable(v) for v in key_values)
            entry = groups.get(key)
            if entry is None:
                entry = (key_values, [_AggState() for _ in specs])
                groups[key] = entry
            for spec, state in zip(specs, entry[1]):
                self._accumulate(spec, state, record, ctx)
        if not groups and not self._group:
            groups[()] = ([], [_AggState() for _ in specs])
        for key_values, states in groups.values():
            row = list(key_values)
            for spec, state in zip(specs, states):
                row.append(self._finalize(spec, state))
            yield row

    @staticmethod
    def _accumulate(spec: AggSpec, state: _AggState, record: Record, ctx: ExecContext) -> None:
        if spec.expr is None:  # count(*)
            state.count += 1
            return
        value = spec.expr(record, ctx)
        if value is None:
            return
        if spec.distinct:
            key = _hashable(value)
            if key in state.seen:
                return
            state.seen.add(key)
        state.count += 1
        if spec.kind == "sum" or spec.kind == "avg":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CypherTypeError(f"{spec.kind}() expects numeric values")
            state.total += value
        elif spec.kind == "collect":
            state.values.append(value)
        elif spec.kind in ("min", "max"):
            if state.best is None:
                state.best = value
            else:
                if spec.kind == "min":
                    if sort_key(value) < sort_key(state.best):
                        state.best = value
                elif sort_key(value) > sort_key(state.best):
                    state.best = value

    @staticmethod
    def _finalize(spec: AggSpec, state: _AggState):
        if spec.kind == "count":
            return state.count
        if spec.kind == "sum":
            total = state.total
            return int(total) if float(total).is_integer() else total
        if spec.kind == "avg":
            return None if state.count == 0 else state.total / state.count
        if spec.kind == "collect":
            return state.values
        if spec.kind in ("min", "max"):
            return state.best
        raise CypherTypeError(f"unknown aggregate {spec.kind}")  # pragma: no cover


class Sort(PlanOp):
    """Materializing sort with the Cypher type-aware ordering.

    When the optimizer sets ``top`` (a following LIMIT with a literal
    count) and all keys share one direction, a bounded heap replaces the
    full materialize-and-sort.
    """

    name = "Sort"

    def __init__(self, child: PlanOp, keys: Sequence[Tuple[CompiledExpr, bool]]) -> None:
        super().__init__([child], child.out_layout)
        self._keys = list(keys)
        self.top = -1  # set by the optimizer

    def describe(self) -> str:
        return f"Sort | top={self.top}" if self.top >= 0 else "Sort"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        directions = {asc for _, asc in self._keys}
        if self.top >= 0 and len(directions) == 1:
            import heapq

            ascending = directions == {True}
            keyed = (
                (tuple(sort_key(expr(rec, ctx)) for expr, _ in self._keys), i, rec)
                for i, rec in enumerate(self.children[0].produce(ctx))
            )
            pick = heapq.nsmallest if ascending else heapq.nlargest
            for _, _, rec in pick(self.top, keyed, key=lambda t: t[0]):
                yield rec
            return
        rows = list(self.children[0].produce(ctx))
        # stable multi-key sort: apply keys right-to-left
        for expr, ascending in reversed(self._keys):
            rows.sort(key=lambda rec: sort_key(expr(rec, ctx)), reverse=not ascending)
        yield from rows


class Distinct(PlanOp):
    name = "Distinct"

    def __init__(self, child: PlanOp) -> None:
        super().__init__([child], child.out_layout)

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        seen = set()
        for record in self.children[0].produce(ctx):
            key = tuple(_hashable(v) for v in record)
            if key not in seen:
                seen.add(key)
                yield record


class Skip(PlanOp):
    name = "Skip"

    def __init__(self, child: PlanOp, count: CompiledExpr) -> None:
        super().__init__([child], child.out_layout)
        self._count = count

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        n = int(self._count([], ctx))
        for i, record in enumerate(self.children[0].produce(ctx)):
            if i >= n:
                yield record


class Limit(PlanOp):
    name = "Limit"

    def __init__(self, child: PlanOp, count: CompiledExpr) -> None:
        super().__init__([child], child.out_layout)
        self._count = count

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        n = int(self._count([], ctx))
        if n <= 0:
            return
        for i, record in enumerate(self.children[0].produce(ctx)):
            yield record
            if i + 1 >= n:
                return


class Unwind(PlanOp):
    """Fan a list value out into one record per element."""

    name = "Unwind"

    def __init__(self, child: PlanOp, expr: CompiledExpr, alias: str) -> None:
        super().__init__([child], child.out_layout.extend(alias))
        self._expr = expr
        self._slot = self.out_layout.slot(alias)
        self._alias = alias

    def describe(self) -> str:
        return f"Unwind | {self._alias}"

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        width = len(self.out_layout)
        for record in self.children[0].produce(ctx):
            value = self._expr(record, ctx)
            if value is None:
                continue
            items = value if isinstance(value, list) else [value]
            for item in items:
                out = record + [None] * (width - len(record))
                out[self._slot] = item
                yield out


class CartesianProduct(PlanOp):
    """Cross product of disconnected pattern streams (right side
    materialized once)."""

    name = "CartesianProduct"

    def __init__(self, left: PlanOp, right: PlanOp) -> None:
        merged = left.out_layout.extend(*right.out_layout.names)
        super().__init__([left, right], merged)
        self._right_slots = [merged.slot(n) for n in right.out_layout.names]

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        right_rows = list(self.children[1].produce(ctx))
        width = len(self.out_layout)
        for left_rec in self.children[0].produce(ctx):
            for right_rec in right_rows:
                out = left_rec + [None] * (width - len(left_rec))
                for slot, value in zip(self._right_slots, right_rec):
                    out[slot] = value
                yield out


class ApplyOptional(PlanOp):
    """OPTIONAL MATCH: run the right subtree once per left record (seeded
    through its Argument leaf); emit null-extended records when empty."""

    name = "Optional"

    def __init__(self, left: PlanOp, right: PlanOp, argument: Argument) -> None:
        super().__init__([left, right], right.out_layout)
        self._argument = argument

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        width = len(self.out_layout)
        for record in self.children[0].produce(ctx):
            self._argument.seed(ctx, record + [None] * (len(self._argument.out_layout) - len(record)))
            matched = False
            for out in self.children[1].produce(ctx):
                matched = True
                yield out
            if not matched:
                yield record + [None] * (width - len(record))


class Results(PlanOp):
    """Plan root: passes records through (column naming happens in the
    executor, which owns the final projection)."""

    name = "Results"

    def __init__(self, child: PlanOp) -> None:
        super().__init__([child], child.out_layout)

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        yield from self.children[0].produce(ctx)
