"""Record-stream operations: filter, project, aggregate, sort, distinct,
skip/limit, unwind, cartesian product, optional (apply) and results.

Batch-native since the vectorized-engine refactor: operators consume and
emit :class:`~repro.execplan.batch.RecordBatch` columns —

* Filter   = predicate kernel → boolean-mask compress,
* Project  = column-at-a-time expression evaluation,
* Aggregate= ``np.unique``-keyed group-by fast path for
  count/sum/avg/min/max (object-dict fallback for everything else),
* Distinct = unique over handle-free key columns,
* Sort     = ``np.lexsort`` on typed key columns (+ top-k slice),
* Skip/Limit = batch slicing with cross-batch carry,
* Unwind/CartesianProduct = ``np.repeat``/``np.tile`` row gathers.

Semantics guard rail: every vectorized evaluation that raises a Cypher
error is retried per row (the scalar closures), so batching can only
change *when* an error surfaces, never *whether* one does or what a
result contains; ``exec_batch_size=1`` is exactly the row engine.  One
documented exception: ``sum``/``avg`` over *floats* may differ in the
last ULP across batch sizes — per-batch subtotals re-associate float
addition (integer sums stay exact below 2**53).
``ApplyOptional`` stays row-oriented — its contract is inherently
one-outer-record-at-a-time — and interoperates through the base-class
row/batch bridges.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CypherError, CypherSemanticError, CypherTypeError
from repro.execplan.batch import (
    Column,
    EntityColumn,
    RecordBatch,
    ValueColumn,
    float64_exact as _float64_exact,
    object_column,
)
from repro.execplan.batch_expr import as_column, true_mask, vectorize
from repro.execplan.expressions import CompiledExpr, ExecContext, sort_key
from repro.execplan.ops_base import Argument, PlanOp
from repro.execplan.record import Layout, Record
from repro.graph.entities import Edge, Node

__all__ = [
    "Filter",
    "Project",
    "Aggregate",
    "AggSpec",
    "Sort",
    "Distinct",
    "Skip",
    "Limit",
    "Unwind",
    "CartesianProduct",
    "ApplyOptional",
    "Results",
]

_I64 = np.int64
_NoneType = type(None)
_NUMERIC_TYPES = frozenset((int, float))


def _hashable(value) -> Any:
    """Turn any runtime value into a hashable grouping/dedup key."""
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Edge):
        return ("edge", value.id)
    if isinstance(value, list):
        return ("list", tuple(_hashable(v) for v in value))
    if isinstance(value, dict):
        return ("map", tuple(sorted((k, _hashable(v)) for k, v in value.items())))
    return value


def _eval_column(batch_fn, scalar_fn, batch: RecordBatch, ctx: ExecContext) -> Column:
    """One expression as a column over the batch, vectorized with the
    exact-semantics fallback: a Cypher error re-runs the rows through the
    scalar closure, reproducing row-engine error order.  At
    ``exec_batch_size=1`` the scalar closure runs directly — the
    differential hook must exercise the row engine, not 1-row kernels."""
    if ctx.batch_size == 1:
        rows = batch.materialize_rows()
        return ValueColumn(object_column([scalar_fn(r, ctx) for r in rows]))
    try:
        return as_column(batch_fn(batch, ctx), batch.length)
    except CypherError:
        rows = batch.materialize_rows()
        return ValueColumn(object_column([scalar_fn(r, ctx) for r in rows]))


def _chunk_rows(layout: Layout, rows: List[Record], size: int) -> Iterator[RecordBatch]:
    for start in range(0, len(rows), size):
        yield RecordBatch.from_rows(layout, rows[start : start + size])


class Filter(PlanOp):
    """Keep records whose predicate evaluates to exactly true.

    Holds a *list* of predicates (the optimizer's filter fusion appends
    instead of composing closures): each predicate compresses the batch
    before the next evaluates, preserving the fused row engine's
    short-circuit at batch granularity.
    """

    name = "Filter"

    def __init__(self, child: PlanOp, predicate, label: str = "") -> None:
        super().__init__([child], child.out_layout)
        self._predicates: List[CompiledExpr] = (
            list(predicate) if isinstance(predicate, (list, tuple)) else [predicate]
        )
        self._batch_predicates = [vectorize(p) for p in self._predicates]
        self._pairs = list(zip(self._predicates, self._batch_predicates))
        self._label = label

    def describe(self) -> str:
        return f"Filter | {self._label}" if self._label else "Filter"

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        return self._transform(ctx, self.children[0].produce_batches(ctx))

    def _partitions(self, ctx: ExecContext):
        # a pure per-batch map: rides its child's partitions
        parts = self.children[0].partitions(ctx)
        if parts is None:
            return None
        return [(lambda t=t: self._transform(ctx, t())) for t in parts]

    def _transform(self, ctx: ExecContext, stream: Iterator[RecordBatch]) -> Iterator[RecordBatch]:
        scalar_only = ctx.batch_size == 1  # the row engine, exactly
        for batch in stream:
            for scalar, batched in self._pairs:
                if not batch.length:
                    break
                if scalar_only:
                    rows = batch.materialize_rows()
                    mask = np.fromiter(
                        (scalar(r, ctx) is True for r in rows),
                        dtype=np.bool_,
                        count=len(rows),
                    )
                    batch = batch.compress(mask)
                    continue
                try:
                    mask = true_mask(batched(batch, ctx), batch.length)
                except CypherError:
                    rows = batch.materialize_rows()
                    mask = np.fromiter(
                        (scalar(r, ctx) is True for r in rows),
                        dtype=np.bool_,
                        count=len(rows),
                    )
                batch = batch.compress(mask)
            if batch.length:
                yield batch


class Project(PlanOp):
    """Evaluate projections into a fresh, narrower record."""

    name = "Project"

    def __init__(self, child: PlanOp, items: Sequence[Tuple[str, CompiledExpr]]) -> None:
        super().__init__([child], Layout([name for name, _ in items]))
        self._items = list(items)
        self._batch_items = [vectorize(fn) for _, fn in self._items]

    def describe(self) -> str:
        return f"Project | {', '.join(n for n, _ in self._items)}"

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        return self._transform(ctx, self.children[0].produce_batches(ctx))

    def _partitions(self, ctx: ExecContext):
        # a pure per-batch map: rides its child's partitions
        parts = self.children[0].partitions(ctx)
        if parts is None:
            return None
        return [(lambda t=t: self._transform(ctx, t())) for t in parts]

    def _transform(self, ctx: ExecContext, stream: Iterator[RecordBatch]) -> Iterator[RecordBatch]:
        fns = [fn for _, fn in self._items]
        scalar_only = ctx.batch_size == 1  # the row engine, exactly
        for batch in stream:
            n = batch.length
            if not n:
                continue
            if not scalar_only:
                try:
                    cols = [as_column(bfn(batch, ctx), n) for bfn in self._batch_items]
                except CypherError:
                    pass
                else:
                    yield RecordBatch(self.out_layout, cols, length=n)
                    continue
            rows = batch.materialize_rows()
            out_rows = [[fn(r, ctx) for fn in fns] for r in rows]
            yield RecordBatch.from_rows(self.out_layout, out_rows)


class AggSpec:
    """One aggregation: kind, argument expression, DISTINCT flag."""

    __slots__ = ("kind", "expr", "distinct")

    def __init__(self, kind: str, expr: Optional[CompiledExpr], distinct: bool) -> None:
        self.kind = kind  # count/sum/avg/min/max/collect; expr None = count(*)
        self.expr = expr
        self.distinct = distinct


class _AggState:
    __slots__ = ("count", "total", "values", "best", "seen")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.values: List[Any] = []
        self.best: Any = None
        self.seen: set = set()


class Aggregate(PlanOp):
    """Hash aggregation: group keys + aggregate columns.

    With no group keys, exactly one output row is emitted even on empty
    input (``count(*)`` over nothing is 0, ``sum`` is 0, others null).

    Per batch the group keys factorize through ``np.unique`` when the key
    column is an id vector or a homogeneous numeric/string column, and
    count/sum/avg/min/max accumulate per group via ``bincount``/sorted
    first-hit gathers; anything else (DISTINCT aggregates, collect, mixed
    or composite keys) drops to the object-dict row loop for that batch.
    Group *emission order* is first-appearance order in both paths, like
    the row engine's insertion-ordered dict.
    """

    name = "Aggregate"

    def __init__(
        self,
        child: PlanOp,
        group_items: Sequence[Tuple[str, CompiledExpr]],
        agg_items: Sequence[Tuple[str, AggSpec]],
    ) -> None:
        names = [n for n, _ in group_items] + [n for n, _ in agg_items]
        super().__init__([child], Layout(names))
        self._group = list(group_items)
        self._aggs = list(agg_items)
        self._batch_group = [vectorize(fn) for _, fn in self._group]
        self._batch_aggs = [
            vectorize(spec.expr) if spec.expr is not None else None
            for _, spec in self._aggs
        ]
        # loop-invariant: whether every aggregate can take the vectorized
        # path (otherwise skip the per-batch key factorization entirely)
        self._fast_specs = all(
            not spec.distinct and spec.kind in ("count", "sum", "avg", "min", "max")
            for _, spec in self._aggs
        )

    def describe(self) -> str:
        return (
            f"Aggregate | keys=[{', '.join(n for n, _ in self._group)}] "
            f"aggs=[{', '.join(n for n, _ in self._aggs)}]"
        )

    # ------------------------------------------------------------------
    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        specs = [spec for _, spec in self._aggs]
        groups = self._parallel_groups(ctx, specs)
        if groups is None:
            groups = {}
            for batch in self.child_stream(ctx):
                if batch.length:
                    self._absorb_batch(ctx, groups, batch, specs)
        if not groups and not self._group:
            groups[()] = ([], [_AggState() for _ in specs])
        out_rows: List[Record] = []
        for key_values, states in groups.values():
            row = list(key_values)
            for spec, state in zip(specs, states):
                row.append(self._finalize(spec, state))
            out_rows.append(row)
        yield from _chunk_rows(self.out_layout, out_rows, ctx.batch_size)

    def _absorb_batch(self, ctx, groups, batch: RecordBatch, specs) -> None:
        n = batch.length
        key_cols: List[Column] = []
        for (name, fn), bfn in zip(self._group, self._batch_group):
            key_cols.append(_eval_column(bfn, fn, batch, ctx))
        val_cols: List[Optional[Column]] = []
        for (name, spec), bfn in zip(self._aggs, self._batch_aggs):
            if bfn is None:
                val_cols.append(None)  # count(*)
            else:
                val_cols.append(_eval_column(bfn, spec.expr, batch, ctx))
        self._absorb(ctx, groups, key_cols, val_cols, specs, n)

    # -- morsel parallelism --------------------------------------------
    def _parallel_groups(self, ctx, specs) -> Optional[dict]:
        """Accumulate partition-local group dicts on the morsel workers,
        then merge them in partition order — first-appearance group order
        and collect()/tie semantics come out identical to the serial
        absorb because partition order IS serial stream order.  DISTINCT
        aggregates cannot merge (partition-local ``seen`` sets would
        double-count across partitions), so they take the serial path."""
        if ctx.driver is None or any(spec.distinct for spec in specs):
            return None
        parts = self.children[0].partitions(ctx)
        if parts is None or len(parts) < 2:
            return None
        ctx.driver.morsels += len(parts)

        def absorb_part(t):
            def run() -> dict:
                local: dict = {}
                for batch in t():
                    if batch.length:
                        self._absorb_batch(ctx, local, batch, specs)
                return local

            return run

        groups: dict = {}
        for local in ctx.driver.run_ordered([absorb_part(t) for t in parts]):
            for key, (key_values, states) in local.items():
                entry = groups.get(key)
                if entry is None:
                    groups[key] = (key_values, states)
                else:
                    for spec, dst, src in zip(specs, entry[1], states):
                        self._merge_state(spec, dst, src)
        return groups

    @staticmethod
    def _merge_state(spec: AggSpec, dst: _AggState, src: _AggState) -> None:
        """Fold a later partition's partial state into an earlier one.
        Deterministic for every non-DISTINCT aggregate: counts and sums
        add, collect concatenates in partition order, min/max keep the
        earlier value on ties (``src`` only wins strictly)."""
        dst.count += src.count
        dst.total += src.total
        dst.values.extend(src.values)
        if src.best is not None:
            if dst.best is None:
                dst.best = src.best
            elif spec.kind == "min":
                if sort_key(src.best) < sort_key(dst.best):
                    dst.best = src.best
            elif sort_key(src.best) > sort_key(dst.best):
                dst.best = src.best

    # ------------------------------------------------------------------
    def _absorb(self, ctx, groups, key_cols, val_cols, specs, n) -> None:
        # exec_batch_size=1 must BE the row engine: the vectorized
        # group-by is gated off so the differential leg really exercises
        # the scalar accumulation path
        codes_info = (
            self._group_codes(key_cols, n)
            if ctx.batch_size > 1 and self._fast_specs
            else None
        )
        if codes_info is None:
            self._absorb_rows(groups, key_cols, val_cols, specs, n)
            return
        codes, appearance, keys, values_fn = codes_info
        states_by_code: List[Optional[list]] = [None] * len(keys)
        for pos in appearance:
            key = keys[pos]
            entry = groups.get(key)
            if entry is None:
                entry = (values_fn(pos), [_AggState() for _ in specs])
                groups[key] = entry
            states_by_code[pos] = entry[1]
        for spec_idx, (spec, col) in enumerate(zip(specs, val_cols)):
            if not self._accumulate_fast(spec, col, codes, states_by_code, spec_idx, n):
                self._accumulate_rows_one(
                    spec, col.to_objects(), codes, states_by_code, spec_idx, n
                )

    def _group_codes(self, key_cols: List[Column], n: int):
        """Factorize the group key: ``(codes, appearance_order, dict_keys,
        values_fn)`` or None when the key shape needs the row loop.  Codes
        index ``dict_keys``; ``appearance_order`` lists codes by first
        occurrence so dict insertion order matches the row engine.

        ``dict_keys`` entries MUST be shaped exactly like the row loop's
        ``tuple(hash per key column)`` — one run may route different
        batches through different paths, and both must land in the same
        ``groups`` entry."""
        if not self._group:
            return (
                np.zeros(n, dtype=_I64),
                [0],
                [()],
                lambda pos: [],
            )
        if len(self._group) != 1:
            return None
        col = key_cols[0]
        if isinstance(col, EntityColumn):
            uniq, first_idx, codes = np.unique(
                col.ids, return_index=True, return_inverse=True
            )
            kind = col.kind
            graph = col.graph
            ctor = Node if kind == "node" else Edge
            keys = [((kind, i),) if i >= 0 else (None,) for i in uniq.tolist()]
            ids = uniq.tolist()

            def values_fn(pos):
                i = ids[pos]
                return [None if i < 0 else ctor(graph, i)]

            appearance = np.argsort(first_idx, kind="stable").tolist()
            return codes, appearance, keys, values_fn
        values = col.to_objects()
        lst = values.tolist()
        types = set(map(type, lst))
        if types == {int}:
            try:
                # exact: int64 keys never collapse like float64 would for
                # values past 2**53 (overflow past int64 -> row loop)
                arr = np.array(lst, dtype=_I64)
            except OverflowError:
                return None
        elif types <= _NUMERIC_TYPES and types:
            if not _float64_exact(lst):
                return None  # ints past 2**53 would collapse: row loop
            try:
                arr = np.array(lst, dtype=np.float64)
            except OverflowError:
                return None  # int beyond float64 range: row loop
            if np.isnan(arr).any():
                return None  # NaN identity-grouping quirks: row loop
        elif types == {str}:
            if any("\x00" in s for s in lst):
                return None  # numpy U-dtype NUL padding would merge keys
            arr = np.array(lst)
        else:
            return None
        uniq, first_idx, codes = np.unique(arr, return_index=True, return_inverse=True)
        firsts = first_idx.tolist()
        reps = [lst[i] for i in firsts]  # first-seen Python value, type kept
        keys = [(v,) for v in reps]

        def values_fn(pos):
            return [reps[pos]]

        appearance = np.argsort(first_idx, kind="stable").tolist()
        return codes, appearance, keys, values_fn

    def _accumulate_fast(self, spec, col: Optional[Column], codes, states_by_code, spec_idx, n) -> bool:
        k = len(states_by_code)
        if spec.expr is None:  # count(*)
            if k == 1:
                states_by_code[0][spec_idx].count += n
                return True
            counts = np.bincount(codes, minlength=k)
            for code in range(k):
                c = int(counts[code])
                if c:
                    states_by_code[code][spec_idx].count += c
            return True
        nulls = col.null_mask()
        if spec.kind == "count":
            # handle-free: counting an entity column never materializes it
            if k == 1:
                states_by_code[0][spec_idx].count += n - int(nulls.sum())
                return True
            counts = np.bincount(codes[np.flatnonzero(~nulls)], minlength=k)
            for code in range(k):
                c = int(counts[code])
                if c:
                    states_by_code[code][spec_idx].count += c
            return True
        nz = np.flatnonzero(~nulls)
        if not len(nz):
            return True
        values = col.to_objects()
        present = [values[i] for i in nz.tolist()]
        ptypes = set(map(type, present))
        if not ptypes <= _NUMERIC_TYPES:
            return False  # row loop raises/compares exactly like the scalar path
        nz_codes = codes[nz]
        counts = np.bincount(nz_codes, minlength=k)
        if spec.kind in ("sum", "avg"):
            # float64 accumulation like the row engine (state.total is a
            # Python float there too), but per-batch subtotals re-associate
            # the additions: float sums may differ in the last ULP across
            # batch sizes (integer sums below 2**53 stay exact).  Ints
            # beyond float64 overflow in the row loop instead, at the
            # exact offending record
            try:
                floats = np.array(present, dtype=np.float64)
            except OverflowError:
                return False
            sums = np.bincount(nz_codes, weights=floats, minlength=k)
            for code in range(k):
                c = int(counts[code])
                if c:
                    state = states_by_code[code][spec_idx]
                    state.count += c
                    state.total += float(sums[code])
            return True
        # min/max: stable first-hit per group so ties keep the earliest
        # value object, like the row engine.  Pure-int columns order as
        # int64 so values past 2**53 keep their exact order; anything the
        # dtype cannot represent exactly drops to the row loop.
        if ptypes == {int}:
            try:
                ordkeys = np.array(present, dtype=_I64)
            except OverflowError:
                return False
        else:
            if not _float64_exact(present):
                return False  # ints past 2**53 would misorder ties
            try:
                ordkeys = np.array(present, dtype=np.float64)
            except OverflowError:
                return False
            if np.isnan(ordkeys).any():
                return False  # NaN ordering: row loop matches sort_key
        if spec.kind == "min":
            primary = ordkeys
        else:
            if ordkeys.dtype == _I64 and bool(
                (ordkeys == np.iinfo(np.int64).min).any()
            ):
                return False  # negating INT64_MIN wraps onto itself
            primary = -ordkeys
        order = np.lexsort((np.arange(len(nz)), primary))
        sorted_codes = nz_codes[order]
        uniq_codes, first_pos = np.unique(sorted_codes, return_index=True)
        for code, pos in zip(uniq_codes.tolist(), first_pos.tolist()):
            value = present[int(order[pos])]
            state = states_by_code[code][spec_idx]
            state.count += int(counts[code])
            if state.best is None:
                state.best = value
            elif spec.kind == "min":
                if sort_key(value) < sort_key(state.best):
                    state.best = value
            elif sort_key(value) > sort_key(state.best):
                state.best = value
        return True

    def _accumulate_rows_one(self, spec, col, codes, states_by_code, spec_idx, n) -> None:
        codes_list = codes.tolist()
        for i in range(n):
            state = states_by_code[codes_list[i]][spec_idx]
            self._accumulate_value(spec, state, None if col is None else col[i])

    def _absorb_rows(self, groups, key_cols, val_cols, specs, n) -> None:
        hash_cols = [c.hash_keys() for c in key_cols]
        obj_cols: List[Optional[np.ndarray]] = [None] * len(key_cols)
        vals = [None if c is None else c.to_objects() for c in val_cols]
        for i in range(n):
            key = tuple(h[i] for h in hash_cols)
            entry = groups.get(key)
            if entry is None:
                key_values = []
                for c_idx, col in enumerate(key_cols):
                    if obj_cols[c_idx] is None:
                        obj_cols[c_idx] = col.to_objects()
                    key_values.append(obj_cols[c_idx][i])
                entry = (key_values, [_AggState() for _ in specs])
                groups[key] = entry
            states = entry[1]
            for spec, state, col in zip(specs, states, vals):
                self._accumulate_value(spec, state, None if col is None else col[i])

    @staticmethod
    def _accumulate_value(spec: AggSpec, state: _AggState, value) -> None:
        if spec.expr is None:  # count(*)
            state.count += 1
            return
        if value is None:
            return
        if spec.distinct:
            key = _hashable(value)
            if key in state.seen:
                return
            state.seen.add(key)
        state.count += 1
        if spec.kind == "sum" or spec.kind == "avg":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CypherTypeError(f"{spec.kind}() expects numeric values")
            state.total += value
        elif spec.kind == "collect":
            state.values.append(value)
        elif spec.kind in ("min", "max"):
            if state.best is None:
                state.best = value
            else:
                if spec.kind == "min":
                    if sort_key(value) < sort_key(state.best):
                        state.best = value
                elif sort_key(value) > sort_key(state.best):
                    state.best = value

    @staticmethod
    def _finalize(spec: AggSpec, state: _AggState):
        if spec.kind == "count":
            return state.count
        if spec.kind == "sum":
            total = state.total
            return int(total) if float(total).is_integer() else total
        if spec.kind == "avg":
            return None if state.count == 0 else state.total / state.count
        if spec.kind == "collect":
            return state.values
        if spec.kind in ("min", "max"):
            return state.best
        raise CypherTypeError(f"unknown aggregate {spec.kind}")  # pragma: no cover


class Sort(PlanOp):
    """Materializing sort with the Cypher type-aware ordering.

    The whole input is gathered into one batch; homogeneous numeric (any
    direction) or string (ascending) key columns sort via a stable
    ``np.lexsort``, anything else through the type-ranked ``sort_key``
    row sort — both stable, so tie order always matches the row engine.
    When the optimizer sets ``top`` (a following LIMIT with a literal
    count) only the head of the order is emitted.
    """

    name = "Sort"

    def __init__(self, child: PlanOp, keys: Sequence[Tuple[CompiledExpr, bool]]) -> None:
        super().__init__([child], child.out_layout)
        self._keys = list(keys)
        self._batch_keys = [vectorize(fn) for fn, _ in self._keys]
        self.top = -1  # set by the optimizer

    def describe(self) -> str:
        return f"Sort | top={self.top}" if self.top >= 0 else "Sort"

    @staticmethod
    def _descending(arr: np.ndarray) -> Optional[np.ndarray]:
        """The key negated for a descending lexsort, or None when the
        negation would wrap (INT64_MIN)."""
        if arr.dtype == _I64 and bool((arr == np.iinfo(np.int64).min).any()):
            return None
        return -arr

    def _sort_array(self, res, n: int, ascending: bool) -> Optional[np.ndarray]:
        """A lexsort-able key array, or None when this key needs sort_key."""
        col = as_column(res, n)
        if isinstance(col, EntityColumn):
            # entities order by id within one type class (sort_key does the
            # same); nulls would need type-rank handling — bail on those
            if col.null_mask().any():
                return None
            return col.ids if ascending else self._descending(col.ids)
        values = col.to_objects()
        lst = values.tolist()
        types = set(map(type, lst))
        if types == {int}:
            # exact: int64 keys never collapse ties like float64 would
            # past 2**53 (beyond int64 -> sort_key row sort)
            try:
                arr = np.array(lst, dtype=_I64)
            except OverflowError:
                return None
        elif types and types <= _NUMERIC_TYPES:
            if not _float64_exact(lst):
                return None  # ints past 2**53 would misorder ties
            try:
                arr = np.array(lst, dtype=np.float64)
            except OverflowError:
                return None
            if np.isnan(arr).any():
                return None
        elif types == {str} and ascending:
            if any("\x00" in s for s in lst):
                return None  # numpy U-dtype NUL padding would tie keys
            return np.array(lst)
        else:
            return None
        return arr if ascending else self._descending(arr)

    def _sorted_batch(self, big: RecordBatch, ctx: ExecContext, limit: int) -> RecordBatch:
        """``big`` stably sorted on the keys (head only when ``limit`` is
        set).  exec_batch_size=1 must BE the row engine: the lexsort fast
        path stays off so the differential leg exercises the sort_key
        sort."""
        n = big.length
        arrays: Optional[List[np.ndarray]] = [] if ctx.batch_size > 1 else None
        for bfn, (fn, ascending) in zip(self._batch_keys, self._keys):
            if arrays is None:
                break
            try:
                res = bfn(big, ctx)
            except CypherError:
                arrays = None
                break
            arr = self._sort_array(res, n, ascending)
            if arr is None:
                arrays = None
                break
            arrays.append(arr)
        if arrays is not None:
            # np.lexsort: last key is primary; append row index for
            # explicit stability
            order = np.lexsort(tuple([np.arange(n)] + list(reversed(arrays))))
            if limit >= 0:
                order = order[:limit]
            return big.take(order)
        rows = list(big.materialize_rows())
        # stable multi-key sort: apply keys right-to-left
        for expr, ascending in reversed(self._keys):
            rows.sort(key=lambda rec: sort_key(expr(rec, ctx)), reverse=not ascending)
        if limit >= 0:
            rows = rows[:limit]
        return RecordBatch.from_rows(self.out_layout, rows)

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        size = ctx.batch_size
        if ctx.driver is not None:
            parts = self.children[0].partitions(ctx)
            if parts is not None and len(parts) >= 2:
                yield from self._parallel_sort(ctx, parts, size)
                return
        stream = self.child_stream(ctx)
        if 0 <= self.top <= 16 * size:
            # streaming top-k: fold each batch into the kept head, holding
            # O(top + batch) rows instead of materializing the input (ties
            # stay stable — kept rows precede the new batch in the merge).
            # Huge literal LIMITs fall through to the single full sort.
            kept: Optional[RecordBatch] = None
            for batch in stream:
                if not batch.length:
                    continue
                merged = (
                    batch
                    if kept is None
                    else RecordBatch.concat(self.out_layout, [kept, batch])
                )
                kept = self._sorted_batch(merged, ctx, self.top)
            if kept is not None:
                yield from kept.chunks(size)
            return
        batches = [b for b in stream if b.length]
        if not batches:
            return
        big = RecordBatch.concat(self.out_layout, batches)
        yield from self._sorted_batch(big, ctx, self.top).chunks(size)

    def _parallel_sort(self, ctx: ExecContext, parts, size: int) -> Iterator[RecordBatch]:
        """Each morsel stably sorts (and top-k truncates) its own slice;
        the partials concatenate in partition order and one final stable
        sort merges them.  Stable-sorting a concatenation whose equal-key
        rows kept their original relative order yields exactly the serial
        stable sort, and per-partition top-k truncation can never drop a
        row of the global top-k."""
        ctx.driver.morsels += len(parts)
        limit = self.top if self.top >= 0 else -1

        def sort_part(t):
            def run() -> Optional[RecordBatch]:
                batches = [b for b in t() if b.length]
                if not batches:
                    return None
                big = RecordBatch.concat(self.out_layout, batches)
                return self._sorted_batch(big, ctx, limit)

            return run

        partials = [
            p for p in ctx.driver.run_ordered([sort_part(t) for t in parts]) if p is not None
        ]
        if not partials:
            return
        big = RecordBatch.concat(self.out_layout, partials)
        yield from self._sorted_batch(big, ctx, self.top).chunks(size)


class Distinct(PlanOp):
    name = "Distinct"

    def __init__(self, child: PlanOp) -> None:
        super().__init__([child], child.out_layout)

    @staticmethod
    def _dedup(batch: RecordBatch, seen: set) -> Tuple[RecordBatch, List[Any]]:
        """The batch filtered against (and added to) ``seen``; also returns
        the kept rows' keys, in emission order."""
        n = batch.length
        hash_cols = [c.hash_keys() for c in batch.columns]
        mask = np.empty(n, dtype=np.bool_)
        kept: List[Any] = []
        if len(hash_cols) == 1:
            keys = hash_cols[0]
            for i in range(n):
                key = keys[i]
                if key in seen:
                    mask[i] = False
                else:
                    seen.add(key)
                    mask[i] = True
                    kept.append(key)
        else:
            for i in range(n):
                key = tuple(h[i] for h in hash_cols)
                if key in seen:
                    mask[i] = False
                else:
                    seen.add(key)
                    mask[i] = True
                    kept.append(key)
        return batch.compress(mask), kept

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        if ctx.driver is not None:
            parts = self.children[0].partitions(ctx)
            if parts is not None and len(parts) >= 2:
                yield from self._parallel_distinct(ctx, parts)
                return
        seen: set = set()
        for batch in self.child_stream(ctx):
            if not batch.length:
                continue
            out, _ = self._dedup(batch, seen)
            if out.length:
                yield out

    def _parallel_distinct(self, ctx: ExecContext, parts) -> Iterator[RecordBatch]:
        """Morsels dedup locally; the coordinator re-filters the survivors
        against the global seen set in partition order, so the first
        occurrence of every key — in serial stream order — is the one
        emitted, exactly like the serial pass."""
        ctx.driver.morsels += len(parts)

        def dedup_part(t):
            def run() -> List[Tuple[RecordBatch, List[Any]]]:
                local_seen: set = set()
                out = []
                for batch in t():
                    if not batch.length:
                        continue
                    kept_batch, kept_keys = self._dedup(batch, local_seen)
                    if kept_batch.length:
                        out.append((kept_batch, kept_keys))
                return out

            return run

        seen: set = set()
        for part_out in ctx.driver.run_ordered([dedup_part(t) for t in parts]):
            for batch, keys in part_out:
                mask = np.empty(len(keys), dtype=np.bool_)
                for i, key in enumerate(keys):
                    if key in seen:
                        mask[i] = False
                    else:
                        seen.add(key)
                        mask[i] = True
                out = batch.compress(mask)
                if out.length:
                    yield out


def _checked_count(count_fn: CompiledExpr, ctx: ExecContext, keyword: str) -> int:
    """SKIP/LIMIT operand: evaluated once per run, must be a non-negative
    integer (matching RedisGraph's semantic check)."""
    value = count_fn([], ctx)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise CypherSemanticError(
            f"{keyword} must be a non-negative integer (got {value!r})"
        )
    return value


class Skip(PlanOp):
    name = "Skip"

    def __init__(self, child: PlanOp, count: CompiledExpr) -> None:
        super().__init__([child], child.out_layout)
        self._count = count

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        n = _checked_count(self._count, ctx, "SKIP")
        skipped = 0
        for batch in self.child_stream(ctx):
            if skipped < n:
                take = min(batch.length, n - skipped)
                skipped += take
                if take >= batch.length:
                    continue
                batch = batch.slice(take, batch.length)
            if batch.length:
                yield batch


class Limit(PlanOp):
    name = "Limit"

    def __init__(self, child: PlanOp, count: CompiledExpr) -> None:
        super().__init__([child], child.out_layout)
        self._count = count

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        remaining = _checked_count(self._count, ctx, "LIMIT")
        if remaining <= 0:
            return
        for batch in self.child_stream(ctx):
            if batch.length >= remaining:
                yield batch.slice(0, remaining)
                return
            if batch.length:
                yield batch
                remaining -= batch.length


class Unwind(PlanOp):
    """Fan a list value out into one record per element.  Null produces
    zero rows; any other non-list value is a type error (openCypher)."""

    name = "Unwind"

    def __init__(self, child: PlanOp, expr: CompiledExpr, alias: str) -> None:
        super().__init__([child], child.out_layout.extend(alias))
        self._expr = expr
        self._batch_expr = vectorize(expr)
        self._slot = self.out_layout.slot(alias)
        self._alias = alias

    def describe(self) -> str:
        return f"Unwind | {self._alias}"

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        return self._transform(ctx, self.children[0].produce_batches(ctx))

    def _partitions(self, ctx: ExecContext):
        # a pure per-batch fan-out: rides its child's partitions
        parts = self.children[0].partitions(ctx)
        if parts is None:
            return None
        return [(lambda t=t: self._transform(ctx, t())) for t in parts]

    def _transform(self, ctx: ExecContext, stream: Iterator[RecordBatch]) -> Iterator[RecordBatch]:
        for batch in stream:
            n = batch.length
            if not n:
                continue
            values = _eval_column(self._batch_expr, self._expr, batch, ctx).to_objects()
            idx: List[int] = []
            items: List[Any] = []
            for i in range(n):
                value = values[i]
                if value is None:
                    continue
                if not isinstance(value, list):
                    raise CypherTypeError(
                        f"UNWIND expects a list or null, got {type(value).__name__}"
                    )
                idx.extend([i] * len(value))
                items.extend(value)
            if not idx:
                continue
            out = batch.take(np.asarray(idx, dtype=_I64)).extend(
                self.out_layout, [ValueColumn(object_column(items))]
            )
            yield out


class CartesianProduct(PlanOp):
    """Cross product of disconnected pattern streams (right side
    materialized once, then tiled columnarly against each left batch)."""

    name = "CartesianProduct"

    def __init__(self, left: PlanOp, right: PlanOp) -> None:
        merged = left.out_layout.extend(*right.out_layout.names)
        super().__init__([left, right], merged)
        self._right_slots = [merged.slot(n) for n in right.out_layout.names]
        # columnar tiling requires the right columns to land in fresh
        # trailing slots; overlapping names fall back to the row loop
        left_width = len(left.out_layout)
        self._disjoint = all(slot >= left_width for slot in self._right_slots)

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        right_layout = self.children[1].out_layout
        right_batches = [b for b in self.child_stream(ctx, 1) if b.length]
        if not right_batches:
            return
        right = RecordBatch.concat(right_layout, right_batches)
        m = len(right)
        size = ctx.batch_size
        width = len(self.out_layout)
        if not self._disjoint:
            right_rows = right.materialize_rows()
            for batch in self.child_stream(ctx):
                out_rows = []
                for left_rec in batch.iter_rows():
                    for right_rec in right_rows:
                        out = left_rec + [None] * (width - len(left_rec))
                        for slot, value in zip(self._right_slots, right_rec):
                            out[slot] = value
                        out_rows.append(out)
                yield from _chunk_rows(self.out_layout, out_rows, size)
            return
        for batch in self.child_stream(ctx):
            n = batch.length
            if not n:
                continue
            # gather indices generated one output chunk at a time — never
            # the full n×m arrays (O(size) memory)
            total = n * m
            for start in range(0, total, size):
                flat = np.arange(start, min(start + size, total), dtype=_I64)
                out = batch.take(flat // m).extend(
                    self.out_layout, [c.take(flat % m) for c in right.columns]
                )
                yield out


class ApplyOptional(PlanOp):
    """OPTIONAL MATCH: run the right subtree once per left record (seeded
    through its Argument leaf); emit null-extended records when empty.
    Inherently one-outer-record-at-a-time; the base-class bridges batch
    its output."""

    name = "Optional"

    def __init__(self, left: PlanOp, right: PlanOp, argument: Argument) -> None:
        super().__init__([left, right], right.out_layout)
        self._argument = argument

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        width = len(self.out_layout)
        for record in self.children[0].produce(ctx):
            self._argument.seed(ctx, record + [None] * (len(self._argument.out_layout) - len(record)))
            matched = False
            for out in self.children[1].produce(ctx):
                matched = True
                yield out
            if not matched:
                yield record + [None] * (width - len(record))


class Results(PlanOp):
    """Plan root: passes records through (column naming happens in the
    executor, which owns the final projection and serializes straight
    from the batch columns)."""

    name = "Results"

    def __init__(self, child: PlanOp) -> None:
        super().__init__([child], child.out_layout)

    def _produce(self, ctx: ExecContext) -> Iterator[Record]:
        return self.children[0].produce(ctx)

    def _produce_batches(self, ctx: ExecContext) -> Iterator[RecordBatch]:
        # the root's pull is where morsel parallelism enters plans whose
        # operator stack is entirely stateless (scan→filter→project→...)
        return self.child_stream(ctx)
