"""Per-execution profiling (GRAPH.PROFILE).

A :class:`ProfileRun` holds the record/time counters of ONE execution,
keyed by plan-operation identity.  Attaching it to the run's
:class:`~repro.execplan.expressions.ExecContext` (instead of mutating the
operations, as the engine once did) keeps cached plans stateless: a
PROFILE and any number of plain executions of the same cached artifact
can run concurrently without touching each other's numbers.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator

__all__ = ["ProfileRun"]


class _OpCounters:
    __slots__ = ("rows", "batches", "ms")

    def __init__(self) -> None:
        self.rows = 0
        self.batches = 0
        self.ms = 0.0


class ProfileRun:
    """Row/time counters for every operation of one plan execution."""

    def __init__(self) -> None:
        self._counters: Dict[int, _OpCounters] = {}

    def _counters_for(self, op) -> _OpCounters:
        counters = self._counters.get(id(op))
        if counters is None:
            counters = _OpCounters()
            self._counters[id(op)] = counters
        return counters

    def wrap(self, op, gen: Iterator) -> Iterator:
        """Meter a produce() generator.  Apply-style operators re-invoke
        subtrees once per outer record; counters accumulate across those
        re-invocations, like RedisGraph's per-op totals."""
        counters = self._counters_for(op)

        def metered():
            start = time.perf_counter()
            for record in gen:
                counters.rows += 1
                counters.batches += 1  # row pulls: one record per "batch"
                counters.ms += (time.perf_counter() - start) * 1e3
                yield record
                start = time.perf_counter()
            counters.ms += (time.perf_counter() - start) * 1e3

        return metered()

    def wrap_batches(self, op, gen: Iterator) -> Iterator:
        """Meter a produce_batches() generator: rows accumulate by batch
        length, so per-op row counts are identical to what the
        row-at-a-time engine (``exec_batch_size=1``) reports."""
        counters = self._counters_for(op)

        def metered():
            start = time.perf_counter()
            for batch in gen:
                counters.rows += len(batch)
                counters.batches += 1
                counters.ms += (time.perf_counter() - start) * 1e3
                yield batch
                start = time.perf_counter()
            counters.ms += (time.perf_counter() - start) * 1e3

        return metered()

    def suffix(self, op) -> str:
        """The EXPLAIN-line decoration for one operation."""
        counters = self._counters.get(id(op)) or _OpCounters()
        return (
            f" | Records produced: {counters.rows}, Batches: {counters.batches}, "
            f"Execution time: {counters.ms:.6f} ms"
        )
