"""Per-execution profiling (GRAPH.PROFILE).

A :class:`ProfileRun` holds the record/time counters of ONE execution,
keyed by plan-operation identity.  Attaching it to the run's
:class:`~repro.execplan.expressions.ExecContext` (instead of mutating the
operations, as the engine once did) keeps cached plans stateless: a
PROFILE and any number of plain executions of the same cached artifact
can run concurrently without touching each other's numbers.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator

__all__ = ["ProfileRun"]


class _OpCounters:
    __slots__ = ("rows", "batches", "ms", "morsels")

    def __init__(self) -> None:
        self.rows = 0
        self.batches = 0
        self.ms = 0.0
        self.morsels = 0


class ProfileRun:
    """Row/time counters for every operation of one plan execution."""

    def __init__(self) -> None:
        self._counters: Dict[int, _OpCounters] = {}
        # serial metering runs on the coordinator thread only; morsel
        # partitions meter locally and flush here under the lock
        self._lock = threading.Lock()

    def _counters_for(self, op) -> _OpCounters:
        counters = self._counters.get(id(op))
        if counters is None:
            counters = _OpCounters()
            self._counters[id(op)] = counters
        return counters

    def wrap(self, op, gen: Iterator) -> Iterator:
        """Meter a produce() generator.  Apply-style operators re-invoke
        subtrees once per outer record; counters accumulate across those
        re-invocations, like RedisGraph's per-op totals."""
        counters = self._counters_for(op)

        def metered():
            start = time.perf_counter()
            for record in gen:
                counters.rows += 1
                counters.batches += 1  # row pulls: one record per "batch"
                counters.ms += (time.perf_counter() - start) * 1e3
                yield record
                start = time.perf_counter()
            counters.ms += (time.perf_counter() - start) * 1e3

        return metered()

    def wrap_batches(self, op, gen: Iterator) -> Iterator:
        """Meter a produce_batches() generator: rows accumulate by batch
        length, so per-op row counts are identical to what the
        row-at-a-time engine (``exec_batch_size=1``) reports."""
        counters = self._counters_for(op)

        def metered():
            start = time.perf_counter()
            for batch in gen:
                counters.rows += len(batch)
                counters.batches += 1
                counters.ms += (time.perf_counter() - start) * 1e3
                yield batch
                start = time.perf_counter()
            counters.ms += (time.perf_counter() - start) * 1e3

        return metered()

    def wrap_partition(self, op, gen: Iterator) -> Iterator:
        """Meter one morsel of ``op``'s partitioned stream.  Runs on a
        worker thread, so counters accumulate locally and flush into the
        shared totals under the run's lock when the morsel finishes;
        summed across morsels, per-op row counts equal the serial run's."""
        local = _OpCounters()
        local.morsels = 1

        def metered():
            start = time.perf_counter()
            try:
                for batch in gen:
                    local.rows += len(batch)
                    local.batches += 1
                    local.ms += (time.perf_counter() - start) * 1e3
                    yield batch
                    start = time.perf_counter()
                local.ms += (time.perf_counter() - start) * 1e3
            finally:
                with self._lock:
                    counters = self._counters_for(op)
                    counters.rows += local.rows
                    counters.batches += local.batches
                    counters.ms += local.ms
                    counters.morsels += local.morsels

        return metered()

    def suffix(self, op) -> str:
        """The EXPLAIN-line decoration for one operation."""
        counters = self._counters.get(id(op)) or _OpCounters()
        line = (
            f" | Records produced: {counters.rows}, Batches: {counters.batches}, "
            f"Execution time: {counters.ms:.6f} ms"
        )
        if counters.morsels:
            line += f", Morsels: {counters.morsels}"
        return line
